// Estimator throughput benchmark: the persistent-pool + warm-start layer
// against the seed's serial estimation path.
//
// One full bounded Levenberg-Marquardt estimation (TC3-scale model, several
// synthetic experiment files of different lengths) runs in three
// configurations:
//   serial — the pre-PR path: sequential objective, serial per-column
//            forward-difference Jacobian (one evaluate() per column), cold
//            solves, a fresh solver per solve;
//   pooled — the persistent worker pool with the batched (column x file)
//            Jacobian task pool and reusable per-worker scratch;
//   warm   — pooled plus per-file warm-started solves (FD columns seeded
//            from the same iterate's base-solve step/order profile).
//
// All configurations must land on the same final cost (the solver's error
// controller still validates every warm-started step), so the reported
// speedup is a pure throughput win, not an accuracy trade. The check and
// the timings go to BENCH_estimator.json.
//
// Flags:
//   --scale=F      fraction of TC3's equation count (default 0.05)
//   --files=N      synthetic experiment files (default 6)
//   --records=N    records in the shortest file (default 24)
//   --workers=N    pool workers for pooled/warm (default 2)
//   --max-iters=N  LM iteration cap (default 10; CI smoke uses 1)
//   --json=PATH    output path (default BENCH_estimator.json)
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codegen/jacobian.hpp"
#include "data/synthetic.hpp"
#include "estimator/estimator.hpp"
#include "estimator/objective.hpp"
#include "models/test_cases.hpp"
#include "nlopt/levmar.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace rms;

struct Problem {
  models::BuiltModel model;
  codegen::CompiledJacobian jacobian;
  data::Observable observable;
  std::vector<estimator::Experiment> experiments;
  std::vector<std::uint32_t> slots;
  std::vector<double> base_rates;
  linalg::Vector x0;
  linalg::Vector lower;
  linalg::Vector upper;
};

Problem build_problem(double scale, int files, std::size_t records) {
  auto built = models::build_test_case(models::scaled_config(3, scale));
  if (!built.is_ok()) {
    std::fprintf(stderr, "model build failed: %s\n",
                 built.status().to_string().c_str());
    std::exit(1);
  }
  Problem p;
  p.model = std::move(built).value();
  const std::size_t n = p.model.equation_count();
  const std::size_t rate_count = p.model.rates.size();
  p.jacobian = codegen::compile_jacobian(p.model.odes.table, n, rate_count);
  p.observable.weighted_species = {{0, 1.0}};
  p.base_rates = p.model.rates.values();
  for (std::uint32_t s = 0; s < rate_count; ++s) p.slots.push_back(s);

  const vm::Interpreter interp(p.model.program_optimized);
  const std::vector<double>& k = p.base_rates;
  solver::OdeSystem truth{n, [&](double t, const double* y, double* ydot) {
                            interp.run(t, y, k.data(), ydot);
                          }};
  for (int file = 0; file < files; ++file) {
    estimator::Experiment e;
    e.initial_state = p.model.odes.init_concentrations;
    // Vary formulations and file lengths: different initial loadings and
    // record counts give the §4.4 scheduler real imbalance to chew on.
    for (double& c : e.initial_state) c *= 0.7 + 0.1 * (file % 4);
    data::SyntheticOptions synth;
    synth.t_end = 2.0;
    synth.record_count = records * (1 + file % 3);
    auto data = data::synthesize_experiment(truth, e.initial_state,
                                            p.observable, synth);
    if (!data.is_ok()) {
      std::fprintf(stderr, "synthesize failed: %s\n",
                   data.status().to_string().c_str());
      std::exit(1);
    }
    e.data = std::move(data).value();
    p.experiments.push_back(std::move(e));
  }

  // Mid-fit starting point: all rates off by 25%, generous positive box.
  p.x0.assign(p.base_rates.begin(), p.base_rates.end());
  for (double& v : p.x0) v *= 1.25;
  p.lower.assign(p.base_rates.size(), 0.0);
  p.upper = p.x0;
  for (double& v : p.upper) v = 10.0 * v + 1.0;
  return p;
}

struct RunResult {
  double seconds = 0.0;
  double final_cost = 0.0;
  std::size_t objective_evaluations = 0;
  std::size_t iterations = 0;
  bool converged = false;
  estimator::SolverStats stats;
};

nlopt::LevMarOptions lm_options(std::size_t max_iters) {
  nlopt::LevMarOptions lm;
  lm.max_iterations = max_iters;
  lm.fd_relative_step = 1e-4;  // estimator::EstimatorOptions default
  return lm;
}

/// The seed path: no Jacobian hook (serial per-column FD through
/// evaluate()), sequential objective, cold solves.
RunResult run_serial(const Problem& p, std::size_t max_iters) {
  estimator::ObjectiveOptions options;
  options.compiled_jacobian = &p.jacobian;
  estimator::ObjectiveFunction objective(p.model.program_optimized,
                                         p.observable, p.experiments, p.slots,
                                         p.base_rates, options);
  auto residual_fn = [&objective](const linalg::Vector& x,
                                  linalg::Vector& r) -> support::Status {
    return objective.evaluate(x, r);
  };
  support::WallTimer timer;
  auto lm = nlopt::bounded_least_squares(residual_fn, objective.residual_size(),
                                         p.x0, p.lower, p.upper,
                                         lm_options(max_iters));
  RunResult result;
  result.seconds = timer.seconds();
  if (!lm.is_ok()) {
    std::fprintf(stderr, "serial estimation failed: %s\n",
                 lm.status().to_string().c_str());
    std::exit(1);
  }
  result.final_cost = lm->cost;
  result.objective_evaluations = lm->residual_evaluations;
  result.iterations = lm->iterations;
  result.converged = lm->converged;
  result.stats = objective.solver_stats();
  return result;
}

RunResult run_pooled(const Problem& p, int workers, bool warm,
                     std::size_t max_iters) {
  estimator::ObjectiveOptions options;
  options.compiled_jacobian = &p.jacobian;
  options.pool_workers = workers;
  options.warm_start = warm;
  options.dynamic_load_balancing = true;
  estimator::ObjectiveFunction objective(p.model.program_optimized,
                                         p.observable, p.experiments, p.slots,
                                         p.base_rates, options);
  estimator::EstimatorOptions est;
  est.levmar = lm_options(max_iters);
  std::vector<double> x0(p.x0.begin(), p.x0.end());
  support::WallTimer timer;
  auto result = estimate_parameters(objective, std::move(x0), p.lower,
                                    p.upper, est);
  RunResult out;
  out.seconds = timer.seconds();
  if (!result.is_ok()) {
    std::fprintf(stderr, "pooled estimation failed: %s\n",
                 result.status().to_string().c_str());
    std::exit(1);
  }
  out.final_cost = result->final_cost;
  out.objective_evaluations = result->objective_evaluations;
  out.iterations = result->iterations;
  out.converged = result->converged;
  out.stats = result->solver_stats;
  return out;
}

std::string run_json(const char* name, const RunResult& r) {
  return bench::JsonObject()
      .add("name", std::string(name))
      .add("seconds", r.seconds)
      .add("final_cost", r.final_cost)
      .add("objective_evaluations", r.objective_evaluations)
      .add("iterations", r.iterations)
      .add_raw("converged", r.converged ? "true" : "false")
      .add("solves", r.stats.solves)
      .add("solver_steps", r.stats.integration.steps)
      .add("newton_iterations", r.stats.integration.newton_iterations)
      .add("jacobian_evaluations", r.stats.integration.jacobian_evaluations)
      .add("factorizations", r.stats.integration.factorizations)
      .add("factor_cache_hits", r.stats.integration.factor_cache_hits)
      .add("warm_start_hits", r.stats.integration.warm_starts)
      .str();
}

/// Agreement of final costs (both configurations must land in the same
/// minimum; warm-started trajectories may differ at solver-tolerance level,
/// so this is a tolerance check, not bit equality). Once both fits drive the
/// RMS residual below the integrator's own tolerance (1e-6 relative /
/// 1e-9 absolute, so anything under 1e-4 per record is integration noise),
/// their costs are "equal" even if the tiny remainders differ by a large
/// ratio; above that floor a 5% relative band applies.
bool costs_agree(double a, double b, std::size_t residuals) {
  const double m = static_cast<double>(std::max<std::size_t>(residuals, 1));
  const double rms_a = std::sqrt(2.0 * a / m);  // cost = 0.5 * ||r||^2
  const double rms_b = std::sqrt(2.0 * b / m);
  if (rms_a < 1e-4 && rms_b < 1e-4) return true;
  const double scale = std::max({std::fabs(a), std::fabs(b), 1e-12});
  return std::fabs(a - b) / scale < 0.05;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.05);
  const int files = static_cast<int>(flags.get_int("files", 6));
  const std::size_t records =
      static_cast<std::size_t>(flags.get_int("records", 24));
  const int workers = static_cast<int>(flags.get_int("workers", 2));
  const std::size_t max_iters =
      static_cast<std::size_t>(flags.get_int("max-iters", 10));
  const std::string json_path =
      flags.get_string("json", "BENCH_estimator.json");

  std::printf(
      "estimator throughput benchmark: scale=%.3g files=%d records=%zu "
      "workers=%d max-iters=%zu\n\n",
      scale, files, records, workers, max_iters);

  const Problem problem = build_problem(scale, files, records);
  const std::size_t residual_count = [&] {
    std::size_t m = 0;
    for (const auto& e : problem.experiments) m += e.data.record_count();
    return m;
  }();
  std::printf("model: %zu equations, %zu rate constants, %zu residuals\n",
              problem.model.equation_count(), problem.base_rates.size(),
              residual_count);

  const RunResult serial = run_serial(problem, max_iters);
  const RunResult pooled = run_pooled(problem, workers, false, max_iters);
  const RunResult warm = run_pooled(problem, workers, true, max_iters);

  const double speedup_pooled = serial.seconds / pooled.seconds;
  const double speedup_warm = serial.seconds / warm.seconds;
  std::printf("\n%-8s %10s %14s %8s %10s %12s %10s %10s %10s\n", "config",
              "seconds", "final cost", "evals", "solves", "steps", "factors",
              "LU reuse", "warm hits");
  const struct {
    const char* name;
    const RunResult* r;
  } rows[] = {{"serial", &serial}, {"pooled", &pooled}, {"warm", &warm}};
  for (const auto& row : rows) {
    std::printf("%-8s %10.3f %14.6e %8zu %10zu %12zu %10zu %10zu %10zu\n",
                row.name, row.r->seconds, row.r->final_cost,
                row.r->objective_evaluations, row.r->stats.solves,
                row.r->stats.integration.steps,
                row.r->stats.integration.factorizations,
                row.r->stats.integration.factor_cache_hits,
                row.r->stats.integration.warm_starts);
  }
  std::printf("\nspeedup vs serial: pooled %.2fx, pooled+warm %.2fx\n",
              speedup_pooled, speedup_warm);

  // Serial vs pooled follow the same trajectory, so their costs must agree
  // no matter where LM stopped. Warm-started solves differ at solver
  // tolerance, so serial vs warm is a same-minimum check; a disagreement
  // only counts as failure once both fits actually converged — an
  // iteration-capped smoke run (--max-iters=1 in CI) stops mid-descent,
  // where the trajectories legitimately differ.
  const bool pooled_agrees =
      costs_agree(serial.final_cost, pooled.final_cost, residual_count);
  const bool warm_agrees =
      costs_agree(serial.final_cost, warm.final_cost, residual_count);
  const bool warm_enforced = serial.converged && warm.converged;
  const bool equal_cost =
      pooled_agrees && (warm_agrees || !warm_enforced);
  if (!warm_agrees && !warm_enforced) {
    std::printf(
        "note: iteration-capped run (serial converged=%d warm converged=%d); "
        "warm final-cost agreement not enforced\n",
        serial.converged ? 1 : 0, warm.converged ? 1 : 0);
  }
  const bool warm_hits = warm.stats.integration.warm_starts > 0;
  if (!equal_cost) {
    std::fprintf(stderr,
                 "FAIL: final costs disagree (serial %.9e pooled %.9e warm "
                 "%.9e)\n",
                 serial.final_cost, pooled.final_cost, warm.final_cost);
  }
  if (!warm_hits) {
    std::fprintf(stderr, "FAIL: warm-start configuration recorded no hits\n");
  }

  bench::JsonObject root;
  root.add("benchmark", std::string("estimator_throughput"));
  root.add("scale", scale);
  root.add("files", static_cast<std::size_t>(files));
  root.add("workers", static_cast<std::size_t>(workers));
  root.add("max_iterations", max_iters);
  root.add_raw("runs",
               bench::json_array({run_json("serial", serial),
                                  run_json("pooled", pooled),
                                  run_json("pooled_warm", warm)}));
  root.add("speedup_pooled_vs_serial", speedup_pooled);
  root.add("speedup_warm_vs_serial", speedup_warm);
  root.add_raw("equal_final_cost", equal_cost ? "true" : "false");
  root.add_raw("warm_cost_agrees", warm_agrees ? "true" : "false");
  root.add_raw("warm_start_hits_positive", warm_hits ? "true" : "false");
  bench::write_file(json_path, root.str());
  std::printf("wrote %s\n", json_path.c_str());

  return equal_cost && warm_hits ? 0 : 1;
}
