// Solver ablation for the paper's §4.1 design choice: "Because chemical
// reactions proceed to equilibrium ... the differential equations modeling
// the behavior of such systems are stiff. Therefore we use the Adams-Gear
// solver."
//
// Integrates the vulcanization model with both solvers over increasing
// horizons and reports steps / RHS evaluations / wall time: the explicit
// Runge-Kutta-Verner pair pays a stability-bounded step size as the system
// approaches equilibrium, the BDF solver does not.
//
// Flags:
//   --scale=F      model scale (default 0.005)
//   --tolerance=R  relative tolerance (default 1e-6)
//   --stiffness=S  multiplier on the fast crosslinking constants (default
//                  200: radical/crosslinking steps are orders of magnitude
//                  faster than the slow cure chemistry, which is what makes
//                  real vulcanization systems stiff)
#include <cstdio>
#include <memory>

#include "bench_util.hpp"
#include "models/test_cases.hpp"
#include "solver/adams_gear.hpp"
#include "solver/rk_verner.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

int main(int argc, char** argv) {
  using namespace rms;
  bench::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.005);
  const double rtol = flags.get_double("tolerance", 1e-6);
  const double stiffness = flags.get_double("stiffness", 200.0);

  auto built = models::build_test_case(models::scaled_config(1, scale));
  if (!built.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  const std::size_t n = built->equation_count();
  std::printf("Stiff-solver ablation — vulcanization model, %zu equations, "
              "rtol=%g, stiffness=%g\n\n",
              n, rtol, stiffness);

  vm::Interpreter interp(built->program_optimized);
  std::vector<double> rates = built->rates.values();
  // Speed up the crosslinking routes (k4/k7/k8, slots 3/6/7): the fast
  // subsystem equilibrates in an early epoch while the cure continues —
  // the stiffness the paper's §4.1 describes.
  for (std::uint32_t slot : {3u, 6u, 7u}) {
    if (slot < rates.size()) rates[slot] *= stiffness;
  }
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             interp.run(t, y, rates.data(), ydot);
                           }};
  solver::IntegrationOptions options;
  options.relative_tolerance = rtol;
  options.absolute_tolerance = rtol * 1e-3;
  options.max_steps_per_call = 50'000'000;

  std::printf("%8s | %-18s %10s %12s %10s | %-18s %10s %12s %10s\n", "t_end",
              "solver", "steps", "rhs evals", "time (s)", "solver", "steps",
              "rhs evals", "time (s)");
  for (double t_end : {1.0, 5.0, 20.0, 80.0}) {
    struct Run {
      std::string name;
      std::size_t steps = 0;
      std::size_t rhs = 0;
      double seconds = 0.0;
      bool ok = false;
    };
    Run runs[2];
    for (int which = 0; which < 2; ++which) {
      std::unique_ptr<solver::OdeSolver> solver;
      if (which == 0) {
        solver = std::make_unique<solver::AdamsGear>(system, options);
      } else {
        solver = std::make_unique<solver::RungeKuttaVerner>(system, options);
      }
      runs[which].name = solver->name();
      support::WallTimer timer;
      std::vector<double> y;
      bool ok = solver->initialize(0.0, built->odes.init_concentrations)
                    .is_ok();
      ok = ok && solver->advance_to(t_end, y).is_ok();
      runs[which].seconds = timer.seconds();
      runs[which].steps = solver->stats().steps;
      runs[which].rhs = solver->stats().rhs_evaluations;
      runs[which].ok = ok;
    }
    std::printf("%8.1f | %-18s %10zu %12zu %10.3f | %-18s %10zu %12zu "
                "%10.3f\n",
                t_end, runs[0].name.c_str(), runs[0].steps, runs[0].rhs,
                runs[0].seconds, runs[1].name.c_str(), runs[1].steps,
                runs[1].rhs, runs[1].seconds);
  }
  std::printf("\nExpected shape: the BDF step count stays roughly flat as "
              "t_end grows (steps track the transient, not the horizon), "
              "while the explicit pair's stability bound forces steps "
              "proportional to the horizon.\n");
  return 0;
}
