// Load-balancer ablation (paper §4.4): schedule quality of the dynamic LPT
// load balancer versus the block distribution across file-cost
// distributions and node counts, including the regime structure behind
// Table 2 (LPT ~ block when files are uniform; LPT wins when costs are
// skewed; both identical at one file per node).
#include <cstdio>

#include "bench_util.hpp"
#include "parallel/schedule.hpp"
#include "parallel/sim_cluster.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace rms;
  bench::Flags flags(argc, argv);
  const int n_files = static_cast<int>(flags.get_int("files", 16));
  const int trials = static_cast<int>(flags.get_int("trials", 200));

  struct Distribution {
    const char* name;
    double lo;
    double hi;
    double spike_fraction;  // fraction of files ~4x heavier
  };
  const Distribution distributions[] = {
      {"uniform (equal files)", 1.0, 1.0, 0.0},
      {"mild variation (0.8-1.2)", 0.8, 1.2, 0.0},
      {"strong variation (0.5-4.0)", 0.5, 4.0, 0.0},
      {"skewed (25% heavy files)", 0.8, 1.2, 0.25},
  };

  parallel::SimCluster cluster;
  std::printf("LPT vs block schedule quality — %d files, %d trials per "
              "cell; cells show mean speedup (block / LPT)\n\n",
              n_files, trials);
  std::printf("%-28s", "cost distribution");
  for (int nodes : {2, 4, 8, 16}) std::printf("   %10d nodes", nodes);
  std::printf("\n");

  for (const Distribution& dist : distributions) {
    std::printf("%-28s", dist.name);
    support::Xoshiro256 rng(99);
    for (int nodes : {2, 4, 8, 16}) {
      double block_sum = 0.0;
      double lpt_sum = 0.0;
      for (int t = 0; t < trials; ++t) {
        std::vector<double> costs(n_files);
        for (double& c : costs) {
          c = rng.uniform(dist.lo, dist.hi);
          if (rng.uniform() < dist.spike_fraction) c *= 4.0;
        }
        block_sum += cluster.run_block(costs, nodes).speedup;
        lpt_sum += cluster.run_lpt(costs, nodes).speedup;
      }
      std::printf("   %7.2f/%-7.2f", block_sum / trials, lpt_sum / trials);
    }
    std::printf("\n");
  }
  std::printf("\nAt 16 nodes with 16 files both schedules assign one file "
              "per node, so the columns converge (Table 2's last row).\n");
  return 0;
}
