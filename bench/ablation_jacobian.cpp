// Ablation of the Newton linear-algebra strategies in the Adams-Gear
// solver, across model sizes:
//   - finite-difference dense Jacobian + LU (the classic IMSL-style path),
//   - compiler-generated analytic Jacobian + LU (this repository's
//     extension: the chemical compiler differentiates the mass-action
//     system symbolically and optimizes the entry programs),
//   - Jacobian-free Newton-Krylov (matrix-free GMRES; the path that scales
//     past the dense-LU wall).
//
// Reports steps, RHS evaluations, Jacobian evaluations and wall time for a
// fixed integration of the vulcanization test-case model.
//
// Flags: --t-end=T (default 5), --tolerance=R (default 1e-6)
#include <cstdio>

#include "bench_util.hpp"
#include "codegen/jacobian.hpp"
#include "models/test_cases.hpp"
#include "solver/adams_gear.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

int main(int argc, char** argv) {
  using namespace rms;
  bench::Flags flags(argc, argv);
  const double t_end = flags.get_double("t-end", 5.0);
  const double rtol = flags.get_double("tolerance", 1e-6);

  std::printf("Newton linear-algebra ablation (Adams-Gear, t_end=%g, "
              "rtol=%g)\n\n",
              t_end, rtol);
  std::printf("%10s %8s | %-10s %8s %10s %8s %10s\n", "equations", "nnz",
              "strategy", "steps", "rhs evals", "jacs", "time (s)");

  for (double scale : {0.0005, 0.002, 0.008}) {
    auto built = models::build_test_case(models::scaled_config(5, scale));
    if (!built.is_ok()) {
      std::fprintf(stderr, "build failed: %s\n",
                   built.status().to_string().c_str());
      return 1;
    }
    const std::size_t n = built->equation_count();
    const std::vector<double> rates = built->rates.values();
    codegen::CompiledJacobian jac = codegen::compile_jacobian(
        built->odes.table, n, built->rates.size());

    struct Strategy {
      const char* name;
      bool analytic;
      solver::NewtonLinearSolver linear;
    };
    const Strategy strategies[] = {
        {"fd+lu", false, solver::NewtonLinearSolver::kDenseLu},
        {"analytic", true, solver::NewtonLinearSolver::kDenseLu},
        {"sparse-lu", true, solver::NewtonLinearSolver::kSparseLu},
        {"jfnk", false, solver::NewtonLinearSolver::kMatrixFreeGmres},
    };
    for (const Strategy& strategy : strategies) {
      vm::Interpreter rhs(built->program_optimized);
      solver::OdeSystem system{n, [&](double t, const double* y,
                                      double* ydot) {
                                 rhs.run(t, y, rates.data(), ydot);
                               }};
      if (strategy.linear == solver::NewtonLinearSolver::kSparseLu) {
        system.sparse_jacobian =
            codegen::SparseJacobianEvaluator(&jac, &rates);
      } else if (strategy.analytic) {
        system.jacobian = codegen::DenseJacobianEvaluator(&jac, &rates);
      }
      solver::IntegrationOptions options;
      options.relative_tolerance = rtol;
      options.absolute_tolerance = rtol * 1e-3;
      options.newton_linear_solver = strategy.linear;
      solver::AdamsGear integrator(system, options);
      support::WallTimer timer;
      std::vector<double> y;
      bool ok = integrator.initialize(0.0, built->odes.init_concentrations)
                    .is_ok();
      ok = ok && integrator.advance_to(t_end, y).is_ok();
      std::printf("%10zu %8zu | %-10s %8zu %10zu %8zu %10.3f%s\n", n,
                  jac.col_indices.size(), strategy.name,
                  integrator.stats().steps,
                  integrator.stats().rhs_evaluations,
                  integrator.stats().jacobian_evaluations, timer.seconds(),
                  ok ? "" : "  (FAILED)");
    }
    std::printf("\n");
  }
  std::printf("Expected shape: the analytic Jacobian removes the n-RHS-eval "
              "cost of each finite-difference refresh; JFNK trades "
              "factorizations for inner GMRES iterations and wins once the "
              "dense O(n^3) factorization dominates.\n");
  return 0;
}
