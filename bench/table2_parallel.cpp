// Regenerates paper Table 2: "Results in IBM/SP Using MPI" — total time and
// speedup on 1/2/4/8/16 nodes, without and with the dynamic load balancing
// algorithm.
//
// The workload is the paper's: 16 experimental data files (synthetic
// formulations with different record counts and kinetics, so per-file solve
// times differ — the source of the 16-node load imbalance), each solved
// with the Adams-Gear integrator against the optimized vulcanization model.
// Per-file solve times are MEASURED by running the objective function for
// real (sequentially, since this host has one core); the schedules are then
// replayed on a virtual-time cluster (SimCluster):
//   - without dynamic load balancing: the Fig. 9 block distribution;
//   - with dynamic load balancing: LPT on the recorded times (§4.4).
// The MiniMpi threaded code path (rank-parallel objective + Allreduce) is
// exercised once to validate that the parallel execution produces the same
// residuals as the sequential one.
//
// Flags:
//   --scale=F      model scale (default 0.004 of TC5, ~1000 equations:
//                  feasible because the solves use the compiler-generated
//                  sparse analytic Jacobian; --no-sparse reverts to dense
//                  finite differences and wants a smaller --scale)
//   --files=N      number of experiment files (default 16, as the paper)
//   --records=N    base records per file (default 3200)
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "data/synthetic.hpp"
#include "codegen/jacobian.hpp"
#include "estimator/objective.hpp"
#include "models/test_cases.hpp"
#include "parallel/sim_cluster.hpp"
#include "support/rng.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace rms;

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.004);
  const bool use_sparse = !flags.has("no-sparse");
  const int n_files = static_cast<int>(flags.get_int("files", 16));
  const std::size_t base_records =
      static_cast<std::size_t>(flags.get_int("records", 3200));

  auto config = models::scaled_config(5, scale);
  auto built = models::build_test_case(config);
  if (!built.is_ok()) {
    std::fprintf(stderr, "model build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  const std::size_t n = built->equation_count();
  std::printf("Table 2 — MPI parallel estimation (model: %zu equations, "
              "%d data files)\n\n",
              n, n_files);

  // Observable: total crosslink concentration (sum over every C_n_v).
  data::Observable observable;
  for (std::size_t i = 0; i < n; ++i) {
    if (built->odes.species_names[i].rfind("C_", 0) == 0) {
      observable.weighted_species.emplace_back(i, 1.0);
    }
  }

  // The compiler-generated analytic Jacobian accelerates both the data
  // synthesis and every objective solve.
  codegen::CompiledJacobian compiled_jacobian;
  estimator::ObjectiveOptions objective_options;
  const std::vector<double> true_rates = built->rates.values();
  if (use_sparse) {
    compiled_jacobian = codegen::compile_jacobian(
        built->odes.table, built->equation_count(), built->rates.size());
    objective_options.compiled_jacobian = &compiled_jacobian;
  }

  // Synthesize the data files: formulations differ in initial
  // concentrations AND record counts, so solve costs differ across files
  // (the imbalance the paper attributes its sub-linear 16-node speedup to).
  vm::Interpreter interp(built->program_optimized);
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             interp.run(t, y, true_rates.data(), ydot);
                           }};
  if (use_sparse) {
    system.sparse_jacobian =
        codegen::SparseJacobianEvaluator(&compiled_jacobian, &true_rates);
  }
  support::Xoshiro256 rng(2026);
  std::vector<estimator::Experiment> experiments;
  for (int f = 0; f < n_files; ++f) {
    estimator::Experiment e;
    e.initial_state = built->odes.init_concentrations;
    // Vary the formulation: sulfur and accelerator loading.
    e.initial_state[0] *= rng.uniform(0.6, 1.6);  // S8
    e.initial_state[1] *= rng.uniform(0.6, 1.6);  // AcH
    data::SyntheticOptions options;
    if (use_sparse) {
      options.integration.newton_linear_solver =
          solver::NewtonLinearSolver::kSparseLu;
    }
    options.t_end = rng.uniform(4.0, 10.0);
    options.record_count = base_records / 2 +
                           static_cast<std::size_t>(rng.below(base_records));
    options.noise_level = 0.002;
    options.noise_seed = 77 + static_cast<std::uint64_t>(f);
    auto data = data::synthesize_experiment(
        system, e.initial_state, observable, options,
        support::str_format("formulation-%02d", f + 1));
    if (!data.is_ok()) {
      std::fprintf(stderr, "file %d synthesis failed: %s\n", f,
                   data.status().to_string().c_str());
      return 1;
    }
    e.data = std::move(data).value();
    experiments.push_back(std::move(e));
  }

  // Estimated parameters: all 10 kinetic constants (evaluated at truth —
  // Table 2 measures the objective-function cost, not the fit trajectory).
  std::vector<std::uint32_t> slots;
  for (std::uint32_t s = 0; s < built->rates.size(); ++s) slots.push_back(s);
  linalg::Vector x(true_rates.begin(), true_rates.end());

  // Measure per-file solve times (sequential ground truth).
  estimator::ObjectiveFunction objective(built->program_optimized, observable,
                                         experiments, slots, true_rates,
                                         objective_options);
  linalg::Vector residuals;
  auto status = objective.evaluate(x, residuals);
  if (!status.is_ok()) {
    std::fprintf(stderr, "objective failed: %s\n", status.to_string().c_str());
    return 1;
  }
  const std::vector<double> file_times = objective.last_file_times();
  double serial = 0.0;
  for (double t : file_times) serial += t;
  std::printf("Measured per-file solve times (s):");
  for (double t : file_times) std::printf(" %.3f", t);
  std::printf("\n  serial total: %.3f s\n\n", serial);

  // Validate the MiniMpi threaded path once (same residuals as sequential).
  {
    estimator::ObjectiveOptions par = objective_options;
    par.ranks = 4;
    estimator::ObjectiveFunction parallel_objective(
        built->program_optimized, observable, experiments, slots, true_rates,
        par);
    linalg::Vector parallel_residuals;
    auto s = parallel_objective.evaluate(x, parallel_residuals);
    double max_diff = 0.0;
    if (s.is_ok()) {
      for (std::size_t i = 0; i < residuals.size(); ++i) {
        max_diff = std::max(max_diff,
                            std::fabs(residuals[i] - parallel_residuals[i]));
      }
    }
    std::printf("MiniMpi validation (4 ranks, Fig. 9 path): %s, max residual "
                "difference vs sequential = %.2e\n\n",
                s.is_ok() ? "ok" : s.to_string().c_str(), max_diff);
  }

  // Replay the schedules on the virtual cluster.
  parallel::SimCluster cluster;
  std::printf("%6s | %14s %8s | %14s %8s | paper w/o | paper w/\n", "nodes",
              "time w/o LB", "speedup", "time w/ LB", "speedup");
  const double paper_speedup_without[5] = {1.0, 1.99, 3.91, 7.08, 12.78};
  const double paper_speedup_with[5] = {1.0, 2.03, 3.99, 7.99, 12.78};
  const int node_counts[5] = {1, 2, 4, 8, 16};
  for (int i = 0; i < 5; ++i) {
    const int nodes = node_counts[i];
    const auto block = cluster.run_block(file_times, nodes);
    const auto lpt = cluster.run_lpt(file_times, nodes);
    std::printf("%6d | %12.3f s %8.2f | %12.3f s %8.2f | %9.2f | %8.2f\n",
                nodes, block.total_time, block.speedup, lpt.total_time,
                lpt.speedup, paper_speedup_without[i], paper_speedup_with[i]);
  }
  std::printf(
      "\nShape checks: near-linear speedup through 8 nodes; at 16 nodes one "
      "file per rank leaves no scheduling freedom, so both columns coincide "
      "and the imbalance caps the speedup below 16 (paper: 12.78).\n");
  return 0;
}
