// Regenerates paper Table 1: "Results in IBM/SP Using Different Optimization
// Combination".
//
// For each of the five vulcanization test cases this reports
//   - the number of equations,
//   - multiply and add/sub counts without the algebraic/CSE optimizations,
//   - execution time without optimizations (requires the unoptimized code
//     to compile at the default level; the paper's TC5 did not),
//   - execution time with "C compiler optimizations only" (the
//     ReferenceBackend general-compiler model at its optimizing level;
//     the paper's xlc -O4 failed from TC3 up),
//   - multiply and add/sub counts with the algebraic/CSE optimizations,
//   - execution time with the optimizations.
//
// The backend memory budget defaults to the geometric mean of the TC4 and
// TC5 unoptimized base-IR requirements — the analogue of the paper's
// 4.5 GB nodes, which sat exactly between "TC4 compiles at the default
// level" and "TC5 does not". Execution time is the wall time of a fixed
// number of RHS evaluations (the quantity the compiler work changes; the
// paper's absolute numbers fold in their testbed's constant solver
// overhead). Paper values are printed alongside.
//
// Flags:
//   --scale=F        fraction of the paper's equation counts (default 0.04)
//   --paper-scale    run the full 450..250,000-equation sizes
//   --rhs-evals=N    RHS evaluations per timing measurement (default 2000)
//   --budget-mb=M    override the ReferenceBackend memory budget
//   --compile-timings  also print the per-phase compile wall times
//                      (opt::PhaseTimings) for every test case
#include <cmath>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "codegen/reference_backend.hpp"
#include "models/test_cases.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace rms;

double time_rhs(const vm::Program& program, std::size_t evals) {
  vm::Interpreter interpreter(program);
  std::vector<double> y(program.species_count);
  for (std::size_t i = 0; i < y.size(); ++i) {
    y[i] = 0.01 + 1e-5 * static_cast<double>(i % 97);
  }
  std::vector<double> k = models::test_case_rate_table().values();
  std::vector<double> dydt(y.size());
  support::WallTimer timer;
  for (std::size_t e = 0; e < evals; ++e) {
    interpreter.run(1e-3 * static_cast<double>(e), y.data(), k.data(),
                    dydt.data());
  }
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double scale =
      flags.has("paper-scale") ? 1.0 : flags.get_double("scale", 0.04);
  const std::size_t rhs_evals =
      static_cast<std::size_t>(flags.get_int("rhs-evals", 2000));

  // Build all five test cases first (the budget calibration needs their
  // sizes).
  std::vector<std::unique_ptr<models::BuiltModel>> cases;
  for (int tc = 1; tc <= models::kTestCaseCount; ++tc) {
    auto built = models::build_test_case(models::scaled_config(tc, scale));
    if (!built.is_ok()) {
      std::fprintf(stderr, "TC%d build failed: %s\n", tc,
                   built.status().to_string().c_str());
      return 1;
    }
    cases.push_back(
        std::make_unique<models::BuiltModel>(std::move(built).value()));
  }

  const codegen::BackendOptions base = codegen::BackendOptions::no_optimization();
  std::size_t budget_bytes;
  if (flags.has("budget-mb")) {
    budget_bytes = static_cast<std::size_t>(
        flags.get_double("budget-mb", 256.0) * 1024.0 * 1024.0);
  } else {
    const double tc4 = static_cast<double>(
        codegen::required_ir_bytes(cases[3]->program_unoptimized, base));
    const double tc5 = static_cast<double>(
        codegen::required_ir_bytes(cases[4]->program_unoptimized, base));
    budget_bytes = static_cast<std::size_t>(std::sqrt(tc4 * tc5));
  }

  std::printf("Table 1 — optimization combinations (scale=%.3g, %zu RHS "
              "evaluations per timing; backend budget %zu MB)\n\n",
              scale, rhs_evals, budget_bytes >> 20);
  std::printf("%-34s %14s %14s %14s %14s %14s\n", "", "TC1", "TC2", "TC3",
              "TC4", "TC5");

  struct Row {
    std::string cells[models::kTestCaseCount];
  };
  Row equations;
  Row paper_sizes;
  Row mul_before;
  Row add_before;
  Row time_unopt;
  Row time_cc_only;
  Row mul_after;
  Row add_after;
  Row time_opt;
  Row fraction;
  Row time_compile;

  for (int tc = 1; tc <= models::kTestCaseCount; ++tc) {
    const int i = tc - 1;
    const models::BuiltModel& built = *cases[i];
    const auto& report = built.report;
    equations.cells[i] = bench::human_count(built.equation_count());
    paper_sizes.cells[i] =
        bench::human_count(models::test_case_spec(tc).paper_equations);
    mul_before.cells[i] = bench::human_count(report.before.multiplies);
    add_before.cells[i] = bench::human_count(report.before.add_subs);
    mul_after.cells[i] = support::str_format(
        "%s (%.2f%%)", bench::human_count(report.after.multiplies).c_str(),
        100.0 * report.multiply_fraction());
    add_after.cells[i] = support::str_format(
        "%s (%.1f%%)", bench::human_count(report.after.add_subs).c_str(),
        100.0 * report.add_sub_fraction());
    fraction.cells[i] =
        support::str_format("%.1f%%", 100.0 * report.total_fraction());
    time_compile.cells[i] =
        support::str_format("%.3f s", built.timings.total_seconds());

    // Unoptimized code at the default compiler level: runs only if the
    // base lowering fits the budget (the paper's TC5 cell says "compiler
    // error" here).
    codegen::BackendOptions base_budgeted = base;
    base_budgeted.memory_budget_bytes = budget_bytes;
    double unopt_s = -1.0;
    if (codegen::required_ir_bytes(built.program_unoptimized, base_budgeted) <=
        budget_bytes) {
      unopt_s = time_rhs(built.program_unoptimized, rhs_evals);
      time_unopt.cells[i] = support::str_format("%.3f s", unopt_s);
    } else {
      time_unopt.cells[i] = "compiler error";
    }

    // "C compiler optimizations only": the optimizing backend level.
    codegen::BackendOptions optimizing;
    optimizing.memory_budget_bytes = budget_bytes;
    auto compiled =
        codegen::reference_compile(built.program_unoptimized, optimizing);
    if (compiled.is_ok()) {
      const double cc_s = time_rhs(compiled->program, rhs_evals);
      time_cc_only.cells[i] =
          unopt_s > 0.0
              ? support::str_format("%.3f s (%.0f%%)", cc_s,
                                    100.0 * cc_s / unopt_s)
              : support::str_format("%.3f s", cc_s);
    } else {
      time_cc_only.cells[i] = "compiler error";
    }

    // Optimized program (always compiles — that is the point).
    const double opt_s = time_rhs(built.program_optimized, rhs_evals);
    time_opt.cells[i] =
        unopt_s > 0.0
            ? support::str_format("%.3f s (%.2fx)", opt_s, unopt_s / opt_s)
            : support::str_format("%.3f s", opt_s);
  }

  auto print_row = [](const char* label, const Row& row) {
    std::printf("%-34s", label);
    for (int i = 0; i < models::kTestCaseCount; ++i) {
      std::printf(" %14s", row.cells[i].c_str());
    }
    std::printf("\n");
  };
  print_row("Number of Equations", equations);
  print_row("  (paper scale)", paper_sizes);
  print_row("Number of * (no opts)", mul_before);
  print_row("Number of +,- (no opts)", add_before);
  print_row("Exec time (no opts)", time_unopt);
  print_row("Exec time (C compiler opts only)", time_cc_only);
  print_row("Number of * (alg/CSE opts)", mul_after);
  print_row("Number of +,- (alg/CSE opts)", add_after);
  print_row("Exec time (alg/CSE opts)", time_opt);
  print_row("Remaining operations", fraction);
  print_row("Compile time (this pipeline)", time_compile);

  if (flags.has("compile-timings")) {
    std::printf("\nPer-phase compile wall times (opt::PhaseTimings):\n");
    for (int tc = 1; tc <= models::kTestCaseCount; ++tc) {
      std::printf("\nTC%d:\n%s", tc, cases[tc - 1]->timings.to_string().c_str());
    }
  }

  std::printf(
      "\nPaper reference (full scale): TC5 multiplies reduced to 1.35%%, "
      "adds to 20.6%%, total to 6.9%%; TC4 speedup 5.26x; C-compiler-only "
      "optimization ran TC2 at 82%% and hit compiler errors from TC3 up; "
      "unoptimized TC5 failed at every optimization level.\n");
  return 0;
}
