// Google-benchmark micro benchmarks for the hot components: the
// distributive optimization, CSE construction, bytecode interpretation,
// SMILES canonicalization, BDF stepping, and LPT scheduling.
#include <benchmark/benchmark.h>

#include "chem/canonical.hpp"
#include "chem/smiles.hpp"
#include "codegen/bytecode_emitter.hpp"
#include "models/test_cases.hpp"
#include "opt/cse.hpp"
#include "opt/distopt.hpp"
#include "opt/pipeline.hpp"
#include "parallel/schedule.hpp"
#include "solver/adams_gear.hpp"
#include "support/rng.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace rms;

expr::SumOfProducts random_equation(support::Xoshiro256& rng, int terms,
                                    int species, int rates) {
  expr::SumOfProducts equation;
  for (int i = 0; i < terms; ++i) {
    expr::Product p;
    p.coeff = 1.0 + static_cast<double>(rng.below(3));
    p.factors.push_back(expr::VarId::rate_const(
        static_cast<std::uint32_t>(rng.below(rates))));
    const int nf = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < nf; ++f) {
      p.factors.push_back(expr::VarId::species(
          static_cast<std::uint32_t>(rng.below(species))));
    }
    p.normalize();
    equation.add_combining(std::move(p));
  }
  equation.sort_canonical();
  return equation;
}

void BM_DistOpt(benchmark::State& state) {
  support::Xoshiro256 rng(1);
  expr::SumOfProducts equation =
      random_equation(rng, static_cast<int>(state.range(0)), 40, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::distributive_optimize(equation));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistOpt)->Range(8, 512)->Complexity();

void BM_CseBuild(benchmark::State& state) {
  // m equations of ~n terms: the paper's CSE bookkeeping is O(mn) space and
  // our hash-lookup variant runs in ~O(mn) time.
  support::Xoshiro256 rng(2);
  const int m = static_cast<int>(state.range(0));
  std::vector<expr::FactoredSum> equations;
  for (int e = 0; e < m; ++e) {
    equations.push_back(
        opt::distributive_optimize(random_equation(rng, 12, 40, 10)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::build_optimized_system(equations, 40, 10));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_CseBuild)->Range(16, 1024)->Complexity();

void BM_VmRhsEvaluation(benchmark::State& state) {
  auto built = models::build_test_case(
      models::scaled_config(2, 0.01 * static_cast<double>(state.range(0))));
  if (!built.is_ok()) {
    state.SkipWithError("model build failed");
    return;
  }
  vm::Interpreter interp(built->program_optimized);
  std::vector<double> y(built->equation_count(), 0.01);
  std::vector<double> k = built->rates.values();
  std::vector<double> dydt(y.size());
  for (auto _ : state) {
    interp.run(0.0, y.data(), k.data(), dydt.data());
    benchmark::DoNotOptimize(dydt.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          built->program_optimized.code.size());
}
BENCHMARK(BM_VmRhsEvaluation)->Arg(1)->Arg(4)->Arg(16);

void BM_CanonicalSmiles(benchmark::State& state) {
  auto mol = chem::parse_smiles("C1=CC=C2C(=C1)N=C(S2)SSSSSS[R]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(chem::canonical_smiles(*mol));
  }
}
BENCHMARK(BM_CanonicalSmiles);

void BM_GearIntegrationStep(benchmark::State& state) {
  auto built = models::build_test_case(models::scaled_config(1, 0.02));
  if (!built.is_ok()) {
    state.SkipWithError("model build failed");
    return;
  }
  const std::size_t n = built->equation_count();
  vm::Interpreter interp(built->program_optimized);
  const std::vector<double> rates = built->rates.values();
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             interp.run(t, y, rates.data(), ydot);
                           }};
  for (auto _ : state) {
    solver::AdamsGear solver(system);
    (void)solver.initialize(0.0, built->odes.init_concentrations);
    std::vector<double> y;
    (void)solver.advance_to(0.5, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GearIntegrationStep);

void BM_LptSchedule(benchmark::State& state) {
  support::Xoshiro256 rng(3);
  std::vector<double> costs(state.range(0));
  for (double& c : costs) c = rng.uniform(0.5, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::lpt_schedule(costs, 16));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LptSchedule)->Range(16, 4096)->Complexity();

}  // namespace

BENCHMARK_MAIN();
