// Google-benchmark micro benchmarks for the hot components: the
// distributive optimization, CSE construction, bytecode interpretation,
// SMILES canonicalization, BDF stepping, and LPT scheduling — plus the
// vm_dispatch suite comparing the seed switch interpreter against the
// threaded/fused/compacted/batched execution engine. main() writes the
// vm_dispatch results to BENCH_vm.json (override with --vm-json=PATH).
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "bench_util.hpp"
#include "chem/canonical.hpp"
#include "chem/smiles.hpp"
#include "codegen/bytecode_emitter.hpp"
#include "models/test_cases.hpp"
#include "opt/cse.hpp"
#include "opt/distopt.hpp"
#include "opt/pipeline.hpp"
#include "parallel/schedule.hpp"
#include "solver/adams_gear.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "vm/fuse.hpp"
#include "vm/interpreter.hpp"
#include "vm/regalloc.hpp"

namespace {

using namespace rms;

expr::SumOfProducts random_equation(support::Xoshiro256& rng, int terms,
                                    int species, int rates) {
  expr::SumOfProducts equation;
  for (int i = 0; i < terms; ++i) {
    expr::Product p;
    p.coeff = 1.0 + static_cast<double>(rng.below(3));
    p.factors.push_back(expr::VarId::rate_const(
        static_cast<std::uint32_t>(rng.below(rates))));
    const int nf = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < nf; ++f) {
      p.factors.push_back(expr::VarId::species(
          static_cast<std::uint32_t>(rng.below(species))));
    }
    p.normalize();
    equation.add_combining(std::move(p));
  }
  equation.sort_canonical();
  return equation;
}

void BM_DistOpt(benchmark::State& state) {
  support::Xoshiro256 rng(1);
  expr::SumOfProducts equation =
      random_equation(rng, static_cast<int>(state.range(0)), 40, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt::distributive_optimize(equation));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DistOpt)->Range(8, 512)->Complexity();

void BM_CseBuild(benchmark::State& state) {
  // m equations of ~n terms: the paper's CSE bookkeeping is O(mn) space and
  // our hash-lookup variant runs in ~O(mn) time.
  support::Xoshiro256 rng(2);
  const int m = static_cast<int>(state.range(0));
  std::vector<expr::FactoredSum> equations;
  for (int e = 0; e < m; ++e) {
    equations.push_back(
        opt::distributive_optimize(random_equation(rng, 12, 40, 10)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        opt::build_optimized_system(equations, 40, 10));
  }
  state.SetComplexityN(m);
}
BENCHMARK(BM_CseBuild)->Range(16, 1024)->Complexity();

void BM_VmRhsEvaluation(benchmark::State& state) {
  auto built = models::build_test_case(
      models::scaled_config(2, 0.01 * static_cast<double>(state.range(0))));
  if (!built.is_ok()) {
    state.SkipWithError("model build failed");
    return;
  }
  vm::Interpreter interp(built->program_optimized);
  std::vector<double> y(built->equation_count(), 0.01);
  std::vector<double> k = built->rates.values();
  std::vector<double> dydt(y.size());
  for (auto _ : state) {
    interp.run(0.0, y.data(), k.data(), dydt.data());
    benchmark::DoNotOptimize(dydt.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          built->program_optimized.code.size());
}
BENCHMARK(BM_VmRhsEvaluation)->Arg(1)->Arg(4)->Arg(16);

void BM_CanonicalSmiles(benchmark::State& state) {
  auto mol = chem::parse_smiles("C1=CC=C2C(=C1)N=C(S2)SSSSSS[R]");
  for (auto _ : state) {
    benchmark::DoNotOptimize(chem::canonical_smiles(*mol));
  }
}
BENCHMARK(BM_CanonicalSmiles);

void BM_GearIntegrationStep(benchmark::State& state) {
  auto built = models::build_test_case(models::scaled_config(1, 0.02));
  if (!built.is_ok()) {
    state.SkipWithError("model build failed");
    return;
  }
  const std::size_t n = built->equation_count();
  vm::Interpreter interp(built->program_optimized);
  const std::vector<double> rates = built->rates.values();
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             interp.run(t, y, rates.data(), ydot);
                           }};
  for (auto _ : state) {
    solver::AdamsGear solver(system);
    (void)solver.initialize(0.0, built->odes.init_concentrations);
    std::vector<double> y;
    (void)solver.advance_to(0.5, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GearIntegrationStep);

void BM_LptSchedule(benchmark::State& state) {
  support::Xoshiro256 rng(3);
  std::vector<double> costs(state.range(0));
  for (double& c : costs) c = rng.uniform(0.5, 4.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(parallel::lpt_schedule(costs, 16));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LptSchedule)->Range(16, 4096)->Complexity();

// ---------------------------------------------------------------------------
// vm_dispatch suite: raw vs fused vs batched execution of TC1-TC3 RHS tapes.
// ---------------------------------------------------------------------------

/// Replica of the seed interpreter's per-instruction switch loop (base ops
/// only, registers in a caller-owned vector): the "before" baseline that the
/// threaded/fused/compacted engine is measured against.
void seed_interpreter_run(const vm::Program& program, double t,
                          const double* y, const double* k, double* ydot,
                          std::vector<double>& regs) {
  regs.resize(program.register_count);
  double* r = regs.data();
  for (const vm::Instr& instr : program.code) {
    switch (instr.op) {
      case vm::Op::kLoadY: r[instr.dst] = y[instr.a]; break;
      case vm::Op::kLoadK: r[instr.dst] = k[instr.a]; break;
      case vm::Op::kLoadT: r[instr.dst] = t; break;
      case vm::Op::kLoadConst: r[instr.dst] = program.consts[instr.a]; break;
      case vm::Op::kAdd: r[instr.dst] = r[instr.a] + r[instr.b]; break;
      case vm::Op::kSub: r[instr.dst] = r[instr.a] - r[instr.b]; break;
      case vm::Op::kMul: r[instr.dst] = r[instr.a] * r[instr.b]; break;
      case vm::Op::kNeg: r[instr.dst] = -r[instr.a]; break;
      case vm::Op::kStoreOut:
        ydot[instr.a] = instr.b == vm::kNoReg ? 0.0 : r[instr.b];
        break;
      default: break;  // fused ops never appear in raw emitter output
    }
  }
}

/// One test case's tapes and inputs, built once and shared by the registered
/// benchmarks and the JSON report.
struct VmDispatchCase {
  vm::Program raw;             ///< raw SSA emitter output
  vm::Program fused;           ///< superinstructions, uncompacted registers
  vm::Program fused_compact;   ///< full pipeline: fuse + compact
  std::vector<double> y;
  std::vector<double> k;
};

const VmDispatchCase* vm_dispatch_case(int tc) {
  static std::unique_ptr<VmDispatchCase> cases[4];
  if (tc < 1 || tc > 3) return nullptr;
  if (!cases[tc]) {
    auto built = models::build_test_case(models::scaled_config(tc, 0.02));
    if (!built.is_ok()) return nullptr;
    auto c = std::make_unique<VmDispatchCase>();
    c->raw = codegen::emit_optimized(built->optimized);
    c->fused = vm::fuse_superinstructions(c->raw);
    c->fused_compact = vm::fuse_and_compact(c->raw);
    c->y.assign(built->equation_count(), 0.01);
    c->k = built->rates.values();
    cases[tc] = std::move(c);
  }
  return cases[tc].get();
}

void BM_VmDispatchSeed(benchmark::State& state) {
  const VmDispatchCase* c = vm_dispatch_case(static_cast<int>(state.range(0)));
  if (c == nullptr) { state.SkipWithError("model build failed"); return; }
  std::vector<double> regs;
  std::vector<double> ydot(c->raw.output_count);
  for (auto _ : state) {
    seed_interpreter_run(c->raw, 0.0, c->y.data(), c->k.data(), ydot.data(),
                         regs);
    benchmark::DoNotOptimize(ydot.data());
  }
}
BENCHMARK(BM_VmDispatchSeed)->Arg(1)->Arg(2)->Arg(3);

void BM_VmDispatchRaw(benchmark::State& state) {
  const VmDispatchCase* c = vm_dispatch_case(static_cast<int>(state.range(0)));
  if (c == nullptr) { state.SkipWithError("model build failed"); return; }
  vm::Interpreter interp(c->raw);
  vm::Scratch scratch;
  std::vector<double> ydot(c->raw.output_count);
  for (auto _ : state) {
    interp.run(0.0, c->y.data(), c->k.data(), ydot.data(), scratch);
    benchmark::DoNotOptimize(ydot.data());
  }
}
BENCHMARK(BM_VmDispatchRaw)->Arg(1)->Arg(2)->Arg(3);

void BM_VmDispatchFused(benchmark::State& state) {
  const VmDispatchCase* c = vm_dispatch_case(static_cast<int>(state.range(0)));
  if (c == nullptr) { state.SkipWithError("model build failed"); return; }
  vm::Interpreter interp(c->fused_compact);
  vm::Scratch scratch;
  std::vector<double> ydot(c->fused_compact.output_count);
  for (auto _ : state) {
    interp.run(0.0, c->y.data(), c->k.data(), ydot.data(), scratch);
    benchmark::DoNotOptimize(ydot.data());
  }
}
BENCHMARK(BM_VmDispatchFused)->Arg(1)->Arg(2)->Arg(3);

void BM_VmDispatchBatched(benchmark::State& state) {
  const VmDispatchCase* c = vm_dispatch_case(static_cast<int>(state.range(0)));
  if (c == nullptr) { state.SkipWithError("model build failed"); return; }
  vm::Interpreter interp(c->fused_compact);
  vm::Scratch scratch;
  const std::size_t lanes = vm::Interpreter::kBatchLanes;
  const std::size_t n = c->y.size();
  std::vector<double> ys(lanes * n);
  for (std::size_t l = 0; l < lanes; ++l) {
    std::copy(c->y.begin(), c->y.end(), ys.begin() + l * n);
  }
  std::vector<double> ydots(lanes * c->fused_compact.output_count);
  for (auto _ : state) {
    interp.run_batch_shared_k(0.0, ys.data(), c->k.data(), ydots.data(),
                              lanes, scratch);
    benchmark::DoNotOptimize(ydots.data());
  }
  state.SetItemsProcessed(state.iterations() * lanes);
}
BENCHMARK(BM_VmDispatchBatched)->Arg(1)->Arg(2)->Arg(3);

/// Wall-clock ns per RHS evaluation: repeats `eval` (which performs `evals`
/// evaluations per call) until enough time has accumulated.
template <typename Fn>
double measure_ns_per_eval(Fn&& eval, std::size_t evals_per_call) {
  eval();  // warm-up: touch the tape and scratch once
  std::size_t calls = 0;
  support::WallTimer timer;
  do {
    for (int i = 0; i < 16; ++i) eval();
    calls += 16;
  } while (timer.seconds() < 0.2);
  return timer.seconds() * 1e9 /
         (static_cast<double>(calls) * static_cast<double>(evals_per_call));
}

/// Builds the machine-readable vm_dispatch report and writes it to `path`.
bool write_vm_dispatch_report(const std::string& path) {
  std::vector<std::string> case_objects;
  for (int tc = 1; tc <= 3; ++tc) {
    const VmDispatchCase* c = vm_dispatch_case(tc);
    if (c == nullptr) {
      std::fprintf(stderr, "vm_dispatch: TC%d model build failed\n", tc);
      return false;
    }
    vm::Interpreter raw_interp(c->raw);
    vm::Interpreter fused_interp(c->fused);
    vm::Interpreter fc_interp(c->fused_compact);
    vm::Scratch scratch;
    std::vector<double> regs;
    std::vector<double> ydot(c->raw.output_count);

    const double seed_ns = measure_ns_per_eval(
        [&] {
          seed_interpreter_run(c->raw, 0.0, c->y.data(), c->k.data(),
                               ydot.data(), regs);
        },
        1);
    const double raw_ns = measure_ns_per_eval(
        [&] { raw_interp.run(0.0, c->y.data(), c->k.data(), ydot.data(),
                             scratch); },
        1);
    const double fused_ns = measure_ns_per_eval(
        [&] { fused_interp.run(0.0, c->y.data(), c->k.data(), ydot.data(),
                               scratch); },
        1);
    const double fc_ns = measure_ns_per_eval(
        [&] { fc_interp.run(0.0, c->y.data(), c->k.data(), ydot.data(),
                            scratch); },
        1);

    const std::size_t lanes = vm::Interpreter::kBatchLanes;
    const std::size_t n = c->y.size();
    std::vector<double> ys(lanes * n);
    for (std::size_t l = 0; l < lanes; ++l) {
      std::copy(c->y.begin(), c->y.end(), ys.begin() + l * n);
    }
    std::vector<double> ydots(lanes * c->fused_compact.output_count);
    const double batched_ns = measure_ns_per_eval(
        [&] {
          fc_interp.run_batch_shared_k(0.0, ys.data(), c->k.data(),
                                       ydots.data(), lanes, scratch);
        },
        lanes);

    case_objects.push_back(
        bench::JsonObject()
            .add("test_case", std::string(support::str_format("TC%d", tc)))
            .add("equations", c->y.size())
            .add("instructions_raw", c->raw.code.size())
            .add("instructions_fused", c->fused_compact.code.size())
            .add("registers_raw", c->raw.register_count)
            .add("registers_compacted", c->fused_compact.register_count)
            .add("register_reduction",
                 static_cast<double>(c->raw.register_count) /
                     static_cast<double>(c->fused_compact.register_count))
            .add("ns_per_eval_seed_switch", seed_ns)
            .add("ns_per_eval_threaded_raw", raw_ns)
            .add("ns_per_eval_fused", fused_ns)
            .add("ns_per_eval_fused_compacted", fc_ns)
            .add("ns_per_eval_batched16", batched_ns)
            .add("speedup_fused_compacted_vs_seed", seed_ns / fc_ns)
            .add("speedup_batched_vs_seed", seed_ns / batched_ns)
            .str());
    std::printf(
        "vm_dispatch TC%d: %zu eqs, %zu->%zu instrs, %zu->%zu regs, "
        "seed %.0f ns, fused+compact %.0f ns (%.2fx), batched %.0f ns/eval "
        "(%.2fx)\n",
        tc, c->y.size(), c->raw.code.size(), c->fused_compact.code.size(),
        c->raw.register_count, c->fused_compact.register_count, seed_ns,
        fc_ns, seed_ns / fc_ns, batched_ns, seed_ns / batched_ns);
  }
  const std::string report =
      bench::JsonObject()
          .add("suite", std::string("vm_dispatch"))
          .add("scale", 0.02)
          .add("batch_lanes",
               static_cast<std::size_t>(vm::Interpreter::kBatchLanes))
          .add_raw("cases", bench::json_array(case_objects))
          .str() +
      "\n";
  if (!bench::write_file(path, report)) {
    std::fprintf(stderr, "vm_dispatch: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("vm_dispatch: wrote %s\n", path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract our own --vm-json flag before google-benchmark sees argv.
  std::string vm_json = "BENCH_vm.json";
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--vm-json=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      vm_json = argv[i] + std::strlen(prefix);
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;

  const bool report_ok = write_vm_dispatch_report(vm_json);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return report_ok ? 0 : 1;
}
