// Ablation of the optimizer stages (the design choices DESIGN.md calls out):
// how much of the Table 1 reduction comes from §3.1 simplification, §3.2
// DistOpt, and §3.3 CSE individually.
//
// Flags: --scale=F (default 0.04), --tc=N (default 4)
#include <cstdio>

#include "bench_util.hpp"
#include "codegen/bytecode_emitter.hpp"
#include "models/test_cases.hpp"
#include "opt/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace rms;
  bench::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.04);
  const int tc = static_cast<int>(flags.get_int("tc", 4));

  auto config = models::scaled_config(tc, scale);
  auto built = models::build_test_case(config);
  if (!built.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  std::printf("Optimizer stage ablation — TC%d at scale %.3g (%zu "
              "equations)\n\n",
              tc, scale, built->equation_count());
  std::printf("%-44s %10s %10s %10s\n", "configuration", "mults", "adds",
              "total");

  const vm::ArithCount raw = built->program_unoptimized.count_arith();
  std::printf("%-44s %10zu %10zu %10zu\n",
              "none (raw equation generation)", raw.multiplies, raw.add_subs,
              raw.total());

  // §3.1 only: combined like terms, no DistOpt, no CSE.
  {
    vm::Program p = codegen::emit_unoptimized(
        built->odes.table, built->equation_count(), built->rates.size());
    const vm::ArithCount c = p.count_arith();
    std::printf("%-44s %10zu %10zu %10zu\n", "simplification only (§3.1)",
                c.multiplies, c.add_subs, c.total());
  }

  struct StageConfig {
    const char* label;
    opt::OptimizerOptions options;
  };
  opt::OptimizerOptions dist_only;
  dist_only.cse.enable_temporaries = false;
  dist_only.cse.enable_prefix_sharing = false;
  opt::OptimizerOptions cse_only;
  cse_only.distributive = false;
  opt::OptimizerOptions no_prefix;
  no_prefix.cse.enable_prefix_sharing = false;
  const StageConfig stages[] = {
      {"simplification + DistOpt (§3.2)", dist_only},
      {"simplification + CSE, no DistOpt (§3.3)", cse_only},
      {"simplification + DistOpt + CSE, no prefixes", no_prefix},
      {"full pipeline (§3.1 + §3.2 + §3.3)", opt::OptimizerOptions::full()},
  };
  for (const StageConfig& stage : stages) {
    opt::OptimizationReport report;
    opt::OptimizedSystem system =
        opt::optimize(built->odes.table, built->equation_count(),
                      built->rates.size(), stage.options, &report);
    vm::Program p = codegen::emit_optimized(system);
    const vm::ArithCount c = p.count_arith();
    std::printf("%-44s %10zu %10zu %10zu\n", stage.label, c.multiplies,
                c.add_subs, c.total());
  }
  return 0;
}
