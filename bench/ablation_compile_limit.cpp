// Ablation for the paper's §3.3 claim: "we can compile programs at least 10
// times larger using our optimizations than when not using them."
//
// Sweeps the model size upward under a FIXED ReferenceBackend memory budget
// and reports the largest test-case size whose unoptimized program still
// compiles versus the largest whose optimized program compiles.
//
// Flags:
//   --budget-mb=M   backend budget (default 256)
//   --max-scale=F   largest scale probed (default 1.0 = paper scale)
#include <cstdio>

#include "bench_util.hpp"
#include "codegen/reference_backend.hpp"
#include "models/test_cases.hpp"

int main(int argc, char** argv) {
  using namespace rms;
  bench::Flags flags(argc, argv);
  const std::size_t budget_bytes = static_cast<std::size_t>(
      flags.get_double("budget-mb", 256.0) * 1024.0 * 1024.0);
  const double max_scale = flags.get_double("max-scale", 1.0);

  codegen::BackendOptions backend;
  backend.memory_budget_bytes = budget_bytes;

  std::printf("Compile-size limit under a %zu MB backend budget\n\n",
              budget_bytes >> 20);
  std::printf("%10s %10s | %14s %10s | %14s %10s\n", "scale", "equations",
              "unopt IR (MB)", "compiles", "opt IR (MB)", "compiles");

  std::size_t largest_unopt = 0;
  std::size_t largest_opt = 0;
  for (double scale = 0.002; scale <= max_scale * 1.0001; scale *= 2.0) {
    auto config = models::scaled_config(5, scale);
    auto built = models::build_test_case(config);
    if (!built.is_ok()) {
      std::fprintf(stderr, "build failed at scale %g: %s\n", scale,
                   built.status().to_string().c_str());
      return 1;
    }
    const std::size_t unopt_bytes =
        codegen::required_ir_bytes(built->program_unoptimized, backend);
    const std::size_t opt_bytes =
        codegen::required_ir_bytes(built->program_optimized, backend);
    const bool unopt_ok = unopt_bytes <= budget_bytes;
    const bool opt_ok = opt_bytes <= budget_bytes;
    if (unopt_ok) largest_unopt = built->equation_count();
    if (opt_ok) largest_opt = built->equation_count();
    std::printf("%10.3g %10zu | %14zu %10s | %14zu %10s\n", scale,
                built->equation_count(), unopt_bytes >> 20,
                unopt_ok ? "yes" : "NO", opt_bytes >> 20,
                opt_ok ? "yes" : "NO");
    if (!opt_ok) break;  // nothing larger will fit either
  }

  if (largest_unopt > 0) {
    std::printf("\nLargest compilable without domain optimizations: %zu "
                "equations\nLargest compilable with domain optimizations:    "
                "%zu equations\nRatio: %.1fx (paper claims >= 10x)\n",
                largest_unopt, largest_opt,
                static_cast<double>(largest_opt) /
                    static_cast<double>(largest_unopt));
  }
  return 0;
}
