// End-to-end compile-time benchmark: serial baseline vs. the parallel
// pipeline, measured in the same run on the same inputs.
//
// One measurement runs the full compile for a synthetic test case —
// network -> ODE generation -> DistOpt -> CSE -> emission -> fuse, plus the
// analytic Jacobian (differentiate -> optimize -> emit) — and records the
// per-phase wall times from opt::PhaseTimings. The baseline replays the
// seed pipeline: serial, per-round DistOpt frequency recounts, no equation
// memoization or CSE dedup, and the Table 1 reference artifacts always
// built. The optimized mode runs with `--threads` workers and every
// pipeline switch on, compiling only what execution needs. Both modes
// produce bit-identical RHS and Jacobian bytecode, which the bench
// verifies before reporting.
//
// Results go to stdout (a phase-by-phase table) and to BENCH_compile.json
// (override with --json=PATH), the compile-side analogue of BENCH_vm.json.
//
// Flags:
//   --tc=N         test case to compile (default 3)
//   --scale=F      fraction of the paper's equation count (default 1.0)
//   --threads=N    worker threads for the optimized mode (default
//                  RMS_THREADS, else 8)
//   --repeats=N    measurements per mode; the fastest is reported (default 3)
//   --json=PATH    output path (default BENCH_compile.json)
//   --no-jacobian  skip the Jacobian compile (RHS pipeline only)
//   --keep-reference  build the Table 1 reference artifacts in the
//                     optimized mode too (apples-to-apples phase table)
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "codegen/jacobian.hpp"
#include "models/test_cases.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace {

using namespace rms;

struct CompileResult {
  opt::PhaseTimings timings;
  double total_seconds = 0.0;
  std::size_t equations = 0;
  std::size_t distinct_equations = 0;
  vm::Program rhs_program;
  vm::Program jacobian_program;
};

bool same_program(const vm::Program& a, const vm::Program& b) {
  if (a.code.size() != b.code.size() || a.consts != b.consts ||
      a.register_count != b.register_count ||
      a.output_count != b.output_count) {
    return false;
  }
  for (std::size_t i = 0; i < a.code.size(); ++i) {
    const vm::Instr& x = a.code[i];
    const vm::Instr& y = b.code[i];
    if (x.op != y.op || x.dst != y.dst || x.a != y.a || x.b != y.b ||
        x.c != y.c) {
      return false;
    }
  }
  return true;
}

CompileResult compile_once(const models::SyntheticNetworkConfig& config,
                           const models::PipelineOptions& pipeline,
                           bool with_jacobian) {
  CompileResult result;
  support::WallTimer timer;
  auto built = models::build_test_case(config, pipeline);
  if (!built.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().to_string().c_str());
    std::exit(1);
  }
  result.timings = std::move(built->timings);
  if (with_jacobian) {
    opt::OptimizerOptions jac_options = pipeline.optimizer;
    jac_options.pool = pipeline.pool;
    jac_options.timings = &result.timings;
    codegen::CompiledJacobian jacobian =
        codegen::compile_jacobian(built->odes.table, built->network.species.size(),
                                  built->rates.size(), jac_options);
    result.jacobian_program = std::move(jacobian.program);
  }
  result.total_seconds = timer.seconds();
  result.equations = built->equation_count();
  result.distinct_equations = built->report.distinct_equations;
  result.rhs_program = std::move(built->program_optimized);
  return result;
}

CompileResult best_of(int repeats, const models::SyntheticNetworkConfig& config,
                      const models::PipelineOptions& pipeline,
                      bool with_jacobian) {
  CompileResult best;
  for (int r = 0; r < repeats; ++r) {
    CompileResult run = compile_once(config, pipeline, with_jacobian);
    if (r == 0 || run.total_seconds < best.total_seconds) {
      best = std::move(run);
    }
  }
  return best;
}

std::string phases_json(const opt::PhaseTimings& timings) {
  std::vector<std::string> items;
  items.reserve(timings.phases.size());
  for (const opt::PhaseTimings::Phase& p : timings.phases) {
    items.push_back(bench::JsonObject()
                        .add("name", p.name)
                        .add("seconds", p.seconds)
                        .str());
  }
  return bench::json_array(items);
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const int tc = static_cast<int>(flags.get_int("tc", 3));
  const double scale = flags.get_double("scale", 1.0);
  const std::size_t threads = static_cast<std::size_t>(flags.get_int(
      "threads",
      static_cast<long>(support::ThreadPool::default_thread_count() != 0
                            ? support::ThreadPool::default_thread_count()
                            : 8)));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const bool with_jacobian = !flags.has("no-jacobian");
  std::string json_path = "BENCH_compile.json";
  for (int i = 1; i < argc; ++i) {
    const char* prefix = "--json=";
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) {
      json_path = argv[i] + std::strlen(prefix);
    }
  }

  const models::SyntheticNetworkConfig config = models::scaled_config(tc, scale);

  // Baseline: the seed pipeline — serial, no equation memoization, per-round
  // frequency recounts in DistOpt, no CSE equation dedup, and the Table 1
  // reference artifacts built unconditionally.
  models::PipelineOptions baseline;
  baseline.optimizer.memoize_equations = false;
  baseline.optimizer.incremental_frequency = false;
  baseline.optimizer.cse.dedup_equations = false;
  // The operation-count report is telemetry, not compilation: leave it out
  // of the measured repeats (both modes identically) and gather it once in
  // an untimed stats pass below.
  baseline.collect_report = false;

  // Optimized: worker pool, memoized DistOpt, incremental counts, CSE dedup,
  // and only the artifacts execution needs (pass --keep-reference to build
  // the Table 1 baseline program too). The optimized RHS and Jacobian
  // programs are bit-identical to the baseline's either way.
  support::ThreadPool pool(threads);
  models::PipelineOptions parallel;
  parallel.pool = &pool;
  parallel.build_reference_baseline = flags.has("keep-reference");
  parallel.collect_report = false;

  std::printf("Compile pipeline bench: TC%d scale=%.3g (%s), %zu threads, "
              "best of %d, %s\n\n",
              tc, scale, flags.has("no-jacobian") ? "RHS only" : "RHS+Jacobian",
              threads, repeats, "baseline = serial seed pipeline");

  CompileResult base = best_of(repeats, config, baseline, with_jacobian);
  CompileResult fast = best_of(repeats, config, parallel, with_jacobian);

  // Untimed stats pass: one compile with the report on, for the
  // distinct-equation count reported alongside the timings.
  models::PipelineOptions stats = parallel;
  stats.collect_report = true;
  fast.distinct_equations =
      compile_once(config, stats, /*with_jacobian=*/false).distinct_equations;

  const bool rhs_identical = same_program(base.rhs_program, fast.rhs_program);
  const bool jac_identical =
      !with_jacobian || same_program(base.jacobian_program, fast.jacobian_program);

  std::printf("%-20s %12s %12s %9s\n", "phase", "baseline(s)", "parallel(s)",
              "speedup");
  // Walk the union of phase names in baseline order (both modes run the
  // same pipeline, so the order matches).
  for (const opt::PhaseTimings::Phase& p : base.timings.phases) {
    const double after = fast.timings.seconds(p.name);
    if (after > 0.0) {
      std::printf("%-20s %12.4f %12.4f %8.2fx\n", p.name.c_str(), p.seconds,
                  after, p.seconds / after);
    } else {
      std::printf("%-20s %12.4f %12s %9s\n", p.name.c_str(), p.seconds,
                  "-", "skipped");
    }
  }
  const double speedup =
      fast.total_seconds > 0.0 ? base.total_seconds / fast.total_seconds : 0.0;
  std::printf("%-20s %12.4f %12.4f %8.2fx\n", "total", base.total_seconds,
              fast.total_seconds, speedup);
  std::printf("\nequations: %zu (distinct through DistOpt: %zu of %zu)\n",
              base.equations, fast.distinct_equations, base.equations);
  std::printf("bit-identical output: rhs=%s jacobian=%s\n",
              rhs_identical ? "yes" : "NO", jac_identical ? "yes" : "NO");

  const std::string json =
      bench::JsonObject()
          .add("bench", std::string("compile_pipeline"))
          .add("test_case", static_cast<std::size_t>(tc))
          .add("scale", scale)
          .add("threads", threads)
          .add("equations", base.equations)
          .add("distinct_equations", fast.distinct_equations)
          .add("with_jacobian", std::string(with_jacobian ? "yes" : "no"))
          .add("baseline_seconds", base.total_seconds)
          .add("parallel_seconds", fast.total_seconds)
          .add("speedup", speedup)
          .add("bit_identical",
               std::string(rhs_identical && jac_identical ? "yes" : "no"))
          .add_raw("baseline_phases", phases_json(base.timings))
          .add_raw("parallel_phases", phases_json(fast.timings))
          .str() +
      "\n";
  if (!bench::write_file(json_path, json)) {
    std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\nwrote %s\n", json_path.c_str());

  if (!rhs_identical || !jac_identical) {
    std::fprintf(stderr, "FAIL: parallel output differs from baseline\n");
    return 1;
  }
  return 0;
}
