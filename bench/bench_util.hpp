// Shared helpers for the table/ablation bench binaries: tiny flag parsing
// and table formatting.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace rms::bench {

/// --flag=value / --flag parsing over argv.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == "--" + name) return true;
      if (a.rfind("--" + name + "=", 0) == 0) return true;
    }
    return false;
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        double v = fallback;
        if (support::parse_double(a.substr(prefix.size()), v)) return v;
      }
    }
    return fallback;
  }

  [[nodiscard]] long get_int(const std::string& name, long fallback) const {
    return static_cast<long>(get_double(name, static_cast<double>(fallback)));
  }

 private:
  std::vector<std::string> args_;
};

inline std::string human_count(std::size_t n) {
  if (n >= 1000000) return support::str_format("%.3gM", n / 1e6);
  if (n >= 10000) return support::str_format("%.3gk", n / 1e3);
  return support::str_format("%zu", n);
}

}  // namespace rms::bench
