// Shared helpers for the table/ablation bench binaries: tiny flag parsing
// and table formatting.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "support/strings.hpp"

namespace rms::bench {

/// --flag=value / --flag parsing over argv.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    for (const std::string& a : args_) {
      if (a == "--" + name) return true;
      if (a.rfind("--" + name + "=", 0) == 0) return true;
    }
    return false;
  }

  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) {
        double v = fallback;
        if (support::parse_double(a.substr(prefix.size()), v)) return v;
      }
    }
    return fallback;
  }

  [[nodiscard]] long get_int(const std::string& name, long fallback) const {
    return static_cast<long>(get_double(name, static_cast<double>(fallback)));
  }

  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback) const {
    const std::string prefix = "--" + name + "=";
    for (const std::string& a : args_) {
      if (a.rfind(prefix, 0) == 0) return a.substr(prefix.size());
    }
    return fallback;
  }

 private:
  std::vector<std::string> args_;
};

inline std::string human_count(std::size_t n) {
  if (n >= 1000000) return support::str_format("%.3gM", n / 1e6);
  if (n >= 10000) return support::str_format("%.3gk", n / 1e3);
  return support::str_format("%zu", n);
}

/// Minimal JSON object builder for the machine-readable BENCH_*.json
/// artifacts the perf trajectory consumes. Values are numbers, strings, or
/// raw (pre-serialized) JSON; insertion order is preserved.
class JsonObject {
 public:
  JsonObject& add(const std::string& key, double value) {
    return add_raw(key, support::str_format("%.9g", value));
  }

  JsonObject& add(const std::string& key, std::size_t value) {
    return add_raw(key, support::str_format("%zu", value));
  }

  JsonObject& add(const std::string& key, const std::string& value) {
    std::string escaped = "\"";
    for (char ch : value) {
      if (ch == '"' || ch == '\\') escaped += '\\';
      escaped += ch;
    }
    escaped += '"';
    return add_raw(key, escaped);
  }

  /// Appends a pre-serialized JSON value (object, array, ...).
  JsonObject& add_raw(const std::string& key, const std::string& json) {
    if (!body_.empty()) body_ += ", ";
    body_ += "\"" + key + "\": " + json;
    return *this;
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  std::string body_;
};

inline std::string json_array(const std::vector<std::string>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += ", ";
    out += items[i];
  }
  return out + "]";
}

inline bool write_file(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace rms::bench
