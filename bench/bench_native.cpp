// Native-backend benchmark: AOT-compiled machine code vs the optimized
// bytecode VM on the paper's synthetic test cases.
//
// Three measurements per test case, all on the same model and the same
// random states:
//   - RHS throughput (ns/eval): VM scalar, VM batched, native scalar,
//     native batched. The VM numbers run the fused + register-compacted
//     program; the native numbers run the emitted C compiled by the system
//     compiler (-O2 -ffp-contract=off).
//   - Backend construction: cold compile (fresh cache directory) vs a
//     cache hit on the same key — the cost the content-addressed .so cache
//     removes from every run after the first.
//   - End-to-end estimator objective (sparse-Newton integration over
//     synthetic experiments): VM + compiled Jacobian vs the native module.
//
// Results go to stdout and BENCH_native.json (override with --json=PATH).
//
// Flags:
//   --scale=F     fraction of the paper's equation count (default 0.04 —
//                 eval cost scales linearly, compile cost superlinearly)
//   --lanes=N     batch width for the batched entry points (default 16,
//                 the solver's finite-difference chunk size)
//   --repeats=N   timing repeats; the fastest is reported (default 3)
//   --json=PATH   output path (default BENCH_native.json)
//   --skip-estimator  RHS + construction measurements only
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <unistd.h>

#include "bench_util.hpp"
#include "codegen/jacobian.hpp"
#include "codegen/native_backend.hpp"
#include "data/synthetic.hpp"
#include "estimator/objective.hpp"
#include "models/test_cases.hpp"
#include "support/rng.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

namespace {

using namespace rms;

/// Fresh private cache directory (the bench must pay a real cold compile).
std::string make_cache_dir() {
  char name[] = "/tmp/rms-bench-native-XXXXXX";
  char* made = mkdtemp(name);
  if (made == nullptr) {
    std::perror("mkdtemp");
    std::exit(1);
  }
  return made;
}

void remove_dir(const std::string& path) {
  std::system(("rm -rf " + path).c_str());
}

/// Times `body` (called with an iteration count) until it has run for at
/// least ~0.1s, returns seconds per call of the innermost unit.
template <typename Body>
double time_per_unit(std::size_t units_per_call, int repeats, Body&& body) {
  double best = 0.0;
  for (int r = 0; r < repeats; ++r) {
    std::size_t calls = 1;
    double seconds = 0.0;
    for (;;) {
      support::WallTimer timer;
      for (std::size_t i = 0; i < calls; ++i) body();
      seconds = timer.seconds();
      if (seconds >= 0.1 || calls >= (1u << 22)) break;
      calls *= 4;
    }
    const double per_unit =
        seconds / (static_cast<double>(calls) *
                   static_cast<double>(units_per_call));
    if (r == 0 || per_unit < best) best = per_unit;
  }
  return best;
}

struct CaseResult {
  std::string name;
  std::size_t equations = 0;
  double vm_scalar_ns = 0.0;
  double vm_batch_ns = 0.0;
  double native_scalar_ns = 0.0;
  double native_batch_ns = 0.0;
  double cold_seconds = 0.0;
  double warm_seconds = 0.0;
};

CaseResult bench_case(int tc, double scale, std::size_t lanes, int repeats) {
  CaseResult result;
  result.name = support::str_format("TC%d", tc);
  auto built = models::build_test_case(models::scaled_config(tc, scale));
  if (!built.is_ok()) {
    std::fprintf(stderr, "TC%d build failed: %s\n", tc,
                 built.status().to_string().c_str());
    std::exit(1);
  }
  const std::size_t n = built->equation_count();
  const std::size_t rate_count = built->rates.size();
  result.equations = n;

  // Cold compile, then a cache hit on the identical key.
  const std::string cache_dir = make_cache_dir();
  codegen::NativeBackendOptions options;
  options.cache_dir = cache_dir;
  auto native = codegen::NativeBackend::create(
      built->optimized, &built->odes.table, n, rate_count, options);
  if (!native.is_ok()) {
    std::fprintf(stderr, "TC%d native compile failed: %s\n", tc,
                 native.status().to_string().c_str());
    std::exit(1);
  }
  result.cold_seconds = (*native)->info().total_seconds;
  {
    auto warm = codegen::NativeBackend::create(
        built->optimized, &built->odes.table, n, rate_count, options);
    if (!warm.is_ok() || !(*warm)->info().cache_hit) {
      std::fprintf(stderr, "TC%d expected a cache hit on rerun\n", tc);
      std::exit(1);
    }
    result.warm_seconds = (*warm)->info().total_seconds;
  }

  // Shared random inputs for every eval mode.
  support::Xoshiro256 rng(7u * static_cast<unsigned>(tc));
  std::vector<double> k(rate_count);
  for (double& v : k) v = rng.uniform(0.05, 10.0);
  std::vector<double> ys(n * lanes);
  for (double& v : ys) v = rng.uniform(0.0, 2.0);
  std::vector<double> ydots(n * lanes, 0.0);

  const vm::Interpreter interpreter(built->program_optimized);
  vm::Scratch scratch;

  result.vm_scalar_ns =
      1e9 * time_per_unit(1, repeats, [&] {
        interpreter.run(0.5, ys.data(), k.data(), ydots.data());
      });
  result.vm_batch_ns =
      1e9 * time_per_unit(lanes, repeats, [&] {
        interpreter.run_batch_shared_k(0.5, ys.data(), k.data(), ydots.data(),
                                       lanes, scratch);
      });
  const codegen::NativeBackend& module = **native;
  result.native_scalar_ns =
      1e9 * time_per_unit(1, repeats, [&] {
        module.rhs(0.5, ys.data(), k.data(), ydots.data());
      });
  result.native_batch_ns =
      1e9 * time_per_unit(lanes, repeats, [&] {
        module.rhs_batch(0.5, ys.data(), k.data(), ydots.data(), lanes);
      });

  remove_dir(cache_dir);
  return result;
}

struct EstimatorResult {
  double vm_seconds = 0.0;
  double native_seconds = 0.0;
};

/// End-to-end objective evaluation on TC1: both configurations integrate
/// with the analytic sparse Jacobian; only the execution engine differs.
EstimatorResult bench_estimator(double scale, int repeats) {
  EstimatorResult result;
  auto built = models::build_test_case(models::scaled_config(1, scale));
  if (!built.is_ok()) {
    std::fprintf(stderr, "estimator model build failed\n");
    std::exit(1);
  }
  const std::size_t n = built->equation_count();
  const std::size_t rate_count = built->rates.size();

  const std::string cache_dir = make_cache_dir();
  codegen::NativeBackendOptions options;
  options.cache_dir = cache_dir;
  auto native = codegen::NativeBackend::create(
      built->optimized, &built->odes.table, n, rate_count, options);
  if (!native.is_ok()) {
    std::fprintf(stderr, "estimator native compile failed\n");
    std::exit(1);
  }
  const codegen::CompiledJacobian jac_vm = codegen::compile_jacobian(
      built->odes.table, n, rate_count);

  data::Observable observable;
  observable.weighted_species = {{0, 1.0}};
  const std::vector<double> base_rates = built->rates.values();
  std::vector<std::uint32_t> slots;
  for (std::uint32_t s = 0; s < rate_count; ++s) slots.push_back(s);

  const vm::Interpreter interp(built->program_optimized);
  solver::OdeSystem truth{n, [&](double t, const double* y, double* ydot) {
                            interp.run(t, y, base_rates.data(), ydot);
                          }};
  data::SyntheticOptions synth;
  synth.t_end = 2.0;
  synth.record_count = 24;
  std::vector<estimator::Experiment> experiments;
  for (int file = 0; file < 4; ++file) {
    estimator::Experiment e;
    e.initial_state = built->odes.init_concentrations;
    auto data = data::synthesize_experiment(truth, e.initial_state,
                                            observable, synth);
    if (!data.is_ok()) {
      std::fprintf(stderr, "synthesize failed\n");
      std::exit(1);
    }
    e.data = std::move(data).value();
    experiments.push_back(std::move(e));
  }

  // Slightly perturbed parameters: a realistic mid-fit evaluation.
  linalg::Vector x(base_rates.begin(), base_rates.end());
  for (double& v : x) v *= 1.1;

  auto time_objective = [&](const estimator::ObjectiveOptions& objective_options) {
    estimator::ObjectiveFunction objective(
        built->program_optimized, observable, experiments, slots, base_rates,
        objective_options);
    linalg::Vector residuals;
    double best = 0.0;
    for (int r = 0; r < repeats; ++r) {
      support::WallTimer timer;
      auto status = objective.evaluate(x, residuals);
      const double seconds = timer.seconds();
      if (!status.is_ok()) {
        std::fprintf(stderr, "objective failed: %s\n",
                     status.to_string().c_str());
        std::exit(1);
      }
      if (r == 0 || seconds < best) best = seconds;
    }
    return best;
  };

  estimator::ObjectiveOptions vm_options;
  vm_options.compiled_jacobian = &jac_vm;
  result.vm_seconds = time_objective(vm_options);
  estimator::ObjectiveOptions native_options;
  native_options.native_backend = native->get();
  result.native_seconds = time_objective(native_options);

  remove_dir(cache_dir);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Flags flags(argc, argv);
  const double scale = flags.get_double("scale", 0.04);
  const std::size_t lanes =
      static_cast<std::size_t>(flags.get_int("lanes", 16));
  const int repeats = static_cast<int>(flags.get_int("repeats", 3));
  const std::string json_path = flags.get_string("json", "BENCH_native.json");

  std::printf("native backend benchmark: scale=%.3g lanes=%zu repeats=%d\n\n",
              scale, lanes, repeats);
  std::printf("%-5s %9s | %12s %12s %12s %12s | %8s %10s %8s\n", "case",
              "equations", "vm ns", "vm-batch ns", "nat ns", "nat-batch ns",
              "cold s", "cache-hit s", "speedup");

  std::vector<std::string> case_json;
  double worst_batch_speedup = 1e30;
  double worst_cache_ratio = 1e30;
  for (int tc = 1; tc <= 3; ++tc) {
    const CaseResult r = bench_case(tc, scale, lanes, repeats);
    const double batch_speedup = r.vm_batch_ns / r.native_batch_ns;
    const double cache_ratio = r.cold_seconds / r.warm_seconds;
    worst_batch_speedup = std::min(worst_batch_speedup, batch_speedup);
    worst_cache_ratio = std::min(worst_cache_ratio, cache_ratio);
    std::printf("%-5s %9zu | %12.1f %12.1f %12.1f %12.1f | %8.3f %10.6f %7.1fx\n",
                r.name.c_str(), r.equations, r.vm_scalar_ns, r.vm_batch_ns,
                r.native_scalar_ns, r.native_batch_ns, r.cold_seconds,
                r.warm_seconds, batch_speedup);
    case_json.push_back(
        bench::JsonObject()
            .add("name", r.name)
            .add("equations", r.equations)
            .add("vm_scalar_ns_per_eval", r.vm_scalar_ns)
            .add("vm_batch_ns_per_eval", r.vm_batch_ns)
            .add("native_scalar_ns_per_eval", r.native_scalar_ns)
            .add("native_batch_ns_per_eval", r.native_batch_ns)
            .add("native_batch_speedup_vs_vm_batch", batch_speedup)
            .add("native_scalar_speedup_vs_vm_scalar",
                 r.vm_scalar_ns / r.native_scalar_ns)
            .add("cold_compile_seconds", r.cold_seconds)
            .add("cache_hit_seconds", r.warm_seconds)
            .add("cache_hit_speedup", cache_ratio)
            .str());
  }

  bench::JsonObject root;
  root.add("benchmark", std::string("native_backend"));
  root.add("scale", scale);
  root.add("batch_lanes", lanes);
  root.add_raw("test_cases", bench::json_array(case_json));

  if (!flags.has("skip-estimator")) {
    const EstimatorResult est = bench_estimator(scale, repeats);
    std::printf("\nestimator objective (TC1, 4 files, sparse Newton): "
                "vm %.4fs  native %.4fs  (%.2fx)\n",
                est.vm_seconds, est.native_seconds,
                est.vm_seconds / est.native_seconds);
    root.add_raw("estimator",
                 bench::JsonObject()
                     .add("vm_seconds", est.vm_seconds)
                     .add("native_seconds", est.native_seconds)
                     .add("speedup", est.vm_seconds / est.native_seconds)
                     .str());
  }

  std::printf("\nworst-case native-batch speedup vs fused VM: %.2fx "
              "(target >= 2x)\n", worst_batch_speedup);
  std::printf("worst-case cache-hit speedup vs cold compile: %.0fx "
              "(target >= 100x)\n", worst_cache_ratio);

  if (!bench::write_file(json_path, root.str() + "\n")) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
