file(REMOVE_RECURSE
  "CMakeFiles/table1_optimizations.dir/table1_optimizations.cpp.o"
  "CMakeFiles/table1_optimizations.dir/table1_optimizations.cpp.o.d"
  "table1_optimizations"
  "table1_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
