# Empty compiler generated dependencies file for ablation_compile_limit.
# This may be replaced when dependencies are built.
