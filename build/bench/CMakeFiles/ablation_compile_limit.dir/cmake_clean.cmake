file(REMOVE_RECURSE
  "CMakeFiles/ablation_compile_limit.dir/ablation_compile_limit.cpp.o"
  "CMakeFiles/ablation_compile_limit.dir/ablation_compile_limit.cpp.o.d"
  "ablation_compile_limit"
  "ablation_compile_limit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_compile_limit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
