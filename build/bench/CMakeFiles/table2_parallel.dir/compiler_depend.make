# Empty compiler generated dependencies file for table2_parallel.
# This may be replaced when dependencies are built.
