file(REMOVE_RECURSE
  "CMakeFiles/table2_parallel.dir/table2_parallel.cpp.o"
  "CMakeFiles/table2_parallel.dir/table2_parallel.cpp.o.d"
  "table2_parallel"
  "table2_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
