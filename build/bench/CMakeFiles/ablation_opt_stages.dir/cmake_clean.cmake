file(REMOVE_RECURSE
  "CMakeFiles/ablation_opt_stages.dir/ablation_opt_stages.cpp.o"
  "CMakeFiles/ablation_opt_stages.dir/ablation_opt_stages.cpp.o.d"
  "ablation_opt_stages"
  "ablation_opt_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_opt_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
