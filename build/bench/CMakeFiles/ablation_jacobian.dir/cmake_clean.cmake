file(REMOVE_RECURSE
  "CMakeFiles/ablation_jacobian.dir/ablation_jacobian.cpp.o"
  "CMakeFiles/ablation_jacobian.dir/ablation_jacobian.cpp.o.d"
  "ablation_jacobian"
  "ablation_jacobian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_jacobian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
