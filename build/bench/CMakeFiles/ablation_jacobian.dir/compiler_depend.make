# Empty compiler generated dependencies file for ablation_jacobian.
# This may be replaced when dependencies are built.
