
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_jacobian.cpp" "bench/CMakeFiles/ablation_jacobian.dir/ablation_jacobian.cpp.o" "gcc" "bench/CMakeFiles/ablation_jacobian.dir/ablation_jacobian.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_models.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_solver.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_odegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_rcip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_rdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
