# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_codegen_explorer "/root/repo/build/examples/codegen_explorer" "--scale=0.005")
set_tests_properties(example_codegen_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_large_model "/root/repo/build/examples/large_model_simulation" "--scale=0.004")
set_tests_properties(example_large_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
