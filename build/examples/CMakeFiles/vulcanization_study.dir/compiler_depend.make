# Empty compiler generated dependencies file for vulcanization_study.
# This may be replaced when dependencies are built.
