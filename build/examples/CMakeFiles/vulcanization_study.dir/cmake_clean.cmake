file(REMOVE_RECURSE
  "CMakeFiles/vulcanization_study.dir/vulcanization_study.cpp.o"
  "CMakeFiles/vulcanization_study.dir/vulcanization_study.cpp.o.d"
  "vulcanization_study"
  "vulcanization_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vulcanization_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
