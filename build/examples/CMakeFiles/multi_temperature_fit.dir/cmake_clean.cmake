file(REMOVE_RECURSE
  "CMakeFiles/multi_temperature_fit.dir/multi_temperature_fit.cpp.o"
  "CMakeFiles/multi_temperature_fit.dir/multi_temperature_fit.cpp.o.d"
  "multi_temperature_fit"
  "multi_temperature_fit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_temperature_fit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
