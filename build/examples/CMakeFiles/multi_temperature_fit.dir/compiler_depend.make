# Empty compiler generated dependencies file for multi_temperature_fit.
# This may be replaced when dependencies are built.
