file(REMOVE_RECURSE
  "CMakeFiles/large_model_simulation.dir/large_model_simulation.cpp.o"
  "CMakeFiles/large_model_simulation.dir/large_model_simulation.cpp.o.d"
  "large_model_simulation"
  "large_model_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/large_model_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
