# Empty compiler generated dependencies file for large_model_simulation.
# This may be replaced when dependencies are built.
