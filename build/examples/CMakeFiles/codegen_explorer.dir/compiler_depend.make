# Empty compiler generated dependencies file for codegen_explorer.
# This may be replaced when dependencies are built.
