# Empty compiler generated dependencies file for parallel_estimation.
# This may be replaced when dependencies are built.
