file(REMOVE_RECURSE
  "CMakeFiles/parallel_estimation.dir/parallel_estimation.cpp.o"
  "CMakeFiles/parallel_estimation.dir/parallel_estimation.cpp.o.d"
  "parallel_estimation"
  "parallel_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
