# Empty compiler generated dependencies file for rmsc.
# This may be replaced when dependencies are built.
