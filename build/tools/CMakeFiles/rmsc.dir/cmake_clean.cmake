file(REMOVE_RECURSE
  "CMakeFiles/rmsc.dir/rmsc.cpp.o"
  "CMakeFiles/rmsc.dir/rmsc.cpp.o.d"
  "rmsc"
  "rmsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rmsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
