# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(rmsc_stats "/root/repo/build/tools/rmsc" "/root/repo/models_rdl/methanethiol.rdl" "--emit=stats")
set_tests_properties(rmsc_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rmsc_emit_c "/root/repo/build/tools/rmsc" "/root/repo/models_rdl/vulcanization_s4.rdl" "--emit=c")
set_tests_properties(rmsc_emit_c PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rmsc_emit_network "/root/repo/build/tools/rmsc" "/root/repo/models_rdl/methanethiol.rdl" "--emit=network")
set_tests_properties(rmsc_emit_network PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rmsc_missing_file "/root/repo/build/tools/rmsc" "/nonexistent.rdl")
set_tests_properties(rmsc_missing_file PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rmsc_bad_emit "/root/repo/build/tools/rmsc" "/root/repo/models_rdl/methanethiol.rdl" "--emit=bogus")
set_tests_properties(rmsc_bad_emit PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(rmsc_network_cache "sh" "-c" "/root/repo/build/tools/rmsc /root/repo/models_rdl/vulcanization_s4.rdl --save-network=/tmp/rmsc_cache.network --emit=stats && /root/repo/build/tools/rmsc /root/repo/models_rdl/vulcanization_s4.rdl --load-network=/tmp/rmsc_cache.network --emit=stats")
set_tests_properties(rmsc_network_cache PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
