file(REMOVE_RECURSE
  "CMakeFiles/test_rdl.dir/test_rdl.cpp.o"
  "CMakeFiles/test_rdl.dir/test_rdl.cpp.o.d"
  "test_rdl"
  "test_rdl.pdb"
  "test_rdl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
