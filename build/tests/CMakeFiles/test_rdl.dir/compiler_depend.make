# Empty compiler generated dependencies file for test_rdl.
# This may be replaced when dependencies are built.
