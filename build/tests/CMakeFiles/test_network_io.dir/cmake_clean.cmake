file(REMOVE_RECURSE
  "CMakeFiles/test_network_io.dir/test_network_io.cpp.o"
  "CMakeFiles/test_network_io.dir/test_network_io.cpp.o.d"
  "test_network_io"
  "test_network_io.pdb"
  "test_network_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
