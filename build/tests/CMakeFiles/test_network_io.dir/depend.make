# Empty dependencies file for test_network_io.
# This may be replaced when dependencies are built.
