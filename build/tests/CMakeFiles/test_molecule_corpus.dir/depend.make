# Empty dependencies file for test_molecule_corpus.
# This may be replaced when dependencies are built.
