file(REMOVE_RECURSE
  "CMakeFiles/test_molecule_corpus.dir/test_molecule_corpus.cpp.o"
  "CMakeFiles/test_molecule_corpus.dir/test_molecule_corpus.cpp.o.d"
  "test_molecule_corpus"
  "test_molecule_corpus.pdb"
  "test_molecule_corpus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_molecule_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
