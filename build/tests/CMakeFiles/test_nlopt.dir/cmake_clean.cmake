file(REMOVE_RECURSE
  "CMakeFiles/test_nlopt.dir/test_nlopt.cpp.o"
  "CMakeFiles/test_nlopt.dir/test_nlopt.cpp.o.d"
  "test_nlopt"
  "test_nlopt.pdb"
  "test_nlopt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nlopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
