# Empty dependencies file for test_nlopt.
# This may be replaced when dependencies are built.
