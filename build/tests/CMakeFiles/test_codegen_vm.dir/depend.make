# Empty dependencies file for test_codegen_vm.
# This may be replaced when dependencies are built.
