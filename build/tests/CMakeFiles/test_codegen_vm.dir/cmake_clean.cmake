file(REMOVE_RECURSE
  "CMakeFiles/test_codegen_vm.dir/test_codegen_vm.cpp.o"
  "CMakeFiles/test_codegen_vm.dir/test_codegen_vm.cpp.o.d"
  "test_codegen_vm"
  "test_codegen_vm.pdb"
  "test_codegen_vm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_codegen_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
