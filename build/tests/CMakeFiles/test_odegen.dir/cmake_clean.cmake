file(REMOVE_RECURSE
  "CMakeFiles/test_odegen.dir/test_odegen.cpp.o"
  "CMakeFiles/test_odegen.dir/test_odegen.cpp.o.d"
  "test_odegen"
  "test_odegen.pdb"
  "test_odegen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_odegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
