# Empty dependencies file for test_odegen.
# This may be replaced when dependencies are built.
