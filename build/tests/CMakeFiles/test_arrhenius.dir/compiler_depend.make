# Empty compiler generated dependencies file for test_arrhenius.
# This may be replaced when dependencies are built.
