file(REMOVE_RECURSE
  "CMakeFiles/test_arrhenius.dir/test_arrhenius.cpp.o"
  "CMakeFiles/test_arrhenius.dir/test_arrhenius.cpp.o.d"
  "test_arrhenius"
  "test_arrhenius.pdb"
  "test_arrhenius[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arrhenius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
