# Empty dependencies file for test_jacobian.
# This may be replaced when dependencies are built.
