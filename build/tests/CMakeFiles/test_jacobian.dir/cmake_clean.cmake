file(REMOVE_RECURSE
  "CMakeFiles/test_jacobian.dir/test_jacobian.cpp.o"
  "CMakeFiles/test_jacobian.dir/test_jacobian.cpp.o.d"
  "test_jacobian"
  "test_jacobian.pdb"
  "test_jacobian[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jacobian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
