file(REMOVE_RECURSE
  "CMakeFiles/test_c_backend.dir/test_c_backend.cpp.o"
  "CMakeFiles/test_c_backend.dir/test_c_backend.cpp.o.d"
  "test_c_backend"
  "test_c_backend.pdb"
  "test_c_backend[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_c_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
