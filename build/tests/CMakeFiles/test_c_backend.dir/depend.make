# Empty dependencies file for test_c_backend.
# This may be replaced when dependencies are built.
