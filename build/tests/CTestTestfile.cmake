# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_expr[1]_include.cmake")
include("/root/repo/build/tests/test_chem[1]_include.cmake")
include("/root/repo/build/tests/test_rdl[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_odegen[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_codegen_vm[1]_include.cmake")
include("/root/repo/build/tests/test_solver[1]_include.cmake")
include("/root/repo/build/tests/test_nlopt[1]_include.cmake")
include("/root/repo/build/tests/test_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_models[1]_include.cmake")
include("/root/repo/build/tests/test_estimator[1]_include.cmake")
include("/root/repo/build/tests/test_paper_figures[1]_include.cmake")
include("/root/repo/build/tests/test_jacobian[1]_include.cmake")
include("/root/repo/build/tests/test_gmres[1]_include.cmake")
include("/root/repo/build/tests/test_arrhenius[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_c_backend[1]_include.cmake")
include("/root/repo/build/tests/test_sparse[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_network_io[1]_include.cmake")
include("/root/repo/build/tests/test_molecule_corpus[1]_include.cmake")
include("/root/repo/build/tests/test_table1_shape[1]_include.cmake")
