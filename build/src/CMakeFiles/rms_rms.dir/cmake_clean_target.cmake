file(REMOVE_RECURSE
  "librms_rms.a"
)
