file(REMOVE_RECURSE
  "CMakeFiles/rms_rms.dir/rms/suite.cpp.o"
  "CMakeFiles/rms_rms.dir/rms/suite.cpp.o.d"
  "librms_rms.a"
  "librms_rms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_rms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
