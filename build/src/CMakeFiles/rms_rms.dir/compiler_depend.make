# Empty compiler generated dependencies file for rms_rms.
# This may be replaced when dependencies are built.
