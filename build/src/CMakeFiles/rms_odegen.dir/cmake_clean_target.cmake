file(REMOVE_RECURSE
  "librms_odegen.a"
)
