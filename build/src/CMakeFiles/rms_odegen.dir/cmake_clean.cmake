file(REMOVE_RECURSE
  "CMakeFiles/rms_odegen.dir/odegen/conservation.cpp.o"
  "CMakeFiles/rms_odegen.dir/odegen/conservation.cpp.o.d"
  "CMakeFiles/rms_odegen.dir/odegen/equation_table.cpp.o"
  "CMakeFiles/rms_odegen.dir/odegen/equation_table.cpp.o.d"
  "librms_odegen.a"
  "librms_odegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_odegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
