# Empty dependencies file for rms_odegen.
# This may be replaced when dependencies are built.
