file(REMOVE_RECURSE
  "librms_support.a"
)
