file(REMOVE_RECURSE
  "CMakeFiles/rms_support.dir/support/rng.cpp.o"
  "CMakeFiles/rms_support.dir/support/rng.cpp.o.d"
  "CMakeFiles/rms_support.dir/support/status.cpp.o"
  "CMakeFiles/rms_support.dir/support/status.cpp.o.d"
  "CMakeFiles/rms_support.dir/support/strings.cpp.o"
  "CMakeFiles/rms_support.dir/support/strings.cpp.o.d"
  "librms_support.a"
  "librms_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
