# Empty dependencies file for rms_support.
# This may be replaced when dependencies are built.
