
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/solver/adams_gear.cpp" "src/CMakeFiles/rms_solver.dir/solver/adams_gear.cpp.o" "gcc" "src/CMakeFiles/rms_solver.dir/solver/adams_gear.cpp.o.d"
  "/root/repo/src/solver/fornberg.cpp" "src/CMakeFiles/rms_solver.dir/solver/fornberg.cpp.o" "gcc" "src/CMakeFiles/rms_solver.dir/solver/fornberg.cpp.o.d"
  "/root/repo/src/solver/ode.cpp" "src/CMakeFiles/rms_solver.dir/solver/ode.cpp.o" "gcc" "src/CMakeFiles/rms_solver.dir/solver/ode.cpp.o.d"
  "/root/repo/src/solver/rk_verner.cpp" "src/CMakeFiles/rms_solver.dir/solver/rk_verner.cpp.o" "gcc" "src/CMakeFiles/rms_solver.dir/solver/rk_verner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
