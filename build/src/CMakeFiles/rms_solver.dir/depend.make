# Empty dependencies file for rms_solver.
# This may be replaced when dependencies are built.
