file(REMOVE_RECURSE
  "CMakeFiles/rms_solver.dir/solver/adams_gear.cpp.o"
  "CMakeFiles/rms_solver.dir/solver/adams_gear.cpp.o.d"
  "CMakeFiles/rms_solver.dir/solver/fornberg.cpp.o"
  "CMakeFiles/rms_solver.dir/solver/fornberg.cpp.o.d"
  "CMakeFiles/rms_solver.dir/solver/ode.cpp.o"
  "CMakeFiles/rms_solver.dir/solver/ode.cpp.o.d"
  "CMakeFiles/rms_solver.dir/solver/rk_verner.cpp.o"
  "CMakeFiles/rms_solver.dir/solver/rk_verner.cpp.o.d"
  "librms_solver.a"
  "librms_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
