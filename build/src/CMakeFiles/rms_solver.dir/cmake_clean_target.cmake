file(REMOVE_RECURSE
  "librms_solver.a"
)
