# Empty compiler generated dependencies file for rms_codegen.
# This may be replaced when dependencies are built.
