file(REMOVE_RECURSE
  "librms_codegen.a"
)
