file(REMOVE_RECURSE
  "CMakeFiles/rms_codegen.dir/codegen/bytecode_emitter.cpp.o"
  "CMakeFiles/rms_codegen.dir/codegen/bytecode_emitter.cpp.o.d"
  "CMakeFiles/rms_codegen.dir/codegen/c_emitter.cpp.o"
  "CMakeFiles/rms_codegen.dir/codegen/c_emitter.cpp.o.d"
  "CMakeFiles/rms_codegen.dir/codegen/jacobian.cpp.o"
  "CMakeFiles/rms_codegen.dir/codegen/jacobian.cpp.o.d"
  "CMakeFiles/rms_codegen.dir/codegen/reference_backend.cpp.o"
  "CMakeFiles/rms_codegen.dir/codegen/reference_backend.cpp.o.d"
  "librms_codegen.a"
  "librms_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
