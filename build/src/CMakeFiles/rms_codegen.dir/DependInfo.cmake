
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/codegen/bytecode_emitter.cpp" "src/CMakeFiles/rms_codegen.dir/codegen/bytecode_emitter.cpp.o" "gcc" "src/CMakeFiles/rms_codegen.dir/codegen/bytecode_emitter.cpp.o.d"
  "/root/repo/src/codegen/c_emitter.cpp" "src/CMakeFiles/rms_codegen.dir/codegen/c_emitter.cpp.o" "gcc" "src/CMakeFiles/rms_codegen.dir/codegen/c_emitter.cpp.o.d"
  "/root/repo/src/codegen/jacobian.cpp" "src/CMakeFiles/rms_codegen.dir/codegen/jacobian.cpp.o" "gcc" "src/CMakeFiles/rms_codegen.dir/codegen/jacobian.cpp.o.d"
  "/root/repo/src/codegen/reference_backend.cpp" "src/CMakeFiles/rms_codegen.dir/codegen/reference_backend.cpp.o" "gcc" "src/CMakeFiles/rms_codegen.dir/codegen/reference_backend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_odegen.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_rcip.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_rdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_chem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
