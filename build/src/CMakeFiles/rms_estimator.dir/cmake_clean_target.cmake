file(REMOVE_RECURSE
  "librms_estimator.a"
)
