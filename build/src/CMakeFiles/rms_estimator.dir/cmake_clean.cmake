file(REMOVE_RECURSE
  "CMakeFiles/rms_estimator.dir/estimator/estimator.cpp.o"
  "CMakeFiles/rms_estimator.dir/estimator/estimator.cpp.o.d"
  "CMakeFiles/rms_estimator.dir/estimator/objective.cpp.o"
  "CMakeFiles/rms_estimator.dir/estimator/objective.cpp.o.d"
  "librms_estimator.a"
  "librms_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
