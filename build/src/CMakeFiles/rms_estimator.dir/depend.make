# Empty dependencies file for rms_estimator.
# This may be replaced when dependencies are built.
