file(REMOVE_RECURSE
  "librms_data.a"
)
