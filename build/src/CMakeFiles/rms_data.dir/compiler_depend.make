# Empty compiler generated dependencies file for rms_data.
# This may be replaced when dependencies are built.
