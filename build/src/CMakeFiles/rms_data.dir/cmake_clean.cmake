file(REMOVE_RECURSE
  "CMakeFiles/rms_data.dir/data/experiment.cpp.o"
  "CMakeFiles/rms_data.dir/data/experiment.cpp.o.d"
  "CMakeFiles/rms_data.dir/data/synthetic.cpp.o"
  "CMakeFiles/rms_data.dir/data/synthetic.cpp.o.d"
  "librms_data.a"
  "librms_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
