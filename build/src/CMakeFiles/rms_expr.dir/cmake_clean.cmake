file(REMOVE_RECURSE
  "CMakeFiles/rms_expr.dir/expr/factored.cpp.o"
  "CMakeFiles/rms_expr.dir/expr/factored.cpp.o.d"
  "CMakeFiles/rms_expr.dir/expr/product.cpp.o"
  "CMakeFiles/rms_expr.dir/expr/product.cpp.o.d"
  "librms_expr.a"
  "librms_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
