file(REMOVE_RECURSE
  "librms_expr.a"
)
