# Empty compiler generated dependencies file for rms_expr.
# This may be replaced when dependencies are built.
