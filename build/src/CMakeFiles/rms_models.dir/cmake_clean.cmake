file(REMOVE_RECURSE
  "CMakeFiles/rms_models.dir/models/test_cases.cpp.o"
  "CMakeFiles/rms_models.dir/models/test_cases.cpp.o.d"
  "CMakeFiles/rms_models.dir/models/vulcanization.cpp.o"
  "CMakeFiles/rms_models.dir/models/vulcanization.cpp.o.d"
  "librms_models.a"
  "librms_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
