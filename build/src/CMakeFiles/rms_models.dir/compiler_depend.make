# Empty compiler generated dependencies file for rms_models.
# This may be replaced when dependencies are built.
