file(REMOVE_RECURSE
  "librms_models.a"
)
