file(REMOVE_RECURSE
  "librms_network.a"
)
