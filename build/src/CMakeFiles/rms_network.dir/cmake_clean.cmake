file(REMOVE_RECURSE
  "CMakeFiles/rms_network.dir/network/generator.cpp.o"
  "CMakeFiles/rms_network.dir/network/generator.cpp.o.d"
  "CMakeFiles/rms_network.dir/network/io.cpp.o"
  "CMakeFiles/rms_network.dir/network/io.cpp.o.d"
  "CMakeFiles/rms_network.dir/network/registry.cpp.o"
  "CMakeFiles/rms_network.dir/network/registry.cpp.o.d"
  "librms_network.a"
  "librms_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
