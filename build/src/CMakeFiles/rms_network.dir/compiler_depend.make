# Empty compiler generated dependencies file for rms_network.
# This may be replaced when dependencies are built.
