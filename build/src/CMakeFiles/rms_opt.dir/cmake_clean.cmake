file(REMOVE_RECURSE
  "CMakeFiles/rms_opt.dir/opt/cse.cpp.o"
  "CMakeFiles/rms_opt.dir/opt/cse.cpp.o.d"
  "CMakeFiles/rms_opt.dir/opt/distopt.cpp.o"
  "CMakeFiles/rms_opt.dir/opt/distopt.cpp.o.d"
  "CMakeFiles/rms_opt.dir/opt/optimized_system.cpp.o"
  "CMakeFiles/rms_opt.dir/opt/optimized_system.cpp.o.d"
  "CMakeFiles/rms_opt.dir/opt/pipeline.cpp.o"
  "CMakeFiles/rms_opt.dir/opt/pipeline.cpp.o.d"
  "librms_opt.a"
  "librms_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
