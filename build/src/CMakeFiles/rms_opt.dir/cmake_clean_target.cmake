file(REMOVE_RECURSE
  "librms_opt.a"
)
