# Empty dependencies file for rms_opt.
# This may be replaced when dependencies are built.
