file(REMOVE_RECURSE
  "CMakeFiles/rms_parallel.dir/parallel/minimpi.cpp.o"
  "CMakeFiles/rms_parallel.dir/parallel/minimpi.cpp.o.d"
  "CMakeFiles/rms_parallel.dir/parallel/schedule.cpp.o"
  "CMakeFiles/rms_parallel.dir/parallel/schedule.cpp.o.d"
  "CMakeFiles/rms_parallel.dir/parallel/sim_cluster.cpp.o"
  "CMakeFiles/rms_parallel.dir/parallel/sim_cluster.cpp.o.d"
  "librms_parallel.a"
  "librms_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
