# Empty compiler generated dependencies file for rms_parallel.
# This may be replaced when dependencies are built.
