
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/parallel/minimpi.cpp" "src/CMakeFiles/rms_parallel.dir/parallel/minimpi.cpp.o" "gcc" "src/CMakeFiles/rms_parallel.dir/parallel/minimpi.cpp.o.d"
  "/root/repo/src/parallel/schedule.cpp" "src/CMakeFiles/rms_parallel.dir/parallel/schedule.cpp.o" "gcc" "src/CMakeFiles/rms_parallel.dir/parallel/schedule.cpp.o.d"
  "/root/repo/src/parallel/sim_cluster.cpp" "src/CMakeFiles/rms_parallel.dir/parallel/sim_cluster.cpp.o" "gcc" "src/CMakeFiles/rms_parallel.dir/parallel/sim_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
