file(REMOVE_RECURSE
  "librms_parallel.a"
)
