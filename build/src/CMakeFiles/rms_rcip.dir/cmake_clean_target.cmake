file(REMOVE_RECURSE
  "librms_rcip.a"
)
