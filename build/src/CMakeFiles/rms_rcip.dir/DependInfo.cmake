
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rcip/rate_table.cpp" "src/CMakeFiles/rms_rcip.dir/rcip/rate_table.cpp.o" "gcc" "src/CMakeFiles/rms_rcip.dir/rcip/rate_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_network.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_rdl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/rms_chem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
