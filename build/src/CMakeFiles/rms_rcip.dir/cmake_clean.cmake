file(REMOVE_RECURSE
  "CMakeFiles/rms_rcip.dir/rcip/rate_table.cpp.o"
  "CMakeFiles/rms_rcip.dir/rcip/rate_table.cpp.o.d"
  "librms_rcip.a"
  "librms_rcip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_rcip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
