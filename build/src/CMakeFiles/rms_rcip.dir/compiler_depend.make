# Empty compiler generated dependencies file for rms_rcip.
# This may be replaced when dependencies are built.
