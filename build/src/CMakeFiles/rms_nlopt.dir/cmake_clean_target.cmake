file(REMOVE_RECURSE
  "librms_nlopt.a"
)
