file(REMOVE_RECURSE
  "CMakeFiles/rms_nlopt.dir/nlopt/levmar.cpp.o"
  "CMakeFiles/rms_nlopt.dir/nlopt/levmar.cpp.o.d"
  "librms_nlopt.a"
  "librms_nlopt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_nlopt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
