# Empty dependencies file for rms_nlopt.
# This may be replaced when dependencies are built.
