# Empty dependencies file for rms_vm.
# This may be replaced when dependencies are built.
