file(REMOVE_RECURSE
  "librms_vm.a"
)
