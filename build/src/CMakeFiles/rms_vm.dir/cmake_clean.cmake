file(REMOVE_RECURSE
  "CMakeFiles/rms_vm.dir/vm/interpreter.cpp.o"
  "CMakeFiles/rms_vm.dir/vm/interpreter.cpp.o.d"
  "CMakeFiles/rms_vm.dir/vm/program.cpp.o"
  "CMakeFiles/rms_vm.dir/vm/program.cpp.o.d"
  "librms_vm.a"
  "librms_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
