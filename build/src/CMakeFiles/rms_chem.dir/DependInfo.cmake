
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chem/canonical.cpp" "src/CMakeFiles/rms_chem.dir/chem/canonical.cpp.o" "gcc" "src/CMakeFiles/rms_chem.dir/chem/canonical.cpp.o.d"
  "/root/repo/src/chem/edit.cpp" "src/CMakeFiles/rms_chem.dir/chem/edit.cpp.o" "gcc" "src/CMakeFiles/rms_chem.dir/chem/edit.cpp.o.d"
  "/root/repo/src/chem/element.cpp" "src/CMakeFiles/rms_chem.dir/chem/element.cpp.o" "gcc" "src/CMakeFiles/rms_chem.dir/chem/element.cpp.o.d"
  "/root/repo/src/chem/molecule.cpp" "src/CMakeFiles/rms_chem.dir/chem/molecule.cpp.o" "gcc" "src/CMakeFiles/rms_chem.dir/chem/molecule.cpp.o.d"
  "/root/repo/src/chem/pattern.cpp" "src/CMakeFiles/rms_chem.dir/chem/pattern.cpp.o" "gcc" "src/CMakeFiles/rms_chem.dir/chem/pattern.cpp.o.d"
  "/root/repo/src/chem/smiles.cpp" "src/CMakeFiles/rms_chem.dir/chem/smiles.cpp.o" "gcc" "src/CMakeFiles/rms_chem.dir/chem/smiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
