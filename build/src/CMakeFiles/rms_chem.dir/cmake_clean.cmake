file(REMOVE_RECURSE
  "CMakeFiles/rms_chem.dir/chem/canonical.cpp.o"
  "CMakeFiles/rms_chem.dir/chem/canonical.cpp.o.d"
  "CMakeFiles/rms_chem.dir/chem/edit.cpp.o"
  "CMakeFiles/rms_chem.dir/chem/edit.cpp.o.d"
  "CMakeFiles/rms_chem.dir/chem/element.cpp.o"
  "CMakeFiles/rms_chem.dir/chem/element.cpp.o.d"
  "CMakeFiles/rms_chem.dir/chem/molecule.cpp.o"
  "CMakeFiles/rms_chem.dir/chem/molecule.cpp.o.d"
  "CMakeFiles/rms_chem.dir/chem/pattern.cpp.o"
  "CMakeFiles/rms_chem.dir/chem/pattern.cpp.o.d"
  "CMakeFiles/rms_chem.dir/chem/smiles.cpp.o"
  "CMakeFiles/rms_chem.dir/chem/smiles.cpp.o.d"
  "librms_chem.a"
  "librms_chem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_chem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
