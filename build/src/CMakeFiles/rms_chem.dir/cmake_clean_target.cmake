file(REMOVE_RECURSE
  "librms_chem.a"
)
