# Empty compiler generated dependencies file for rms_chem.
# This may be replaced when dependencies are built.
