# Empty dependencies file for rms_rdl.
# This may be replaced when dependencies are built.
