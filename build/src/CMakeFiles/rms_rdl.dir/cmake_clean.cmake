file(REMOVE_RECURSE
  "CMakeFiles/rms_rdl.dir/rdl/lexer.cpp.o"
  "CMakeFiles/rms_rdl.dir/rdl/lexer.cpp.o.d"
  "CMakeFiles/rms_rdl.dir/rdl/parser.cpp.o"
  "CMakeFiles/rms_rdl.dir/rdl/parser.cpp.o.d"
  "CMakeFiles/rms_rdl.dir/rdl/sema.cpp.o"
  "CMakeFiles/rms_rdl.dir/rdl/sema.cpp.o.d"
  "librms_rdl.a"
  "librms_rdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_rdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
