file(REMOVE_RECURSE
  "librms_rdl.a"
)
