file(REMOVE_RECURSE
  "CMakeFiles/rms_linalg.dir/linalg/gmres.cpp.o"
  "CMakeFiles/rms_linalg.dir/linalg/gmres.cpp.o.d"
  "CMakeFiles/rms_linalg.dir/linalg/lu.cpp.o"
  "CMakeFiles/rms_linalg.dir/linalg/lu.cpp.o.d"
  "CMakeFiles/rms_linalg.dir/linalg/matrix.cpp.o"
  "CMakeFiles/rms_linalg.dir/linalg/matrix.cpp.o.d"
  "CMakeFiles/rms_linalg.dir/linalg/qr.cpp.o"
  "CMakeFiles/rms_linalg.dir/linalg/qr.cpp.o.d"
  "CMakeFiles/rms_linalg.dir/linalg/sparse.cpp.o"
  "CMakeFiles/rms_linalg.dir/linalg/sparse.cpp.o.d"
  "librms_linalg.a"
  "librms_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rms_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
