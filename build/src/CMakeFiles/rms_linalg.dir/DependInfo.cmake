
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/gmres.cpp" "src/CMakeFiles/rms_linalg.dir/linalg/gmres.cpp.o" "gcc" "src/CMakeFiles/rms_linalg.dir/linalg/gmres.cpp.o.d"
  "/root/repo/src/linalg/lu.cpp" "src/CMakeFiles/rms_linalg.dir/linalg/lu.cpp.o" "gcc" "src/CMakeFiles/rms_linalg.dir/linalg/lu.cpp.o.d"
  "/root/repo/src/linalg/matrix.cpp" "src/CMakeFiles/rms_linalg.dir/linalg/matrix.cpp.o" "gcc" "src/CMakeFiles/rms_linalg.dir/linalg/matrix.cpp.o.d"
  "/root/repo/src/linalg/qr.cpp" "src/CMakeFiles/rms_linalg.dir/linalg/qr.cpp.o" "gcc" "src/CMakeFiles/rms_linalg.dir/linalg/qr.cpp.o.d"
  "/root/repo/src/linalg/sparse.cpp" "src/CMakeFiles/rms_linalg.dir/linalg/sparse.cpp.o" "gcc" "src/CMakeFiles/rms_linalg.dir/linalg/sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/rms_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
