file(REMOVE_RECURSE
  "librms_linalg.a"
)
