# Empty dependencies file for rms_linalg.
# This may be replaced when dependencies are built.
