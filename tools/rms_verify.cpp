// rms_verify — differential verification driver for the compiler/VM stack.
//
// Usage:
//   rms_verify [options] [MODEL.rdl ...]
//
// Modes (pick one; default is one-shot verification):
//   (default)        run the differential oracle + metamorphic invariants on
//                    the built-in synthetic test cases and any MODEL.rdl
//                    arguments
//   --fuzz N         structure-aware fuzz campaign: N random/mutated RDL
//                    models through the full pipeline, each cross-checked;
//                    divergent cases are shrunk to minimal reproducers
//   --reduce FILE    shrink a known-divergent model to a minimal reproducer
//                    (prints the reduced RDL on stdout)
//
// Options:
//   --seed S         RNG seed for states, rate vectors and fuzz inputs
//                    (default 1; every run is reproducible from its seed)
//   --trials N       random (t, y, k) draws per model (default 8)
//   --max-findings N stop a fuzz run after N divergent cases (default 5)
//   --no-jacobian    skip the compiled-Jacobian cross-check
//   --no-c-backend   skip the native paths (AOT backend: cc + dlopen)
//   --native         force the native paths ON in fuzz mode (they default
//                    off there; the backend's .so cache keeps the per-case
//                    compile cost bounded)
//   --no-invariants  skip conservation/thread/opt-level/seed-switch checks
//   --no-bisect      report divergences without stage attribution
//   -v               verbose (per-model path lists, fuzz progress)
//
// Exit status: 0 everything agreed, 1 usage error, 2 divergence found,
//              3 input did not compile.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "models/test_cases.hpp"
#include "support/strings.hpp"
#include "verify/fuzzer.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

namespace {

using namespace rms;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--fuzz N | --reduce FILE] [--seed S] [--trials N]\n"
               "          [--max-findings N] [--no-jacobian] [--no-c-backend]"
               " [--native]\n"
               "          [--no-invariants] [--no-bisect] [-v]"
               " [MODEL.rdl ...]\n",
               argv0);
  return 1;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

struct Flags {
  std::uint64_t seed = 1;
  int trials = 8;
  int fuzz_iterations = -1;  ///< -1 = not a fuzz run
  int max_findings = 5;
  std::string reduce_path;
  bool jacobian = true;
  bool c_backend = true;
  bool native_lane = false;  ///< force native paths on in fuzz mode
  bool invariants = true;
  bool bisect = true;
  bool verbose = false;
  std::vector<std::string> model_paths;
};

verify::OracleOptions oracle_options(const Flags& flags) {
  verify::OracleOptions options;
  options.seed = flags.seed;
  options.trials = flags.trials;
  options.check_jacobian = flags.jacobian;
  options.check_c_backend = flags.c_backend;
  options.bisect = flags.bisect;
  return options;
}

/// One-shot oracle + invariants over a built model; prints and counts.
int verify_one(const models::BuiltModel& built, const std::string& name,
               const Flags& flags, int& divergences) {
  const verify::DifferentialOracle oracle(oracle_options(flags));
  verify::OracleReport report = oracle.check_model(built, name);
  if (flags.invariants) {
    verify::InvariantOptions invariant_options;
    invariant_options.seed = flags.seed;
    std::vector<verify::Divergence> violations =
        verify::check_invariants(built, name, invariant_options);
    report.divergences.insert(report.divergences.end(), violations.begin(),
                              violations.end());
  }
  divergences += static_cast<int>(report.divergences.size());
  if (flags.verbose || !report.ok()) {
    std::fputs(report.to_string().c_str(), stdout);
  } else {
    std::printf("%-24s ok (%d trials, %zu paths)\n", name.c_str(),
                report.trials, report.paths_checked.size());
  }
  return report.ok() ? 0 : 2;
}

int run_one_shot(const Flags& flags) {
  int divergences = 0;
  // Built-in synthetic test cases: fixed shapes covering the paper's
  // reaction families at three sizes.
  const struct {
    const char* name;
    models::SyntheticNetworkConfig config;
  } kBuiltins[] = {
      {"builtin:tc-n2-v3", {2, 3}},
      {"builtin:tc-n3-v5", {3, 5}},
      {"builtin:tc-n4-v7", {4, 7}},
  };
  if (flags.model_paths.empty()) {
    for (const auto& spec : kBuiltins) {
      auto built = models::build_test_case(spec.config);
      if (!built.is_ok()) {
        std::fprintf(stderr, "rms_verify: %s: %s\n", spec.name,
                     built.status().to_string().c_str());
        return 3;
      }
      verify_one(*built, spec.name, flags, divergences);
    }
  }
  for (const std::string& path : flags.model_paths) {
    std::string source;
    if (!read_file(path, source)) {
      std::fprintf(stderr, "rms_verify: cannot open %s\n", path.c_str());
      return 3;
    }
    auto built = verify::build_model_from_rdl(source);
    if (!built.is_ok()) {
      std::fprintf(stderr, "rms_verify: %s: %s\n", path.c_str(),
                   built.status().to_string().c_str());
      return 3;
    }
    verify_one(*built, path, flags, divergences);
  }
  if (divergences > 0) {
    std::printf("FAIL: %d divergence%s\n", divergences,
                divergences == 1 ? "" : "s");
    return 2;
  }
  std::printf("all paths agree\n");
  return 0;
}

int run_fuzz_mode(const Flags& flags) {
  verify::FuzzOptions options;
  options.seed = flags.seed;
  options.iterations = flags.fuzz_iterations;
  options.max_findings = flags.max_findings;
  options.oracle.seed = flags.seed;
  options.oracle.trials = std::min(flags.trials, 4);
  options.oracle.bisect = flags.bisect;
  options.oracle.check_jacobian = flags.jacobian;
  // Fuzz defaults keep the native paths off (each distinct case costs one
  // compiler run); --native turns them on, --no-c-backend wins.
  if (flags.native_lane && flags.c_backend) {
    options.oracle.check_c_backend = true;
  }
  options.run_invariants = flags.invariants;
  if (flags.verbose) {
    options.on_progress = [](int iteration, int compiled, int divergent) {
      if ((iteration + 1) % 50 == 0) {
        std::printf("  ... %d iterations, %d compiled, %d divergent\n",
                    iteration + 1, compiled, divergent);
      }
    };
  }

  std::printf("fuzzing: %d iterations, seed %llu\n", options.iterations,
              static_cast<unsigned long long>(options.seed));
  const verify::FuzzResult result = verify::run_fuzz(options);
  std::printf("fuzz: %d iterations, %d compiled, %d rejected cleanly, "
              "%zu divergent\n",
              result.iterations, result.compiled, result.rejected,
              result.findings.size());
  if (result.ok()) return 0;

  for (const verify::FuzzCase& finding : result.findings) {
    std::printf(
        "\n== finding: iteration %d (reproduce with --fuzz 1 --seed-raw "
        "%llu) ==\n",
        finding.iteration,
        static_cast<unsigned long long>(finding.iteration_seed));
    for (const verify::Divergence& d : finding.divergences) {
      std::printf("  %s\n", d.to_string().c_str());
    }
    verify::OracleOptions reduce_options = options.oracle;
    const std::string reduced = verify::reduce_divergence(
        finding.source, reduce_options, options.generator);
    std::printf("--- minimal reproducer (%zu -> %zu bytes) ---\n%s",
                finding.source.size(), reduced.size(), reduced.c_str());
  }
  return 2;
}

int run_reduce(const Flags& flags) {
  std::string source;
  if (!read_file(flags.reduce_path, source)) {
    std::fprintf(stderr, "rms_verify: cannot open %s\n",
                 flags.reduce_path.c_str());
    return 3;
  }
  verify::OracleOptions options = oracle_options(flags);
  auto built = verify::build_model_from_rdl(source);
  if (!built.is_ok()) {
    std::fprintf(stderr, "rms_verify: %s: %s\n", flags.reduce_path.c_str(),
                 built.status().to_string().c_str());
    return 3;
  }
  const verify::DifferentialOracle oracle(options);
  if (oracle.check_model(*built, flags.reduce_path).ok()) {
    std::printf("input does not diverge; nothing to reduce\n");
    return 0;
  }
  const std::string reduced = verify::reduce_divergence(source, options, {});
  std::fprintf(stderr, "reduced %zu -> %zu bytes\n", source.size(),
               reduced.size());
  std::fputs(reduced.c_str(), stdout);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      if (arg.rfind(prefix, 0) == 0 && arg.size() > n && arg[n] == '=') {
        return arg.c_str() + n + 1;
      }
      if (arg == prefix && i + 1 < argc) return argv[++i];
      return nullptr;
    };
    unsigned long v = 0;
    if (const char* s = value("--fuzz")) {
      if (!support::parse_uint(s, v)) return usage(argv[0]);
      flags.fuzz_iterations = static_cast<int>(v);
    } else if (const char* s2 = value("--seed")) {
      if (!support::parse_uint(s2, v)) return usage(argv[0]);
      flags.seed = v;
    } else if (const char* s3 = value("--seed-raw")) {
      // Reproduces a single fuzz finding: the printed iteration seed is the
      // derived per-iteration value, so undo the derivation for i = 0.
      if (!support::parse_uint(s3, v)) return usage(argv[0]);
      flags.seed = verify::unmix_iteration_seed(v);
    } else if (const char* s4 = value("--trials")) {
      if (!support::parse_uint(s4, v)) return usage(argv[0]);
      flags.trials = static_cast<int>(v);
    } else if (const char* s5 = value("--max-findings")) {
      if (!support::parse_uint(s5, v)) return usage(argv[0]);
      flags.max_findings = static_cast<int>(v);
    } else if (const char* s6 = value("--reduce")) {
      flags.reduce_path = s6;
    } else if (arg == "--no-jacobian") {
      flags.jacobian = false;
    } else if (arg == "--no-c-backend") {
      flags.c_backend = false;
    } else if (arg == "--native") {
      flags.native_lane = true;
    } else if (arg == "--no-invariants") {
      flags.invariants = false;
    } else if (arg == "--no-bisect") {
      flags.bisect = false;
    } else if (arg == "-v" || arg == "--verbose") {
      flags.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      flags.model_paths.push_back(arg);
    }
  }

  if (!flags.reduce_path.empty()) return run_reduce(flags);
  if (flags.fuzz_iterations >= 0) return run_fuzz_mode(flags);
  return run_one_shot(flags);
}
