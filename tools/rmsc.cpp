// rmsc — the Reaction Modeling Suite compiler driver.
//
// Usage:
//   rmsc MODEL.rdl [options]
//
// Options:
//   --emit=c          write the optimized C function (default)
//   --emit=c-raw      write the unoptimized C function
//   --emit=c-batch    write the batched multi-state C function
//   --emit=c-jac      write the analytic-Jacobian CSR-fill C function
//   --emit=network    print the reaction network (Fig. 3 form)
//   --emit=odes       print the generated ODEs (Fig. 5 form)
//   --emit=optimized  print the optimized equations + temporaries
//   --emit=asm        print the bytecode disassembly
//   --emit=stats      print pipeline statistics only
//   --run[=T]         integrate to time T (default 10) and print the final
//                     concentrations instead of emitting code
//   --backend=B       execution backend for --run: vm | native | auto
//                     (default auto: $RMS_BACKEND, else native with VM
//                     fallback; see docs/native_backend.md)
//   -o FILE           output file (default: stdout)
//   --no-distopt      disable the distributive optimization
//   --no-cse          disable CSE temporaries
//   --max-species=N   reaction network safety cap (default 20000)
//   --function=NAME   emitted C function name (default rms_ode_rhs)
//   --save-network=F  write the generated reaction network to F (cache)
//   --load-network=F  skip network generation: reuse a cached network
//                     (constants and rules still come from MODEL.rdl)
//
// Exit status: 0 ok, 1 usage error, 2 compilation error, 3 solver error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "codegen/c_emitter.hpp"
#include "codegen/jacobian.hpp"
#include "network/io.hpp"
#include "odegen/equation_table.hpp"
#include "rms/execution.hpp"
#include "rms/suite.hpp"
#include "solver/adams_gear.hpp"
#include "support/strings.hpp"

namespace {

using namespace rms;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s MODEL.rdl [--emit=c|c-raw|c-batch|c-jac|network|"
               "odes|optimized|asm|stats] [-o FILE]\n"
               "          [--run[=T]] [--backend=vm|native|auto]\n"
               "          [--no-distopt] [--no-cse] [--max-species=N] "
               "[--function=NAME]\n",
               argv0);
  return 1;
}

/// --run: integrate the model on the selected backend and print the final
/// state (one "name concentration" line per species).
int run_model(const models::BuiltModel& built, Backend backend,
              double t_end, std::FILE* out) {
  ExecutionOptions exec_options;
  exec_options.backend = backend;
  const Execution exec = Execution::create(built, exec_options);
  std::fprintf(stderr, "rmsc: backend=%s%s%s\n", backend_name(exec.backend()),
               exec.fallback_reason().empty() ? "" : " (fallback: ",
               exec.fallback_reason().empty()
                   ? ""
                   : (exec.fallback_reason() + ")").c_str());

  const std::vector<double> rates = built.rates.values();
  solver::OdeSystem system = exec.make_system(&rates);
  solver::IntegrationOptions integration;
  if (system.sparse_jacobian) {
    integration.newton_linear_solver = solver::NewtonLinearSolver::kSparseLu;
  }
  solver::AdamsGear integrator(system, integration);
  auto status = integrator.initialize(0.0, built.odes.init_concentrations);
  std::vector<double> y;
  if (status.is_ok()) status = integrator.advance_to(t_end, y);
  if (!status.is_ok()) {
    std::fprintf(stderr, "rmsc: solve failed: %s\n",
                 status.to_string().c_str());
    return 3;
  }
  for (std::size_t i = 0; i < y.size(); ++i) {
    const std::string& name = i < built.odes.species_names.size()
                                  ? built.odes.species_names[i]
                                  : support::str_format("y[%zu]", i);
    std::fprintf(out, "%-24s %.12g\n", name.c_str(), y[i]);
  }
  const solver::IntegrationStats& stats = integrator.stats();
  std::fprintf(stderr,
               "rmsc: t=%g steps=%zu rhs=%zu jacobians=%zu newton=%zu\n",
               t_end, stats.steps, stats.rhs_evaluations,
               stats.jacobian_evaluations, stats.newton_iterations);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string input_path;
  std::string output_path;
  std::string emit = "c";
  std::string function_name = "rms_ode_rhs";
  std::string save_network_path;
  std::string load_network_path;
  bool distopt = true;
  bool cse = true;
  bool run = false;
  double run_t_end = 10.0;
  Backend backend = Backend::kAuto;
  std::size_t max_species = 20000;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-o") {
      if (++i >= argc) return usage(argv[0]);
      output_path = argv[i];
    } else if (arg.rfind("--emit=", 0) == 0) {
      emit = arg.substr(7);
    } else if (arg == "--run") {
      run = true;
    } else if (arg.rfind("--run=", 0) == 0) {
      run = true;
      if (!support::parse_double(arg.substr(6), run_t_end)) {
        return usage(argv[0]);
      }
    } else if (arg.rfind("--backend=", 0) == 0) {
      if (!parse_backend(arg.substr(10), backend)) return usage(argv[0]);
    } else if (arg.rfind("--function=", 0) == 0) {
      function_name = arg.substr(11);
    } else if (arg.rfind("--save-network=", 0) == 0) {
      save_network_path = arg.substr(15);
    } else if (arg.rfind("--load-network=", 0) == 0) {
      load_network_path = arg.substr(15);
    } else if (arg == "--no-distopt") {
      distopt = false;
    } else if (arg == "--no-cse") {
      cse = false;
    } else if (arg.rfind("--max-species=", 0) == 0) {
      unsigned long v = 0;
      if (!support::parse_uint(arg.substr(14), v)) return usage(argv[0]);
      max_species = v;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else if (input_path.empty()) {
      input_path = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (input_path.empty()) return usage(argv[0]);

  std::ifstream in(input_path);
  if (!in) {
    std::fprintf(stderr, "rmsc: cannot open %s\n", input_path.c_str());
    return 2;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  network::GeneratorOptions generator_options;
  generator_options.max_species = max_species;
  support::Expected<models::BuiltModel> built = [&]() ->
      support::Expected<models::BuiltModel> {
    if (load_network_path.empty()) {
      return Suite::compile(buffer.str(), generator_options);
    }
    // Cached-network path: the RDL still provides constants (and is
    // validated), but generation is skipped.
    models::BuiltModel out;
    auto model = rdl::compile_rdl(buffer.str());
    if (!model.is_ok()) return model.status();
    out.model = std::move(model).value();
    auto net = network::read_network_file(load_network_path);
    if (!net.is_ok()) return net.status();
    out.network = std::move(net).value();
    auto rates = rcip::process_rate_constants(out.model, out.network);
    if (!rates.is_ok()) return rates.status();
    out.rates = std::move(rates).value();
    auto odes = odegen::generate_odes(out.network, out.rates,
                                      odegen::OdeGenOptions{true});
    if (!odes.is_ok()) return odes.status();
    out.odes = std::move(odes).value();
    auto raw = odegen::generate_odes(out.network, out.rates,
                                     odegen::OdeGenOptions{false});
    if (!raw.is_ok()) return raw.status();
    out.odes_raw = std::move(raw).value();
    auto status = models::finish_pipeline(out);
    if (!status.is_ok()) return status;
    return out;
  }();
  if (!built.is_ok()) {
    std::fprintf(stderr, "rmsc: %s: %s\n", input_path.c_str(),
                 built.status().to_string().c_str());
    return 2;
  }
  if (!save_network_path.empty()) {
    auto status = network::write_network_file(save_network_path,
                                              built->network);
    if (!status.is_ok()) {
      std::fprintf(stderr, "rmsc: %s\n", status.to_string().c_str());
      return 2;
    }
  }

  // Re-run the optimizer when stages are disabled (the facade runs the full
  // pipeline by default).
  if (!distopt || !cse) {
    opt::OptimizerOptions options;
    options.distributive = distopt;
    options.cse.enable_temporaries = cse;
    options.cse.enable_prefix_sharing = cse;
    built->optimized =
        opt::optimize(built->odes.table, built->equation_count(),
                      built->rates.size(), options, &built->report);
    built->report.before.multiplies = built->odes_raw.table.multiply_count();
    built->report.before.add_subs = built->odes_raw.table.add_sub_count();
    built->program_optimized = codegen::emit_optimized(built->optimized);
  }

  if (run) {
    std::FILE* out = stdout;
    if (!output_path.empty()) {
      out = std::fopen(output_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "rmsc: cannot write %s\n", output_path.c_str());
        return 2;
      }
    }
    const int rc = run_model(*built, backend, run_t_end, out);
    if (out != stdout) std::fclose(out);
    return rc;
  }

  std::string output;
  if (emit == "c") {
    output = codegen::emit_c_optimized(built->optimized, {function_name});
  } else if (emit == "c-raw") {
    output = codegen::emit_c_unoptimized(built->odes_raw.table,
                                         {function_name});
  } else if (emit == "c-batch") {
    output = codegen::emit_c_batch(built->optimized, {function_name + "_batch"});
  } else if (emit == "c-jac") {
    codegen::SymbolicJacobian jacobian =
        codegen::differentiate(built->odes.table, built->equation_count());
    const opt::OptimizedSystem jac_system = opt::optimize(
        jacobian.entries, built->equation_count(), built->rates.size());
    output = codegen::emit_c_jacobian(jac_system, {function_name + "_jac"});
  } else if (emit == "network") {
    output = built->network.to_string();
  } else if (emit == "odes") {
    output = built->odes.to_string();
  } else if (emit == "optimized") {
    output = built->optimized.to_string(&built->odes.species_names);
  } else if (emit == "asm") {
    output = built->program_optimized.disassemble();
  } else if (emit == "stats") {
    output = support::str_format(
        "species:            %zu\n"
        "reactions:          %zu\n"
        "rate constants:     %zu (canonical)\n"
        "equations:          %zu\n"
        "ops (unoptimized):  %zu mul, %zu add/sub\n"
        "ops (optimized):    %zu mul (%.2f%%), %zu add/sub (%.1f%%)\n"
        "temporaries:        %zu\n"
        "bytecode:           %zu instructions\n",
        built->network.species.size(), built->network.reactions.size(),
        built->rates.size(), built->equation_count(),
        built->report.before.multiplies, built->report.before.add_subs,
        built->report.after.multiplies, 100.0 * built->report.multiply_fraction(),
        built->report.after.add_subs, 100.0 * built->report.add_sub_fraction(),
        built->optimized.temp_count(), built->program_optimized.code.size());
  } else {
    std::fprintf(stderr, "rmsc: unknown --emit mode '%s'\n", emit.c_str());
    return 1;
  }

  if (output_path.empty()) {
    std::fputs(output.c_str(), stdout);
  } else {
    std::ofstream out(output_path);
    if (!out) {
      std::fprintf(stderr, "rmsc: cannot write %s\n", output_path.c_str());
      return 2;
    }
    out << output;
  }
  return 0;
}
