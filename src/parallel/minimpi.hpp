// MiniMpi: a faithful rank/communicator model over std::thread.
//
// The paper parallelizes the objective function with MPI (Fig. 9):
// MPI_Comm_rank / MPI_Comm_size, per-rank work on a block of data files, and
// MPI_Allreduce(SUM) of the error vectors. MiniMpi reproduces exactly that
// interface over shared-memory threads — run_parallel(n, fn) launches n
// ranks, each receiving a Communicator with rank(), size(), barrier(),
// all_reduce_sum(), broadcast() and point-to-point send/recv. On this
// single-core host the threads interleave rather than speed anything up;
// SimCluster (sim_cluster.hpp) handles the Table 2 speedup accounting.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "support/status.hpp"

namespace rms::parallel {

class MiniMpiWorld;

/// Per-rank handle (the MPI_COMM_WORLD analogue).
class Communicator {
 public:
  Communicator(MiniMpiWorld* world, int rank) : world_(world), rank_(rank) {}

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const;

  /// Blocks until every rank reached the barrier.
  void barrier();

  /// Element-wise sum across ranks; every rank receives the result
  /// (MPI_Allreduce with MPI_SUM). All ranks must pass the same length.
  void all_reduce_sum(std::vector<double>& inout);

  /// Scalar convenience overload.
  double all_reduce_sum(double value);

  /// Element-wise max across ranks.
  void all_reduce_max(std::vector<double>& inout);

  /// Root's buffer is copied to every rank.
  void broadcast(std::vector<double>& buffer, int root);

  /// Blocking tagged point-to-point message.
  void send(int destination, int tag, std::vector<double> payload);
  std::vector<double> recv(int source, int tag);

 private:
  MiniMpiWorld* world_;
  int rank_;
};

/// Launches `ranks` threads, each running fn(comm). Returns after all ranks
/// finish. Exceptions in a rank abort the program (matching MPI semantics
/// where a crashed rank kills the job).
void run_parallel(int ranks, const std::function<void(Communicator&)>& fn);

}  // namespace rms::parallel
