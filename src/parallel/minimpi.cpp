#include "parallel/minimpi.hpp"

#include <thread>

#include "support/assert.hpp"

namespace rms::parallel {

/// Shared state for one run_parallel() world.
class MiniMpiWorld {
 public:
  explicit MiniMpiWorld(int size) : size_(size) {}

  int size() const { return size_; }

  void barrier() {
    std::unique_lock<std::mutex> lock(mutex_);
    const std::uint64_t generation = barrier_generation_;
    if (++barrier_waiting_ == size_) {
      barrier_waiting_ = 0;
      ++barrier_generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return barrier_generation_ != generation; });
    }
  }

  /// Collective reduction: every rank contributes, the last one combines,
  /// then everyone picks up the result. Two barrier phases keep successive
  /// collectives from racing.
  void all_reduce(std::vector<double>& inout,
                  const std::function<void(std::vector<double>&,
                                           const std::vector<double>&)>& fold) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (reduce_waiting_ == 0) {
      reduce_buffer_ = inout;
    } else {
      RMS_CHECK_MSG(reduce_buffer_.size() == inout.size(),
                    "all_reduce length mismatch across ranks");
      fold(reduce_buffer_, inout);
    }
    const std::uint64_t generation = reduce_generation_;
    if (++reduce_waiting_ == size_) {
      ++reduce_generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return reduce_generation_ != generation; });
    }
    inout = reduce_buffer_;
    // Exit phase: the last rank out resets the buffer slot.
    if (--reduce_waiting_ == 0) {
      ++reduce_generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock,
               [&] { return reduce_generation_ != generation + 1; });
    }
  }

  void broadcast(std::vector<double>& buffer, int root, int rank) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (rank == root) broadcast_buffer_ = buffer;
    const std::uint64_t generation = broadcast_generation_;
    if (++broadcast_waiting_ == size_) {
      ++broadcast_generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return broadcast_generation_ != generation; });
    }
    buffer = broadcast_buffer_;
    if (--broadcast_waiting_ == 0) {
      ++broadcast_generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock,
               [&] { return broadcast_generation_ != generation + 1; });
    }
  }

  void send(int source, int destination, int tag, std::vector<double> payload) {
    RMS_CHECK(destination >= 0 && destination < size_);
    std::unique_lock<std::mutex> lock(mutex_);
    mailboxes_[MailboxKey{source, destination, tag}].push_back(
        std::move(payload));
    cv_.notify_all();
  }

  std::vector<double> recv(int source, int destination, int tag) {
    std::unique_lock<std::mutex> lock(mutex_);
    const MailboxKey key{source, destination, tag};
    cv_.wait(lock, [&] {
      auto it = mailboxes_.find(key);
      return it != mailboxes_.end() && !it->second.empty();
    });
    auto& queue = mailboxes_[key];
    std::vector<double> payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  }

 private:
  using MailboxKey = std::tuple<int, int, int>;  // source, destination, tag

  int size_;
  std::mutex mutex_;
  std::condition_variable cv_;

  int barrier_waiting_ = 0;
  std::uint64_t barrier_generation_ = 0;

  int reduce_waiting_ = 0;
  std::uint64_t reduce_generation_ = 0;
  std::vector<double> reduce_buffer_;

  int broadcast_waiting_ = 0;
  std::uint64_t broadcast_generation_ = 0;
  std::vector<double> broadcast_buffer_;

  std::map<MailboxKey, std::deque<std::vector<double>>> mailboxes_;
};

int Communicator::size() const { return world_->size(); }

void Communicator::barrier() { world_->barrier(); }

void Communicator::all_reduce_sum(std::vector<double>& inout) {
  world_->all_reduce(inout, [](std::vector<double>& acc,
                               const std::vector<double>& next) {
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += next[i];
  });
}

double Communicator::all_reduce_sum(double value) {
  std::vector<double> buffer = {value};
  all_reduce_sum(buffer);
  return buffer[0];
}

void Communicator::all_reduce_max(std::vector<double>& inout) {
  world_->all_reduce(inout, [](std::vector<double>& acc,
                               const std::vector<double>& next) {
    for (std::size_t i = 0; i < acc.size(); ++i) {
      acc[i] = std::max(acc[i], next[i]);
    }
  });
}

void Communicator::broadcast(std::vector<double>& buffer, int root) {
  world_->broadcast(buffer, root, rank_);
}

void Communicator::send(int destination, int tag, std::vector<double> payload) {
  world_->send(rank_, destination, tag, std::move(payload));
}

std::vector<double> Communicator::recv(int source, int tag) {
  return world_->recv(source, rank_, tag);
}

void run_parallel(int ranks, const std::function<void(Communicator&)>& fn) {
  RMS_CHECK(ranks >= 1);
  MiniMpiWorld world(ranks);
  std::vector<std::thread> threads;
  threads.reserve(ranks);
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([&world, &fn, r] {
      Communicator comm(&world, r);
      fn(comm);
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace rms::parallel
