#include "parallel/sim_cluster.hpp"

#include <algorithm>
#include <numeric>

namespace rms::parallel {

SimResult SimCluster::run(const std::vector<double>& file_costs,
                          const Assignment& assignment, int ranks) const {
  SimResult result;
  result.rank_times = rank_loads(file_costs, assignment, ranks);
  const double comm =
      options_.allreduce_overhead * options_.collectives_per_call;
  for (double& t : result.rank_times) t += comm;
  result.total_time =
      *std::max_element(result.rank_times.begin(), result.rank_times.end());
  const double serial =
      std::accumulate(file_costs.begin(), file_costs.end(), 0.0);
  result.speedup = result.total_time > 0.0 ? serial / result.total_time : 0.0;
  result.efficiency = result.speedup / ranks;
  return result;
}

SimResult SimCluster::run_block(const std::vector<double>& file_costs,
                                int ranks) const {
  return run(file_costs, block_schedule(file_costs.size(), ranks), ranks);
}

SimResult SimCluster::run_lpt(const std::vector<double>& file_costs,
                              int ranks) const {
  return run(file_costs, lpt_schedule(file_costs, ranks), ranks);
}

}  // namespace rms::parallel
