// SimCluster: virtual-time cluster model for the Table 2 speedup study.
//
// The paper ran on 16 thin nodes of an IBM SP; this host has one CPU core,
// so wall-clock parallel speedup is physically unobservable here. Table 2,
// however, is determined by *schedule quality*: which files each rank
// solves, and the resulting makespan relative to the serial total. The
// per-file solve times are measured for real (the ODE solver runs), then
// replayed through the exact schedules of the paper:
//   - without dynamic load balancing: block distribution (Fig. 9);
//   - with dynamic load balancing: LPT on the times recorded by the
//     previous objective-function call (§4.4).
// A small per-collective communication overhead models the Allreduce.
#pragma once

#include <vector>

#include "parallel/schedule.hpp"

namespace rms::parallel {

struct SimClusterOptions {
  /// Cost (virtual seconds) charged per rank per Allreduce collective.
  double allreduce_overhead = 0.0;
  /// Number of Allreduce collectives per objective-function call (Fig. 9
  /// performs two: error vector + timing vector).
  int collectives_per_call = 2;
};

struct SimResult {
  double total_time = 0.0;  ///< virtual makespan (slowest rank)
  double speedup = 0.0;     ///< serial_total / total_time
  double efficiency = 0.0;  ///< speedup / ranks
  std::vector<double> rank_times;
};

class SimCluster {
 public:
  explicit SimCluster(SimClusterOptions options = {}) : options_(options) {}

  /// Replays `file_costs` (measured per-file solve seconds) through an
  /// assignment on `ranks` virtual nodes.
  [[nodiscard]] SimResult run(const std::vector<double>& file_costs,
                              const Assignment& assignment, int ranks) const;

  /// Convenience: block distribution ("without dynamic load balancing").
  [[nodiscard]] SimResult run_block(const std::vector<double>& file_costs,
                                    int ranks) const;

  /// Convenience: the paper's dynamic load balancing — the schedule is LPT
  /// on the times recorded by the *previous* call, here taken to be the
  /// same measured costs (steady-state behaviour).
  [[nodiscard]] SimResult run_lpt(const std::vector<double>& file_costs,
                                  int ranks) const;

 private:
  SimClusterOptions options_;
};

}  // namespace rms::parallel
