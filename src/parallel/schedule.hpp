// Work distribution: block partitioning and the paper's dynamic load
// balancing algorithm (§4.4).
//
// "the time to solve each data file is recorded and put into a priority
//  queue built out of a non-increasing sorted time list. The next item,
//  which corresponds to the data file with the largest solving time among
//  remaining data files in the priority queue, is allocated to the
//  processor with least total allocated time so far."
//
// That is LPT (longest processing time first) scheduling; lpt_schedule()
// implements it verbatim. block_schedule() is the naive Fig. 9 distribution
// used before any times are known ("without dynamic load balancing").
#pragma once

#include <cstddef>
#include <vector>

namespace rms::parallel {

/// assignment[i] = rank that should process task i.
using Assignment = std::vector<int>;

/// Contiguous block distribution of `tasks` over `ranks` (the BLOCK_SIZE
/// pattern of Fig. 9): rank r gets tasks [r*ceil .. ...).
Assignment block_schedule(std::size_t tasks, int ranks);

/// LPT: sort tasks by cost non-increasing; give each to the currently
/// least-loaded rank (priority queue on rank loads). Load ties — all-zero
/// costs in particular — break on assigned-task count, so missing recorded
/// times degenerate to round-robin rather than "everything on rank 0".
Assignment lpt_schedule(const std::vector<double>& costs, int ranks);

/// Completion time of the slowest rank under an assignment.
double makespan(const std::vector<double>& costs, const Assignment& assignment,
                int ranks);

/// Per-rank total load.
std::vector<double> rank_loads(const std::vector<double>& costs,
                               const Assignment& assignment, int ranks);

}  // namespace rms::parallel
