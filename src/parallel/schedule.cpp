#include "parallel/schedule.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <tuple>

#include "support/assert.hpp"

namespace rms::parallel {

Assignment block_schedule(std::size_t tasks, int ranks) {
  RMS_CHECK(ranks >= 1);
  Assignment assignment(tasks);
  const std::size_t per_rank =
      (tasks + static_cast<std::size_t>(ranks) - 1) / ranks;
  for (std::size_t i = 0; i < tasks; ++i) {
    assignment[i] = static_cast<int>(std::min<std::size_t>(
        i / std::max<std::size_t>(per_rank, 1),
        static_cast<std::size_t>(ranks - 1)));
  }
  return assignment;
}

Assignment lpt_schedule(const std::vector<double>& costs, int ranks) {
  RMS_CHECK(ranks >= 1);
  // Non-increasing sorted time list (stable on ties for determinism).
  std::vector<std::size_t> order(costs.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&costs](std::size_t a,
                                                        std::size_t b) {
    return costs[a] > costs[b];
  });

  // Min-heap of (load, assigned count, rank): the least-loaded processor is
  // popped for each task in turn. Ties on load break on the count so
  // zero-cost tasks (no recorded times yet) still spread round-robin
  // instead of piling onto rank 0.
  using Slot = std::tuple<double, std::size_t, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> heap;
  for (int r = 0; r < ranks; ++r) heap.emplace(0.0, std::size_t{0}, r);

  Assignment assignment(costs.size(), 0);
  for (std::size_t task : order) {
    auto [load, count, rank] = heap.top();
    heap.pop();
    assignment[task] = rank;
    heap.emplace(load + costs[task], count + 1, rank);
  }
  return assignment;
}

std::vector<double> rank_loads(const std::vector<double>& costs,
                               const Assignment& assignment, int ranks) {
  RMS_CHECK(assignment.size() == costs.size());
  std::vector<double> loads(ranks, 0.0);
  for (std::size_t i = 0; i < costs.size(); ++i) {
    RMS_CHECK(assignment[i] >= 0 && assignment[i] < ranks);
    loads[assignment[i]] += costs[i];
  }
  return loads;
}

double makespan(const std::vector<double>& costs, const Assignment& assignment,
                int ranks) {
  const std::vector<double> loads = rank_loads(costs, assignment, ranks);
  return *std::max_element(loads.begin(), loads.end());
}

}  // namespace rms::parallel
