#include "verify/invariants.hpp"

#include <cmath>

#include "codegen/bytecode_emitter.hpp"
#include "codegen/jacobian.hpp"
#include "network/io.hpp"
#include "odegen/conservation.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "vm/fuse.hpp"
#include "vm/interpreter.hpp"

namespace rms::verify {

namespace {

/// "" when bit-identical, otherwise a description of the first difference.
std::string compare_programs(const vm::Program& a, const vm::Program& b) {
  if (a.code.size() != b.code.size()) {
    return support::str_format("code size %zu vs %zu", a.code.size(),
                               b.code.size());
  }
  for (std::size_t i = 0; i < a.code.size(); ++i) {
    const vm::Instr& x = a.code[i];
    const vm::Instr& y = b.code[i];
    if (x.op != y.op || x.dst != y.dst || x.a != y.a || x.b != y.b ||
        x.c != y.c) {
      return support::str_format("instruction %zu differs", i);
    }
  }
  if (a.consts != b.consts) return "constant pools differ";
  if (a.register_count != b.register_count) return "register counts differ";
  if (a.output_count != b.output_count) return "output counts differ";
  return "";
}

/// Recompiles the optimized program from the model's equation table.
vm::Program recompile(const models::BuiltModel& built,
                      opt::OptimizerOptions options,
                      const support::ThreadPool* pool) {
  options.pool = pool;
  options.timings = nullptr;
  const opt::OptimizedSystem system =
      opt::optimize(built.odes.table, built.odes.table.size(),
                    built.rates.size(), options);
  return vm::fuse_and_compact(codegen::emit_optimized(system, pool));
}

Divergence invariant_failure(const std::string& model_name,
                             const std::string& invariant,
                             const std::string& variant_a,
                             const std::string& variant_b,
                             std::uint64_t seed, std::string detail) {
  Divergence d;
  d.model_name = model_name;
  d.stage = "invariant:" + invariant;
  d.path_a = variant_a;
  d.path_b = variant_b;
  d.seed = seed;
  d.equation_label = std::move(detail);
  return d;
}

}  // namespace

std::vector<Divergence> check_invariants(const models::BuiltModel& built,
                                         const std::string& model_name,
                                         const InvariantOptions& options) {
  std::vector<Divergence> failures;
  const std::size_t species_count = built.odes.table.size();
  const std::size_t rate_count = built.rates.size();
  if (species_count == 0) return failures;

  // Random draws shared by the value-level invariants.
  std::vector<std::vector<double>> ys;
  std::vector<std::vector<double>> ks;
  std::vector<double> ts;
  {
    support::Xoshiro256 rng(options.seed);
    for (int trial = 0; trial < options.trials; ++trial) {
      ts.push_back(rng.uniform(0.0, 1.0));
      std::vector<double> y(species_count);
      for (double& v : y) v = rng.uniform(0.0, 2.0);
      ys.push_back(std::move(y));
      std::vector<double> k(rate_count);
      for (double& v : k) v = rng.uniform(0.05, 10.0);
      ks.push_back(std::move(k));
    }
  }

  vm::Scratch scratch;
  scratch.prepare(built.program_optimized);
  const vm::Interpreter interpreter(built.program_optimized);

  // ---------------------------------------------------------- conservation
  if (options.check_conservation && !built.network.reactions.empty()) {
    const std::vector<linalg::Vector> laws =
        odegen::conservation_laws(built.network);
    std::vector<double> ydot(species_count);
    for (int trial = 0; trial < options.trials; ++trial) {
      interpreter.run(ts[trial], ys[trial].data(), ks[trial].data(),
                      ydot.data(), scratch);
      for (std::size_t l = 0; l < laws.size(); ++l) {
        double residual = 0.0;
        double magnitude = 0.0;
        for (std::size_t i = 0; i < species_count; ++i) {
          residual += laws[l][i] * ydot[i];
          magnitude += std::fabs(laws[l][i] * ydot[i]);
        }
        if (std::fabs(residual) >
            options.conservation_tolerance * (magnitude + 1.0)) {
          Divergence d = invariant_failure(
              model_name, "conservation", "w . f(y)", "0", options.seed,
              support::str_format("law %zu residual %.3g (terms %.3g)", l,
                                  residual, magnitude));
          d.value_a = residual;
          d.trial = trial;
          failures.push_back(std::move(d));
          break;  // one report per law set is enough
        }
      }
      if (!failures.empty() && failures.back().stage == "invariant:conservation")
        break;
    }
  }

  // ------------------------------------------------------ thread counts
  if (options.check_thread_invariance) {
    const vm::Program serial =
        recompile(built, opt::OptimizerOptions::full(), nullptr);
    for (std::size_t threads : options.thread_counts) {
      // cap_to_hardware=false: real cross-thread schedules even on small CI
      // hosts — determinism must not depend on the host's core count.
      support::ThreadPool pool(threads, /*cap_to_hardware=*/false);
      const vm::Program parallel =
          recompile(built, opt::OptimizerOptions::full(), &pool);
      const std::string diff = compare_programs(serial, parallel);
      if (!diff.empty()) {
        failures.push_back(invariant_failure(
            model_name, "threads", "serial",
            support::str_format("%zu threads", threads), options.seed, diff));
      }
      // The graph-chemistry front half: network generation must also be
      // schedule-independent (species ids feed everything downstream).
      if (!built.model.rules.empty()) {
        network::GeneratorOptions gen = options.generator;
        gen.pool = &pool;
        auto net = network::generate_network(built.model, gen);
        if (!net.is_ok() ||
            network::serialize_network(*net) !=
                network::serialize_network(built.network)) {
          failures.push_back(invariant_failure(
              model_name, "threads", "serial network",
              support::str_format("%zu-thread network", threads),
              options.seed,
              net.is_ok() ? "generated network differs"
                          : net.status().to_string()));
        }
      }
    }
  }

  // ------------------------------------------------- opt-level equivalence
  if (options.check_opt_level_equivalence) {
    const vm::Program unoptimized =
        recompile(built, opt::OptimizerOptions::none(), nullptr);
    vm::Scratch none_scratch;
    none_scratch.prepare(unoptimized);
    const vm::Interpreter none_interp(unoptimized);
    std::vector<double> a(species_count);
    std::vector<double> b(species_count);
    for (int trial = 0; trial < options.trials; ++trial) {
      interpreter.run(ts[trial], ys[trial].data(), ks[trial].data(), a.data(),
                      scratch);
      none_interp.run(ts[trial], ys[trial].data(), ks[trial].data(), b.data(),
                      none_scratch);
      double scale = 0.0;
      for (std::size_t i = 0; i < species_count; ++i) {
        scale = std::max({scale, std::fabs(a[i]), std::fabs(b[i])});
      }
      bool diverged = false;
      for (std::size_t i = 0; i < species_count && !diverged; ++i) {
        if (!values_match(a[i], b[i], Tolerance::kReassociated, scale)) {
          Divergence d = invariant_failure(
              model_name, "opt-level", "optimized", "no-optimization",
              options.seed,
              support::str_format("equation %zu: %.17g vs %.17g", i, a[i],
                                  b[i]));
          d.equation = i;
          d.value_a = a[i];
          d.value_b = b[i];
          d.ulp = ulp_distance(a[i], b[i]);
          d.trial = trial;
          failures.push_back(std::move(d));
          diverged = true;
        }
      }
      if (diverged) break;
    }
  }

  // ------------------------------------------------------- seed switches
  if (options.check_seed_switches) {
    opt::OptimizerOptions seed_profile = opt::OptimizerOptions::full();
    seed_profile.memoize_equations = false;
    seed_profile.incremental_frequency = false;
    seed_profile.cse.dedup_equations = false;
    const std::string diff =
        compare_programs(recompile(built, opt::OptimizerOptions::full(),
                                   nullptr),
                         recompile(built, seed_profile, nullptr));
    if (!diff.empty()) {
      failures.push_back(invariant_failure(model_name, "seed-switch",
                                           "memoized+incremental",
                                           "seed profile", options.seed,
                                           diff));
    }
  }

  return failures;
}

}  // namespace rms::verify
