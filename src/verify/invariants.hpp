// Metamorphic invariant checks: properties that must hold for *any* model,
// independent of what the correct RHS values are.
//
//   conservation   every left-null-space vector w of the stoichiometric
//                  matrix satisfies w . f(t, y, k) = 0 at every state — the
//                  compiled RHS must not leak conserved mass (rule sets
//                  that do leak atoms change S itself, which this detects
//                  downstream as a nonzero residual on the optimized code).
//   threads        recompiling with worker pools of 1, 2 and 8 threads must
//                  produce bit-identical bytecode (the parallel pipeline's
//                  determinism contract).
//   opt-level      the fully optimized build and the optimization-free
//                  build evaluate to the same RHS (reassociation-tolerant).
//   seed-switch    the PR-2 compile-cost switches (equation memoization,
//                  incremental frequency tables, CSE equation dedup) change
//                  compile time, never compiled code: all-off must be
//                  bit-identical to all-on.
//
// Failures are reported as verify::Divergence values with the stage field
// naming the violated invariant.
#pragma once

#include <cstdint>
#include <vector>

#include "verify/oracle.hpp"

namespace rms::verify {

struct InvariantOptions {
  std::uint64_t seed = 1;
  int trials = 4;  ///< random draws for the value-level invariants
  /// Worker counts whose compiles must be bit-identical to serial.
  std::vector<std::size_t> thread_counts = {1, 2, 8};
  bool check_conservation = true;
  bool check_thread_invariance = true;
  bool check_opt_level_equivalence = true;
  bool check_seed_switches = true;
  /// |w . f| <= tolerance * (|w| . |f| + 1): conservation residual bound.
  double conservation_tolerance = 1e-9;
  /// Caps for the thread-invariance network regeneration; must match the
  /// options the model was originally generated with (a tighter
  /// max_atoms_per_species changes which reactions exist).
  network::GeneratorOptions generator;
};

/// Runs the configured invariants on a built model; returns one Divergence
/// per violated invariant (empty = all hold). Thread invariance and the
/// seed switches recompile the model from its equation tables, so the cost
/// is a few extra compiles of the same size.
std::vector<Divergence> check_invariants(const models::BuiltModel& built,
                                         const std::string& model_name,
                                         const InvariantOptions& options = {});

}  // namespace rms::verify
