// DifferentialOracle: cross-checks every evaluation path the compiler
// produces for one model against every other, at randomized states and
// rate-constant vectors, with ULP-bounded comparison.
//
// The paper's claim is that the algebraic optimizations (§3) and the
// execution pipeline (§4) are semantics-preserving. After the VM fusion and
// parallel-pipeline PRs the repository has five independent ways to compute
// the same right-hand side:
//
//   reference     the symbolic equation table, tree-walk evaluated
//   unopt-vm      the unoptimized bytecode program (raw equation emission)
//   opt-vm        the fused + register-compacted optimized program
//   batch-vm      the same program through the lane-blocked batch entry point
//   backend-vm    the "commercial compiler" reference backend's re-lowering
//   native-c      the emitted C function through codegen::NativeBackend
//                 (system cc + dlopen with a content-addressed .so cache;
//                 auto-skipped when no compiler is available)
//   native-batch  the AOT module's lane-major batched entry point
//
// plus the compiled analytic Jacobian against the symbolically
// differentiated entry table, and — when the native module carries one —
// the native CSR Jacobian fill against the VM Jacobian program at kTight
// (both optimize the same differentiated table, so they must be
// bit-comparable). Any disagreement beyond tolerance becomes a
// structured Divergence naming the first diverging equation; the oracle then
// re-runs the compile one optimization stage at a time (simplify -> distopt
// -> cse -> emit -> fuse -> regalloc -> batch) and blames the first stage
// whose output steps away from the previous stage's — so a report does not
// just say "the optimized build is wrong", it says *which transform* broke
// the value and on which equation.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/native_backend.hpp"
#include "models/vulcanization.hpp"
#include "network/generator.hpp"
#include "support/status.hpp"

namespace rms::verify {

// ---------------------------------------------------------------- compare

/// ULP distance between two doubles (0 for bit-equal values, +inf across
/// sign changes / NaN / infinity mismatches).
[[nodiscard]] double ulp_distance(double a, double b);

/// Tolerance classes for value comparison. Paths that execute the *same*
/// computation graph (fusion, register renaming, lane batching, value
/// numbering, the compiled C) must agree to kTight; paths separated by an
/// algebraic rewrite (like-term combining, DistOpt factoring, CSE) may
/// legitimately round differently and are held to kReassociated.
enum class Tolerance {
  kTight,         ///< <= 64 ULP or 1e-12 * scale
  kReassociated,  ///< 1e-9 * scale
};

/// Per-component comparison under a tolerance class. `vector_scale` is the
/// largest magnitude across the whole output vector: a near-cancelling
/// component is allowed the (scaled-down) noise floor of the terms that
/// produced it, not just of its own tiny value.
[[nodiscard]] bool values_match(double a, double b, Tolerance tolerance,
                                double vector_scale);

// ----------------------------------------------------------------- report

/// One confirmed disagreement between two evaluation paths.
struct Divergence {
  std::string model_name;
  std::string path_a;  ///< e.g. "reference"
  std::string path_b;  ///< e.g. "opt-vm"
  /// Optimization stage blamed by bisection ("simplify", "distopt", "cse",
  /// "emit", "fuse", "regalloc", "batch"; empty when bisection was not
  /// applicable, "unlocalized" when no single stage reproduces the step).
  std::string stage;
  std::size_t equation = 0;    ///< first diverging output slot
  std::string equation_label;  ///< species name / Jacobian entry
  double value_a = 0.0;
  double value_b = 0.0;
  double ulp = 0.0;        ///< ULP distance of the diverging pair
  int trial = -1;          ///< which random draw exposed it
  std::uint64_t seed = 0;  ///< oracle seed (reproduces the draw exactly)

  [[nodiscard]] std::string to_string() const;
};

struct OracleReport {
  std::string model_name;
  int trials = 0;
  std::vector<std::string> paths_checked;
  std::vector<std::string> skipped;  ///< e.g. "native-c (no system cc)"
  std::vector<Divergence> divergences;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  [[nodiscard]] std::string to_string() const;
};

// ----------------------------------------------------------------- oracle

struct OracleOptions {
  std::uint64_t seed = 1;
  int trials = 8;  ///< random (t, y, k) draws per model
  /// Path toggles. The native paths invoke the system compiler (once per
  /// distinct model — the NativeBackend .so cache absorbs repeats) and are
  /// the only non-hermetic ones; fuzz loops default them off.
  bool check_jacobian = true;
  bool check_reference_backend = true;
  bool check_c_backend = true;
  bool check_batch = true;
  /// Knobs for the native paths (cache dir, compiler, flags).
  codegen::NativeBackendOptions native;
  /// Run stage bisection on RHS divergences (adds recompiles per
  /// divergence, not per clean run).
  bool bisect = true;
  /// Lanes exercised by the batch path (also re-checked at 1 to cover the
  /// single-lane fallback).
  std::size_t batch_lanes = 16;
};

class DifferentialOracle {
 public:
  explicit DifferentialOracle(OracleOptions options = {})
      : options_(options) {}

  /// Cross-checks every configured path on an already-built model. The
  /// model must have been built with build_reference_baseline (the facade
  /// default) so the raw table / unoptimized program exist.
  [[nodiscard]] OracleReport check_model(const models::BuiltModel& built,
                                         std::string model_name) const;

  /// Compiles RDL source through the full pipeline, then checks it.
  [[nodiscard]] support::Expected<OracleReport> check_rdl(
      std::string_view source, std::string model_name,
      const network::GeneratorOptions& generator_options = {}) const;

  [[nodiscard]] const OracleOptions& options() const { return options_; }

 private:
  OracleOptions options_;
};

/// Compiles RDL through the same pipeline the Suite facade runs (including
/// the raw baseline the oracle needs), with generation caps suitable for
/// adversarial inputs. Shared by the oracle, the fuzzer and rms_verify.
support::Expected<models::BuiltModel> build_model_from_rdl(
    std::string_view source,
    const network::GeneratorOptions& generator_options = {});

/// Re-runs the compile one stage at a time on the model's equation tables
/// and returns the name of the first stage whose output diverges from the
/// previous stage's at the given draw ("" when every stage agrees —
/// i.e. the end-to-end divergence does not localize to one transform).
[[nodiscard]] std::string bisect_stage(const models::BuiltModel& built,
                                       double t, const std::vector<double>& y,
                                       const std::vector<double>& k,
                                       std::size_t batch_lanes);

}  // namespace rms::verify
