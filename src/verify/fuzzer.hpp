// Structure-aware RDL fuzzing over the whole compiler/VM stack.
//
// Random character soup almost never gets past the parser, so the fuzzer
// works at the language level: it *generates* mostly-well-formed RDL models
// (random molecules rendered through the real canonical-SMILES writer,
// variant families, constant expressions, rules assembled from the six edit
// primitives — half of them "anchored" to a bond that provably exists in a
// declared molecule so the network generator has real work to do) and
// *mutates* existing models with statement-level edits that keep the input
// near the language. Every model that compiles is handed to the
// DifferentialOracle and the metamorphic invariants; any divergence is a
// finding, and the greedy reducer shrinks the offending source to a minimal
// reproducer by deleting statements and rule lines while the divergence
// persists.
//
// Everything is seeded: iteration i of a run with seed S uses a generator
// seeded with mix(S, i), so `--fuzz N --seed S` reproduces bit-for-bit and
// any reported case can be regenerated from its printed iteration seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "verify/invariants.hpp"
#include "verify/oracle.hpp"

namespace rms::verify {

/// Emits a random mostly-well-formed RDL model.
std::string random_rdl_model(support::Xoshiro256& rng);

/// Applies 1-4 statement/token-level mutations to an existing model.
std::string mutate_rdl(const std::string& source, support::Xoshiro256& rng);

struct FuzzOptions {
  std::uint64_t seed = 1;
  int iterations = 100;
  /// Oracle configuration per compiled case. The fuzz defaults keep each
  /// case hermetic and cheap: few trials, no shelling out to cc.
  OracleOptions oracle = [] {
    OracleOptions o;
    o.trials = 3;
    o.check_c_backend = false;
    return o;
  }();
  /// Value-level invariants per compiled case (thread invariance recompiles
  /// under real pools, so it runs on a sample of cases, not all).
  InvariantOptions invariants = [] {
    InvariantOptions o;
    o.trials = 2;
    o.check_thread_invariance = false;
    return o;
  }();
  bool run_invariants = true;
  /// Every Nth compiled case additionally runs the (expensive) thread-count
  /// invariance recompiles; 0 disables.
  int thread_invariance_every = 25;
  /// Generation caps for adversarial inputs: small enough that a rule set
  /// trying to grow molecules without bound fails fast.
  network::GeneratorOptions generator = [] {
    network::GeneratorOptions g;
    g.max_species = 40;
    g.max_reactions = 400;
    g.max_rounds = 5;
    g.max_atoms_per_species = 16;
    return g;
  }();
  /// Seed corpus; when non-empty, half the iterations mutate a corpus entry
  /// instead of generating from scratch.
  std::vector<std::string> corpus;
  /// Stop after this many divergent cases (0 = never stop early).
  int max_findings = 10;
  /// Progress sink, called after every iteration (may be null).
  std::function<void(int iteration, int compiled, int divergent)> on_progress;
};

struct FuzzCase {
  std::uint64_t iteration_seed = 0;
  int iteration = -1;
  std::string source;
  std::vector<Divergence> divergences;
};

struct FuzzResult {
  int iterations = 0;
  int compiled = 0;   ///< cases that built through the full pipeline
  int rejected = 0;   ///< cases rejected with a clean Status error
  std::vector<FuzzCase> findings;

  [[nodiscard]] bool ok() const { return findings.empty(); }
};

/// Runs the fuzz loop. Crashes/hangs are deliberately NOT caught — a crash
/// under the fuzzer is exactly the signal it exists to surface.
FuzzResult run_fuzz(const FuzzOptions& options);

/// Per-iteration seed derivation (exposed so a finding can be reproduced
/// without re-running the whole loop).
std::uint64_t fuzz_iteration_seed(std::uint64_t run_seed, int iteration);

/// Inverse of fuzz_iteration_seed for iteration 0 (every step of SplitMix64
/// is bijective): given a reported iteration seed, returns the run seed
/// that reproduces exactly that case as the sole iteration of a
/// `--fuzz 1 --seed <result>` run.
std::uint64_t unmix_iteration_seed(std::uint64_t iteration_seed);

/// Greedy test-case reduction: repeatedly deletes top-level statements and
/// single rule-body lines while `still_fails` stays true. Returns the
/// smallest failing source found.
std::string reduce_rdl(const std::string& source,
                       const std::function<bool(const std::string&)>&
                           still_fails);

/// Convenience reducer predicate: "compiles AND the oracle (or invariants)
/// still report a divergence".
std::string reduce_divergence(const std::string& source,
                              const OracleOptions& oracle_options,
                              const network::GeneratorOptions& generator);

}  // namespace rms::verify
