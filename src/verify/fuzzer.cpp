#include "verify/fuzzer.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "chem/canonical.hpp"
#include "chem/element.hpp"
#include "chem/molecule.hpp"
#include "support/strings.hpp"

namespace rms::verify {

namespace {

// ------------------------------------------------------------- generation

const chem::Element kFuzzElements[] = {chem::Element::kC, chem::Element::kN,
                                       chem::Element::kO, chem::Element::kS};

/// Random connected molecule: spanning tree plus an occasional ring bond.
/// Saturation is optional — unsaturated valence is how RDL expresses
/// radical sites, and radical chemistry is where the rules get interesting.
chem::Molecule random_molecule(support::Xoshiro256& rng) {
  chem::Molecule mol;
  const int atoms = 1 + static_cast<int>(rng.below(6));
  for (int i = 0; i < atoms; ++i) {
    mol.add_atom(kFuzzElements[rng.below(std::size(kFuzzElements))]);
  }
  for (int i = 1; i < atoms; ++i) {
    const auto parent = static_cast<chem::AtomIndex>(rng.below(i));
    if (mol.free_valence(parent) >= 1) {
      const std::uint8_t order =
          rng.below(8) == 0 && mol.free_valence(parent) >= 2 ? 2 : 1;
      mol.add_bond(static_cast<chem::AtomIndex>(i), parent, order);
    }
  }
  if (rng.below(3) == 0 && atoms > 3) {
    const auto a = static_cast<chem::AtomIndex>(rng.below(atoms));
    const auto b = static_cast<chem::AtomIndex>(rng.below(atoms));
    if (a != b && mol.bond_between(a, b) == chem::kNoBond &&
        mol.free_valence(a) >= 1 && mol.free_valence(b) >= 1) {
      mol.add_bond(a, b, 1);
    }
  }
  if (rng.below(4) != 0) {
    mol.saturate_with_hydrogens();  // 3/4 closed-shell, 1/4 radical
  } else {
    // Partially saturate so the radical count stays small.
    for (chem::AtomIndex i = 0; i < mol.atom_count(); ++i) {
      while (mol.free_valence(i) > 1) {
        mol.atom(i).hydrogens = static_cast<std::uint8_t>(
            mol.atom(i).hydrogens + 1);
      }
    }
  }
  return mol;
}

struct ModelSketch {
  std::vector<std::string> species_names;  ///< declared (family base) names
  std::vector<chem::Molecule> molecules;   ///< parallel, concrete species only
  std::vector<std::string> const_names;
};

std::string random_constant_expr(support::Xoshiro256& rng,
                                 const std::vector<std::string>& earlier) {
  switch (earlier.empty() ? 0 : rng.below(4)) {
    case 1:
      return support::str_format(
          "%s * %.6g", earlier[rng.below(earlier.size())].c_str(),
          rng.uniform(0.1, 4.0));
    case 2:
      return support::str_format(
          "%s + %.6g", earlier[rng.below(earlier.size())].c_str(),
          rng.uniform(0.01, 2.0));
    case 3:
      return support::str_format("arrhenius(%.6g, %.6g)",
                                 rng.uniform(1e2, 1e6),
                                 rng.uniform(5e3, 4e4));
    default:
      return support::str_format("%.9g", rng.uniform(0.05, 10.0));
  }
}

const char* random_site_element(support::Xoshiro256& rng) {
  static const char* kSymbols[] = {"C", "N", "O", "S", "*"};
  return kSymbols[rng.below(std::size(kSymbols))];
}

/// A rule whose sites/bond are copied from an actual bond of a declared
/// molecule, so the pattern provably embeds somewhere: these rules are what
/// make the generated networks non-trivial.
std::string anchored_rule(support::Xoshiro256& rng, int index,
                          const ModelSketch& sketch) {
  const chem::Molecule& mol =
      sketch.molecules[rng.below(sketch.molecules.size())];
  if (mol.bond_count() == 0) return {};
  const chem::Bond& bond =
      mol.bond(static_cast<chem::BondIndex>(rng.below(mol.bond_count())));
  const std::string ea{chem::element_symbol(mol.atom(bond.a).element)};
  const std::string eb{chem::element_symbol(mol.atom(bond.b).element)};
  const std::string rate =
      sketch.const_names[rng.below(sketch.const_names.size())];
  std::string rule = support::str_format(
      "rule anchored_%d {\n  site a: %s;\n  site b: %s;\n  bond a b %d;\n",
      index, ea.c_str(), eb.c_str(), static_cast<int>(bond.order));
  if (bond.order > 1 && rng.below(2) == 0) {
    rule += "  dec_bond a b;\n";
  } else {
    rule += "  disconnect a b;\n";
  }
  rule += "  rate " + rate + ";\n}\n";
  // With a scission rule in play, a recombination rule keeps the network's
  // radical population reacting (and exercises bimolecular matching).
  if (rng.below(2) == 0) {
    rule += support::str_format(
        "rule recombine_%d {\n  site a: %s where radical;\n"
        "  site b: %s where radical;\n  connect a b;\n  rate %s;\n}\n",
        index, ea.c_str(), eb.c_str(),
        sketch.const_names[rng.below(sketch.const_names.size())].c_str());
  }
  return rule;
}

std::string freeform_rule(support::Xoshiro256& rng, int index,
                          const ModelSketch& sketch) {
  const int sites = 1 + static_cast<int>(rng.below(3));
  std::string rule = support::str_format("rule fuzz_%d {\n", index);
  for (int s = 0; s < sites; ++s) {
    rule += support::str_format("  site s%d: %s", s, random_site_element(rng));
    switch (rng.below(5)) {
      case 0:
        rule += " where radical";
        break;
      case 1:
        rule += support::str_format(" where h >= %d",
                                    1 + static_cast<int>(rng.below(3)));
        break;
      case 2:
        rule += support::str_format(" where depth >= %d",
                                    1 + static_cast<int>(rng.below(2)));
        break;
      default:
        break;
    }
    rule += ";\n";
  }
  if (sites >= 2 && rng.below(2) == 0) {
    rule += support::str_format("  bond s0 s1 %d;\n",
                                static_cast<int>(rng.below(2)));
  }
  const int actions = 1 + static_cast<int>(rng.below(2));
  for (int a = 0; a < actions; ++a) {
    const int x = static_cast<int>(rng.below(sites));
    const int y = static_cast<int>(rng.below(sites));
    switch (rng.below(6)) {
      case 0:
        rule += support::str_format("  disconnect s%d s%d;\n", x, y);
        break;
      case 1:
        rule += support::str_format("  connect s%d s%d;\n", x, y);
        break;
      case 2:
        rule += support::str_format("  inc_bond s%d s%d;\n", x, y);
        break;
      case 3:
        rule += support::str_format("  dec_bond s%d s%d;\n", x, y);
        break;
      case 4:
        rule += support::str_format("  remove_h s%d;\n", x);
        break;
      default:
        rule += support::str_format("  add_h s%d;\n", x);
        break;
    }
  }
  rule += "  rate " +
          sketch.const_names[rng.below(sketch.const_names.size())] + ";\n}\n";
  return rule;
}

}  // namespace

std::string random_rdl_model(support::Xoshiro256& rng) {
  std::string src = "# fuzz-generated model\n";
  ModelSketch sketch;

  // Species: random molecules rendered through the canonical writer, so
  // every declaration is valid SMILES by construction. Duplicate canonical
  // forms are skipped (sema rejects duplicate structures).
  const int species = 1 + static_cast<int>(rng.below(3));
  std::vector<std::string> seen_canonical;
  for (int i = 0; i < species; ++i) {
    chem::Molecule mol = random_molecule(rng);
    const std::string canonical = chem::canonical_smiles(mol);
    if (std::find(seen_canonical.begin(), seen_canonical.end(), canonical) !=
        seen_canonical.end()) {
      continue;
    }
    seen_canonical.push_back(canonical);
    const std::string name = support::str_format("M%d", i);
    src += support::str_format("species %s = \"%s\";\n", name.c_str(),
                               canonical.c_str());
    sketch.species_names.push_back(name);
    sketch.molecules.push_back(std::move(mol));
  }
  // Occasionally a compact variant family (the paper's chain-length form).
  if (rng.below(3) == 0) {
    static const char* kEnds[] = {"N", "O", "C"};
    const char* left = kEnds[rng.below(std::size(kEnds))];
    const char* right = kEnds[rng.below(std::size(kEnds))];
    const int hi = 2 + static_cast<int>(rng.below(3));
    src += support::str_format(
        "species Fam(n = 1..%d) = \"%sS{n}%s\";\n", hi, left, right);
    sketch.species_names.push_back("Fam");
  }

  const int constants = 2 + static_cast<int>(rng.below(3));
  for (int i = 0; i < constants; ++i) {
    const std::string name = support::str_format("k%d", i);
    src += support::str_format(
        "const %s = %s;\n", name.c_str(),
        random_constant_expr(rng, sketch.const_names).c_str());
    sketch.const_names.push_back(name);
  }

  for (const std::string& name : sketch.species_names) {
    if (rng.below(10) < 7) {
      src += support::str_format("init %s = %.6g;\n", name.c_str(),
                                 rng.uniform(0.0, 1.5));
    }
  }

  // Substructure forbids bound chain growth the same way real models do.
  if (rng.below(2) == 0) src += "forbid substructure \"SSSS\";\n";
  if (rng.below(6) == 0) src += "forbid \"O=O\";\n";

  const int rules = 1 + static_cast<int>(rng.below(3));
  for (int i = 0; i < rules; ++i) {
    std::string rule;
    if (!sketch.molecules.empty() && rng.below(5) < 3) {
      rule = anchored_rule(rng, i, sketch);
    }
    if (rule.empty()) rule = freeform_rule(rng, i, sketch);
    src += rule;
  }
  return src;
}

// -------------------------------------------------------------- mutation

namespace {

std::vector<std::string> split_lines(const std::string& source) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : source) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

std::string join_lines(const std::vector<std::string>& lines) {
  std::string out;
  for (const std::string& line : lines) {
    out += line;
    out += '\n';
  }
  return out;
}

/// Replaces a random numeric literal on the line, if any.
bool mutate_number(std::string& line, support::Xoshiro256& rng) {
  std::vector<std::pair<std::size_t, std::size_t>> numbers;
  for (std::size_t i = 0; i < line.size();) {
    if (std::isdigit(static_cast<unsigned char>(line[i]))) {
      std::size_t j = i;
      while (j < line.size() &&
             (std::isdigit(static_cast<unsigned char>(line[j])) ||
              line[j] == '.' || line[j] == 'e' || line[j] == '-' ||
              line[j] == '+')) {
        ++j;
      }
      numbers.emplace_back(i, j - i);
      i = j;
    } else {
      ++i;
    }
  }
  if (numbers.empty()) return false;
  const auto [pos, len] = numbers[rng.below(numbers.size())];
  std::string replacement;
  switch (rng.below(5)) {
    case 0: replacement = "0"; break;
    case 1: replacement = support::str_format("%.6g", rng.uniform(0.0, 100.0));
      break;
    case 2: replacement = "1e30"; break;
    case 3: replacement = support::str_format("%d", 1 + (int)rng.below(9));
      break;
    default:
      replacement = support::str_format("-%.6g", rng.uniform(0.0, 10.0));
      break;
  }
  line.replace(pos, len, replacement);
  return true;
}

}  // namespace

std::string mutate_rdl(const std::string& source, support::Xoshiro256& rng) {
  std::vector<std::string> lines = split_lines(source);
  if (lines.empty()) return source;
  const int mutations = 1 + static_cast<int>(rng.below(4));
  for (int m = 0; m < mutations; ++m) {
    const std::size_t at = rng.below(lines.size());
    switch (rng.below(6)) {
      case 0:  // tweak a number
        mutate_number(lines[at], rng);
        break;
      case 1:  // duplicate a line
        lines.insert(lines.begin() + static_cast<long>(at), lines[at]);
        break;
      case 2:  // delete a line
        if (lines.size() > 1) {
          lines.erase(lines.begin() + static_cast<long>(at));
        }
        break;
      case 3: {  // swap two lines
        const std::size_t other = rng.below(lines.size());
        std::swap(lines[at], lines[other]);
        break;
      }
      case 4: {  // retarget a rate reference to another constant
        const std::size_t pos = lines[at].find("rate ");
        if (pos != std::string::npos) {
          lines[at] = support::str_format(
              "  rate k%d;", static_cast<int>(rng.below(4)));
        }
        break;
      }
      default: {  // widen/narrow a variant range
        const std::size_t pos = lines[at].find("..");
        if (pos != std::string::npos && pos + 2 < lines[at].size()) {
          lines[at].replace(pos + 2, 1,
                            support::str_format(
                                "%d", 1 + static_cast<int>(rng.below(6))));
        } else {
          mutate_number(lines[at], rng);
        }
        break;
      }
    }
  }
  return join_lines(lines);
}

// ------------------------------------------------------------- fuzz loop

std::uint64_t fuzz_iteration_seed(std::uint64_t run_seed, int iteration) {
  std::uint64_t state = run_seed + 0x9E3779B97F4A7C15ull *
                                       static_cast<std::uint64_t>(iteration + 1);
  return support::splitmix64(state);
}

std::uint64_t unmix_iteration_seed(std::uint64_t iteration_seed) {
  // Invert the SplitMix64 output mix (xorshifts and odd multiplies are all
  // bijections mod 2^64; the multipliers below are the modular inverses of
  // the forward constants).
  std::uint64_t z = iteration_seed;
  z ^= (z >> 31) ^ (z >> 62);
  z *= 0x319642B2D24D8EC3ull;
  z ^= (z >> 27) ^ (z >> 54);
  z *= 0x96DE1B173F119089ull;
  z ^= (z >> 30) ^ (z >> 60);
  // splitmix64 advanced the state by one golden-ratio step on top of the
  // iteration-0 offset applied by fuzz_iteration_seed.
  return z - 2 * 0x9E3779B97F4A7C15ull;
}

FuzzResult run_fuzz(const FuzzOptions& options) {
  FuzzResult result;
  for (int i = 0; i < options.iterations; ++i) {
    ++result.iterations;
    const std::uint64_t seed = fuzz_iteration_seed(options.seed, i);
    support::Xoshiro256 rng(seed);

    std::string source;
    if (!options.corpus.empty() && rng.below(2) == 0) {
      source = mutate_rdl(options.corpus[rng.below(options.corpus.size())],
                          rng);
    } else {
      source = random_rdl_model(rng);
    }

    auto built = build_model_from_rdl(source, options.generator);
    if (!built.is_ok()) {
      ++result.rejected;  // a clean Status error is the expected outcome
      if (options.on_progress) {
        options.on_progress(i, result.compiled,
                            static_cast<int>(result.findings.size()));
      }
      continue;
    }
    ++result.compiled;

    OracleOptions oracle_options = options.oracle;
    oracle_options.seed = seed;
    const DifferentialOracle oracle(oracle_options);
    const std::string name = support::str_format("fuzz-%d", i);
    OracleReport report = oracle.check_model(*built, name);

    std::vector<Divergence> divergences = std::move(report.divergences);
    if (options.run_invariants) {
      InvariantOptions invariant_options = options.invariants;
      invariant_options.seed = seed;
      invariant_options.generator = options.generator;
      if (options.thread_invariance_every > 0 &&
          result.compiled % options.thread_invariance_every == 0) {
        invariant_options.check_thread_invariance = true;
      }
      std::vector<Divergence> violations =
          check_invariants(*built, name, invariant_options);
      divergences.insert(divergences.end(),
                         std::make_move_iterator(violations.begin()),
                         std::make_move_iterator(violations.end()));
    }

    if (!divergences.empty()) {
      FuzzCase finding;
      finding.iteration_seed = seed;
      finding.iteration = i;
      finding.source = std::move(source);
      finding.divergences = std::move(divergences);
      result.findings.push_back(std::move(finding));
      if (options.max_findings > 0 &&
          static_cast<int>(result.findings.size()) >= options.max_findings) {
        if (options.on_progress) {
          options.on_progress(i, result.compiled,
                              static_cast<int>(result.findings.size()));
        }
        break;
      }
    }
    if (options.on_progress) {
      options.on_progress(i, result.compiled,
                          static_cast<int>(result.findings.size()));
    }
  }
  return result;
}

// -------------------------------------------------------------- reduction

namespace {

/// Top-level chunk boundaries: a chunk is a run of lines ending with a
/// depth-0 `;` or the `}` closing a rule block. Comments/blank lines attach
/// to the following chunk.
std::vector<std::pair<std::size_t, std::size_t>> chunk_ranges(
    const std::vector<std::string>& lines) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  int depth = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    bool closes = false;
    for (char c : lines[i]) {
      if (c == '#') break;
      if (c == '{') ++depth;
      if (c == '}') {
        --depth;
        if (depth == 0) closes = true;
      }
      if (c == ';' && depth == 0) closes = true;
    }
    if (closes) {
      chunks.emplace_back(start, i + 1);
      start = i + 1;
    }
  }
  if (start < lines.size()) chunks.emplace_back(start, lines.size());
  return chunks;
}

std::string without_range(const std::vector<std::string>& lines,
                          std::size_t begin, std::size_t end) {
  std::vector<std::string> kept;
  kept.reserve(lines.size() - (end - begin));
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (i < begin || i >= end) kept.push_back(lines[i]);
  }
  return join_lines(kept);
}

}  // namespace

std::string reduce_rdl(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_fails) {
  std::string best = source;
  bool changed = true;
  // Each round first drops whole statements/rules (coarse), then single
  // lines inside what remains (fine: site constraints, actions). Rounds
  // repeat until a fixpoint — deleting one statement often unlocks another.
  while (changed) {
    changed = false;
    std::vector<std::string> lines = split_lines(best);
    // Coarse pass, back to front so earlier indices stay valid.
    const auto chunks = chunk_ranges(lines);
    for (std::size_t c = chunks.size(); c-- > 0;) {
      const std::string candidate =
          without_range(lines, chunks[c].first, chunks[c].second);
      if (candidate != best && still_fails(candidate)) {
        best = candidate;
        lines = split_lines(best);
        changed = true;
        break;  // chunk table is stale; restart the round
      }
    }
    if (changed) continue;
    // Fine pass: individual lines.
    for (std::size_t i = lines.size(); i-- > 0;) {
      const std::string candidate = without_range(lines, i, i + 1);
      if (candidate != best && still_fails(candidate)) {
        best = candidate;
        changed = true;
        break;
      }
    }
  }
  return best;
}

std::string reduce_divergence(const std::string& source,
                              const OracleOptions& oracle_options,
                              const network::GeneratorOptions& generator) {
  const DifferentialOracle oracle(oracle_options);
  auto still_fails = [&](const std::string& candidate) {
    auto built = build_model_from_rdl(candidate, generator);
    if (!built.is_ok()) return false;  // must keep compiling
    return !oracle.check_model(*built, "reduce").ok();
  };
  if (!still_fails(source)) return source;  // nothing to reduce
  return reduce_rdl(source, still_fails);
}

}  // namespace rms::verify
