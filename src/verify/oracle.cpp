#include "verify/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>

#include "codegen/bytecode_emitter.hpp"
#include "codegen/jacobian.hpp"
#include "codegen/native_backend.hpp"
#include "codegen/reference_backend.hpp"
#include "support/rng.hpp"
#include "support/strings.hpp"
#include "vm/fuse.hpp"
#include "vm/interpreter.hpp"
#include "vm/regalloc.hpp"

namespace rms::verify {

// ---------------------------------------------------------------- compare

double ulp_distance(double a, double b) {
  if (a == b) return 0.0;  // covers +0 == -0
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<double>::infinity();
  }
  if (std::isinf(a) || std::isinf(b)) {
    return std::numeric_limits<double>::infinity();
  }
  if ((a < 0.0) != (b < 0.0)) {
    // Distance through zero: |a| and |b| ulps from their respective sides.
    return ulp_distance(std::fabs(a), 0.0) + ulp_distance(std::fabs(b), 0.0);
  }
  std::int64_t ia = 0;
  std::int64_t ib = 0;
  const double fa = std::fabs(a);
  const double fb = std::fabs(b);
  std::memcpy(&ia, &fa, sizeof(double));
  std::memcpy(&ib, &fb, sizeof(double));
  return static_cast<double>(ia > ib ? ia - ib : ib - ia);
}

bool values_match(double a, double b, Tolerance tolerance,
                  double vector_scale) {
  if (a == b) return true;
  if (std::isnan(a) && std::isnan(b)) return true;
  // A component's noise floor is set by the terms that produced it, not by
  // its own (possibly cancelled-to-tiny) value: admit a sliver of the
  // whole-vector magnitude alongside the per-component scale.
  const double scale =
      std::max({1.0, std::fabs(a), std::fabs(b), 1e-2 * vector_scale});
  switch (tolerance) {
    case Tolerance::kTight:
      return std::fabs(a - b) <= 1e-12 * scale || ulp_distance(a, b) <= 64.0;
    case Tolerance::kReassociated:
      return std::fabs(a - b) <= 1e-9 * scale;
  }
  return false;
}

namespace {

double vector_scale_of(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double scale = 0.0;
  for (double v : a) scale = std::max(scale, std::fabs(v));
  for (double v : b) scale = std::max(scale, std::fabs(v));
  return scale;
}

/// First index where the vectors disagree under the tolerance, or npos.
std::size_t first_mismatch(const std::vector<double>& a,
                           const std::vector<double>& b,
                           Tolerance tolerance) {
  const double scale = vector_scale_of(a, b);
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!values_match(a[i], b[i], tolerance, scale)) return i;
  }
  if (a.size() != b.size()) return n;
  return static_cast<std::size_t>(-1);
}

}  // namespace

// ----------------------------------------------------------------- report

std::string Divergence::to_string() const {
  std::string out = support::str_format(
      "DIVERGENCE model=%s paths=%s|%s trial=%d seed=%llu\n"
      "  equation %zu", model_name.c_str(), path_a.c_str(), path_b.c_str(),
      trial, static_cast<unsigned long long>(seed), equation);
  if (!equation_label.empty()) out += " (" + equation_label + ")";
  out += support::str_format(":\n    %-12s = %.17g\n    %-12s = %.17g\n"
                             "    ulp distance %.3g\n",
                             path_a.c_str(), value_a, path_b.c_str(), value_b,
                             ulp);
  if (!stage.empty()) out += "  blamed stage: " + stage + "\n";
  return out;
}

std::string OracleReport::to_string() const {
  std::string out = support::str_format(
      "oracle %-24s trials=%d paths=[", model_name.c_str(), trials);
  for (std::size_t i = 0; i < paths_checked.size(); ++i) {
    if (i != 0) out += ' ';
    out += paths_checked[i];
  }
  out += ']';
  for (const std::string& s : skipped) out += " skipped:" + s;
  if (ok()) {
    out += " OK\n";
    return out;
  }
  out += support::str_format(" %zu DIVERGENCE(S)\n", divergences.size());
  for (const Divergence& d : divergences) out += d.to_string();
  return out;
}

// -------------------------------------------------------------- pipeline

support::Expected<models::BuiltModel> build_model_from_rdl(
    std::string_view source,
    const network::GeneratorOptions& generator_options) {
  models::BuiltModel built;
  auto model = rdl::compile_rdl(source);
  if (!model.is_ok()) return model.status();
  built.model = std::move(model).value();

  auto net = network::generate_network(built.model, generator_options);
  if (!net.is_ok()) return net.status();
  built.network = std::move(net).value();

  auto rates = rcip::process_rate_constants(built.model, built.network);
  if (!rates.is_ok()) return rates.status();
  built.rates = std::move(rates).value();

  auto odes = odegen::generate_odes(built.network, built.rates,
                                    odegen::OdeGenOptions{true});
  if (!odes.is_ok()) return odes.status();
  built.odes = std::move(odes).value();

  auto raw = odegen::generate_odes(built.network, built.rates,
                                   odegen::OdeGenOptions{false});
  if (!raw.is_ok()) return raw.status();
  built.odes_raw = std::move(raw).value();

  RMS_RETURN_IF_ERROR(models::finish_pipeline(built));
  return built;
}

// ---------------------------------------------------------------- bisect

namespace {

/// Runs `program` once through the interpreter.
std::vector<double> run_program(const vm::Program& program, double t,
                                const std::vector<double>& y,
                                const std::vector<double>& k) {
  const std::size_t outputs =
      program.output_count != 0 ? program.output_count : program.species_count;
  std::vector<double> out(outputs);
  vm::Scratch scratch;
  scratch.prepare(program);
  vm::Interpreter(program).run(t, y.data(), k.data(), out.data(), scratch);
  return out;
}

/// Runs `program` through the batched entry point with every lane holding
/// the same input; returns lane 0.
std::vector<double> run_program_batched(const vm::Program& program, double t,
                                        const std::vector<double>& y,
                                        const std::vector<double>& k,
                                        std::size_t lanes) {
  const std::size_t outputs =
      program.output_count != 0 ? program.output_count : program.species_count;
  std::vector<double> ys(y.size() * lanes);
  std::vector<double> ks(k.size() * lanes);
  for (std::size_t lane = 0; lane < lanes; ++lane) {
    std::copy(y.begin(), y.end(), ys.begin() + lane * y.size());
    std::copy(k.begin(), k.end(), ks.begin() + lane * k.size());
  }
  std::vector<double> ydots(outputs * lanes);
  vm::Scratch scratch;
  scratch.prepare(program, lanes);
  vm::Interpreter(program).run_batch(t, ys.data(), ks.data(), ydots.data(),
                                     lanes, scratch);
  return std::vector<double>(ydots.begin(), ydots.begin() + outputs);
}

struct StageOutput {
  const char* name;
  Tolerance tolerance;  ///< vs the previous stage
  std::vector<double> values;
};

}  // namespace

std::string bisect_stage(const models::BuiltModel& built, double t,
                         const std::vector<double>& y,
                         const std::vector<double>& k,
                         std::size_t batch_lanes) {
  const std::size_t species_count = built.odes.table.size();
  const std::size_t rate_count = built.rates.size();

  // Stage 0 baseline: the raw (uncombined) symbolic table. Regenerate it if
  // the model was built without the reference baseline.
  std::vector<double> baseline;
  odegen::GeneratedOdes raw_local;
  const odegen::EquationTable* raw = &built.odes_raw.table;
  if (raw->size() == 0 && species_count != 0) {
    auto regenerated = odegen::generate_odes(built.network, built.rates,
                                             odegen::OdeGenOptions{false});
    if (!regenerated.is_ok()) return "";
    raw_local = std::move(regenerated).value();
    raw = &raw_local.table;
  }
  raw->evaluate(y, k, t, baseline);

  std::vector<StageOutput> stages;
  stages.reserve(8);

  // simplify: §3.1 like-term combining.
  {
    StageOutput s{"simplify", Tolerance::kReassociated, {}};
    built.odes.table.evaluate(y, k, t, s.values);
    stages.push_back(std::move(s));
  }
  // distopt: §3.2 factoring without CSE temporaries.
  {
    opt::OptimizerOptions options;
    options.cse.enable_prefix_sharing = false;
    options.cse.enable_temporaries = false;
    const opt::OptimizedSystem system =
        opt::optimize(built.odes.table, species_count, rate_count, options);
    StageOutput s{"distopt", Tolerance::kReassociated, {}};
    system.evaluate(y, k, t, s.values);
    stages.push_back(std::move(s));
  }
  // cse + emit + fuse + regalloc + batch share the full optimized system.
  const opt::OptimizedSystem full =
      opt::optimize(built.odes.table, species_count, rate_count);
  {
    StageOutput s{"cse", Tolerance::kReassociated, {}};
    full.evaluate(y, k, t, s.values);
    stages.push_back(std::move(s));
  }
  const vm::Program emitted = codegen::emit_optimized(full);
  stages.push_back(
      {"emit", Tolerance::kTight, run_program(emitted, t, y, k)});
  const vm::Program fused = vm::fuse_superinstructions(emitted);
  stages.push_back({"fuse", Tolerance::kTight, run_program(fused, t, y, k)});
  const vm::Program compacted = vm::compact_registers(fused);
  stages.push_back(
      {"regalloc", Tolerance::kTight, run_program(compacted, t, y, k)});
  if (batch_lanes > 1) {
    stages.push_back({"batch", Tolerance::kTight,
                      run_program_batched(compacted, t, y, k, batch_lanes)});
  }

  const std::vector<double>* previous = &baseline;
  for (const StageOutput& stage : stages) {
    if (first_mismatch(*previous, stage.values, stage.tolerance) !=
        static_cast<std::size_t>(-1)) {
      return stage.name;
    }
    previous = &stage.values;
  }
  return "";
}

// ----------------------------------------------------------------- oracle

namespace {

/// One named RHS evaluation path: fills `out` for a (t, y, k) draw.
struct RhsPath {
  std::string name;
  /// Tolerance against the reference path.
  Tolerance tolerance = Tolerance::kTight;
  /// Whether a divergence on this path should be stage-bisected.
  bool bisectable = false;
  /// Stage to blame when bisection is off / not applicable.
  std::string fixed_stage;
  std::function<void(double, const std::vector<double>&,
                     const std::vector<double>&, std::vector<double>&)>
      evaluate;
};

}  // namespace

OracleReport DifferentialOracle::check_model(const models::BuiltModel& built,
                                             std::string model_name) const {
  OracleReport report;
  report.model_name = std::move(model_name);
  report.trials = options_.trials;

  const std::size_t species_count = built.odes.table.size();
  const std::size_t rate_count = built.rates.size();
  const std::vector<std::string>& names = built.odes.species_names;
  auto species_label = [&](std::size_t i) {
    return i < names.size() ? names[i] : support::str_format("y[%zu]", i);
  };

  // ------------------------------------------------ assemble the RHS paths
  std::vector<RhsPath> paths;
  report.paths_checked.push_back("reference");

  const bool have_raw = built.odes_raw.table.size() != 0;
  if (have_raw) {
    paths.push_back({"raw-reference", Tolerance::kReassociated, true, "",
                     [&built](double t, const std::vector<double>& y,
                              const std::vector<double>& k,
                              std::vector<double>& out) {
                       built.odes_raw.table.evaluate(y, k, t, out);
                     }});
  }
  if (have_raw && !built.program_unoptimized.code.empty()) {
    paths.push_back({"unopt-vm", Tolerance::kReassociated, false, "unopt-emit",
                     [&built](double t, const std::vector<double>& y,
                              const std::vector<double>& k,
                              std::vector<double>& out) {
                       out = run_program(built.program_unoptimized, t, y, k);
                     }});
  }
  paths.push_back({"opt-sym", Tolerance::kReassociated, true, "",
                   [&built](double t, const std::vector<double>& y,
                            const std::vector<double>& k,
                            std::vector<double>& out) {
                     built.optimized.evaluate(y, k, t, out);
                   }});
  paths.push_back({"opt-vm", Tolerance::kReassociated, true, "",
                   [&built](double t, const std::vector<double>& y,
                            const std::vector<double>& k,
                            std::vector<double>& out) {
                     out = run_program(built.program_optimized, t, y, k);
                   }});
  if (options_.check_batch) {
    const std::size_t lanes = std::max<std::size_t>(2, options_.batch_lanes);
    paths.push_back({"batch-vm", Tolerance::kReassociated, true, "",
                     [&built, lanes](double t, const std::vector<double>& y,
                                     const std::vector<double>& k,
                                     std::vector<double>& out) {
                       out = run_program_batched(built.program_optimized, t, y,
                                                 k, lanes);
                     }});
  }

  // The "commercial compiler" backend model re-lowers the unoptimized
  // program with local value numbering; values must be preserved exactly.
  codegen::BackendResult backend;
  bool have_backend = false;
  if (options_.check_reference_backend && have_raw &&
      !built.program_unoptimized.code.empty()) {
    auto compiled = codegen::reference_compile(built.program_unoptimized);
    if (compiled.is_ok()) {
      backend = std::move(compiled).value();
      have_backend = true;
      paths.push_back({"backend-vm", Tolerance::kReassociated, false,
                       "backend-vn",
                       [&backend](double t, const std::vector<double>& y,
                                  const std::vector<double>& k,
                                  std::vector<double>& out) {
                         out = run_program(backend.program, t, y, k);
                       }});
    } else {
      report.skipped.push_back("backend-vm (" +
                               compiled.status().to_string() + ")");
    }
  }

  // Native paths: the emitted C compiled by the system cc through the AOT
  // backend (content-addressed .so cache, temp-file hygiene, VM fallback).
  // The scalar entry shares the VM's computation graph (kTight candidate),
  // but the reference here is the symbolic table, so kReassociated applies;
  // the batch entry must agree with it and the native Jacobian is held
  // kTight against the compiled VM Jacobian below.
  std::unique_ptr<codegen::NativeBackend> native;
  if (options_.check_c_backend) {
    auto compiled = codegen::NativeBackend::create(
        built.optimized,
        options_.check_jacobian ? &built.odes.table : nullptr, species_count,
        rate_count, options_.native);
    if (!compiled.is_ok()) {
      report.skipped.push_back("native-c (" + compiled.status().to_string() +
                               ")");
    } else {
      native = std::move(compiled).value();
      const codegen::NativeBackend* module = native.get();
      paths.push_back({"native-c", Tolerance::kReassociated, true, "",
                       [module, species_count](
                           double t, const std::vector<double>& y,
                           const std::vector<double>& k,
                           std::vector<double>& out) {
                         out.assign(species_count, 0.0);
                         module->rhs(t, y.data(), k.data(), out.data());
                       }});
      if (module->has_batch()) {
        const std::size_t lanes =
            std::max<std::size_t>(2, options_.batch_lanes);
        paths.push_back(
            {"native-batch", Tolerance::kReassociated, true, "",
             [module, species_count, lanes](double t,
                                            const std::vector<double>& y,
                                            const std::vector<double>& k,
                                            std::vector<double>& out) {
               // Every lane holds the same state; report the last lane so a
               // broken lane stride cannot hide behind lane 0.
               std::vector<double> ys(species_count * lanes);
               for (std::size_t lane = 0; lane < lanes; ++lane) {
                 std::copy(y.begin(), y.end(),
                           ys.begin() + lane * species_count);
               }
               std::vector<double> ydots(species_count * lanes, 0.0);
               module->rhs_batch(t, ys.data(), k.data(), ydots.data(), lanes);
               out.assign(ydots.begin() + (lanes - 1) * species_count,
                          ydots.end());
             }});
      }
    }
  }
  for (const RhsPath& path : paths) report.paths_checked.push_back(path.name);

  // -------------------------------------------------- the Jacobian paths
  codegen::SymbolicJacobian jac_sym;
  codegen::CompiledJacobian jac_vm;
  if (options_.check_jacobian && species_count != 0) {
    jac_sym = codegen::differentiate(built.odes.table, species_count);
    jac_vm = codegen::compile_jacobian(built.odes.table, species_count,
                                       rate_count);
    report.paths_checked.push_back("jacobian");
  }
  auto jacobian_label = [&](std::size_t entry) {
    std::size_t row = 0;
    while (row + 1 < jac_vm.row_offsets.size() &&
           jac_vm.row_offsets[row + 1] <= entry) {
      ++row;
    }
    const std::size_t col = jac_vm.col_indices[entry];
    return "d f(" + species_label(row) + ") / d " + species_label(col);
  };

  // --------------------------------------------------------- the trials
  // Per path-pair, only the first divergence is recorded (one bad stage
  // corrupts many equations; the report should name the transform, not
  // enumerate the fallout).
  std::vector<bool> path_diverged(paths.size(), false);
  bool jacobian_diverged = false;
  bool jac_native_diverged = false;

  // The native Jacobian fills CSR values for its own (differentiate-derived)
  // pattern; entry-by-entry comparison against the VM program is only
  // meaningful when the two patterns coincide — they always should, both
  // sides run codegen::differentiate on the same table.
  const bool check_native_jacobian =
      options_.check_jacobian && species_count != 0 && native != nullptr &&
      native->has_jacobian() &&
      native->jacobian_row_offsets() == jac_vm.row_offsets &&
      native->jacobian_col_indices() == jac_vm.col_indices;
  if (options_.check_jacobian && native != nullptr && native->has_jacobian() &&
      !check_native_jacobian) {
    report.skipped.push_back("jac-native (sparsity pattern mismatch)");
  }
  if (check_native_jacobian) report.paths_checked.push_back("jac-native");

  support::Xoshiro256 rng(options_.seed);
  std::vector<double> reference;
  std::vector<double> candidate;
  std::vector<double> jac_reference;
  std::vector<double> jac_native;
  std::vector<double> jac_values(jac_vm.col_indices.size());
  for (int trial = 0; trial < options_.trials; ++trial) {
    const double t = rng.uniform(0.0, 1.0);
    std::vector<double> y(species_count);
    for (double& v : y) v = rng.uniform(0.0, 2.0);
    std::vector<double> k(rate_count);
    for (double& v : k) v = rng.uniform(0.05, 10.0);

    built.odes.table.evaluate(y, k, t, reference);

    for (std::size_t p = 0; p < paths.size(); ++p) {
      if (path_diverged[p]) continue;
      paths[p].evaluate(t, y, k, candidate);
      const std::size_t bad =
          first_mismatch(reference, candidate, paths[p].tolerance);
      if (bad == static_cast<std::size_t>(-1)) continue;
      path_diverged[p] = true;
      Divergence d;
      d.model_name = report.model_name;
      d.path_a = "reference";
      d.path_b = paths[p].name;
      d.equation = bad;
      d.equation_label = species_label(bad);
      d.value_a = bad < reference.size() ? reference[bad] : 0.0;
      d.value_b = bad < candidate.size() ? candidate[bad] : 0.0;
      d.ulp = ulp_distance(d.value_a, d.value_b);
      d.trial = trial;
      d.seed = options_.seed;
      if (paths[p].bisectable && options_.bisect) {
        d.stage = bisect_stage(built, t, y, k,
                               options_.check_batch ? options_.batch_lanes : 0);
        if (d.stage.empty()) d.stage = "unlocalized";
      } else {
        d.stage = paths[p].fixed_stage;
      }
      report.divergences.push_back(std::move(d));
    }

    const bool want_vm_jacobian =
        options_.check_jacobian && species_count != 0 &&
        !jac_vm.program.code.empty() && !jacobian_diverged;
    const bool want_native_jacobian =
        check_native_jacobian && !jac_vm.program.code.empty() &&
        !jac_native_diverged;
    if (want_vm_jacobian || want_native_jacobian) {
      jac_values = run_program(jac_vm.program, t, y, k);
    }
    if (want_vm_jacobian) {
      jac_sym.entries.evaluate(y, k, t, jac_reference);
      const std::size_t bad = first_mismatch(jac_reference, jac_values,
                                             Tolerance::kReassociated);
      if (bad != static_cast<std::size_t>(-1)) {
        jacobian_diverged = true;
        Divergence d;
        d.model_name = report.model_name;
        d.path_a = "jac-sym";
        d.path_b = "jac-vm";
        d.stage = "jacobian";
        d.equation = bad;
        d.equation_label =
            bad < jac_vm.col_indices.size() ? jacobian_label(bad) : "";
        d.value_a = bad < jac_reference.size() ? jac_reference[bad] : 0.0;
        d.value_b = bad < jac_values.size() ? jac_values[bad] : 0.0;
        d.ulp = ulp_distance(d.value_a, d.value_b);
        d.trial = trial;
        d.seed = options_.seed;
        report.divergences.push_back(std::move(d));
      }
    }
    if (want_native_jacobian) {
      // Both sides optimize the same differentiated entry table, so the
      // native CSR fill is bit-comparable to the VM Jacobian program.
      jac_native.assign(jac_vm.col_indices.size(), 0.0);
      native->jacobian_values(t, y.data(), k.data(), jac_native.data());
      const std::size_t bad =
          first_mismatch(jac_values, jac_native, Tolerance::kTight);
      if (bad != static_cast<std::size_t>(-1)) {
        jac_native_diverged = true;
        Divergence d;
        d.model_name = report.model_name;
        d.path_a = "jac-vm";
        d.path_b = "jac-native";
        d.stage = "jacobian-native";
        d.equation = bad;
        d.equation_label =
            bad < jac_vm.col_indices.size() ? jacobian_label(bad) : "";
        d.value_a = bad < jac_values.size() ? jac_values[bad] : 0.0;
        d.value_b = bad < jac_native.size() ? jac_native[bad] : 0.0;
        d.ulp = ulp_distance(d.value_a, d.value_b);
        d.trial = trial;
        d.seed = options_.seed;
        report.divergences.push_back(std::move(d));
      }
    }
  }
  (void)have_backend;
  return report;
}

support::Expected<OracleReport> DifferentialOracle::check_rdl(
    std::string_view source, std::string model_name,
    const network::GeneratorOptions& generator_options) const {
  auto built = build_model_from_rdl(source, generator_options);
  if (!built.is_ok()) return built.status();
  return check_model(*built, std::move(model_name));
}

}  // namespace rms::verify
