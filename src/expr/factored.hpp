// Factored expression trees: the result of the distributive optimization.
//
// DistOpt (paper §3.2, Fig. 6) rewrites a flat sum-of-products into nested
// factored form: k1*B*C + k1*B*D + k1*E*F  ->  k1*(B*(C+D) + E*F).
// A FactoredSum is a sum of FactoredTerms; each FactoredTerm multiplies a
// coefficient, a sorted factor list, and an optional nested FactoredSum.
// After CSE, factor lists and sum terms may reference kTemp variables.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/product.hpp"
#include "expr/varid.hpp"
#include "support/small_vector.hpp"

namespace rms::expr {

class FactoredSum;

/// coeff * factors[0] * ... * factors[n-1] * (sub ? sum(sub) : 1)
struct FactoredTerm {
  double coeff = 1.0;
  support::SmallVector<VarId, 4> factors;
  std::unique_ptr<FactoredSum> sub;

  FactoredTerm() = default;
  explicit FactoredTerm(const Product& p);
  FactoredTerm(const FactoredTerm& other);
  FactoredTerm(FactoredTerm&&) = default;
  FactoredTerm& operator=(const FactoredTerm& other);
  FactoredTerm& operator=(FactoredTerm&&) = default;

  /// Recursive structural order: factors, then coeff, then sub-sum.
  [[nodiscard]] int compare(const FactoredTerm& other) const;
  [[nodiscard]] bool equals(const FactoredTerm& other) const {
    return compare(other) == 0;
  }

  /// Recursive structural hash consistent with equals().
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] std::size_t multiply_count() const;
  [[nodiscard]] std::size_t add_sub_count() const;

  [[nodiscard]] std::string to_string() const;
};

/// Dense variable environment for tree evaluation (tests / reference paths).
struct EvalEnv {
  const std::vector<double>* species = nullptr;
  const std::vector<double>* rate_consts = nullptr;
  const std::vector<double>* temps = nullptr;
  double t = 0.0;

  [[nodiscard]] double value_of(VarId v) const;
};

class FactoredSum {
 public:
  FactoredSum() = default;

  /// Converts a flat sum-of-products (each product becomes one term).
  static FactoredSum from_sum_of_products(const SumOfProducts& sop);

  std::vector<FactoredTerm>& terms() { return terms_; }
  [[nodiscard]] const std::vector<FactoredTerm>& terms() const { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }
  [[nodiscard]] std::size_t size() const { return terms_.size(); }

  /// Sorts terms into the canonical structural order (paper §3.3 requires
  /// every expression's terms in canonical lexicographic order before CSE).
  void sort_canonical();

  [[nodiscard]] int compare(const FactoredSum& other) const;
  [[nodiscard]] bool equals(const FactoredSum& other) const {
    return compare(other) == 0;
  }
  [[nodiscard]] std::uint64_t hash() const;

  [[nodiscard]] double evaluate(const EvalEnv& env) const;

  [[nodiscard]] std::size_t multiply_count() const;
  [[nodiscard]] std::size_t add_sub_count() const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<FactoredTerm> terms_;
};

}  // namespace rms::expr
