#include "expr/factored.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::expr {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  return h ^ (h >> 27);
}

}  // namespace

FactoredTerm::FactoredTerm(const Product& p) : coeff(p.coeff) {
  factors = p.factors;
}

FactoredTerm::FactoredTerm(const FactoredTerm& other)
    : coeff(other.coeff), factors(other.factors) {
  if (other.sub) sub = std::make_unique<FactoredSum>(*other.sub);
}

FactoredTerm& FactoredTerm::operator=(const FactoredTerm& other) {
  if (this != &other) {
    coeff = other.coeff;
    factors = other.factors;
    sub = other.sub ? std::make_unique<FactoredSum>(*other.sub) : nullptr;
  }
  return *this;
}

int FactoredTerm::compare(const FactoredTerm& other) const {
  const std::size_t n = std::min(factors.size(), other.factors.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (factors[i] < other.factors[i]) return -1;
    if (other.factors[i] < factors[i]) return 1;
  }
  if (factors.size() != other.factors.size()) {
    return factors.size() < other.factors.size() ? -1 : 1;
  }
  if (coeff != other.coeff) return coeff < other.coeff ? -1 : 1;
  const bool a_sub = sub != nullptr;
  const bool b_sub = other.sub != nullptr;
  if (a_sub != b_sub) return a_sub ? 1 : -1;
  if (!a_sub) return 0;
  return sub->compare(*other.sub);
}

std::uint64_t FactoredTerm::hash() const {
  std::uint64_t h = 0x9E3779B97F4A7C15ull;
  for (VarId v : factors) h = mix(h, v.packed());
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(coeff));
  std::memcpy(&bits, &coeff, sizeof(bits));
  h = mix(h, bits);
  if (sub) h = mix(h, sub->hash());
  return h;
}

std::size_t FactoredTerm::multiply_count() const {
  std::size_t multiplicands = factors.size();
  if (sub) multiplicands += 1;
  if (coeff != 1.0 && coeff != -1.0) multiplicands += 1;
  std::size_t count = multiplicands > 0 ? multiplicands - 1 : 0;
  if (sub) count += sub->multiply_count();
  return count;
}

std::size_t FactoredTerm::add_sub_count() const {
  return sub ? sub->add_sub_count() : 0;
}

std::string FactoredTerm::to_string() const {
  Product head;
  head.coeff = coeff;
  head.factors = factors;
  std::string out = head.to_string();
  if (sub) {
    const bool head_is_trivial =
        factors.empty() && (coeff == 1.0 || coeff == -1.0);
    if (head_is_trivial) {
      out = (coeff == -1.0 ? "-" : "");
    } else {
      out += "*";
    }
    out += "(" + sub->to_string() + ")";
  }
  return out;
}

double EvalEnv::value_of(VarId v) const {
  switch (v.kind) {
    case VarKind::kSpecies:
      RMS_CHECK(species != nullptr && v.index < species->size());
      return (*species)[v.index];
    case VarKind::kRateConst:
      RMS_CHECK(rate_consts != nullptr && v.index < rate_consts->size());
      return (*rate_consts)[v.index];
    case VarKind::kTemp:
      RMS_CHECK(temps != nullptr && v.index < temps->size());
      return (*temps)[v.index];
    case VarKind::kTime:
      return t;
  }
  RMS_UNREACHABLE();
}

FactoredSum FactoredSum::from_sum_of_products(const SumOfProducts& sop) {
  FactoredSum out;
  out.terms_.reserve(sop.size());
  for (const Product& p : sop.terms()) {
    if (p.coeff == 0.0) continue;
    out.terms_.emplace_back(p);
  }
  return out;
}

void FactoredSum::sort_canonical() {
  for (FactoredTerm& t : terms_) {
    if (t.sub) t.sub->sort_canonical();
  }
  std::sort(terms_.begin(), terms_.end(),
            [](const FactoredTerm& a, const FactoredTerm& b) {
              return a.compare(b) < 0;
            });
}

int FactoredSum::compare(const FactoredSum& other) const {
  const std::size_t n = std::min(terms_.size(), other.terms_.size());
  for (std::size_t i = 0; i < n; ++i) {
    const int c = terms_[i].compare(other.terms_[i]);
    if (c != 0) return c;
  }
  if (terms_.size() != other.terms_.size()) {
    return terms_.size() < other.terms_.size() ? -1 : 1;
  }
  return 0;
}

std::uint64_t FactoredSum::hash() const {
  std::uint64_t h = 0x853C49E6748FEA9Bull;
  for (const FactoredTerm& t : terms_) h = mix(h, t.hash());
  return h;
}

double FactoredSum::evaluate(const EvalEnv& env) const {
  double sum = 0.0;
  for (const FactoredTerm& t : terms_) {
    double prod = t.coeff;
    for (VarId v : t.factors) prod *= env.value_of(v);
    if (t.sub) prod *= t.sub->evaluate(env);
    sum += prod;
  }
  return sum;
}

std::size_t FactoredSum::multiply_count() const {
  std::size_t count = 0;
  for (const FactoredTerm& t : terms_) count += t.multiply_count();
  return count;
}

std::size_t FactoredSum::add_sub_count() const {
  std::size_t count = terms_.empty() ? 0 : terms_.size() - 1;
  for (const FactoredTerm& t : terms_) count += t.add_sub_count();
  return count;
}

std::string FactoredSum::to_string() const {
  std::string out;
  bool first = true;
  for (const FactoredTerm& t : terms_) {
    std::string term = t.to_string();
    if (first) {
      out = term;
      first = false;
    } else if (!term.empty() && term[0] == '-') {
      out += " - " + term.substr(1);
    } else {
      out += " + " + term;
    }
  }
  if (first) out = "0";
  return out;
}

}  // namespace rms::expr
