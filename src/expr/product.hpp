// Sum-of-products: the canonical, fully non-distributed expression form.
//
// The equation generator produces each ODE right-hand side as a sum of
// products "coeff * v1 * v2 * ..." with the factor list kept in canonical
// lexicographic order (paper §3.3: "a canonical fully non-distributed
// representation is best"). The algebraic optimizer consumes this form.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "expr/varid.hpp"
#include "support/small_vector.hpp"

namespace rms::expr {

/// One product term: coeff * factors[0] * factors[1] * ...
/// Invariant: factors are sorted by the canonical VarId order (duplicates
/// allowed — e.g. k * A * A for a second-order self-reaction).
struct Product {
  double coeff = 1.0;
  support::SmallVector<VarId, 4> factors;

  Product() = default;
  Product(double c, std::initializer_list<VarId> fs);

  /// Restores the sorted-factors invariant after external mutation.
  void normalize();

  /// True if the variable part (ignoring coeff) equals `other`'s.
  [[nodiscard]] bool same_variables(const Product& other) const;

  /// True if `v` occurs among the factors.
  [[nodiscard]] bool contains(VarId v) const;

  /// Removes ONE occurrence of `v` (which must be present).
  void divide_by(VarId v);

  /// Hash of the variable part only (used for like-term combining).
  [[nodiscard]] std::uint64_t variables_hash() const;

  /// Hash of the whole term (coefficient included), consistent with
  /// compare() == 0. Used to memoize per-equation optimization results.
  [[nodiscard]] std::uint64_t structural_hash() const;

  /// Multiplications needed to evaluate this product:
  /// (#factors - 1) between factors, +1 if the coefficient is not +/-1,
  /// and 0 for a bare +/-coeff constant.
  [[nodiscard]] std::size_t multiply_count() const;

  /// Stable total order on (factors, coeff) — canonical term order.
  [[nodiscard]] int compare(const Product& other) const;

  /// Rendering for goldens/debugging, e.g. "-2*k1*A*B".
  [[nodiscard]] std::string to_string() const;
};

/// An equation right-hand side: sum of product terms.
///
/// The paper's equation table stores one of these per species as a doubly
/// linked list of nodes; we use a contiguous vector plus a hash index that
/// implements the on-the-fly like-term combining of §3.1 in O(1) per insert.
class SumOfProducts {
 public:
  SumOfProducts() = default;
  SumOfProducts(const SumOfProducts&) = default;
  SumOfProducts(SumOfProducts&&) = default;
  SumOfProducts& operator=(const SumOfProducts&) = default;
  SumOfProducts& operator=(SumOfProducts&&) = default;

  /// Adds `p`, combining with an existing term that has the same variable
  /// part (equation simplification, paper §3.1: 2*k*B*C + 3*k*B*C -> 5*k*B*C).
  /// Terms whose coefficient cancels to zero stay until compact().
  void add_combining(Product p);

  /// Adds `p` verbatim with no combining — used to build the *unoptimized*
  /// code the paper's baselines measure.
  void add_raw(Product p);

  /// Drops zero-coefficient terms produced by exact cancellation.
  void compact();

  /// Pre-sizes the term storage (an upper bound is fine); generators that
  /// know their contribution counts use this to avoid growth reallocation.
  void reserve(std::size_t n) { terms_.reserve(n); }

  [[nodiscard]] const std::vector<Product>& terms() const { return terms_; }
  [[nodiscard]] std::vector<Product>& terms() { return terms_; }
  [[nodiscard]] bool empty() const { return terms_.empty(); }
  [[nodiscard]] std::size_t size() const { return terms_.size(); }

  /// Compacts and sorts terms into canonical order.
  void sort_canonical();

  /// Numeric evaluation given dense variable values; temps are not allowed
  /// in this form. Used by semantic-preservation property tests.
  [[nodiscard]] double evaluate(const std::vector<double>& species,
                                const std::vector<double>& rate_consts,
                                double t) const;

  /// Operation counts for the unoptimized form (zero terms excluded).
  [[nodiscard]] std::size_t multiply_count() const;
  [[nodiscard]] std::size_t add_sub_count() const;

  /// Structural hash / equality over the term sequence (coefficients
  /// included, zero terms excluded). Two equations that sorted to the same
  /// canonical form hash and compare equal — the key for the DistOpt memo
  /// cache (duplicate equations are optimized once).
  [[nodiscard]] std::uint64_t structural_hash() const;
  [[nodiscard]] bool structural_equals(const SumOfProducts& other) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<Product> terms_;
  // variables_hash -> indices of candidate like terms (verified structurally).
  // Built lazily: small sums combine by linear scan (no allocation at all),
  // and the index covers terms_[0..indexed_count_) only once a sum outgrows
  // the scan. compact()/sort_canonical() invalidate it; the next combining
  // add on a large sum rebuilds coverage.
  std::unordered_map<std::uint64_t, support::SmallVector<std::uint32_t, 2>> index_;
  std::uint32_t indexed_count_ = 0;
};

/// Value of a single variable from the dense environment (shared helper).
double variable_value(VarId v, const std::vector<double>& species,
                      const std::vector<double>& rate_consts, double t);

}  // namespace rms::expr
