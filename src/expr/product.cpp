#include "expr/product.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::expr {

namespace {

/// Stable mixing for 64-bit hash combination (splitmix64 finalizer).
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  return h ^ (h >> 27);
}

std::string variable_name(VarId v) {
  switch (v.kind) {
    case VarKind::kSpecies: return support::str_format("y%u", v.index);
    case VarKind::kRateConst: return support::str_format("k%u", v.index);
    case VarKind::kTemp: return support::str_format("temp%u", v.index);
    case VarKind::kTime: return "t";
  }
  return "?";
}

}  // namespace

Product::Product(double c, std::initializer_list<VarId> fs) : coeff(c) {
  for (VarId v : fs) factors.push_back(v);
  normalize();
}

void Product::normalize() { std::sort(factors.begin(), factors.end()); }

bool Product::same_variables(const Product& other) const {
  return factors == other.factors;
}

bool Product::contains(VarId v) const {
  return std::binary_search(factors.begin(), factors.end(), v);
}

void Product::divide_by(VarId v) {
  auto it = std::lower_bound(factors.begin(), factors.end(), v);
  RMS_CHECK_MSG(it != factors.end() && *it == v,
                "divide_by: factor not present in product");
  factors.erase(it);
}

std::uint64_t Product::variables_hash() const {
  std::uint64_t h = 0x2545F4914F6CDD1Dull;
  for (VarId v : factors) h = mix(h, v.packed());
  return h;
}

std::uint64_t Product::structural_hash() const {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(coeff));
  std::memcpy(&bits, &coeff, sizeof(bits));
  return mix(variables_hash(), bits);
}

std::size_t Product::multiply_count() const {
  if (factors.empty()) return 0;
  std::size_t count = factors.size() - 1;
  if (coeff != 1.0 && coeff != -1.0) ++count;
  return count;
}

int Product::compare(const Product& other) const {
  const std::size_t n = std::min(factors.size(), other.factors.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (factors[i] < other.factors[i]) return -1;
    if (other.factors[i] < factors[i]) return 1;
  }
  if (factors.size() != other.factors.size()) {
    return factors.size() < other.factors.size() ? -1 : 1;
  }
  if (coeff != other.coeff) return coeff < other.coeff ? -1 : 1;
  return 0;
}

std::string Product::to_string() const {
  std::string out;
  if (coeff == -1.0 && !factors.empty()) {
    out = "-";
  } else if (coeff != 1.0 || factors.empty()) {
    // Integral coefficients render without a decimal point.
    if (coeff == std::floor(coeff) && std::fabs(coeff) < 1e15) {
      out = support::str_format("%lld", static_cast<long long>(coeff));
    } else {
      out = support::str_format("%g", coeff);
    }
    if (!factors.empty()) out += "*";
  }
  for (std::size_t i = 0; i < factors.size(); ++i) {
    if (i > 0) out += "*";
    out += variable_name(factors[i]);
  }
  return out;
}

namespace {
/// Sums below this size combine by linear scan; only larger ones pay for the
/// hash index. Chemistry Jacobian entries and most RHS rows stay under it,
/// so the common case allocates nothing beyond the term vector.
constexpr std::size_t kIndexThreshold = 16;
}  // namespace

void SumOfProducts::add_combining(Product p) {
  p.normalize();
  if (terms_.size() < kIndexThreshold) {
    for (Product& t : terms_) {
      if (t.same_variables(p)) {
        t.coeff += p.coeff;
        return;
      }
    }
    terms_.push_back(std::move(p));
    return;
  }
  if (indexed_count_ != terms_.size()) {
    // Extend coverage to every current term: the sum just crossed the
    // threshold, or compact()/sort_canonical() invalidated positions.
    for (std::size_t i = indexed_count_; i < terms_.size(); ++i) {
      index_[terms_[i].variables_hash()].push_back(
          static_cast<std::uint32_t>(i));
    }
    indexed_count_ = static_cast<std::uint32_t>(terms_.size());
  }
  const std::uint64_t h = p.variables_hash();
  auto it = index_.find(h);
  if (it != index_.end()) {
    for (std::uint32_t idx : it->second) {
      if (terms_[idx].same_variables(p)) {
        terms_[idx].coeff += p.coeff;
        return;
      }
    }
  }
  index_[h].push_back(static_cast<std::uint32_t>(terms_.size()));
  terms_.push_back(std::move(p));
  ++indexed_count_;
}

void SumOfProducts::add_raw(Product p) {
  p.normalize();
  terms_.push_back(std::move(p));
}

void SumOfProducts::compact() {
  std::size_t w = 0;
  for (std::size_t r = 0; r < terms_.size(); ++r) {
    if (terms_[r].coeff != 0.0) {
      if (w != r) terms_[w] = std::move(terms_[r]);
      ++w;
    }
  }
  terms_.resize(w);
  // The hash index is position-based; invalidate it and let the next
  // combining add rebuild coverage (most sums are finished at this point,
  // so an eager rebuild would be thrown away).
  index_.clear();
  indexed_count_ = 0;
}

void SumOfProducts::sort_canonical() {
  compact();
  std::sort(terms_.begin(), terms_.end(),
            [](const Product& a, const Product& b) { return a.compare(b) < 0; });
}

std::uint64_t SumOfProducts::structural_hash() const {
  std::uint64_t h = 0x6A09E667F3BCC909ull;
  for (const Product& p : terms_) {
    if (p.coeff == 0.0) continue;
    h = mix(h, p.structural_hash());
  }
  return h;
}

bool SumOfProducts::structural_equals(const SumOfProducts& other) const {
  // Zero terms are skipped on both sides (they are semantically absent).
  std::size_t i = 0;
  std::size_t j = 0;
  for (;;) {
    while (i < terms_.size() && terms_[i].coeff == 0.0) ++i;
    while (j < other.terms_.size() && other.terms_[j].coeff == 0.0) ++j;
    if (i == terms_.size() || j == other.terms_.size()) {
      return i == terms_.size() && j == other.terms_.size();
    }
    if (terms_[i].compare(other.terms_[j]) != 0) return false;
    ++i;
    ++j;
  }
}

double variable_value(VarId v, const std::vector<double>& species,
                      const std::vector<double>& rate_consts, double t) {
  switch (v.kind) {
    case VarKind::kSpecies:
      RMS_CHECK(v.index < species.size());
      return species[v.index];
    case VarKind::kRateConst:
      RMS_CHECK(v.index < rate_consts.size());
      return rate_consts[v.index];
    case VarKind::kTime:
      return t;
    case VarKind::kTemp:
      RMS_CHECK_MSG(false, "temps cannot appear in sum-of-products form");
  }
  RMS_UNREACHABLE();
}

double SumOfProducts::evaluate(const std::vector<double>& species,
                               const std::vector<double>& rate_consts,
                               double t) const {
  double sum = 0.0;
  for (const Product& p : terms_) {
    double prod = p.coeff;
    for (VarId v : p.factors) prod *= variable_value(v, species, rate_consts, t);
    sum += prod;
  }
  return sum;
}

std::size_t SumOfProducts::multiply_count() const {
  std::size_t count = 0;
  for (const Product& p : terms_) {
    if (p.coeff == 0.0) continue;
    count += p.multiply_count();
  }
  return count;
}

std::size_t SumOfProducts::add_sub_count() const {
  std::size_t nonzero = 0;
  for (const Product& p : terms_) {
    if (p.coeff != 0.0) ++nonzero;
  }
  return nonzero == 0 ? 0 : nonzero - 1;
}

std::string SumOfProducts::to_string() const {
  std::string out;
  bool first = true;
  for (const Product& p : terms_) {
    if (p.coeff == 0.0) continue;
    std::string term = p.to_string();
    if (first) {
      out = term;
      first = false;
    } else if (!term.empty() && term[0] == '-') {
      out += " - " + term.substr(1);
    } else {
      out += " + " + term;
    }
  }
  if (first) out = "0";
  return out;
}

}  // namespace rms::expr
