// Typed variable references used throughout the generated ODE code.
//
// The paper's CSE exploits the fact that the compiler controls name
// generation: a variable *name* can stand for its *value* (§3.3). VarId is
// that name — a (kind, index) pair with a total "canonical lexicographic"
// order used to keep every expression sorted.
#pragma once

#include <cstdint>
#include <functional>

namespace rms::expr {

enum class VarKind : std::uint8_t {
  kSpecies = 0,    ///< concentration y[index]
  kRateConst = 1,  ///< kinetic rate constant k[index]
  kTemp = 2,       ///< CSE temporary temp[index]
  kTime = 3,       ///< the independent variable t
};

struct VarId {
  VarKind kind = VarKind::kSpecies;
  std::uint32_t index = 0;

  static VarId species(std::uint32_t i) { return {VarKind::kSpecies, i}; }
  static VarId rate_const(std::uint32_t i) { return {VarKind::kRateConst, i}; }
  static VarId temp(std::uint32_t i) { return {VarKind::kTemp, i}; }
  static VarId time() { return {VarKind::kTime, 0}; }

  friend bool operator==(VarId a, VarId b) {
    return a.kind == b.kind && a.index == b.index;
  }
  friend bool operator!=(VarId a, VarId b) { return !(a == b); }

  /// Canonical lexicographic order: species < rate constants < temps < time,
  /// then by index. All sorted expression forms use this order.
  friend bool operator<(VarId a, VarId b) {
    if (a.kind != b.kind) return a.kind < b.kind;
    return a.index < b.index;
  }

  [[nodiscard]] std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(kind) << 32) | index;
  }
};

}  // namespace rms::expr

template <>
struct std::hash<rms::expr::VarId> {
  std::size_t operator()(rms::expr::VarId v) const noexcept {
    return std::hash<std::uint64_t>()(v.packed());
  }
};
