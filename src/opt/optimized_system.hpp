// Optimized-system IR: hash-consed products and sums with CSE temporaries.
//
// The paper's CSE (§3.3, Fig. 7) stores every sub-expression as its terms in
// canonical lexicographic order, bucketed by length, and shares (a) whole
// expressions of equal length and (b) shorter expressions that form a prefix
// of longer ones. We apply that uniformly to the two expression kinds the
// equation generator produces:
//   Product:  atom sequence  [y_i, y_j, k_m, (sum ref)...]   value = prod
//   Sum:      operand sequence [(coeff, product)...]         value = sum
// Equal expressions are hash-consed into one entry (Fig. 7 lines 4-6: the
// equal-length full match); an entry referenced more than once, or donating
// its value as a prefix of a longer entry (lines 7-11), receives a
// temporary (the genTemp bit). Temporaries are emitted in dependency order
// before any use (lines 12-14).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "expr/varid.hpp"
#include "support/small_vector.hpp"

namespace rms::opt {

inline constexpr std::int32_t kNoExpr = -1;

/// A product factor: a variable or a (nested) sum entry.
struct ProductAtom {
  enum class Kind : std::uint8_t { kVar, kSum };
  Kind kind = Kind::kVar;
  expr::VarId var;         ///< kVar
  std::int32_t sum = kNoExpr;  ///< kSum

  static ProductAtom variable(expr::VarId v) {
    ProductAtom a;
    a.kind = Kind::kVar;
    a.var = v;
    return a;
  }
  static ProductAtom sum_ref(std::int32_t id) {
    ProductAtom a;
    a.kind = Kind::kSum;
    a.sum = id;
    return a;
  }
  friend bool operator==(const ProductAtom& x, const ProductAtom& y) {
    if (x.kind != y.kind) return false;
    return x.kind == Kind::kVar ? x.var == y.var : x.sum == y.sum;
  }
};

/// Coefficient-free product of atoms in canonical order (vars first, then
/// sum refs). An empty atom list has value 1 (pure-constant sum operands).
struct ProductEntry {
  support::SmallVector<ProductAtom, 4> atoms;
  /// When prefix_len > 0: the first prefix_len atoms are computed as
  /// temp(prefix_product) — a shorter product entry whose full atom list
  /// equals that prefix.
  std::int32_t prefix_product = kNoExpr;
  std::uint32_t prefix_len = 0;
  std::int32_t temp_index = -1;
  std::uint32_t use_count = 0;
};

/// One signed term of a sum: coeff * value(product).
struct SumOperand {
  double coeff = 1.0;
  std::uint32_t product = 0;

  friend bool operator==(const SumOperand& a, const SumOperand& b) {
    return a.coeff == b.coeff && a.product == b.product;
  }
};

struct SumEntry {
  std::vector<SumOperand> operands;  ///< canonical order
  /// When prefix_len > 0: the first prefix_len operands are computed as
  /// temp(prefix_sum).
  std::int32_t prefix_sum = kNoExpr;
  std::uint32_t prefix_len = 0;
  std::int32_t temp_index = -1;
  std::uint32_t use_count = 0;
};

struct OperationCount {
  std::size_t multiplies = 0;
  std::size_t add_subs = 0;

  [[nodiscard]] std::size_t total() const { return multiplies + add_subs; }
};

/// A temporary definition site, in emission (def-before-use) order.
struct TempDef {
  enum class Kind : std::uint8_t { kProduct, kSum };
  Kind kind = Kind::kProduct;
  std::uint32_t entry = 0;  ///< index into products/sums
};

/// The whole optimized ODE program dy/dt = f(y, k, t).
struct OptimizedSystem {
  std::vector<ProductEntry> products;
  std::vector<SumEntry> sums;
  /// Per species: RHS sum id, or kNoExpr for an identically-zero RHS.
  std::vector<std::int32_t> equations;
  /// Temporary definitions in dependency order.
  std::vector<TempDef> temp_order;
  std::size_t species_count = 0;
  std::size_t rate_count = 0;

  [[nodiscard]] std::size_t temp_count() const { return temp_order.size(); }

  /// Arithmetic operation counts of the emitted program (each temporary's
  /// definition counted once; a temporary use is an operand, not an op).
  [[nodiscard]] OperationCount count_operations() const;

  /// Reference tree-walking evaluation (tests and golden comparisons).
  void evaluate(const std::vector<double>& species,
                const std::vector<double>& rate_consts, double t,
                std::vector<double>& dydt) const;

  /// Pretty-print: temp definitions then equations.
  [[nodiscard]] std::string to_string(
      const std::vector<std::string>* species_names = nullptr) const;
};

}  // namespace rms::opt
