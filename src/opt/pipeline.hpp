// Optimizer pipeline driver: equation table -> DistOpt -> CSE.
//
// Stage toggles support the ablations of Table 1: the "without algebraic/
// CSE optimizations" baselines disable everything; "algebraic only" enables
// DistOpt but not temporaries; the full pipeline enables both. (The §3.1
// simplification runs inside the equation generator — "on-the-fly as the
// equations are generated" — and is toggled there.)
#pragma once

#include "odegen/equation_table.hpp"
#include "opt/cse.hpp"
#include "opt/optimized_system.hpp"
#include "opt/phase_timings.hpp"
#include "support/thread_pool.hpp"

namespace rms::opt {

struct OptimizerOptions {
  /// Run the §3.2 distributive optimization per equation.
  bool distributive = true;
  CseOptions cse;

  /// Optimize one representative per group of structurally identical
  /// equations and copy the result to the duplicates. Jacobian tables repeat
  /// entries heavily (rate laws differentiate to the same few shapes), so
  /// this skips most DistOpt work; output is bit-identical because DistOpt
  /// is a pure function of the equation.
  bool memoize_equations = true;

  /// Maintain DistOpt's per-variable frequency table incrementally across
  /// factoring rounds instead of recounting the surviving products each
  /// round. Same output either way; off reproduces the seed pipeline's cost
  /// profile (bench_compile's serial baseline).
  bool incremental_frequency = true;

  /// Worker pool for the per-equation DistOpt fan-out; null runs serially.
  const support::ThreadPool* pool = nullptr;

  /// Optional phase telemetry sink ("distopt", "cse" phases).
  PhaseTimings* timings = nullptr;

  static OptimizerOptions none() {
    OptimizerOptions o;
    o.distributive = false;
    o.cse.enable_prefix_sharing = false;
    o.cse.enable_temporaries = false;
    return o;
  }
  static OptimizerOptions full() { return OptimizerOptions{}; }
};

struct OptimizationReport {
  OperationCount before;  ///< flat sum-of-products op counts
  OperationCount after;   ///< emitted optimized program op counts
  std::size_t temp_count = 0;
  /// Distinct equations actually run through DistOpt (== equation count when
  /// memoization is off or every equation is unique).
  std::size_t distinct_equations = 0;

  [[nodiscard]] double multiply_fraction() const {
    return before.multiplies == 0
               ? 1.0
               : static_cast<double>(after.multiplies) /
                     static_cast<double>(before.multiplies);
  }
  [[nodiscard]] double add_sub_fraction() const {
    return before.add_subs == 0 ? 1.0
                                : static_cast<double>(after.add_subs) /
                                      static_cast<double>(before.add_subs);
  }
  [[nodiscard]] double total_fraction() const {
    return before.total() == 0 ? 1.0
                               : static_cast<double>(after.total()) /
                                     static_cast<double>(before.total());
  }
};

/// Runs the configured pipeline over an equation table.
OptimizedSystem optimize(const odegen::EquationTable& table,
                         std::size_t species_count, std::size_t rate_count,
                         const OptimizerOptions& options = {},
                         OptimizationReport* report = nullptr);

}  // namespace rms::opt
