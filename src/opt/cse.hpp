// Common subexpression elimination (paper §3.3, Fig. 7).
//
// Consumes the per-equation factored trees produced by the distributive
// optimization and builds the hash-consed OptimizedSystem:
//   1. interning — every structurally identical product/sum becomes one
//      entry (Fig. 7's equal-length full match, lines 4-6);
//   2. prefix sharing — each entry searches, longest first, for an existing
//      shorter entry equal to its leading terms and reuses its temporary
//      (lines 7-11); canonical term order makes this a plain sequence
//      prefix test, and hash-consing guarantees at most one candidate per
//      prefix, so the search is a hash lookup per length (an O(m n)
//      tightening of the paper's O(m^2 n) scan with identical results);
//   3. temporary assignment — every entry used >= 2 times (including prefix
//      donations) gets a temp (genTemp), emitted in dependency order before
//      first use (lines 12-14).
#pragma once

#include <vector>

#include "expr/factored.hpp"
#include "opt/optimized_system.hpp"

namespace rms::opt {

struct CseOptions {
  /// Share prefixes of longer expressions with existing shorter ones.
  bool enable_prefix_sharing = true;
  /// Assign temporaries to multi-use entries. With this off the builder
  /// only structures the IR (ablation: DistOpt without CSE); every use is
  /// inlined and recomputed.
  bool enable_temporaries = true;
  /// Skip the tree walk for equations structurally identical to an earlier
  /// one (hash + verify, then reuse the interned sum id). Interning a
  /// duplicate tree returns the existing id with no side effects, so output
  /// is bit-identical with this off — off reproduces the seed pipeline's
  /// cost profile (bench_compile's serial baseline).
  bool dedup_equations = true;
};

/// Builds the optimized program from one factored tree per species equation.
///
/// `rep_of`, when non-null, maps each equation index to the index of the
/// first equation it is structurally identical to (rep_of[i] == i for
/// representatives) — the grouping the memoized distributive pass already
/// computed. The builder then interns only the representatives and copies
/// their sum ids, skipping its own hash-based dedup entirely. Output is
/// bit-identical either way: interning a duplicate tree would return the
/// same id with no side effects.
OptimizedSystem build_optimized_system(
    const std::vector<expr::FactoredSum>& equations, std::size_t species_count,
    std::size_t rate_count, const CseOptions& options = {},
    const std::vector<std::uint32_t>* rep_of = nullptr);

}  // namespace rms::opt
