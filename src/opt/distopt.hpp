// The distributive optimization (paper §3.2, Fig. 6).
//
// Rewrites a flat sum-of-products into nested factored form by repeatedly
// factoring out the term that appears in the most products:
//   k1*B*C + k1*B*D + k1*E*F  ->  k1*(B*(C+D) + E*F)
// The §3.2 example drops from six multiplications and two additions to three
// multiplications and two additions.
#pragma once

#include "expr/factored.hpp"
#include "expr/product.hpp"

namespace rms::opt {

/// Applies Fig. 6's DistOpt to one equation right-hand side. Deterministic:
/// frequency ties break toward the canonically smallest variable.
///
/// `incremental_frequency` selects how T = terms(P) is maintained across
/// factoring rounds: true decrements the moved products' counts out of the
/// table (O(moved) per round); false rescans every remaining product each
/// round (the literal Fig. 6 line-12 restart — kept selectable so benchmarks
/// can measure the incremental table against it). Both produce the same
/// factorization bit for bit.
expr::FactoredSum distributive_optimize(const expr::SumOfProducts& equation,
                                        bool incremental_frequency = true);

}  // namespace rms::opt
