#include "opt/optimized_system.hpp"

#include <cmath>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::opt {

namespace {

std::string var_name(expr::VarId v) {
  switch (v.kind) {
    case expr::VarKind::kSpecies: return support::str_format("y%u", v.index);
    case expr::VarKind::kRateConst: return support::str_format("k%u", v.index);
    case expr::VarKind::kTemp: return support::str_format("temp%u", v.index);
    case expr::VarKind::kTime: return "t";
  }
  return "?";
}

std::string coeff_text(double c) {
  if (c == std::floor(c) && std::fabs(c) < 1e15) {
    return support::str_format("%lld", static_cast<long long>(c));
  }
  return support::str_format("%g", c);
}

}  // namespace

// ---- Operation counting -----------------------------------------------------

namespace {

struct Counter {
  const OptimizedSystem& system;
  OperationCount ops;

  /// Cost of obtaining a sum's value at a use site (0 when temp'd).
  void sum_value(std::int32_t id) {
    if (id == kNoExpr) return;
    const SumEntry& s = system.sums[id];
    if (s.temp_index >= 0) return;
    sum_definition(s);
  }

  void product_value(std::uint32_t id) {
    const ProductEntry& p = system.products[id];
    if (p.temp_index >= 0) return;
    product_definition(p);
  }

  void product_definition(const ProductEntry& p) {
    const std::size_t multiplicands =
        (p.prefix_len > 0 ? 1 : 0) + (p.atoms.size() - p.prefix_len);
    if (multiplicands > 1) ops.multiplies += multiplicands - 1;
    for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
      if (p.atoms[i].kind == ProductAtom::Kind::kSum) sum_value(p.atoms[i].sum);
    }
  }

  void sum_definition(const SumEntry& s) {
    const std::size_t operands =
        (s.prefix_len > 0 ? 1 : 0) + (s.operands.size() - s.prefix_len);
    if (operands > 1) ops.add_subs += operands - 1;
    for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
      const SumOperand& op = s.operands[i];
      const ProductEntry& p = system.products[op.product];
      const bool product_is_one = p.atoms.empty() && p.prefix_len == 0;
      const bool coeff_costs = op.coeff != 1.0 && op.coeff != -1.0;
      if (coeff_costs && !product_is_one) ops.multiplies += 1;
      product_value(op.product);
    }
  }
};

}  // namespace

OperationCount OptimizedSystem::count_operations() const {
  Counter counter{*this, {}};
  for (const TempDef& def : temp_order) {
    if (def.kind == TempDef::Kind::kProduct) {
      counter.product_definition(products[def.entry]);
    } else {
      counter.sum_definition(sums[def.entry]);
    }
  }
  for (std::int32_t eq : equations) counter.sum_value(eq);
  return counter.ops;
}

// ---- Evaluation -------------------------------------------------------------

namespace {

struct Evaluator {
  const OptimizedSystem& system;
  const std::vector<double>& species;
  const std::vector<double>& rate_consts;
  double t;
  std::vector<double> temps;

  double var_value(expr::VarId v) const {
    switch (v.kind) {
      case expr::VarKind::kSpecies:
        RMS_DCHECK(v.index < species.size());
        return species[v.index];
      case expr::VarKind::kRateConst:
        RMS_DCHECK(v.index < rate_consts.size());
        return rate_consts[v.index];
      case expr::VarKind::kTime:
        return t;
      case expr::VarKind::kTemp:
        RMS_CHECK_MSG(false, "VarId temps do not appear in the optimized IR");
    }
    RMS_UNREACHABLE();
  }

  double sum_value(std::int32_t id) {
    if (id == kNoExpr) return 0.0;
    const SumEntry& s = system.sums[id];
    if (s.temp_index >= 0 && temps_ready_) return temps[s.temp_index];
    return sum_definition(s);
  }

  double product_value(std::uint32_t id) {
    const ProductEntry& p = system.products[id];
    if (p.temp_index >= 0 && temps_ready_) return temps[p.temp_index];
    return product_definition(p);
  }

  double product_definition(const ProductEntry& p) {
    double value = 1.0;
    if (p.prefix_len > 0) {
      RMS_DCHECK(system.products[p.prefix_product].temp_index >= 0);
      value = temps[system.products[p.prefix_product].temp_index];
    }
    for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
      const ProductAtom& atom = p.atoms[i];
      value *= atom.kind == ProductAtom::Kind::kVar ? var_value(atom.var)
                                                    : sum_value(atom.sum);
    }
    return value;
  }

  double sum_definition(const SumEntry& s) {
    double value = 0.0;
    if (s.prefix_len > 0) {
      RMS_DCHECK(system.sums[s.prefix_sum].temp_index >= 0);
      value = temps[system.sums[s.prefix_sum].temp_index];
    }
    for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
      value += s.operands[i].coeff * product_value(s.operands[i].product);
    }
    return value;
  }

  void run(std::vector<double>& dydt) {
    temps.assign(system.temp_order.size(), 0.0);
    // Definitions run with temps_ready_ so earlier temps are consumed; an
    // entity's own definition never reads its own slot.
    temps_ready_ = true;
    for (const TempDef& def : system.temp_order) {
      if (def.kind == TempDef::Kind::kProduct) {
        const ProductEntry& p = system.products[def.entry];
        temps[p.temp_index] = product_definition(p);
      } else {
        const SumEntry& s = system.sums[def.entry];
        temps[s.temp_index] = sum_definition(s);
      }
    }
    dydt.resize(system.equations.size());
    for (std::size_t i = 0; i < system.equations.size(); ++i) {
      dydt[i] = sum_value(system.equations[i]);
    }
  }

  bool temps_ready_ = false;
};

}  // namespace

void OptimizedSystem::evaluate(const std::vector<double>& species,
                               const std::vector<double>& rate_consts,
                               double t, std::vector<double>& dydt) const {
  Evaluator evaluator{*this, species, rate_consts, t, {}};
  evaluator.run(dydt);
}

// ---- Rendering --------------------------------------------------------------

namespace {

struct Printer {
  const OptimizedSystem& system;

  std::string product_use(std::uint32_t id) const {
    const ProductEntry& p = system.products[id];
    if (p.temp_index >= 0) return support::str_format("temp%d", p.temp_index);
    return product_body(p);
  }

  std::string product_body(const ProductEntry& p) const {
    std::string out;
    bool first = true;
    auto append = [&](const std::string& piece) {
      if (!first) out += "*";
      out += piece;
      first = false;
    };
    if (p.prefix_len > 0) {
      append(support::str_format(
          "temp%d", system.products[p.prefix_product].temp_index));
    }
    for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
      const ProductAtom& atom = p.atoms[i];
      if (atom.kind == ProductAtom::Kind::kVar) {
        append(var_name(atom.var));
      } else {
        append("(" + sum_use(atom.sum) + ")");
      }
    }
    if (first) out = "1";
    return out;
  }

  std::string sum_use(std::int32_t id) const {
    if (id == kNoExpr) return "0";
    const SumEntry& s = system.sums[id];
    if (s.temp_index >= 0) return support::str_format("temp%d", s.temp_index);
    return sum_body(s);
  }

  std::string sum_body(const SumEntry& s) const {
    std::string out;
    bool first = true;
    if (s.prefix_len > 0) {
      out = support::str_format("temp%d", system.sums[s.prefix_sum].temp_index);
      first = false;
    }
    for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
      const SumOperand& op = s.operands[i];
      const ProductEntry& p = system.products[op.product];
      const bool product_is_one = p.atoms.empty() && p.prefix_len == 0;
      std::string piece;
      if (product_is_one) {
        piece = coeff_text(std::fabs(op.coeff));
      } else if (op.coeff == 1.0 || op.coeff == -1.0) {
        piece = product_use(op.product);
      } else {
        piece = coeff_text(std::fabs(op.coeff)) + "*" + product_use(op.product);
      }
      if (first) {
        out = (op.coeff < 0.0 ? "-" : "") + piece;
        first = false;
      } else {
        out += (op.coeff < 0.0 ? " - " : " + ") + piece;
      }
    }
    if (first) out = "0";
    return out;
  }
};

}  // namespace

std::string OptimizedSystem::to_string(
    const std::vector<std::string>* species_names) const {
  Printer printer{*this};
  std::string out;
  for (const TempDef& def : temp_order) {
    if (def.kind == TempDef::Kind::kProduct) {
      const ProductEntry& p = products[def.entry];
      out += support::str_format("temp%d = ", p.temp_index) +
             printer.product_body(p) + ";\n";
    } else {
      const SumEntry& s = sums[def.entry];
      out += support::str_format("temp%d = ", s.temp_index) +
             printer.sum_body(s) + ";\n";
    }
  }
  for (std::size_t i = 0; i < equations.size(); ++i) {
    const std::string lhs =
        species_names != nullptr && i < species_names->size()
            ? "d" + (*species_names)[i] + "/dt"
            : support::str_format("ydot[%zu]", i);
    out += lhs + " = " + printer.sum_use(equations[i]) + ";\n";
  }
  return out;
}

}  // namespace rms::opt
