// Compile-time telemetry: wall time per pipeline phase.
//
// Every stage of the compile pipeline (parse, network generation, rate
// processing, ODE generation, DistOpt, CSE, emission, fuse/regalloc,
// Jacobian differentiation) reports its wall time into a PhaseTimings
// carried on the BuiltModel. bench/bench_compile.cpp serializes these into
// BENCH_compile.json — the compile-side analogue of BENCH_vm.json — and
// table1_optimizations prints them next to the Table 1 rows so every
// benchmark run doubles as compile-time regression data.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "support/timer.hpp"

namespace rms::opt {

struct PhaseTimings {
  struct Phase {
    std::string name;
    double seconds = 0.0;
  };

  /// Phases in first-report order (the pipeline's execution order).
  std::vector<Phase> phases;

  /// Accumulates `seconds` into the named phase, creating it on first use.
  void add(std::string_view name, double seconds);

  /// Seconds recorded for `name`, 0.0 if the phase never ran.
  [[nodiscard]] double seconds(std::string_view name) const;

  [[nodiscard]] double total_seconds() const;

  /// One line per phase, aligned, e.g. for table1_optimizations output.
  [[nodiscard]] std::string to_string() const;
};

/// Scope helper: adds the elapsed wall time to `timings[name]` on
/// destruction. A null timings pointer makes it a no-op, so instrumented
/// code paths need no branches.
class PhaseTimer {
 public:
  PhaseTimer(PhaseTimings* timings, std::string_view name)
      : timings_(timings), name_(name) {}
  ~PhaseTimer() { stop(); }

  PhaseTimer(const PhaseTimer&) = delete;
  PhaseTimer& operator=(const PhaseTimer&) = delete;

  /// Ends the measurement early (before scope exit).
  void stop() {
    if (timings_ != nullptr) {
      timings_->add(name_, timer_.seconds());
      timings_ = nullptr;
    }
  }

 private:
  PhaseTimings* timings_;
  std::string_view name_;
  support::WallTimer timer_;
};

}  // namespace rms::opt
