#include "opt/cse.hpp"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "support/arena.hpp"
#include "support/assert.hpp"
#include "support/small_vector.hpp"

namespace rms::opt {

namespace {

using expr::FactoredSum;
using expr::FactoredTerm;
using expr::VarId;

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  return h ^ (h >> 27);
}

std::uint64_t atom_key(const ProductAtom& atom) {
  return atom.kind == ProductAtom::Kind::kVar
             ? mix(1, atom.var.packed())
             : mix(2, static_cast<std::uint64_t>(atom.sum));
}

/// Interning maps allocate one node per *distinct* entry and die with the
/// builder — exactly the arena lifetime pattern, so their nodes (and bucket
/// arrays) come from a builder-owned arena: pointer bumps instead of
/// per-node malloc/free.
template <typename Key, typename Value>
using ArenaMap =
    std::unordered_map<Key, Value, std::hash<Key>, std::equal_to<Key>,
                       support::ArenaAllocator<std::pair<const Key, Value>>>;

class Builder {
 public:
  Builder(std::size_t species_count, std::size_t rate_count,
          const CseOptions& options)
      : options_(options),
        product_index_(
            0, std::hash<std::uint64_t>(), std::equal_to<std::uint64_t>(),
            support::ArenaAllocator<
                std::pair<const std::uint64_t, std::uint32_t>>(&arena_)),
        sum_index_(
            0, std::hash<std::uint64_t>(), std::equal_to<std::uint64_t>(),
            support::ArenaAllocator<
                std::pair<const std::uint64_t, std::int32_t>>(&arena_)) {
    system_.species_count = species_count;
    system_.rate_count = rate_count;
  }

  OptimizedSystem run(const std::vector<FactoredSum>& equations,
                      const std::vector<std::uint32_t>* rep_of) {
    // Every equation interns at least one sum and typically a few products;
    // reserving up front spares the index maps several full rehashes (each
    // of which bump-allocates a fresh bucket array from the arena).
    system_.equations.reserve(equations.size());
    product_index_.reserve(equations.size() * 2);
    sum_index_.reserve(equations.size());
    // Top-level dedup: a structurally identical earlier equation already
    // interned to some sum id; reuse it without re-walking the tree.
    // Identical output to always walking — interning a duplicate tree
    // returns the existing id with no creation-time side effects, so only
    // the per-occurrence use_count bump below remains. Jacobian equation
    // tables are almost entirely duplicates, so this skips most of the walk.
    // When the caller supplies the memo grouping (`rep_of`), even the hash
    // probe is skipped: duplicates copy their representative's sum id.
    std::unordered_map<std::uint64_t, support::SmallVector<std::uint32_t, 2>>
        first_occurrence;
    const bool hash_dedup = options_.dedup_equations && rep_of == nullptr;
    if (hash_dedup) first_occurrence.reserve(equations.size());
    for (std::size_t i = 0; i < equations.size(); ++i) {
      const FactoredSum& eq = equations[i];
      std::int32_t id = kNoExpr;
      if (rep_of != nullptr && (*rep_of)[i] != i) {
        // Representatives precede their duplicates, so the slot is filled.
        // The duplicate's own tree is never read — the caller may leave it
        // empty instead of materializing a copy.
        id = system_.equations[(*rep_of)[i]];
        if (id == kNoExpr) {  // the representative was empty; so are we
          system_.equations.push_back(kNoExpr);
          continue;
        }
      } else if (eq.empty()) {
        system_.equations.push_back(kNoExpr);
        continue;
      } else if (hash_dedup) {
        auto& bucket = first_occurrence[eq.hash()];
        for (std::uint32_t j : bucket) {
          if (equations[j].equals(eq)) {
            id = system_.equations[j];
            break;
          }
        }
        if (id == kNoExpr) {
          id = intern_sum(eq);
          bucket.push_back(static_cast<std::uint32_t>(i));
        }
      } else {
        id = intern_sum(eq);
      }
      system_.sums[id].use_count += 1;
      system_.equations.push_back(id);
    }
    // Prefix replacement reads the donor's temporary, so it requires the
    // temporary-assignment pass.
    if (options_.enable_prefix_sharing && options_.enable_temporaries) {
      share_prefixes();
    }
    if (options_.enable_temporaries) assign_temporaries();
    return std::move(system_);
  }

 private:
  // ---- Interning (hash-consing) --------------------------------------------

  /// Canonical atom order: variables first (VarId order) then sum refs (by
  /// entry id — deterministic because interning order is deterministic).
  static bool atom_less(const ProductAtom& a, const ProductAtom& b) {
    if (a.kind != b.kind) return a.kind == ProductAtom::Kind::kVar;
    if (a.kind == ProductAtom::Kind::kVar) return a.var < b.var;
    return a.sum < b.sum;
  }

  /// Interns the product currently staged in scratch_atoms_. The scratch
  /// buffer is probed against the index first, so re-interning an existing
  /// product (the common case on duplicate-heavy inputs) allocates nothing;
  /// an entry is materialized only for a genuinely new product.
  std::uint32_t intern_scratch_product() {
    std::sort(scratch_atoms_.begin(), scratch_atoms_.end(), atom_less);
    std::uint64_t h = 0xA5A5A5A55A5A5A5Aull;
    for (const ProductAtom& atom : scratch_atoms_) h = mix(h, atom_key(atom));
    auto [it, inserted] = product_index_.try_emplace(h, 0u);
    if (!inserted) {
      // Verify (hash collisions are possible in principle).
      const ProductEntry& existing = system_.products[it->second];
      if (std::equal(existing.atoms.begin(), existing.atoms.end(),
                     scratch_atoms_.begin(), scratch_atoms_.end())) {
        return it->second;
      }
      // Extremely unlikely collision: fall through to linear disambiguation.
      for (std::uint32_t id = 0; id < system_.products.size(); ++id) {
        const ProductEntry& candidate = system_.products[id];
        if (std::equal(candidate.atoms.begin(), candidate.atoms.end(),
                       scratch_atoms_.begin(), scratch_atoms_.end())) {
          return id;
        }
      }
    }
    const std::uint32_t id = static_cast<std::uint32_t>(system_.products.size());
    ProductEntry entry;
    entry.atoms.reserve(scratch_atoms_.size());
    for (const ProductAtom& atom : scratch_atoms_) {
      entry.atoms.push_back(atom);
      // Register syntactic uses of nested sums exactly once, at creation.
      if (atom.kind == ProductAtom::Kind::kSum) {
        system_.sums[atom.sum].use_count += 1;
      }
    }
    it->second = id;
    system_.products.push_back(std::move(entry));
    return id;
  }

  std::int32_t intern_sum(const FactoredSum& sum) {
    // Operand staging buffers are pooled per recursion depth (a reference
    // would dangle across the recursive intern_sum below, so always index).
    const std::size_t depth = sum_depth_++;
    if (operand_scratch_.size() <= depth) operand_scratch_.emplace_back();
    operand_scratch_[depth].clear();
    operand_scratch_[depth].reserve(sum.size());
    for (const FactoredTerm& term : sum.terms()) {
      std::int32_t sub_id = kNoExpr;
      if (term.sub) sub_id = intern_sum(*term.sub);
      scratch_atoms_.clear();
      for (VarId v : term.factors) {
        scratch_atoms_.push_back(ProductAtom::variable(v));
      }
      if (sub_id != kNoExpr) {
        scratch_atoms_.push_back(ProductAtom::sum_ref(sub_id));
      }
      operand_scratch_[depth].push_back(
          SumOperand{term.coeff, intern_scratch_product()});
    }
    --sum_depth_;
    std::vector<SumOperand>& operands = operand_scratch_[depth];
    // Canonical operand order: by product id then coefficient. Product ids
    // are assigned in deterministic interning order, and equal trees intern
    // to equal ids, so equal sums produce identical operand sequences.
    std::sort(operands.begin(), operands.end(),
              [](const SumOperand& a, const SumOperand& b) {
                if (a.product != b.product) return a.product < b.product;
                return a.coeff < b.coeff;
              });

    std::uint64_t h = 0x123456789ABCDEFull;
    for (const SumOperand& op : operands) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &op.coeff, sizeof(bits));
      h = mix(mix(h, bits), op.product);
    }
    auto [it, inserted] = sum_index_.try_emplace(h, 0);
    if (!inserted) {
      const SumEntry& existing = system_.sums[it->second];
      if (existing.operands == operands) return it->second;
      for (std::uint32_t id = 0; id < system_.sums.size(); ++id) {
        if (system_.sums[id].operands == operands) {
          return static_cast<std::int32_t>(id);
        }
      }
    }
    const std::int32_t id = static_cast<std::int32_t>(system_.sums.size());
    for (const SumOperand& op : operands) {
      system_.products[op.product].use_count += 1;
    }
    it->second = id;
    SumEntry entry;
    entry.operands = operands;  // copy: only new entries pay an allocation
    system_.sums.push_back(std::move(entry));
    return id;
  }

  // ---- Prefix sharing (Fig. 7 lines 7-11) ----------------------------------

  void share_prefixes() {
    // Index the full sequences of all entries, keyed by (length, hash).
    // Hash-consing guarantees at most one entry per exact sequence, so the
    // paper's "first matching shorter expression" is unique when it exists.
    std::unordered_map<std::uint64_t, std::uint32_t> product_by_seq;
    for (std::uint32_t id = 0; id < system_.products.size(); ++id) {
      product_by_seq.emplace(product_seq_hash(id, system_.products[id].atoms.size()),
                             id);
    }
    std::unordered_map<std::uint64_t, std::uint32_t> sum_by_seq;
    for (std::uint32_t id = 0; id < system_.sums.size(); ++id) {
      sum_by_seq.emplace(sum_seq_hash(id, system_.sums[id].operands.size()), id);
    }

    // Longest prefixes first (Fig. 7: "from longest to shortest strings").
    for (std::uint32_t id = 0; id < system_.products.size(); ++id) {
      ProductEntry& p = system_.products[id];
      if (p.atoms.size() < 3) continue;  // needs a proper prefix of length >= 2
      for (std::size_t len = p.atoms.size() - 1; len >= 2; --len) {
        auto it = product_by_seq.find(product_seq_hash(id, len));
        if (it == product_by_seq.end() || it->second == id) continue;
        const ProductEntry& donor = system_.products[it->second];
        if (donor.atoms.size() != len ||
            !std::equal(donor.atoms.begin(), donor.atoms.end(),
                        p.atoms.begin())) {
          continue;  // hash collision
        }
        p.prefix_product = static_cast<std::int32_t>(it->second);
        p.prefix_len = static_cast<std::uint32_t>(len);
        system_.products[it->second].use_count += 1;
        break;
      }
    }
    for (std::uint32_t id = 0; id < system_.sums.size(); ++id) {
      SumEntry& s = system_.sums[id];
      if (s.operands.size() < 3) continue;
      for (std::size_t len = s.operands.size() - 1; len >= 2; --len) {
        auto it = sum_by_seq.find(sum_seq_hash(id, len));
        if (it == sum_by_seq.end() || it->second == id) continue;
        const SumEntry& donor = system_.sums[it->second];
        if (donor.operands.size() != len ||
            !std::equal(donor.operands.begin(), donor.operands.end(),
                        s.operands.begin())) {
          continue;
        }
        s.prefix_sum = static_cast<std::int32_t>(it->second);
        s.prefix_len = static_cast<std::uint32_t>(len);
        system_.sums[it->second].use_count += 1;
        break;
      }
    }
  }

  std::uint64_t product_seq_hash(std::uint32_t id, std::size_t len) const {
    const ProductEntry& p = system_.products[id];
    std::uint64_t h = mix(0xC0FFEEull, len);
    for (std::size_t i = 0; i < len; ++i) h = mix(h, atom_key(p.atoms[i]));
    return h;
  }

  std::uint64_t sum_seq_hash(std::uint32_t id, std::size_t len) const {
    const SumEntry& s = system_.sums[id];
    std::uint64_t h = mix(0xFACADEull, len);
    for (std::size_t i = 0; i < len; ++i) {
      std::uint64_t bits = 0;
      std::memcpy(&bits, &s.operands[i].coeff, sizeof(bits));
      h = mix(mix(h, bits), s.operands[i].product);
    }
    return h;
  }

  // ---- Temporary assignment & emission order (Fig. 7 lines 12-14) ----------

  /// An entity is "trivial" when a temporary for it would save nothing:
  /// a bare variable / constant product, or a +/-1-scaled single-operand sum
  /// (whose work lives in the operand). Effective-use propagation pushes the
  /// demand through trivial wrappers into the entity that does the work.
  bool product_trivial(const ProductEntry& p) const {
    if (p.prefix_len > 0) return false;
    if (p.atoms.size() >= 2) return false;
    return p.atoms.empty() || p.atoms[0].kind == ProductAtom::Kind::kVar;
  }

  bool sum_trivial(const SumEntry& s) const {
    if (s.prefix_len > 0) return false;
    if (s.operands.size() >= 2) return false;
    if (s.operands.empty()) return true;
    const SumOperand& op = s.operands[0];
    return op.coeff == 1.0 || op.coeff == -1.0;
  }

  void assign_temporaries() {
    // Pass 1: DFS from every equation collecting a children-first
    // topological order of all reachable entities.
    product_state_.assign(system_.products.size(), 0);
    sum_state_.assign(system_.sums.size(), 0);
    topo_.clear();
    for (std::int32_t eq : system_.equations) {
      if (eq != kNoExpr) visit_sum(static_cast<std::uint32_t>(eq));
    }

    // Pass 2 (parents first): effective use counts. An entity that will be
    // temp'd evaluates its children once; an inlined entity evaluates them
    // once per own evaluation. Prefix donors must be temp'd regardless.
    std::vector<std::uint32_t> product_eff(system_.products.size(), 0);
    std::vector<std::uint32_t> sum_eff(system_.sums.size(), 0);
    std::vector<char> product_tempable(system_.products.size(), 0);
    std::vector<char> sum_tempable(system_.sums.size(), 0);
    std::vector<char> product_donor(system_.products.size(), 0);
    std::vector<char> sum_donor(system_.sums.size(), 0);
    for (const ProductEntry& p : system_.products) {
      if (p.prefix_len > 0) product_donor[p.prefix_product] = 1;
    }
    for (const SumEntry& s : system_.sums) {
      if (s.prefix_len > 0) sum_donor[s.prefix_sum] = 1;
    }
    for (std::int32_t eq : system_.equations) {
      if (eq != kNoExpr) sum_eff[eq] += 1;
    }
    for (auto it = topo_.rbegin(); it != topo_.rend(); ++it) {
      const TempDef& node = *it;
      if (node.kind == TempDef::Kind::kProduct) {
        const ProductEntry& p = system_.products[node.entry];
        const bool temp = (product_eff[node.entry] >= 2 &&
                           !product_trivial(p)) ||
                          product_donor[node.entry] != 0;
        product_tempable[node.entry] = temp ? 1 : 0;
        const std::uint32_t weight = temp ? 1 : product_eff[node.entry];
        if (weight == 0) continue;
        if (p.prefix_len > 0) product_eff[p.prefix_product] += weight;
        for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
          if (p.atoms[i].kind == ProductAtom::Kind::kSum) {
            sum_eff[p.atoms[i].sum] += weight;
          }
        }
      } else {
        const SumEntry& s = system_.sums[node.entry];
        const bool temp =
            (sum_eff[node.entry] >= 2 && !sum_trivial(s)) ||
            sum_donor[node.entry] != 0;
        sum_tempable[node.entry] = temp ? 1 : 0;
        const std::uint32_t weight = temp ? 1 : sum_eff[node.entry];
        if (weight == 0) continue;
        if (s.prefix_len > 0) sum_eff[s.prefix_sum] += weight;
        for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
          product_eff[s.operands[i].product] += weight;
        }
      }
    }

    // Pass 3 (children first): emit temp definitions in dependency order.
    for (const TempDef& node : topo_) {
      if (node.kind == TempDef::Kind::kProduct) {
        if (product_tempable[node.entry] != 0) {
          system_.products[node.entry].temp_index = next_temp_++;
          system_.temp_order.push_back(node);
        }
      } else {
        if (sum_tempable[node.entry] != 0) {
          system_.sums[node.entry].temp_index = next_temp_++;
          system_.temp_order.push_back(node);
        }
      }
    }
  }

  void visit_product(std::uint32_t id) {
    if (product_state_[id] != 0) return;
    product_state_[id] = 1;
    const ProductEntry& p = system_.products[id];
    if (p.prefix_len > 0) {
      visit_product(static_cast<std::uint32_t>(p.prefix_product));
    }
    for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
      if (p.atoms[i].kind == ProductAtom::Kind::kSum) {
        visit_sum(static_cast<std::uint32_t>(p.atoms[i].sum));
      }
    }
    topo_.push_back(TempDef{TempDef::Kind::kProduct, id});
  }

  void visit_sum(std::uint32_t id) {
    if (sum_state_[id] != 0) return;
    sum_state_[id] = 1;
    const SumEntry& s = system_.sums[id];
    if (s.prefix_len > 0) {
      visit_sum(static_cast<std::uint32_t>(s.prefix_sum));
    }
    for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
      visit_product(s.operands[i].product);
    }
    topo_.push_back(TempDef{TempDef::Kind::kSum, id});
  }

  CseOptions options_;
  OptimizedSystem system_;
  // The arena outlives the index maps below (members destroy in reverse
  // declaration order), which is all ArenaAllocator requires.
  support::Arena arena_;
  ArenaMap<std::uint64_t, std::uint32_t> product_index_;
  ArenaMap<std::uint64_t, std::int32_t> sum_index_;
  // Reusable staging buffers: duplicate interning touches only these.
  std::vector<ProductAtom> scratch_atoms_;
  std::vector<std::vector<SumOperand>> operand_scratch_;
  std::size_t sum_depth_ = 0;
  std::vector<char> product_state_;
  std::vector<char> sum_state_;
  std::vector<TempDef> topo_;
  std::int32_t next_temp_ = 0;
};

}  // namespace

OptimizedSystem build_optimized_system(
    const std::vector<FactoredSum>& equations, std::size_t species_count,
    std::size_t rate_count, const CseOptions& options,
    const std::vector<std::uint32_t>* rep_of) {
  return Builder(species_count, rate_count, options).run(equations, rep_of);
}

}  // namespace rms::opt
