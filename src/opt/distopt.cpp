#include "opt/distopt.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/assert.hpp"

namespace rms::opt {

namespace {

using expr::FactoredSum;
using expr::FactoredTerm;
using expr::Product;
using expr::VarId;

/// Fig. 6 lines 4-16 on a working set of products. Recursing on the divided
/// product sets yields the fully nested factorization.
FactoredSum dist_opt(std::vector<Product> products) {
  FactoredSum result;

  // T = terms(P): for factoring we count, per variable, the number of
  // *products* containing it (a variable appearing squared in one product
  // still only offers that one product for factoring).
  std::unordered_map<VarId, std::uint32_t> counts;
  auto recount = [&]() {
    counts.clear();
    for (const Product& p : products) {
      VarId last{};
      bool have_last = false;
      for (VarId v : p.factors) {
        if (have_last && v == last) continue;  // count each product once
        counts[v] += 1;
        last = v;
        have_last = true;
      }
    }
  };
  recount();

  while (!products.empty()) {
    // (k, c) = mostFrequent(T); ties break toward the canonical order so the
    // output is deterministic.
    VarId best{};
    std::uint32_t best_count = 0;
    for (const auto& [var, count] : counts) {
      if (count > best_count || (count == best_count && var < best)) {
        best = var;
        best_count = count;
      }
    }

    if (best_count <= 1) {
      // No sharing left: emit every remaining product as a flat term.
      for (const Product& p : products) {
        result.terms().emplace_back(p);
      }
      products.clear();
      break;
    }

    // P_k = products containing k; divide each by one occurrence of k and
    // recurse on the quotient sum (Fig. 6 line 11).
    std::vector<Product> factored;
    std::vector<Product> remaining;
    factored.reserve(best_count);
    for (Product& p : products) {
      if (p.contains(best)) {
        Product quotient = std::move(p);
        quotient.divide_by(best);
        factored.push_back(std::move(quotient));
      } else {
        remaining.push_back(std::move(p));
      }
    }
    RMS_DCHECK(factored.size() >= 2);

    FactoredTerm term;
    term.factors.push_back(best);
    term.sub = std::make_unique<FactoredSum>(dist_opt(std::move(factored)));
    // Flatten k * (single-term sum) into one product-like term, restoring
    // the sorted-factors invariant.
    if (term.sub->size() == 1) {
      FactoredTerm& only = term.sub->terms()[0];
      term.coeff = only.coeff;
      for (VarId v : only.factors) term.factors.push_back(v);
      term.sub = std::move(only.sub);
      std::sort(term.factors.begin(), term.factors.end());
    }
    result.terms().push_back(std::move(term));

    products = std::move(remaining);
    recount();  // P and T both shrank (Fig. 6 line 12)
  }

  result.sort_canonical();
  return result;
}

}  // namespace

FactoredSum distributive_optimize(const expr::SumOfProducts& equation) {
  std::vector<Product> products;
  products.reserve(equation.size());
  for (const Product& p : equation.terms()) {
    if (p.coeff != 0.0) products.push_back(p);
  }
  return dist_opt(std::move(products));
}

}  // namespace rms::opt
