#include "opt/distopt.hpp"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "support/assert.hpp"
#include "support/small_vector.hpp"

namespace rms::opt {

namespace {

using expr::FactoredSum;
using expr::FactoredTerm;
using expr::Product;
using expr::VarId;

/// Per-variable product counts as a flat array with linear probing. For the
/// typical generated equation (a handful of products over a handful of
/// variables) this never allocates and beats a node-based hash table by a
/// wide margin; dist_opt switches to MapCounter for the rare huge rows
/// (hub species touched by thousands of reactions) where linear probing
/// would go quadratic.
class FlatCounter {
 public:
  void add(const Product& p) {
    for_distinct(p, [this](VarId v) {
      for (auto& [var, count] : entries_) {
        if (var == v) {
          ++count;
          return;
        }
      }
      entries_.push_back({v, 1});
    });
  }

  void remove(const Product& p) {
    for_distinct(p, [this](VarId v) {
      for (std::size_t i = 0; i < entries_.size(); ++i) {
        if (entries_[i].first == v) {
          RMS_DCHECK(entries_[i].second > 0);
          if (--entries_[i].second == 0) {
            entries_[i] = entries_[entries_.size() - 1];
            entries_.pop_back();
          }
          return;
        }
      }
      RMS_DCHECK(false);
    });
  }

  /// (k, c) = mostFrequent(T); ties break toward the canonically smallest
  /// variable, so the result is independent of entry order.
  void most_frequent(VarId& best, std::uint32_t& best_count) const {
    best = VarId{};
    best_count = 0;
    for (const auto& [var, count] : entries_) {
      if (count > best_count || (count == best_count && var < best)) {
        best = var;
        best_count = count;
      }
    }
  }

  void clear() { entries_.clear(); }

  [[nodiscard]] std::size_t distinct() const { return entries_.size(); }

  [[nodiscard]] bool counts(VarId v, std::uint32_t& out) const {
    for (const auto& [var, count] : entries_) {
      if (var == v) {
        out = count;
        return true;
      }
    }
    return false;
  }

  /// Visits each distinct variable of `p` once. Factors are sorted, so a
  /// variable appearing squared (k*A*A) is skipped on its repeat — it still
  /// only offers one product for factoring.
  template <typename Fn>
  static void for_distinct(const Product& p, const Fn& fn) {
    VarId last{};
    bool have_last = false;
    for (VarId v : p.factors) {
      if (have_last && v == last) continue;
      fn(v);
      last = v;
      have_last = true;
    }
  }

 private:
  support::SmallVector<std::pair<VarId, std::uint32_t>, 24> entries_;
};

/// Hash-table flavour of the same counter, for rows with too many distinct
/// variables for linear probing.
class MapCounter {
 public:
  void add(const Product& p) {
    FlatCounter::for_distinct(p, [this](VarId v) { counts_[v] += 1; });
  }

  void remove(const Product& p) {
    FlatCounter::for_distinct(p, [this](VarId v) {
      auto it = counts_.find(v);
      RMS_DCHECK(it != counts_.end() && it->second > 0);
      if (--it->second == 0) counts_.erase(it);
    });
  }

  void most_frequent(VarId& best, std::uint32_t& best_count) const {
    best = VarId{};
    best_count = 0;
    for (const auto& [var, count] : counts_) {
      if (count > best_count || (count == best_count && var < best)) {
        best = var;
        best_count = count;
      }
    }
  }

  void clear() { counts_.clear(); }

  [[nodiscard]] std::size_t distinct() const { return counts_.size(); }

  [[nodiscard]] bool counts(VarId v, std::uint32_t& out) const {
    auto it = counts_.find(v);
    if (it == counts_.end()) return false;
    out = it->second;
    return true;
  }

 private:
  std::unordered_map<VarId, std::uint32_t> counts_;
};

/// Debug cross-check: does the incrementally maintained counter equal a
/// fresh recount over `products`? Only invoked under RMS_DCHECK.
template <typename Counter>
[[maybe_unused]] bool counts_match(const Counter& counter,
                                   const std::vector<Product>& products) {
  MapCounter fresh;
  for (const Product& p : products) fresh.add(p);
  if (fresh.distinct() != counter.distinct()) return false;
  bool ok = true;
  for (const Product& p : products) {
    FlatCounter::for_distinct(p, [&](VarId v) {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      ok = ok && fresh.counts(v, a) && counter.counts(v, b) && a == b;
    });
  }
  return ok;
}

/// Rows with at most this many products use the allocation-free FlatCounter.
constexpr std::size_t kFlatProductLimit = 64;

FactoredSum dist_opt(std::vector<Product> products, bool incremental);

/// Fig. 6 lines 4-16 on a working set of products. Recursing on the divided
/// product sets yields the fully nested factorization.
///
/// With `incremental`, T = terms(P) is maintained across rounds: instead of
/// rescanning every remaining product after each factoring round (the Fig. 6
/// line 12 "P and T both shrank" step, quadratic over rounds), the counts of
/// products moved into the factored subset are decremented out. Debug builds
/// verify the counter against a fresh recount each round.
template <typename Counter>
FactoredSum dist_opt_impl(std::vector<Product> products, bool incremental) {
  FactoredSum result;

  Counter counts;
  if (incremental) {
    for (const Product& p : products) counts.add(p);
  }

  while (!products.empty()) {
    if (!incremental) {
      // Fig. 6 line 12 taken literally: recount the surviving products from
      // scratch every round.
      counts.clear();
      for (const Product& p : products) counts.add(p);
    }
    VarId best{};
    std::uint32_t best_count = 0;
    counts.most_frequent(best, best_count);

    if (best_count <= 1) {
      // No sharing left: emit every remaining product as a flat term.
      for (const Product& p : products) {
        result.terms().emplace_back(p);
      }
      products.clear();
      break;
    }

    // P_k = products containing k; divide each by one occurrence of k and
    // recurse on the quotient sum (Fig. 6 line 11). Their counts leave the
    // table with them — what remains is exactly the recount of the
    // survivors, which are compacted in place (order preserved) so no
    // per-round `remaining` vector is allocated.
    std::vector<Product> factored;
    factored.reserve(best_count);
    std::size_t w = 0;
    for (std::size_t r = 0; r < products.size(); ++r) {
      Product& p = products[r];
      if (p.contains(best)) {
        if (incremental) counts.remove(p);
        Product quotient = std::move(p);
        quotient.divide_by(best);
        factored.push_back(std::move(quotient));
      } else {
        if (w != r) products[w] = std::move(p);
        ++w;
      }
    }
    products.resize(w);
    RMS_DCHECK(factored.size() >= 2);

    FactoredTerm term;
    term.factors.push_back(best);
    term.sub =
        std::make_unique<FactoredSum>(dist_opt(std::move(factored), incremental));
    // Flatten k * (single-term sum) into one product-like term, restoring
    // the sorted-factors invariant.
    if (term.sub->size() == 1) {
      FactoredTerm& only = term.sub->terms()[0];
      term.coeff = only.coeff;
      for (VarId v : only.factors) term.factors.push_back(v);
      term.sub = std::move(only.sub);
      std::sort(term.factors.begin(), term.factors.end());
    }
    result.terms().push_back(std::move(term));

    RMS_DCHECK(!incremental || counts_match(counts, products));
  }

  result.sort_canonical();
  return result;
}

/// Counter selection. Both counters produce the same most-frequent answer
/// (the tie-break is order-independent), so the choice affects only speed:
/// small rows use the allocation-free flat counter, huge hub-species rows
/// fall back to the hash table where linear probing would go quadratic.
/// The non-incremental mode exists to reproduce the seed's cost profile, so
/// it keeps the seed's hash-table counter unconditionally.
FactoredSum dist_opt(std::vector<Product> products, bool incremental) {
  if (incremental && products.size() <= kFlatProductLimit) {
    return dist_opt_impl<FlatCounter>(std::move(products), incremental);
  }
  return dist_opt_impl<MapCounter>(std::move(products), incremental);
}

}  // namespace

FactoredSum distributive_optimize(const expr::SumOfProducts& equation,
                                  bool incremental_frequency) {
  std::vector<Product> products;
  products.reserve(equation.size());
  for (const Product& p : equation.terms()) {
    if (p.coeff != 0.0) products.push_back(p);
  }
  return dist_opt(std::move(products), incremental_frequency);
}

}  // namespace rms::opt
