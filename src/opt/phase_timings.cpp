#include "opt/phase_timings.hpp"

#include "support/strings.hpp"

namespace rms::opt {

void PhaseTimings::add(std::string_view name, double seconds) {
  for (Phase& p : phases) {
    if (p.name == name) {
      p.seconds += seconds;
      return;
    }
  }
  phases.push_back(Phase{std::string(name), seconds});
}

double PhaseTimings::seconds(std::string_view name) const {
  for (const Phase& p : phases) {
    if (p.name == name) return p.seconds;
  }
  return 0.0;
}

double PhaseTimings::total_seconds() const {
  double total = 0.0;
  for (const Phase& p : phases) total += p.seconds;
  return total;
}

std::string PhaseTimings::to_string() const {
  std::string out;
  for (const Phase& p : phases) {
    out += support::str_format("  %-18s %9.3f ms\n", p.name.c_str(),
                               p.seconds * 1e3);
  }
  out += support::str_format("  %-18s %9.3f ms\n", "total", total_seconds() * 1e3);
  return out;
}

}  // namespace rms::opt
