#include "opt/pipeline.hpp"

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "opt/distopt.hpp"
#include "support/small_vector.hpp"

namespace rms::opt {

namespace {

/// Groups structurally identical equations. rep_of[i] is the index of the
/// first equation identical to equation i (rep_of[rep] == rep); `reps` lists
/// the representatives in first-seen order. Deterministic: depends only on
/// equation contents and order, never on scheduling.
void group_equations(const std::vector<expr::SumOfProducts>& equations,
                     std::vector<std::uint32_t>& rep_of,
                     std::vector<std::uint32_t>& reps) {
  const std::size_t n = equations.size();
  rep_of.resize(n);
  std::unordered_map<std::uint64_t,
                     support::SmallVector<std::uint32_t, 2>>
      buckets;
  buckets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& bucket = buckets[equations[i].structural_hash()];
    std::uint32_t rep = static_cast<std::uint32_t>(i);
    for (std::uint32_t candidate : bucket) {
      if (equations[candidate].structural_equals(equations[i])) {
        rep = candidate;
        break;
      }
    }
    rep_of[i] = rep;
    if (rep == i) {
      bucket.push_back(rep);
      reps.push_back(rep);
    }
  }
}

}  // namespace

OptimizedSystem optimize(const odegen::EquationTable& table,
                         std::size_t species_count, std::size_t rate_count,
                         const OptimizerOptions& options,
                         OptimizationReport* report) {
  const std::vector<expr::SumOfProducts>& equations = table.equations();
  const std::size_t n = equations.size();
  std::vector<expr::FactoredSum> factored(n);
  std::size_t distinct = n;
  std::vector<std::uint32_t> rep_of;
  // When CSE will receive the memo grouping, duplicate slots in `factored`
  // are never read — leave them empty instead of deep-copying the
  // representative's tree into each one (the Jacobian table is ~99%
  // duplicates, so this skips most of the copies and their destruction).
  const bool share_groups = options.distributive && options.memoize_equations &&
                            options.cse.dedup_equations;

  {
    PhaseTimer timer(options.timings, "distopt");
    if (!options.distributive) {
      support::parallel_for(options.pool, 0, n, 64, [&](std::size_t i) {
        factored[i] = expr::FactoredSum::from_sum_of_products(equations[i]);
      });
    } else if (options.memoize_equations) {
      std::vector<std::uint32_t> reps;
      group_equations(equations, rep_of, reps);
      distinct = reps.size();

      // Optimize the representatives only; slot j belongs to reps[j], so
      // results land by index regardless of which worker ran them.
      std::vector<expr::FactoredSum> rep_result(reps.size());
      support::parallel_for(
          options.pool, 0, reps.size(), 1, [&](std::size_t j) {
            rep_result[j] = distributive_optimize(
                equations[reps[j]], options.incremental_frequency);
          });

      // Duplicates copy from the representative's result; the representative
      // itself takes the result by move (after all copies are done). When
      // the grouping is being handed to CSE, the copies are skipped.
      if (!share_groups) {
        std::vector<std::uint32_t> slot_of_rep(n, 0);
        for (std::size_t j = 0; j < reps.size(); ++j) {
          slot_of_rep[reps[j]] = static_cast<std::uint32_t>(j);
        }
        for (std::size_t i = 0; i < n; ++i) {
          if (rep_of[i] != i) factored[i] = rep_result[slot_of_rep[rep_of[i]]];
        }
      }
      for (std::size_t j = 0; j < reps.size(); ++j) {
        factored[reps[j]] = std::move(rep_result[j]);
      }
    } else {
      support::parallel_for(options.pool, 0, n, 1, [&](std::size_t i) {
        factored[i] =
            distributive_optimize(equations[i], options.incremental_frequency);
      });
    }
  }

  // When memoization grouped the equations, hand the grouping to CSE: its
  // equation dedup can then copy duplicate ids directly instead of
  // re-hashing every factored tree (and a table with no duplicates skips
  // the pass entirely).
  CseOptions cse = options.cse;
  const std::vector<std::uint32_t>* groups = nullptr;
  if (share_groups) {
    if (distinct == n) {
      cse.dedup_equations = false;
    } else {
      groups = &rep_of;
    }
  }
  PhaseTimer cse_timer(options.timings, "cse");
  OptimizedSystem system =
      build_optimized_system(factored, species_count, rate_count, cse, groups);
  cse_timer.stop();

  if (report != nullptr) {
    report->before.multiplies = table.multiply_count();
    report->before.add_subs = table.add_sub_count();
    report->after = system.count_operations();
    report->temp_count = system.temp_count();
    report->distinct_equations = distinct;
  }
  return system;
}

}  // namespace rms::opt
