#include "opt/pipeline.hpp"

#include "opt/distopt.hpp"

namespace rms::opt {

OptimizedSystem optimize(const odegen::EquationTable& table,
                         std::size_t species_count, std::size_t rate_count,
                         const OptimizerOptions& options,
                         OptimizationReport* report) {
  std::vector<expr::FactoredSum> factored;
  factored.reserve(table.size());
  for (const expr::SumOfProducts& equation : table.equations()) {
    if (options.distributive) {
      factored.push_back(distributive_optimize(equation));
    } else {
      factored.push_back(expr::FactoredSum::from_sum_of_products(equation));
    }
  }
  OptimizedSystem system = build_optimized_system(factored, species_count,
                                                  rate_count, options.cse);
  if (report != nullptr) {
    report->before.multiplies = table.multiply_count();
    report->before.add_subs = table.add_sub_count();
    report->after = system.count_operations();
    report->temp_count = system.temp_count();
  }
  return system;
}

}  // namespace rms::opt
