// Bytecode emission from the symbolic ODE forms.
//
// emit_unoptimized()  — straight-line code from the flat equation table,
//                       recomputing every product at every use: the
//                       "without algebraic/CSE optimizations" baseline of
//                       Table 1.
// emit_optimized()    — code from the OptimizedSystem: temporaries are
//                       evaluated once, in dependency order, then equations.
//
// Both emitters preserve the operation-count conventions of the symbolic
// layer: the emitted program's count_arith() equals the corresponding
// multiply_count()/add_sub_count() / count_operations() exactly (tested).
#pragma once

#include "odegen/equation_table.hpp"
#include "opt/optimized_system.hpp"
#include "support/thread_pool.hpp"
#include "vm/program.hpp"

namespace rms::codegen {

vm::Program emit_unoptimized(const odegen::EquationTable& table,
                             std::size_t species_count,
                             std::size_t rate_count);

/// Emits the optimized program: temp definitions (serial prologue), then one
/// body fragment per equation fanned out across `pool` (null = inline) and
/// merged in equation order — the program is a pure function of `system`,
/// independent of the pool and thread count.
vm::Program emit_optimized(const opt::OptimizedSystem& system,
                           const support::ThreadPool* pool = nullptr);

}  // namespace rms::codegen
