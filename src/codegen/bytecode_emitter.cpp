#include "codegen/bytecode_emitter.hpp"

#include <cmath>
#include <unordered_map>

#include "support/assert.hpp"

namespace rms::codegen {

namespace {

using expr::VarId;
using expr::VarKind;
using opt::kNoExpr;
using opt::OptimizedSystem;
using opt::ProductAtom;
using opt::ProductEntry;
using opt::SumEntry;
using vm::Instr;
using vm::Op;
using vm::Program;

class Emitter {
 public:
  Program take() {
    program_.register_count = next_reg_;
    return std::move(program_);
  }

  std::uint32_t fresh_reg() { return next_reg_++; }

  std::uint32_t emit(Op op, std::uint32_t a = 0, std::uint32_t b = 0) {
    const std::uint32_t dst = fresh_reg();
    program_.code.push_back(Instr{op, dst, a, b});
    return dst;
  }

  std::uint32_t const_reg(double value) {
    auto it = const_regs_.find(value);
    if (it != const_regs_.end()) return it->second;
    auto pool = const_pool_.find(value);
    std::uint32_t pool_index;
    if (pool == const_pool_.end()) {
      pool_index = static_cast<std::uint32_t>(program_.consts.size());
      program_.consts.push_back(value);
      const_pool_.emplace(value, pool_index);
    } else {
      pool_index = pool->second;
    }
    const std::uint32_t reg = emit(Op::kLoadConst, pool_index);
    const_regs_.emplace(value, reg);
    return reg;
  }

  std::uint32_t var_reg(VarId v) {
    switch (v.kind) {
      case VarKind::kSpecies: return emit(Op::kLoadY, v.index);
      case VarKind::kRateConst: return emit(Op::kLoadK, v.index);
      case VarKind::kTime: return emit(Op::kLoadT);
      case VarKind::kTemp: RMS_CHECK_MSG(false, "unexpected temp VarId");
    }
    RMS_UNREACHABLE();
  }

  void store(std::uint32_t output, std::uint32_t reg) {
    program_.code.push_back(Instr{Op::kStoreOut, 0, output, reg});
  }

  Program program_;
  std::uint32_t next_reg_ = 0;
  std::unordered_map<double, std::uint32_t> const_regs_;
  std::unordered_map<double, std::uint32_t> const_pool_;
};

/// Accumulates "sum of signed operand registers" with the standard op-count
/// conventions: first operand seeds the accumulator (negated if negative),
/// later operands fold with Add/Sub.
class SumAccumulator {
 public:
  explicit SumAccumulator(Emitter& emitter) : emitter_(emitter) {}

  void push(std::uint32_t reg, bool negative) {
    if (!have_acc_) {
      acc_ = negative ? emitter_.emit(Op::kNeg, reg) : reg;
      have_acc_ = true;
      return;
    }
    acc_ = emitter_.emit(negative ? Op::kSub : Op::kAdd, acc_, reg);
  }

  [[nodiscard]] bool empty() const { return !have_acc_; }
  [[nodiscard]] std::uint32_t result() const {
    RMS_CHECK(have_acc_);
    return acc_;
  }

 private:
  Emitter& emitter_;
  std::uint32_t acc_ = 0;
  bool have_acc_ = false;
};

}  // namespace

Program emit_unoptimized(const odegen::EquationTable& table,
                         std::size_t species_count, std::size_t rate_count) {
  Emitter emitter;
  emitter.program_.species_count = species_count;
  emitter.program_.rate_count = rate_count;
  emitter.program_.output_count = table.size();

  for (std::size_t i = 0; i < table.size(); ++i) {
    const expr::SumOfProducts& equation = table.equation(i);
    SumAccumulator acc(emitter);
    for (const expr::Product& p : equation.terms()) {
      if (p.coeff == 0.0) continue;
      // Product value: |coeff| (if != 1) * factors...
      std::uint32_t reg = vm::kNoReg;
      const double magnitude = std::fabs(p.coeff);
      if (magnitude != 1.0 || p.factors.empty()) {
        reg = emitter.const_reg(magnitude);
      }
      for (VarId v : p.factors) {
        const std::uint32_t vreg = emitter.var_reg(v);
        reg = reg == vm::kNoReg ? vreg : emitter.emit(Op::kMul, reg, vreg);
      }
      acc.push(reg, p.coeff < 0.0);
    }
    if (acc.empty()) {
      emitter.store(static_cast<std::uint32_t>(i), vm::kNoReg);
    } else {
      emitter.store(static_cast<std::uint32_t>(i), acc.result());
    }
  }
  return emitter.take();
}

namespace {

/// Emits one region of the optimized program: either the temp-definition
/// prologue (the shared region) or a single equation body (a fragment).
///
/// The split makes emission parallel while keeping the merged program a
/// pure function of the OptimizedSystem: the prologue is emitted serially,
/// its state (temp registers, constant caches) is then frozen and shared
/// read-only by every fragment, and each fragment numbers its private
/// registers from `reg_base` upward / its newly discovered constants from
/// `pool_base` upward. The merge pass renumbers both by simple offsets in
/// equation order, so the result does not depend on which thread emitted
/// which fragment — nor on whether a pool was used at all.
class RegionEmitter {
 public:
  /// Prologue region: owns the constant caches, registers start at 0.
  RegionEmitter(const OptimizedSystem& system,
                std::vector<std::uint32_t>& temp_regs)
      : system_(system), temp_regs_(temp_regs) {}

  /// Fragment region: shares the frozen prologue caches.
  RegionEmitter(const OptimizedSystem& system,
                std::vector<std::uint32_t>& temp_regs,
                const RegionEmitter& prologue)
      : system_(system),
        temp_regs_(temp_regs),
        shared_const_regs_(&prologue.const_regs_),
        shared_pool_(&prologue.pool_index_),
        pool_base_(static_cast<std::uint32_t>(prologue.new_consts_.size())),
        next_reg_(prologue.next_reg_),
        reg_base_(prologue.next_reg_) {}

  void emit_temp_definitions() {
    for (const opt::TempDef& def : system_.temp_order) {
      if (def.kind == opt::TempDef::Kind::kProduct) {
        const ProductEntry& p = system_.products[def.entry];
        temp_regs_[p.temp_index] = product_definition(p);
      } else {
        const SumEntry& s = system_.sums[def.entry];
        temp_regs_[s.temp_index] = sum_definition(s);
      }
    }
  }

  std::uint32_t sum_value(std::uint32_t id) {
    const SumEntry& s = system_.sums[id];
    if (s.temp_index >= 0) {
      RMS_CHECK(temp_regs_[s.temp_index] != vm::kNoReg);
      return temp_regs_[s.temp_index];
    }
    return sum_definition(s);
  }

  [[nodiscard]] const std::vector<Instr>& code() const { return code_; }
  [[nodiscard]] std::vector<Instr>& code() { return code_; }
  /// Constants first referenced by this region, in reference order.
  [[nodiscard]] const std::vector<double>& new_consts() const {
    return new_consts_;
  }
  [[nodiscard]] std::vector<double>& new_consts() { return new_consts_; }
  [[nodiscard]] std::uint32_t next_reg() const { return next_reg_; }
  [[nodiscard]] std::uint32_t reg_base() const { return reg_base_; }
  [[nodiscard]] std::uint32_t pool_base() const { return pool_base_; }

 private:
  std::uint32_t fresh_reg() { return next_reg_++; }

  std::uint32_t emit(Op op, std::uint32_t a = 0, std::uint32_t b = 0) {
    const std::uint32_t dst = fresh_reg();
    code_.push_back(Instr{op, dst, a, b});
    return dst;
  }

  std::uint32_t const_reg(double value) {
    // A constant the prologue already loaded lives in a shared register.
    if (shared_const_regs_ != nullptr) {
      auto it = shared_const_regs_->find(value);
      if (it != shared_const_regs_->end()) return it->second;
    }
    auto it = const_regs_.find(value);
    if (it != const_regs_.end()) return it->second;
    std::uint32_t pool_index = vm::kNoReg;
    if (shared_pool_ != nullptr) {
      auto shared = shared_pool_->find(value);
      if (shared != shared_pool_->end()) pool_index = shared->second;
    }
    if (pool_index == vm::kNoReg) {
      auto [pit, inserted] = pool_index_.try_emplace(
          value,
          pool_base_ + static_cast<std::uint32_t>(new_consts_.size()));
      if (inserted) new_consts_.push_back(value);
      pool_index = pit->second;
    }
    const std::uint32_t reg = emit(Op::kLoadConst, pool_index);
    const_regs_.emplace(value, reg);
    return reg;
  }

  std::uint32_t var_reg(VarId v) {
    switch (v.kind) {
      case VarKind::kSpecies: return emit(Op::kLoadY, v.index);
      case VarKind::kRateConst: return emit(Op::kLoadK, v.index);
      case VarKind::kTime: return emit(Op::kLoadT);
      case VarKind::kTemp: RMS_CHECK_MSG(false, "unexpected temp VarId");
    }
    RMS_UNREACHABLE();
  }

  std::uint32_t product_value(std::uint32_t id) {
    const ProductEntry& p = system_.products[id];
    if (p.temp_index >= 0) {
      RMS_CHECK(temp_regs_[p.temp_index] != vm::kNoReg);
      return temp_regs_[p.temp_index];
    }
    return product_definition(p);
  }

  std::uint32_t product_definition(const ProductEntry& p) {
    std::uint32_t reg = vm::kNoReg;
    if (p.prefix_len > 0) {
      const ProductEntry& donor = system_.products[p.prefix_product];
      RMS_CHECK(donor.temp_index >= 0);
      reg = temp_regs_[donor.temp_index];
    }
    for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
      const ProductAtom& atom = p.atoms[i];
      const std::uint32_t operand =
          atom.kind == ProductAtom::Kind::kVar
              ? var_reg(atom.var)
              : sum_value(static_cast<std::uint32_t>(atom.sum));
      reg = reg == vm::kNoReg ? operand : emit(Op::kMul, reg, operand);
    }
    if (reg == vm::kNoReg) reg = const_reg(1.0);
    return reg;
  }

  std::uint32_t sum_definition(const SumEntry& s) {
    std::uint32_t acc = vm::kNoReg;
    bool have_acc = false;
    auto push = [&](std::uint32_t reg, bool negative) {
      if (!have_acc) {
        acc = negative ? emit(Op::kNeg, reg) : reg;
        have_acc = true;
      } else {
        acc = emit(negative ? Op::kSub : Op::kAdd, acc, reg);
      }
    };
    if (s.prefix_len > 0) {
      const SumEntry& donor = system_.sums[s.prefix_sum];
      RMS_CHECK(donor.temp_index >= 0);
      push(temp_regs_[donor.temp_index], /*negative=*/false);
    }
    for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
      const opt::SumOperand& op = s.operands[i];
      const ProductEntry& p = system_.products[op.product];
      const bool product_is_one = p.atoms.empty() && p.prefix_len == 0;
      const double magnitude = std::fabs(op.coeff);
      std::uint32_t reg;
      if (product_is_one) {
        reg = const_reg(magnitude);
      } else if (magnitude == 1.0) {
        reg = product_value(op.product);
      } else {
        reg = emit(Op::kMul, const_reg(magnitude), product_value(op.product));
      }
      push(reg, op.coeff < 0.0);
    }
    RMS_CHECK(have_acc);
    return acc;
  }

  const OptimizedSystem& system_;
  std::vector<std::uint32_t>& temp_regs_;
  const std::unordered_map<double, std::uint32_t>* shared_const_regs_ =
      nullptr;
  const std::unordered_map<double, std::uint32_t>* shared_pool_ = nullptr;
  std::uint32_t pool_base_ = 0;

  std::vector<Instr> code_;
  std::vector<double> new_consts_;
  std::unordered_map<double, std::uint32_t> const_regs_;  // value -> reg
  std::unordered_map<double, std::uint32_t> pool_index_;  // value -> pool idx
  std::uint32_t next_reg_ = 0;
  std::uint32_t reg_base_ = 0;
};

/// One emitted equation body, before register/constant renumbering.
struct EquationFragment {
  std::vector<Instr> code;
  std::vector<double> new_consts;
  std::uint32_t reg_count = 0;        ///< private registers used
  std::uint32_t result = vm::kNoReg;  ///< body value (may be a shared reg)
};

}  // namespace

Program emit_optimized(const OptimizedSystem& system,
                       const support::ThreadPool* pool) {
  // Phase 1 (serial): temp definitions. Their registers and constant caches
  // are shared by everything that follows.
  std::vector<std::uint32_t> temp_regs(system.temp_order.size(), vm::kNoReg);
  RegionEmitter prologue(system, temp_regs);
  prologue.emit_temp_definitions();
  const std::uint32_t shared_regs = prologue.next_reg();
  const std::uint32_t pool_base = prologue.pool_base() +
                                  static_cast<std::uint32_t>(
                                      prologue.new_consts().size());

  // Phase 2 (parallel): one fragment per equation, committed by index.
  // Fragments read the frozen prologue state only; private registers are
  // numbered from shared_regs and private constants from pool_base, both
  // relocated deterministically below.
  const std::size_t n = system.equations.size();
  std::vector<EquationFragment> fragments =
      support::parallel_map<EquationFragment>(
          pool, n, 16, [&](std::size_t i) {
            EquationFragment frag;
            const std::int32_t eq = system.equations[i];
            if (eq == kNoExpr) return frag;
            RegionEmitter body(system, temp_regs, prologue);
            frag.result = body.sum_value(static_cast<std::uint32_t>(eq));
            frag.code = std::move(body.code());
            frag.new_consts = std::move(body.new_consts());
            frag.reg_count = body.next_reg() - body.reg_base();
            return frag;
          });

  // Phase 3 (serial): merge in equation order. Identical whether fragments
  // were produced serially or by any number of workers.
  Program program;
  program.species_count = system.species_count;
  program.rate_count = system.rate_count;
  program.output_count = n;
  program.code = std::move(prologue.code());
  program.consts = std::move(prologue.new_consts());
  // The merged size is known exactly: prologue + every fragment + one
  // StoreOut per equation. Reserving avoids relocating the (large) program
  // several times during the merge.
  std::size_t total_code = program.code.size() + n;
  for (const EquationFragment& frag : fragments) total_code += frag.code.size();
  program.code.reserve(total_code);
  std::unordered_map<double, std::uint32_t> pool_final;
  pool_final.reserve(program.consts.size());
  for (std::uint32_t i = 0; i < program.consts.size(); ++i) {
    pool_final.emplace(program.consts[i], i);
  }

  std::uint32_t reg_cursor = shared_regs;
  for (std::size_t i = 0; i < n; ++i) {
    EquationFragment& frag = fragments[i];
    const std::uint32_t base = reg_cursor;
    auto relocate = [&](std::uint32_t reg) {
      return (reg == vm::kNoReg || reg < shared_regs)
                 ? reg
                 : reg - shared_regs + base;
    };
    for (Instr ins : frag.code) {
      switch (ins.op) {
        case Op::kLoadConst:
          if (ins.a >= pool_base) {
            const double value = frag.new_consts[ins.a - pool_base];
            auto [it, inserted] = pool_final.try_emplace(
                value, static_cast<std::uint32_t>(program.consts.size()));
            if (inserted) program.consts.push_back(value);
            ins.a = it->second;
          }
          ins.dst = relocate(ins.dst);
          break;
        case Op::kLoadY:
        case Op::kLoadK:
        case Op::kLoadT:
          ins.dst = relocate(ins.dst);
          break;
        case Op::kNeg:
          ins.dst = relocate(ins.dst);
          ins.a = relocate(ins.a);
          break;
        case Op::kAdd:
        case Op::kSub:
        case Op::kMul:
          ins.dst = relocate(ins.dst);
          ins.a = relocate(ins.a);
          ins.b = relocate(ins.b);
          break;
        default:
          RMS_CHECK_MSG(false, "unexpected op in equation fragment");
      }
      program.code.push_back(ins);
    }
    program.code.push_back(Instr{Op::kStoreOut, 0,
                                 static_cast<std::uint32_t>(i),
                                 relocate(frag.result)});
    reg_cursor += frag.reg_count;
  }
  program.register_count = reg_cursor;
  return program;
}

}  // namespace rms::codegen
