#include "codegen/bytecode_emitter.hpp"

#include <cmath>
#include <unordered_map>

#include "support/assert.hpp"

namespace rms::codegen {

namespace {

using expr::VarId;
using expr::VarKind;
using opt::kNoExpr;
using opt::OptimizedSystem;
using opt::ProductAtom;
using opt::ProductEntry;
using opt::SumEntry;
using vm::Instr;
using vm::Op;
using vm::Program;

class Emitter {
 public:
  Program take() {
    program_.register_count = next_reg_;
    return std::move(program_);
  }

  std::uint32_t fresh_reg() { return next_reg_++; }

  std::uint32_t emit(Op op, std::uint32_t a = 0, std::uint32_t b = 0) {
    const std::uint32_t dst = fresh_reg();
    program_.code.push_back(Instr{op, dst, a, b});
    return dst;
  }

  std::uint32_t const_reg(double value) {
    auto it = const_regs_.find(value);
    if (it != const_regs_.end()) return it->second;
    auto pool = const_pool_.find(value);
    std::uint32_t pool_index;
    if (pool == const_pool_.end()) {
      pool_index = static_cast<std::uint32_t>(program_.consts.size());
      program_.consts.push_back(value);
      const_pool_.emplace(value, pool_index);
    } else {
      pool_index = pool->second;
    }
    const std::uint32_t reg = emit(Op::kLoadConst, pool_index);
    const_regs_.emplace(value, reg);
    return reg;
  }

  std::uint32_t var_reg(VarId v) {
    switch (v.kind) {
      case VarKind::kSpecies: return emit(Op::kLoadY, v.index);
      case VarKind::kRateConst: return emit(Op::kLoadK, v.index);
      case VarKind::kTime: return emit(Op::kLoadT);
      case VarKind::kTemp: RMS_CHECK_MSG(false, "unexpected temp VarId");
    }
    RMS_UNREACHABLE();
  }

  void store(std::uint32_t output, std::uint32_t reg) {
    program_.code.push_back(Instr{Op::kStoreOut, 0, output, reg});
  }

  Program program_;
  std::uint32_t next_reg_ = 0;
  std::unordered_map<double, std::uint32_t> const_regs_;
  std::unordered_map<double, std::uint32_t> const_pool_;
};

/// Accumulates "sum of signed operand registers" with the standard op-count
/// conventions: first operand seeds the accumulator (negated if negative),
/// later operands fold with Add/Sub.
class SumAccumulator {
 public:
  explicit SumAccumulator(Emitter& emitter) : emitter_(emitter) {}

  void push(std::uint32_t reg, bool negative) {
    if (!have_acc_) {
      acc_ = negative ? emitter_.emit(Op::kNeg, reg) : reg;
      have_acc_ = true;
      return;
    }
    acc_ = emitter_.emit(negative ? Op::kSub : Op::kAdd, acc_, reg);
  }

  [[nodiscard]] bool empty() const { return !have_acc_; }
  [[nodiscard]] std::uint32_t result() const {
    RMS_CHECK(have_acc_);
    return acc_;
  }

 private:
  Emitter& emitter_;
  std::uint32_t acc_ = 0;
  bool have_acc_ = false;
};

}  // namespace

Program emit_unoptimized(const odegen::EquationTable& table,
                         std::size_t species_count, std::size_t rate_count) {
  Emitter emitter;
  emitter.program_.species_count = species_count;
  emitter.program_.rate_count = rate_count;
  emitter.program_.output_count = table.size();

  for (std::size_t i = 0; i < table.size(); ++i) {
    const expr::SumOfProducts& equation = table.equation(i);
    SumAccumulator acc(emitter);
    for (const expr::Product& p : equation.terms()) {
      if (p.coeff == 0.0) continue;
      // Product value: |coeff| (if != 1) * factors...
      std::uint32_t reg = vm::kNoReg;
      const double magnitude = std::fabs(p.coeff);
      if (magnitude != 1.0 || p.factors.empty()) {
        reg = emitter.const_reg(magnitude);
      }
      for (VarId v : p.factors) {
        const std::uint32_t vreg = emitter.var_reg(v);
        reg = reg == vm::kNoReg ? vreg : emitter.emit(Op::kMul, reg, vreg);
      }
      acc.push(reg, p.coeff < 0.0);
    }
    if (acc.empty()) {
      emitter.store(static_cast<std::uint32_t>(i), vm::kNoReg);
    } else {
      emitter.store(static_cast<std::uint32_t>(i), acc.result());
    }
  }
  return emitter.take();
}

namespace {

class OptimizedEmitter {
 public:
  explicit OptimizedEmitter(const OptimizedSystem& system) : system_(system) {
    temp_regs_.assign(system.temp_order.size(), vm::kNoReg);
  }

  Program run() {
    emitter_.program_.species_count = system_.species_count;
    emitter_.program_.rate_count = system_.rate_count;
    emitter_.program_.output_count = system_.equations.size();
    for (const opt::TempDef& def : system_.temp_order) {
      if (def.kind == opt::TempDef::Kind::kProduct) {
        const ProductEntry& p = system_.products[def.entry];
        temp_regs_[p.temp_index] = product_definition(p);
      } else {
        const SumEntry& s = system_.sums[def.entry];
        temp_regs_[s.temp_index] = sum_definition(s);
      }
    }
    for (std::size_t i = 0; i < system_.equations.size(); ++i) {
      const std::int32_t eq = system_.equations[i];
      if (eq == kNoExpr) {
        emitter_.store(static_cast<std::uint32_t>(i), vm::kNoReg);
      } else {
        emitter_.store(static_cast<std::uint32_t>(i),
                       sum_value(static_cast<std::uint32_t>(eq)));
      }
    }
    return emitter_.take();
  }

 private:
  std::uint32_t sum_value(std::uint32_t id) {
    const SumEntry& s = system_.sums[id];
    if (s.temp_index >= 0) {
      RMS_CHECK(temp_regs_[s.temp_index] != vm::kNoReg);
      return temp_regs_[s.temp_index];
    }
    return sum_definition(s);
  }

  std::uint32_t product_value(std::uint32_t id) {
    const ProductEntry& p = system_.products[id];
    if (p.temp_index >= 0) {
      RMS_CHECK(temp_regs_[p.temp_index] != vm::kNoReg);
      return temp_regs_[p.temp_index];
    }
    return product_definition(p);
  }

  std::uint32_t product_definition(const ProductEntry& p) {
    std::uint32_t reg = vm::kNoReg;
    if (p.prefix_len > 0) {
      const ProductEntry& donor = system_.products[p.prefix_product];
      RMS_CHECK(donor.temp_index >= 0);
      reg = temp_regs_[donor.temp_index];
    }
    for (std::size_t i = p.prefix_len; i < p.atoms.size(); ++i) {
      const ProductAtom& atom = p.atoms[i];
      const std::uint32_t operand =
          atom.kind == ProductAtom::Kind::kVar
              ? emitter_.var_reg(atom.var)
              : sum_value(static_cast<std::uint32_t>(atom.sum));
      reg = reg == vm::kNoReg ? operand
                              : emitter_.emit(Op::kMul, reg, operand);
    }
    if (reg == vm::kNoReg) reg = emitter_.const_reg(1.0);
    return reg;
  }

  std::uint32_t sum_definition(const SumEntry& s) {
    SumAccumulator acc(emitter_);
    if (s.prefix_len > 0) {
      const SumEntry& donor = system_.sums[s.prefix_sum];
      RMS_CHECK(donor.temp_index >= 0);
      acc.push(temp_regs_[donor.temp_index], /*negative=*/false);
    }
    for (std::size_t i = s.prefix_len; i < s.operands.size(); ++i) {
      const opt::SumOperand& op = s.operands[i];
      const ProductEntry& p = system_.products[op.product];
      const bool product_is_one = p.atoms.empty() && p.prefix_len == 0;
      const double magnitude = std::fabs(op.coeff);
      std::uint32_t reg;
      if (product_is_one) {
        reg = emitter_.const_reg(magnitude);
      } else if (magnitude == 1.0) {
        reg = product_value(op.product);
      } else {
        reg = emitter_.emit(Op::kMul, emitter_.const_reg(magnitude),
                            product_value(op.product));
      }
      acc.push(reg, op.coeff < 0.0);
    }
    RMS_CHECK(!acc.empty());
    return acc.result();
  }

  const OptimizedSystem& system_;
  Emitter emitter_;
  std::vector<std::uint32_t> temp_regs_;
};

}  // namespace

Program emit_optimized(const OptimizedSystem& system) {
  return OptimizedEmitter(system).run();
}

}  // namespace rms::codegen
