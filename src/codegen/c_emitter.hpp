// C source emission: the paper's actual compiler output format ("The output
// from the Equation Generator is a C code function that evaluates the
// ODEs"). The emitted translation units are self-contained:
//
//   void rms_ode_rhs(double t, const double* y, const double* k,
//                    double* ydot);
//   void rms_ode_rhs_batch(double t, const double* ys, const double* k,
//                          double* ydots, long n);
//   void rms_ode_jac(double t, const double* y, const double* k,
//                    double* jac);
//
// emit_c_unoptimized produces the naive form (one giant expression per
// equation — the machine-generated code that "stresses commercial compilers
// to the point of failure"); emit_c_optimized produces the temp-structured
// form after DistOpt + CSE. emit_c_batch wraps the optimized body in a loop
// over `n` lane-major contiguous states (lane l's state at ys + l * dim,
// the layout of vm::Interpreter::run_batch_shared_k) with restrict-
// qualified pointers so the host compiler can vectorize and pipeline across
// the straight-line body. emit_c_jacobian takes the *Jacobian's* optimized
// system (one equation per nonzero entry, codegen::differentiate order) and
// emits a CSR-fill function writing the nonzero values in the exact layout
// of codegen::CompiledJacobian.
#pragma once

#include <string>

#include "odegen/equation_table.hpp"
#include "opt/optimized_system.hpp"

namespace rms::codegen {

struct CEmitOptions {
  std::string function_name = "rms_ode_rhs";
};

std::string emit_c_unoptimized(const odegen::EquationTable& table,
                               const CEmitOptions& options = {});

std::string emit_c_optimized(const opt::OptimizedSystem& system,
                             const CEmitOptions& options = {});

/// Batched multi-state RHS over the optimized system. The system's
/// species_count must be set (opt::optimize fills it); output stride equals
/// the equation count.
std::string emit_c_batch(const opt::OptimizedSystem& system,
                         const CEmitOptions& options = {});

/// CSR value fill for an optimized *Jacobian* system (entries in
/// codegen::differentiate CSR order): jac[e] = entry e.
std::string emit_c_jacobian(const opt::OptimizedSystem& jacobian_system,
                            const CEmitOptions& options = {});

}  // namespace rms::codegen
