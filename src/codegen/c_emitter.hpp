// C source emission: the paper's actual compiler output format ("The output
// from the Equation Generator is a C code function that evaluates the
// ODEs"). The emitted translation unit is self-contained:
//
//   void rms_ode_rhs(double t, const double* y, const double* k,
//                    double* ydot);
//
// emit_c_unoptimized produces the naive form (one giant expression per
// equation — the machine-generated code that "stresses commercial compilers
// to the point of failure"); emit_c_optimized produces the temp-structured
// form after DistOpt + CSE.
#pragma once

#include <string>

#include "odegen/equation_table.hpp"
#include "opt/optimized_system.hpp"

namespace rms::codegen {

struct CEmitOptions {
  std::string function_name = "rms_ode_rhs";
};

std::string emit_c_unoptimized(const odegen::EquationTable& table,
                               const CEmitOptions& options = {});

std::string emit_c_optimized(const opt::OptimizedSystem& system,
                             const CEmitOptions& options = {});

}  // namespace rms::codegen
