#include "codegen/reference_backend.hpp"

#include <unordered_map>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::codegen {

namespace {

using vm::Instr;
using vm::Op;
using vm::Program;

std::uint64_t key_of(Op op, std::uint64_t a, std::uint64_t b) {
  // Commutative ops are normalized so a*b and b*a share a value number.
  if ((op == Op::kAdd || op == Op::kMul) && b < a) std::swap(a, b);
  return (static_cast<std::uint64_t>(op) << 58) ^ (a * 0x9E3779B97F4A7C15ull) ^
         (b + 0xD1B54A32D192ED03ull + (a << 21));
}

}  // namespace

std::size_t required_ir_bytes(const Program& input,
                              const BackendOptions& options) {
  const std::size_t per_node =
      options.bytes_per_node +
      (options.window > 0 ? options.opt_bytes_per_node : 0);
  return input.code.size() * per_node;
}

support::Expected<BackendResult> reference_compile(
    const Program& input, const BackendOptions& options) {
  BackendResult result;
  result.input_ops = input.count_arith();
  result.peak_ir_bytes = required_ir_bytes(input, options);
  if (result.peak_ir_bytes > options.memory_budget_bytes) {
    return support::resource_exhausted(support::str_format(
        "compilation ended due to lack of space: IR requires %zu MB, budget "
        "is %zu MB",
        result.peak_ir_bytes >> 20, options.memory_budget_bytes >> 20));
  }

  Program& out = result.program;
  out.consts = input.consts;
  out.species_count = input.species_count;
  out.rate_count = input.rate_count;
  out.output_count = input.output_count;
  out.code.reserve(input.code.size());

  // in_to_out[r]: output register currently holding input register r's value.
  std::vector<std::uint32_t> in_to_out(input.register_count, vm::kNoReg);
  std::unordered_map<std::uint64_t, std::uint32_t> value_table;
  std::uint32_t next_reg = 0;
  std::size_t since_flush = 0;

  auto emit = [&](Op op, std::uint32_t a, std::uint32_t b) {
    const std::uint32_t dst = next_reg++;
    out.code.push_back(Instr{op, dst, a, b});
    return dst;
  };

  for (const Instr& instr : input.code) {
    if (options.window > 0 && ++since_flush > options.window) {
      // Window flush: the general optimizer's redundancy scope ends here.
      value_table.clear();
      since_flush = 0;
    }
    switch (instr.op) {
      case Op::kLoadY:
      case Op::kLoadK:
      case Op::kLoadT:
      case Op::kLoadConst: {
        const std::uint64_t key = key_of(instr.op, instr.a, ~std::uint64_t{0});
        if (options.window > 0) {
          auto it = value_table.find(key);
          if (it != value_table.end()) {
            in_to_out[instr.dst] = it->second;
            continue;
          }
        }
        const std::uint32_t dst = emit(instr.op, instr.a, 0);
        in_to_out[instr.dst] = dst;
        if (options.window > 0) value_table.emplace(key, dst);
        break;
      }
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul: {
        const std::uint32_t a = in_to_out[instr.a];
        const std::uint32_t b = in_to_out[instr.b];
        RMS_DCHECK(a != vm::kNoReg && b != vm::kNoReg);
        const std::uint64_t key = key_of(instr.op, a, b);
        if (options.window > 0) {
          auto it = value_table.find(key);
          if (it != value_table.end()) {
            in_to_out[instr.dst] = it->second;
            continue;
          }
        }
        const std::uint32_t dst = emit(instr.op, a, b);
        in_to_out[instr.dst] = dst;
        if (options.window > 0) value_table.emplace(key, dst);
        break;
      }
      case Op::kNeg: {
        const std::uint32_t a = in_to_out[instr.a];
        const std::uint64_t key = key_of(instr.op, a, ~std::uint64_t{0});
        if (options.window > 0) {
          auto it = value_table.find(key);
          if (it != value_table.end()) {
            in_to_out[instr.dst] = it->second;
            continue;
          }
        }
        const std::uint32_t dst = emit(instr.op, a, 0);
        in_to_out[instr.dst] = dst;
        if (options.window > 0) value_table.emplace(key, dst);
        break;
      }
      case Op::kStoreOut: {
        const std::uint32_t value =
            instr.b == vm::kNoReg ? vm::kNoReg : in_to_out[instr.b];
        out.code.push_back(Instr{Op::kStoreOut, 0, instr.a, value});
        break;
      }
      // Fused superinstructions (vm/fuse.hpp). The general-purpose backend
      // model lowers them opaquely — remapped but never value-numbered, the
      // way a commercial compiler treats intrinsics it cannot reason about.
      case Op::kMulAdd:
      case Op::kMulSub: {
        const std::uint32_t dst = next_reg++;
        out.code.push_back(Instr{instr.op, dst, in_to_out[instr.a],
                                 in_to_out[instr.b], in_to_out[instr.c]});
        in_to_out[instr.dst] = dst;
        break;
      }
      case Op::kLoadYMul:
      case Op::kLoadKMul: {
        const std::uint32_t dst = next_reg++;
        out.code.push_back(Instr{instr.op, dst, instr.a, in_to_out[instr.b]});
        in_to_out[instr.dst] = dst;
        break;
      }
      case Op::kStoreNeg:
        out.code.push_back(Instr{Op::kStoreNeg, 0, instr.a, in_to_out[instr.b]});
        break;
    }
  }
  out.register_count = next_reg;
  result.output_ops = out.count_arith();
  return result;
}

}  // namespace rms::codegen
