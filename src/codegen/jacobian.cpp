#include "codegen/jacobian.hpp"

#include <map>

#include "codegen/bytecode_emitter.hpp"
#include "support/assert.hpp"
#include "vm/fuse.hpp"
#include "vm/interpreter.hpp"

namespace rms::codegen {

SymbolicJacobian differentiate(const odegen::EquationTable& equations,
                               std::size_t species_count) {
  SymbolicJacobian jacobian;
  jacobian.dimension = equations.size();
  jacobian.row_offsets.reserve(equations.size() + 1);
  jacobian.row_offsets.push_back(0);

  std::vector<expr::SumOfProducts> entry_list;
  for (std::size_t row = 0; row < equations.size(); ++row) {
    // Column -> d(eq_row)/dy_col, ordered for deterministic CSR layout.
    std::map<std::uint32_t, expr::SumOfProducts> row_entries;
    for (const expr::Product& p : equations.equation(row).terms()) {
      if (p.coeff == 0.0) continue;
      // Each distinct species factor contributes one derivative product.
      for (std::size_t f = 0; f < p.factors.size(); ++f) {
        const expr::VarId v = p.factors[f];
        if (v.kind != expr::VarKind::kSpecies) continue;
        if (f > 0 && p.factors[f - 1] == v) continue;  // count each once
        RMS_CHECK(v.index < species_count);
        // Multiplicity of y_v in the product.
        std::size_t multiplicity = 0;
        for (expr::VarId w : p.factors) multiplicity += w == v ? 1 : 0;
        expr::Product derivative = p;
        derivative.coeff *= static_cast<double>(multiplicity);
        derivative.divide_by(v);
        row_entries[v.index].add_combining(std::move(derivative));
      }
    }
    for (auto& [col, sum] : row_entries) {
      sum.sort_canonical();
      if (sum.empty()) continue;  // exact cancellation
      jacobian.col_indices.push_back(col);
      entry_list.push_back(std::move(sum));
    }
    jacobian.row_offsets.push_back(
        static_cast<std::uint32_t>(jacobian.col_indices.size()));
  }

  jacobian.entries = odegen::EquationTable(entry_list.size());
  for (std::size_t e = 0; e < entry_list.size(); ++e) {
    jacobian.entries.equation(e) = std::move(entry_list[e]);
  }
  return jacobian;
}

void CompiledJacobian::scatter_dense(const std::vector<double>& values,
                                     linalg::Matrix& jacobian) const {
  RMS_CHECK(values.size() == col_indices.size());
  if (jacobian.rows() != dimension || jacobian.cols() != dimension) {
    jacobian = linalg::Matrix(dimension, dimension);
  } else {
    for (std::size_t r = 0; r < dimension; ++r) {
      double* row = jacobian.row(r);
      for (std::size_t c = 0; c < dimension; ++c) row[c] = 0.0;
    }
  }
  for (std::size_t r = 0; r < dimension; ++r) {
    double* row = jacobian.row(r);
    for (std::uint32_t e = row_offsets[r]; e < row_offsets[r + 1]; ++e) {
      row[col_indices[e]] = values[e];
    }
  }
}

DenseJacobianEvaluator::DenseJacobianEvaluator(
    const CompiledJacobian* jacobian, const std::vector<double>* rates)
    : jacobian_(jacobian), rates_(rates) {
  values_.resize(jacobian_->col_indices.size());
}

void DenseJacobianEvaluator::operator()(double t, const double* y,
                                        double* dense_row_major) {
  // The interpreter holds no mutable state (registers live in a
  // thread_local Scratch), so per-call construction is a pointer copy and
  // the evaluator stays trivially copyable and thread-safe.
  vm::Interpreter interpreter(jacobian_->program);
  interpreter.run(t, y, rates_->data(), values_.data());
  const std::size_t n = jacobian_->dimension;
  for (std::size_t i = 0; i < n * n; ++i) dense_row_major[i] = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double* row = dense_row_major + r * n;
    for (std::uint32_t e = jacobian_->row_offsets[r];
         e < jacobian_->row_offsets[r + 1]; ++e) {
      row[jacobian_->col_indices[e]] = values_[e];
    }
  }
}

SparseJacobianEvaluator::SparseJacobianEvaluator(
    const CompiledJacobian* jacobian, const std::vector<double>* rates)
    : jacobian_(jacobian), rates_(rates) {}

void SparseJacobianEvaluator::operator()(double t, const double* y,
                                         linalg::CsrMatrix& out) {
  out.rows = out.cols = jacobian_->dimension;
  out.row_offsets = jacobian_->row_offsets;
  out.col_indices = jacobian_->col_indices;
  out.values.resize(jacobian_->col_indices.size());
  vm::Interpreter interpreter(jacobian_->program);
  interpreter.run(t, y, rates_->data(), out.values.data());
}

CompiledJacobian compile_jacobian(const odegen::EquationTable& equations,
                                  std::size_t species_count,
                                  std::size_t rate_count,
                                  const opt::OptimizerOptions& options) {
  SymbolicJacobian symbolic = differentiate(equations, species_count);
  CompiledJacobian compiled;
  compiled.dimension = symbolic.dimension;
  compiled.row_offsets = std::move(symbolic.row_offsets);
  compiled.col_indices = std::move(symbolic.col_indices);
  opt::OptimizedSystem system =
      opt::optimize(symbolic.entries, species_count, rate_count, options);
  // Jacobian programs run once per Newton refresh on the solver hot path:
  // give them the same fused + register-compacted form as the RHS.
  compiled.program = vm::fuse_and_compact(emit_optimized(system));
  return compiled;
}

}  // namespace rms::codegen
