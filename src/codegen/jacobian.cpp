#include "codegen/jacobian.hpp"

#include <algorithm>

#include "codegen/bytecode_emitter.hpp"
#include "support/assert.hpp"
#include "vm/fuse.hpp"
#include "vm/interpreter.hpp"

namespace rms::codegen {

namespace {

/// The nonzero entries of one Jacobian row, in column order.
struct RowDerivatives {
  std::vector<std::pair<std::uint32_t, expr::SumOfProducts>> entries;
};

/// d(eq_row)/dy_col for every species column eq_row references. Pure
/// function of one equation — the unit of the per-row fan-out.
RowDerivatives differentiate_row(const expr::SumOfProducts& equation,
                                 std::size_t species_count) {
  // Column -> d(eq_row)/dy_col. A chemistry row touches only a handful of
  // distinct columns (its reaction partners), so a flat vector with linear
  // probing beats a node-based map; a final sort restores the column order
  // the CSR layout requires.
  RowDerivatives row;
  std::vector<std::pair<std::uint32_t, expr::SumOfProducts>>& accum =
      row.entries;
  accum.reserve(8);  // typical row: a handful of reaction-partner columns
  for (const expr::Product& p : equation.terms()) {
    if (p.coeff == 0.0) continue;
    // Each distinct species factor contributes one derivative product.
    for (std::size_t f = 0; f < p.factors.size(); ++f) {
      const expr::VarId v = p.factors[f];
      if (v.kind != expr::VarKind::kSpecies) continue;
      if (f > 0 && p.factors[f - 1] == v) continue;  // count each once
      RMS_CHECK(v.index < species_count);
      // Multiplicity of y_v in the product.
      std::size_t multiplicity = 0;
      for (expr::VarId w : p.factors) multiplicity += w == v ? 1 : 0;
      expr::Product derivative = p;
      derivative.coeff *= static_cast<double>(multiplicity);
      derivative.divide_by(v);
      expr::SumOfProducts* sum = nullptr;
      for (auto& [col, s] : accum) {
        if (col == v.index) {
          sum = &s;
          break;
        }
      }
      if (sum == nullptr) {
        accum.emplace_back(v.index, expr::SumOfProducts{});
        sum = &accum.back().second;
      }
      sum->add_combining(std::move(derivative));
    }
  }
  std::sort(accum.begin(), accum.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  for (auto& [col, sum] : accum) sum.sort_canonical();
  accum.erase(std::remove_if(accum.begin(), accum.end(),
                             [](const auto& e) {
                               return e.second.empty();  // exact cancellation
                             }),
              accum.end());
  return row;
}

}  // namespace

SymbolicJacobian differentiate(const odegen::EquationTable& equations,
                               std::size_t species_count,
                               const support::ThreadPool* pool) {
  SymbolicJacobian jacobian;
  jacobian.dimension = equations.size();
  jacobian.row_offsets.reserve(equations.size() + 1);
  jacobian.row_offsets.push_back(0);

  // Rows are independent; each worker fills its slot and the CSR merge
  // below walks the slots in row order, so the layout is identical to the
  // serial loop no matter how rows were scheduled.
  std::vector<RowDerivatives> rows = support::parallel_map<RowDerivatives>(
      pool, equations.size(), 8, [&](std::size_t row) {
        return differentiate_row(equations.equation(row), species_count);
      });

  std::size_t nnz = 0;
  for (const RowDerivatives& row : rows) nnz += row.entries.size();
  jacobian.col_indices.reserve(nnz);
  jacobian.entries = odegen::EquationTable(nnz);
  std::size_t e = 0;
  for (RowDerivatives& row : rows) {
    for (auto& [col, sum] : row.entries) {
      jacobian.col_indices.push_back(col);
      jacobian.entries.equation(e++) = std::move(sum);
    }
    jacobian.row_offsets.push_back(
        static_cast<std::uint32_t>(jacobian.col_indices.size()));
  }
  return jacobian;
}

void CompiledJacobian::scatter_dense(const std::vector<double>& values,
                                     linalg::Matrix& jacobian) const {
  RMS_CHECK(values.size() == col_indices.size());
  if (jacobian.rows() != dimension || jacobian.cols() != dimension) {
    jacobian = linalg::Matrix(dimension, dimension);
  } else {
    for (std::size_t r = 0; r < dimension; ++r) {
      double* row = jacobian.row(r);
      for (std::size_t c = 0; c < dimension; ++c) row[c] = 0.0;
    }
  }
  for (std::size_t r = 0; r < dimension; ++r) {
    double* row = jacobian.row(r);
    for (std::uint32_t e = row_offsets[r]; e < row_offsets[r + 1]; ++e) {
      row[col_indices[e]] = values[e];
    }
  }
}

DenseJacobianEvaluator::DenseJacobianEvaluator(
    const CompiledJacobian* jacobian, const std::vector<double>* rates)
    : jacobian_(jacobian), rates_(rates) {
  values_.resize(jacobian_->col_indices.size());
}

void DenseJacobianEvaluator::operator()(double t, const double* y,
                                        double* dense_row_major) {
  // The interpreter holds no mutable state (registers live in a
  // thread_local Scratch), so per-call construction is a pointer copy and
  // the evaluator stays trivially copyable and thread-safe.
  vm::Interpreter interpreter(jacobian_->program);
  interpreter.run(t, y, rates_->data(), values_.data());
  const std::size_t n = jacobian_->dimension;
  for (std::size_t i = 0; i < n * n; ++i) dense_row_major[i] = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    double* row = dense_row_major + r * n;
    for (std::uint32_t e = jacobian_->row_offsets[r];
         e < jacobian_->row_offsets[r + 1]; ++e) {
      row[jacobian_->col_indices[e]] = values_[e];
    }
  }
}

SparseJacobianEvaluator::SparseJacobianEvaluator(
    const CompiledJacobian* jacobian, const std::vector<double>* rates)
    : jacobian_(jacobian), rates_(rates) {}

void SparseJacobianEvaluator::operator()(double t, const double* y,
                                         linalg::CsrMatrix& out) {
  out.rows = out.cols = jacobian_->dimension;
  out.row_offsets = jacobian_->row_offsets;
  out.col_indices = jacobian_->col_indices;
  out.values.resize(jacobian_->col_indices.size());
  vm::Interpreter interpreter(jacobian_->program);
  interpreter.run(t, y, rates_->data(), out.values.data());
}

CompiledJacobian compile_jacobian(const odegen::EquationTable& equations,
                                  std::size_t species_count,
                                  std::size_t rate_count,
                                  const opt::OptimizerOptions& options) {
  // Jacobian phases report under their own names ("jac_distopt" vs the RHS's
  // "distopt"), so run the optimizer against a local sink and fold it in.
  opt::PhaseTimings* timings = options.timings;
  opt::PhaseTimer diff_timer(timings, "jac_differentiate");
  SymbolicJacobian symbolic =
      differentiate(equations, species_count, options.pool);
  diff_timer.stop();

  CompiledJacobian compiled;
  compiled.dimension = symbolic.dimension;
  compiled.row_offsets = std::move(symbolic.row_offsets);
  compiled.col_indices = std::move(symbolic.col_indices);

  opt::PhaseTimings local;
  opt::OptimizerOptions jac_options = options;
  jac_options.timings = timings != nullptr ? &local : nullptr;
  opt::OptimizedSystem system =
      opt::optimize(symbolic.entries, species_count, rate_count, jac_options);
  if (timings != nullptr) {
    for (const opt::PhaseTimings::Phase& p : local.phases) {
      timings->add("jac_" + p.name, p.seconds);
    }
  }

  // Jacobian programs run once per Newton refresh on the solver hot path:
  // give them the same fused + register-compacted form as the RHS.
  opt::PhaseTimer emit_timer(timings, "jac_emit");
  vm::Program raw = emit_optimized(system, options.pool);
  emit_timer.stop();
  opt::PhaseTimer fuse_timer(timings, "jac_fuse");
  compiled.program = vm::fuse_and_compact(raw);
  return compiled;
}

}  // namespace rms::codegen
