// Native code execution backend: AOT-compiled RHS + Jacobian.
//
// The paper's compiler ultimately emits *C code* ("The output from the
// Equation Generator is a C code function that evaluates the ODEs"). This
// backend promotes that path to a first-class execution engine: it emits
// the optimized RHS (scalar and batched) plus the analytic Jacobian as one
// C translation unit, compiles it with the system C compiler into a shared
// object, and dlopen()s the result. Every RHS and Jacobian evaluation then
// runs as host-compiler-optimized machine code instead of through the
// bytecode interpreter.
//
// Compilation cost is paid exactly once per distinct model: shared objects
// live in a content-addressed on-disk cache keyed by an FNV-1a hash of the
// emitted source plus the full compiler command line. Entries are
// published with a write-to-temporary + atomic rename() protocol, so
// concurrent processes (a ctest -j sweep, parallel estimator runs) racing
// on the same model each end up with a valid entry and at most one wasted
// compile; a corrupted entry (truncated write, bad file) is detected at
// dlopen/dlsym time, evicted, and recompiled once.
//
// Environment:
//   RMS_CC         compiler executable (default "cc"); construction fails
//                  cleanly — callers fall back to the VM — when it is
//                  missing or broken
//   RMS_CACHE_DIR  cache directory (default ~/.cache/rms, then /tmp/rms-cache)
//
// The backend is deliberately independent of models::BuiltModel (codegen
// sits below models in the layering); rms::Execution provides the
// BuiltModel-level plumbing and VM fallback policy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "odegen/equation_table.hpp"
#include "opt/optimized_system.hpp"
#include "support/status.hpp"

namespace rms::codegen {

/// Signature of the emitted scalar entry points (RHS and Jacobian fill).
using NativeRhsFn = void (*)(double t, const double* y, const double* k,
                             double* out);
/// Signature of the emitted batched RHS (lane-major contiguous states, the
/// layout of vm::Interpreter::run_batch_shared_k).
using NativeBatchFn = void (*)(double t, const double* ys, const double* k,
                               double* ydots, long n);

struct NativeBackendOptions {
  /// Compiler executable; empty resolves $RMS_CC, then "cc".
  std::string compiler;
  /// Optimization/code-gen flags. -ffp-contract=off keeps the native code
  /// bit-comparable to the VM (no FMA contraction on targets that have it);
  /// -shared -fPIC are appended unconditionally.
  std::string flags = "-O2 -ffp-contract=off";
  /// Cache directory; empty resolves $RMS_CACHE_DIR, then ~/.cache/rms,
  /// then /tmp/rms-cache.
  std::string cache_dir;
  /// Reuse an existing cache entry when present. Off forces a recompile
  /// (the fresh object still replaces the cached one) — benchmark cold
  /// paths use this.
  bool use_cache = true;
  /// Emit + resolve the batched RHS entry point.
  bool emit_batch = true;
  /// Emit + resolve the analytic Jacobian (requires the pre-CSE equation
  /// table at create()).
  bool emit_jacobian = true;
};

/// How one backend construction was satisfied.
struct NativeCompileInfo {
  bool cache_hit = false;
  double compile_seconds = 0.0;  ///< compiler wall time (0 on a cache hit)
  double total_seconds = 0.0;    ///< emit + compile + dlopen
  std::string object_path;       ///< the published shared object
  std::uint64_t key = 0;         ///< content hash (cache key)
};

/// An AOT-compiled model: scalar RHS, batched RHS, and the analytic
/// Jacobian as native function pointers, plus the Jacobian's CSR structure
/// (identical layout to codegen::CompiledJacobian). Move-only; owns the
/// dlopen handle. All entry points are const and touch only caller-owned
/// buffers, so one backend serves every thread and rank concurrently.
class NativeBackend {
 public:
  /// Emits, compiles (or cache-loads) and binds the native module for an
  /// optimized system. `equations` is the pre-CSE equation table the
  /// analytic Jacobian is differentiated from; pass nullptr to skip the
  /// Jacobian regardless of options. Fails with a Status — never crashes —
  /// when the compiler is missing or rejects the unit; callers fall back
  /// to the VM interpreter.
  static support::Expected<std::unique_ptr<NativeBackend>> create(
      const opt::OptimizedSystem& system,
      const odegen::EquationTable* equations, std::size_t species_count,
      std::size_t rate_count, const NativeBackendOptions& options = {});

  ~NativeBackend();
  NativeBackend(NativeBackend&& other) = delete;
  NativeBackend& operator=(NativeBackend&&) = delete;
  NativeBackend(const NativeBackend&) = delete;
  NativeBackend& operator=(const NativeBackend&) = delete;

  /// ydot = f(t, y, k).
  void rhs(double t, const double* y, const double* k, double* ydot) const {
    rhs_(t, y, k, ydot);
  }

  /// Batched RHS over n lane-major contiguous states.
  void rhs_batch(double t, const double* ys, const double* k, double* ydots,
                 std::size_t n) const {
    batch_(t, ys, k, ydots, static_cast<long>(n));
  }

  [[nodiscard]] bool has_batch() const { return batch_ != nullptr; }
  [[nodiscard]] bool has_jacobian() const { return jac_ != nullptr; }

  /// Fills the Jacobian's nonzero values in CSR order (row_offsets /
  /// col_indices layout below).
  void jacobian_values(double t, const double* y, const double* k,
                       double* values) const {
    jac_(t, y, k, values);
  }

  [[nodiscard]] std::size_t dimension() const { return dimension_; }
  [[nodiscard]] std::size_t rate_count() const { return rate_count_; }
  [[nodiscard]] const std::vector<std::uint32_t>& jacobian_row_offsets()
      const {
    return row_offsets_;
  }
  [[nodiscard]] const std::vector<std::uint32_t>& jacobian_col_indices()
      const {
    return col_indices_;
  }

  [[nodiscard]] const NativeCompileInfo& info() const { return info_; }

  /// Process-wide count of compiler invocations (cache misses). Tests use
  /// the delta across constructions to prove hit/miss behavior.
  static std::uint64_t compiler_invocations();

 private:
  NativeBackend() = default;

  void* handle_ = nullptr;
  NativeRhsFn rhs_ = nullptr;
  NativeBatchFn batch_ = nullptr;
  NativeRhsFn jac_ = nullptr;
  std::size_t dimension_ = 0;
  std::size_t rate_count_ = 0;
  std::vector<std::uint32_t> row_offsets_;
  std::vector<std::uint32_t> col_indices_;
  NativeCompileInfo info_;
};

}  // namespace rms::codegen
