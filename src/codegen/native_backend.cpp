#include "codegen/native_backend.hpp"

#include <dlfcn.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/c_emitter.hpp"
#include "codegen/jacobian.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace rms::codegen {

namespace {

/// Bump when the emitted-source contract changes in a way the source text
/// itself does not capture (symbol names, calling conventions): stale cache
/// entries from older layouts must miss.
constexpr const char* kCacheFormatVersion = "rms-native-v1";

constexpr const char* kRhsSymbol = "rms_ode_rhs";
constexpr const char* kBatchSymbol = "rms_ode_rhs_batch";
constexpr const char* kJacSymbol = "rms_ode_jac";

std::atomic<std::uint64_t> g_compiler_invocations{0};

std::uint64_t fnv1a(std::string_view data, std::uint64_t hash) {
  for (unsigned char c : data) {
    hash ^= c;
    hash *= 1099511628211ull;
  }
  return hash;
}

std::string resolve_compiler(const NativeBackendOptions& options) {
  if (!options.compiler.empty()) return options.compiler;
  if (const char* env = std::getenv("RMS_CC"); env != nullptr && *env != '\0') {
    return env;
  }
  return "cc";
}

std::string resolve_cache_dir(const NativeBackendOptions& options) {
  if (!options.cache_dir.empty()) return options.cache_dir;
  if (const char* env = std::getenv("RMS_CACHE_DIR");
      env != nullptr && *env != '\0') {
    return env;
  }
  if (const char* home = std::getenv("HOME");
      home != nullptr && *home != '\0') {
    return std::string(home) + "/.cache/rms";
  }
  return "/tmp/rms-cache";
}

/// mkdir -p. Returns false when a component exists but is not a directory
/// or cannot be created.
bool make_dirs(const std::string& path) {
  std::string prefix;
  prefix.reserve(path.size());
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') {
      prefix += path[i];
      continue;
    }
    if (!prefix.empty() && prefix != "/") {
      if (::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
    }
    if (i != path.size()) prefix += '/';
  }
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  out.flush();
  return static_cast<bool>(out);
}

/// Removes a path, ignoring "already gone".
void remove_quiet(const std::string& path) {
  if (!path.empty()) ::unlink(path.c_str());
}

}  // namespace

std::uint64_t NativeBackend::compiler_invocations() {
  return g_compiler_invocations.load(std::memory_order_relaxed);
}

NativeBackend::~NativeBackend() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

support::Expected<std::unique_ptr<NativeBackend>> NativeBackend::create(
    const opt::OptimizedSystem& system, const odegen::EquationTable* equations,
    std::size_t species_count, std::size_t rate_count,
    const NativeBackendOptions& options) {
  support::WallTimer total_timer;
  auto backend = std::unique_ptr<NativeBackend>(new NativeBackend());
  backend->dimension_ = system.equations.size();
  backend->rate_count_ = rate_count;

  // ------------------------------------------------- emit the C source
  const bool want_jacobian = options.emit_jacobian && equations != nullptr;
  std::string source = emit_c_optimized(system, {kRhsSymbol});
  if (options.emit_batch) {
    source += '\n';
    source += emit_c_batch(system, {kBatchSymbol});
  }
  if (want_jacobian) {
    SymbolicJacobian symbolic = differentiate(*equations, species_count);
    backend->row_offsets_ = std::move(symbolic.row_offsets);
    backend->col_indices_ = std::move(symbolic.col_indices);
    // Same optimizer configuration as compile_jacobian's default, so the
    // native Jacobian computes the exact graph the VM Jacobian executes.
    const opt::OptimizedSystem jac_system =
        opt::optimize(symbolic.entries, species_count, rate_count);
    source += '\n';
    source += emit_c_jacobian(jac_system, {kJacSymbol});
  }

  // ------------------------------------------------ content-addressed key
  const std::string compiler = resolve_compiler(options);
  const std::string command_template =
      compiler + " " + options.flags + " -shared -fPIC";
  std::uint64_t key = fnv1a(kCacheFormatVersion, 1469598103934665603ull);
  key = fnv1a(source, key);
  key = fnv1a(command_template, key);

  const std::string cache_dir = resolve_cache_dir(options);
  if (!make_dirs(cache_dir)) {
    return support::internal_error("native backend: cannot create cache dir " +
                                   cache_dir);
  }
  const std::string stem =
      support::str_format("%s/rms-%016llx", cache_dir.c_str(),
                          static_cast<unsigned long long>(key));
  const std::string so_path = stem + ".so";

  backend->info_.key = key;
  backend->info_.object_path = so_path;

  // Binds the entry points from an already-dlopen()ed handle; false leaves
  // the backend untouched (the caller evicts / recompiles).
  auto bind = [&](void* handle) {
    auto rhs = reinterpret_cast<NativeRhsFn>(::dlsym(handle, kRhsSymbol));
    NativeBatchFn batch = nullptr;
    NativeRhsFn jac = nullptr;
    if (options.emit_batch) {
      batch = reinterpret_cast<NativeBatchFn>(::dlsym(handle, kBatchSymbol));
      if (batch == nullptr) return false;
    }
    if (want_jacobian) {
      jac = reinterpret_cast<NativeRhsFn>(::dlsym(handle, kJacSymbol));
      if (jac == nullptr) return false;
    }
    if (rhs == nullptr) return false;
    backend->handle_ = handle;
    backend->rhs_ = rhs;
    backend->batch_ = batch;
    backend->jac_ = jac;
    return true;
  };

  // ------------------------------------------------------- cache lookup
  struct stat st{};
  if (options.use_cache && ::stat(so_path.c_str(), &st) == 0) {
    void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
    if (handle != nullptr && bind(handle)) {
      backend->info_.cache_hit = true;
      backend->info_.total_seconds = total_timer.seconds();
      return backend;
    }
    // Corrupted entry (truncated write, symbol mismatch from a hash
    // collision, foreign file): evict and fall through to a recompile.
    if (handle != nullptr) ::dlclose(handle);
    remove_quiet(so_path);
  }

  // ------------------------------------------------ compile + publish
  // Private temp names (pid-qualified) so concurrent processes racing on
  // the same key never write through each other; rename() publishes the
  // finished object atomically.
  const std::string tmp_tag =
      support::str_format(".tmp.%d", static_cast<int>(::getpid()));
  const std::string c_path = stem + tmp_tag + ".c";
  const std::string tmp_so_path = stem + tmp_tag + ".so";
  if (!write_text_file(c_path, source)) {
    remove_quiet(c_path);
    return support::internal_error("native backend: cannot write " + c_path);
  }
  const std::string command = command_template + " " + c_path + " -o " +
                              tmp_so_path + " > /dev/null 2>&1";
  support::WallTimer compile_timer;
  g_compiler_invocations.fetch_add(1, std::memory_order_relaxed);
  const int rc = std::system(command.c_str());
  backend->info_.compile_seconds = compile_timer.seconds();
  if (rc != 0) {
    // Leave no orphans on the failure path: the source and any partial
    // object are private temp files, so this cleanup is race-free.
    remove_quiet(c_path);
    remove_quiet(tmp_so_path);
    return support::internal_error(support::str_format(
        "native backend: '%s' failed (exit %d) — compiler missing or "
        "rejected the unit",
        compiler.c_str(), rc));
  }
  remove_quiet(c_path);
  if (::rename(tmp_so_path.c_str(), so_path.c_str()) != 0) {
    remove_quiet(tmp_so_path);
    return support::internal_error("native backend: cannot publish " +
                                   so_path);
  }

  void* handle = ::dlopen(so_path.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr || !bind(handle)) {
    if (handle != nullptr) ::dlclose(handle);
    remove_quiet(so_path);
    return support::internal_error(
        "native backend: compiled object failed to load");
  }
  backend->info_.cache_hit = false;
  backend->info_.total_seconds = total_timer.seconds();
  return backend;
}

}  // namespace rms::codegen
