// Analytic Jacobian generation.
//
// The compiler knows the mass-action structure of every right-hand side, so
// instead of the n extra RHS sweeps a finite-difference Jacobian costs per
// Newton refresh, it can differentiate the equations symbolically:
//   d/dy_j (c * y_a * y_b * ... ) = c * m_j * (product with one y_j removed)
// where m_j is y_j's multiplicity in the product. The per-entry sums run
// through the same DistOpt + CSE pipeline as the equations themselves (the
// entries share almost all of their products with each other and with the
// RHS), and a single bytecode program fills all nonzero entries.
//
// This is the "efficient node code" extension a chemistry compiler is in a
// unique position to provide: the sparsity pattern is exact (chemistry
// Jacobians are very sparse — each species touches only its reaction
// partners) and no differencing noise enters the Newton iteration.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "odegen/equation_table.hpp"
#include "opt/pipeline.hpp"
#include "vm/program.hpp"

namespace rms::codegen {

/// Sparse (CSR) symbolic Jacobian: entry e covers matrix position
/// (row r : row_offsets[r] <= e < row_offsets[r+1], col_indices[e]) and its
/// expression is entries.equation(e).
struct SymbolicJacobian {
  std::size_t dimension = 0;
  std::vector<std::uint32_t> row_offsets;  ///< size dimension + 1
  std::vector<std::uint32_t> col_indices;  ///< size nnz
  odegen::EquationTable entries;           ///< one sum-of-products per nnz

  [[nodiscard]] std::size_t nonzero_count() const {
    return col_indices.size();
  }
};

/// Differentiates every equation with respect to every species it
/// references. Temps are not allowed in the input (differentiate the
/// pre-CSE equation table, not the optimized system). Rows fan out across
/// `pool` (null = serial); the CSR layout is committed in row order either
/// way, so the result is identical to the serial loop.
SymbolicJacobian differentiate(const odegen::EquationTable& equations,
                               std::size_t species_count,
                               const support::ThreadPool* pool = nullptr);

/// A compiled Jacobian: the program writes nnz outputs (the entry values in
/// CSR order) given (t, y, k).
struct CompiledJacobian {
  std::size_t dimension = 0;
  std::vector<std::uint32_t> row_offsets;
  std::vector<std::uint32_t> col_indices;
  vm::Program program;

  /// Scatters a program output vector into a dense row-major matrix.
  void scatter_dense(const std::vector<double>& values,
                     linalg::Matrix& jacobian) const;
};

/// Differentiates, optimizes (same pipeline as the equations) and emits.
CompiledJacobian compile_jacobian(
    const odegen::EquationTable& equations, std::size_t species_count,
    std::size_t rate_count,
    const opt::OptimizerOptions& options = opt::OptimizerOptions::full());

/// Callable adapter for solver::OdeSystem::jacobian: evaluates the compiled
/// program and scatters into a dense row-major n x n buffer. The
/// CompiledJacobian and the rate vector are captured by pointer and must
/// outlive the evaluator; the rate values may change between calls (the
/// parameter estimator does exactly that). Copyable, so it can live inside
/// a std::function.
class DenseJacobianEvaluator {
 public:
  DenseJacobianEvaluator(const CompiledJacobian* jacobian,
                         const std::vector<double>* rates);

  void operator()(double t, const double* y, double* dense_row_major);

 private:
  const CompiledJacobian* jacobian_;
  const std::vector<double>* rates_;
  std::vector<double> values_;
};

/// Callable adapter for solver::OdeSystem::sparse_jacobian: the compiled
/// CSR structure maps straight onto linalg::CsrMatrix, so evaluation is one
/// program run plus a value copy. Lifetime contract as above.
class SparseJacobianEvaluator {
 public:
  SparseJacobianEvaluator(const CompiledJacobian* jacobian,
                          const std::vector<double>* rates);

  void operator()(double t, const double* y, linalg::CsrMatrix& out);

 private:
  const CompiledJacobian* jacobian_;
  const std::vector<double>* rates_;
};

}  // namespace rms::codegen
