// ReferenceBackend: a model of the general-purpose "commercial compiler"
// the paper's generated C code is fed to (xlc -O4 on the IBM SP).
//
// The paper's Table 1 shows two behaviours of that compiler we reproduce:
//   1. On the huge machine-generated basic blocks it runs out of memory
//      ("Compilation ended due to lack of space", > 4.5 GB) — unoptimized
//      test cases 3-5 fail at -O4 and test case 5 fails even at the default
//      optimization level.
//   2. When it succeeds, its general redundancy elimination buys only a
//      modest win (TC2 runs at 82% of unoptimized time) because, unlike the
//      domain-specific optimizer, it cannot assume canonical term order or
//      alias freedom (§3.3) and works over a windowed scope.
//
// The model lowers a bytecode program into a general-purpose IR — every
// instruction becomes an IR node of bytes_per_node bytes, and optimizing
// modes attach a further opt_bytes_per_node of analysis state per node (the
// "richer, general IR" of §3.3) — and performs local value numbering within
// a sliding window of the instruction stream. Exceeding the memory budget
// aborts compilation with kResourceExhausted, exactly like the paper's
// "compiler error" cells.
#pragma once

#include <cstddef>

#include "support/status.hpp"
#include "vm/program.hpp"

namespace rms::codegen {

struct BackendOptions {
  /// Accounting memory budget (the role of the paper's 4.5 GB nodes).
  std::size_t memory_budget_bytes = std::size_t{1} << 30;
  /// Base IR bytes per lowered instruction (all optimization levels).
  std::size_t bytes_per_node = 128;
  /// Extra analysis bytes per node in optimizing mode (window > 0): the
  /// high-optimization IR is ~8x the size of the plain lowering, which is
  /// what makes -O4 fail on inputs the default level still swallows
  /// (Table 1's mixed "compiler error" pattern).
  std::size_t opt_bytes_per_node = 896;
  /// Value-numbering window: the table is flushed every `window`
  /// instructions, modelling the limited scope of general redundancy
  /// elimination on basic blocks it was never designed for. 0 disables
  /// value numbering (models the default, non-optimizing level). The
  /// default of 16 reproduces the paper's observation that the commercial
  /// compiler's own optimization only brought TC2 to 82% of the
  /// unoptimized time.
  std::size_t window = 16;

  static BackendOptions no_optimization() {
    BackendOptions o;
    o.window = 0;
    return o;
  }
};

struct BackendResult {
  vm::Program program;            ///< backend-optimized program
  std::size_t peak_ir_bytes = 0;  ///< accounting memory high-water mark
  vm::ArithCount input_ops;
  vm::ArithCount output_ops;
};

/// Compiles (lowers + locally optimizes) a program under the backend's
/// resource model. Fails with kResourceExhausted when the IR exceeds the
/// budget — the "compiler error" cells of Table 1.
support::Expected<BackendResult> reference_compile(
    const vm::Program& input, const BackendOptions& options = {});

/// Accounting memory this program needs under the given options (without
/// doing the work); reference_compile fails iff this exceeds the budget.
std::size_t required_ir_bytes(const vm::Program& input,
                              const BackendOptions& options = {});

}  // namespace rms::codegen
