// ReactionModelingSuite: the high-level public API.
//
// One call runs the paper's full tool chain (Fig. 2): RDL source ->
// chemical compiler (reaction network) -> rate constant information
// processor -> equation generator -> algebraic optimizer + CSE -> code
// generation; the result bundles every intermediate plus executable
// bytecode for both the unoptimized and optimized ODE right-hand sides.
//
//   auto built = rms::Suite::compile(source);
//   vm::Interpreter rhs(built->program_optimized);
//
// For parameter estimation against experimental data files, see
// estimator/objective.hpp and estimator/estimator.hpp; for the prepackaged
// vulcanization models and Table 1 test cases, see models/.
#pragma once

#include <string_view>

#include "models/vulcanization.hpp"
#include "support/status.hpp"

namespace rms {

class Suite {
 public:
  /// Compiles an RDL program through the entire pipeline. Pass a
  /// models::PipelineOptions with a pool to fan compile stages out across
  /// worker threads; results are bit-identical to a serial compile, and the
  /// returned BuiltModel::timings records wall time per phase either way.
  static support::Expected<models::BuiltModel> compile(
      std::string_view rdl_source,
      const network::GeneratorOptions& generator_options = {},
      const models::PipelineOptions& pipeline = {});

  /// Library version string.
  static const char* version();
};

}  // namespace rms
