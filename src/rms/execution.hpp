// Backend selection: how a compiled model's RHS and Jacobian execute.
//
// The pipeline produces two executable forms of every model: bytecode for
// the in-process VM interpreter (always available) and C source for the
// native AOT backend (codegen::NativeBackend — system cc + dlopen, with a
// content-addressed shared-object cache). Execution wraps the choice:
//
//   auto built = rms::Suite::compile(source);
//   rms::Execution exec = rms::Execution::create(*built);   // auto-selects
//   std::vector<double> k = built->rates.values();
//   solver::OdeSystem system = exec.make_system(&k);
//   solver::AdamsGear integrator(system);
//
// Selection policy: Backend::kAuto honors $RMS_BACKEND ("vm" / "native" /
// "auto"), then tries the native backend and falls back to the VM when the
// system compiler is unavailable or the compile fails — every
// configuration keeps working on a compiler-less box, it just runs on the
// interpreter. Backend::kNative is "native if at all possible" with the
// same graceful fallback; fallback_reason() says why when it happens.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "codegen/jacobian.hpp"
#include "codegen/native_backend.hpp"
#include "models/vulcanization.hpp"
#include "solver/ode.hpp"

namespace rms {

enum class Backend {
  kVm,      ///< bytecode interpreter (fused + register-compacted program)
  kNative,  ///< AOT-compiled shared object (VM fallback when unavailable)
  kAuto,    ///< $RMS_BACKEND override, else native-with-VM-fallback
};

[[nodiscard]] const char* backend_name(Backend backend);

/// Parses "vm" / "native" / "auto". False on anything else.
[[nodiscard]] bool parse_backend(std::string_view name, Backend& out);

struct ExecutionOptions {
  Backend backend = Backend::kAuto;
  /// Build an analytic Jacobian (native CSR fill or VM CompiledJacobian)
  /// and expose it through OdeSystem::sparse_jacobian.
  bool with_jacobian = true;
  /// Native backend knobs (cache dir, compiler, flags).
  codegen::NativeBackendOptions native;
};

/// An executable form of one BuiltModel. The BuiltModel must outlive the
/// Execution (programs and equation tables are referenced, not copied).
class Execution {
 public:
  /// Never fails: when the requested backend cannot be constructed the VM
  /// is selected and fallback_reason() records why.
  static Execution create(const models::BuiltModel& built,
                          const ExecutionOptions& options = {});

  /// The backend actually selected (kVm or kNative, never kAuto).
  [[nodiscard]] Backend backend() const { return backend_; }

  /// Why a native request ended up on the VM ("" when it did not).
  [[nodiscard]] const std::string& fallback_reason() const {
    return fallback_reason_;
  }

  /// The native module (null when the VM is selected).
  [[nodiscard]] const codegen::NativeBackend* native() const {
    return native_.get();
  }

  /// The VM's compiled Jacobian (null on the native backend or when
  /// with_jacobian was off).
  [[nodiscard]] const codegen::CompiledJacobian* compiled_jacobian() const {
    return vm_jacobian_ != nullptr && !vm_jacobian_->program.code.empty()
               ? vm_jacobian_.get()
               : nullptr;
  }

  [[nodiscard]] std::size_t dimension() const { return dimension_; }

  /// Builds a solver::OdeSystem whose rhs / rhs_batch / sparse_jacobian run
  /// on the selected backend, bound to `rates` (caller-owned; may change
  /// between calls — the estimator does exactly that). Each returned
  /// system owns its own scratch state: use one system per concurrent
  /// solve, as the estimator does per file.
  [[nodiscard]] solver::OdeSystem make_system(
      const std::vector<double>* rates) const;

 private:
  Backend backend_ = Backend::kVm;
  std::string fallback_reason_;
  const models::BuiltModel* built_ = nullptr;
  std::size_t dimension_ = 0;
  std::shared_ptr<const codegen::NativeBackend> native_;
  std::shared_ptr<const codegen::CompiledJacobian> vm_jacobian_;
};

}  // namespace rms
