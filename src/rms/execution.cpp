#include "rms/execution.hpp"

#include <cstdlib>

#include "support/assert.hpp"
#include "vm/interpreter.hpp"

namespace rms {

const char* backend_name(Backend backend) {
  switch (backend) {
    case Backend::kVm: return "vm";
    case Backend::kNative: return "native";
    case Backend::kAuto: return "auto";
  }
  RMS_UNREACHABLE();
}

bool parse_backend(std::string_view name, Backend& out) {
  if (name == "vm") {
    out = Backend::kVm;
  } else if (name == "native") {
    out = Backend::kNative;
  } else if (name == "auto") {
    out = Backend::kAuto;
  } else {
    return false;
  }
  return true;
}

namespace {

/// kAuto resolution: $RMS_BACKEND wins (a bad value is ignored), else
/// native-with-fallback.
Backend resolve_backend(Backend requested) {
  if (requested != Backend::kAuto) return requested;
  if (const char* env = std::getenv("RMS_BACKEND");
      env != nullptr && *env != '\0') {
    Backend from_env = Backend::kAuto;
    if (parse_backend(env, from_env) && from_env != Backend::kAuto) {
      return from_env;
    }
  }
  return Backend::kNative;
}

}  // namespace

Execution Execution::create(const models::BuiltModel& built,
                            const ExecutionOptions& options) {
  Execution exec;
  exec.built_ = &built;
  exec.dimension_ = built.equation_count();

  const Backend requested = resolve_backend(options.backend);
  if (requested == Backend::kNative) {
    codegen::NativeBackendOptions native_options = options.native;
    native_options.emit_jacobian = options.with_jacobian;
    auto native = codegen::NativeBackend::create(
        built.optimized, options.with_jacobian ? &built.odes.table : nullptr,
        built.equation_count(), built.rates.size(), native_options);
    if (native.is_ok()) {
      exec.backend_ = Backend::kNative;
      exec.native_ = std::move(native).value();
      return exec;
    }
    exec.fallback_reason_ = native.status().to_string();
  }

  exec.backend_ = Backend::kVm;
  if (options.with_jacobian) {
    exec.vm_jacobian_ = std::make_shared<codegen::CompiledJacobian>(
        codegen::compile_jacobian(built.odes.table, built.equation_count(),
                                  built.rates.size()));
  }
  return exec;
}

solver::OdeSystem Execution::make_system(
    const std::vector<double>* rates) const {
  RMS_CHECK(built_ != nullptr && rates != nullptr);
  solver::OdeSystem system;
  system.dimension = dimension_;

  if (backend_ == Backend::kNative) {
    // Native: straight function-pointer calls, no scratch state at all.
    std::shared_ptr<const codegen::NativeBackend> native = native_;
    system.rhs = [native, rates](double t, const double* y, double* ydot) {
      native->rhs(t, y, rates->data(), ydot);
    };
    if (native->has_batch()) {
      system.rhs_batch = [native, rates](double t, const double* ys,
                                         double* ydots, std::size_t n) {
        native->rhs_batch(t, ys, rates->data(), ydots, n);
      };
    }
    if (native->has_jacobian()) {
      system.sparse_jacobian = [native, rates](double t, const double* y,
                                               linalg::CsrMatrix& out) {
        out.rows = out.cols = native->dimension();
        out.row_offsets = native->jacobian_row_offsets();
        out.col_indices = native->jacobian_col_indices();
        out.values.resize(out.col_indices.size());
        native->jacobian_values(t, y, rates->data(), out.values.data());
      };
    }
    return system;
  }

  // VM: a shared const interpreter plus per-system scratch (the batch entry
  // point needs a register file per concurrent caller).
  const vm::Interpreter interpreter(built_->program_optimized);
  system.rhs = [interpreter, rates](double t, const double* y, double* ydot) {
    interpreter.run(t, y, rates->data(), ydot);
  };
  auto batch_scratch = std::make_shared<vm::Scratch>();
  system.rhs_batch = [interpreter, rates, batch_scratch](
                         double t, const double* ys, double* ydots,
                         std::size_t n) {
    interpreter.run_batch_shared_k(t, ys, rates->data(), ydots, n,
                                   *batch_scratch);
  };
  if (const codegen::CompiledJacobian* jacobian = compiled_jacobian();
      jacobian != nullptr) {
    std::shared_ptr<const codegen::CompiledJacobian> shared = vm_jacobian_;
    system.sparse_jacobian = [shared, rates](double t, const double* y,
                                             linalg::CsrMatrix& out) {
      codegen::SparseJacobianEvaluator(shared.get(), rates)(t, y, out);
    };
  }
  return system;
}

}  // namespace rms
