#include "rms/suite.hpp"

namespace rms {

support::Expected<models::BuiltModel> Suite::compile(
    std::string_view rdl_source,
    const network::GeneratorOptions& generator_options,
    const models::PipelineOptions& pipeline) {
  models::BuiltModel built;
  {
    opt::PhaseTimer timer(&built.timings, "parse");
    auto model = rdl::compile_rdl(rdl_source);
    if (!model.is_ok()) return model.status();
    built.model = std::move(model).value();
  }

  network::GeneratorOptions gen_options = generator_options;
  if (gen_options.pool == nullptr) gen_options.pool = pipeline.pool;
  {
    opt::PhaseTimer timer(&built.timings, "network");
    auto net = network::generate_network(built.model, gen_options);
    if (!net.is_ok()) return net.status();
    built.network = std::move(net).value();
  }

  {
    opt::PhaseTimer timer(&built.timings, "rates");
    auto rates = rcip::process_rate_constants(built.model, built.network);
    if (!rates.is_ok()) return rates.status();
    built.rates = std::move(rates).value();
  }

  {
    opt::PhaseTimer timer(&built.timings, "odegen");
    auto odes = odegen::generate_odes(built.network, built.rates,
                                      odegen::OdeGenOptions{true});
    if (!odes.is_ok()) return odes.status();
    built.odes = std::move(odes).value();
  }

  if (pipeline.build_reference_baseline) {
    opt::PhaseTimer timer(&built.timings, "odegen_raw");
    auto raw = odegen::generate_odes(built.network, built.rates,
                                     odegen::OdeGenOptions{false});
    if (!raw.is_ok()) return raw.status();
    built.odes_raw = std::move(raw).value();
  }

  RMS_RETURN_IF_ERROR(models::finish_pipeline(built, pipeline));
  return built;
}

const char* Suite::version() { return "1.0.0"; }

}  // namespace rms
