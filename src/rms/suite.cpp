#include "rms/suite.hpp"

namespace rms {

support::Expected<models::BuiltModel> Suite::compile(
    std::string_view rdl_source,
    const network::GeneratorOptions& generator_options) {
  models::BuiltModel built;
  auto model = rdl::compile_rdl(rdl_source);
  if (!model.is_ok()) return model.status();
  built.model = std::move(model).value();

  auto net = network::generate_network(built.model, generator_options);
  if (!net.is_ok()) return net.status();
  built.network = std::move(net).value();

  auto rates = rcip::process_rate_constants(built.model, built.network);
  if (!rates.is_ok()) return rates.status();
  built.rates = std::move(rates).value();

  auto odes = odegen::generate_odes(built.network, built.rates,
                                    odegen::OdeGenOptions{true});
  if (!odes.is_ok()) return odes.status();
  built.odes = std::move(odes).value();

  auto raw = odegen::generate_odes(built.network, built.rates,
                                   odegen::OdeGenOptions{false});
  if (!raw.is_ok()) return raw.status();
  built.odes_raw = std::move(raw).value();

  RMS_RETURN_IF_ERROR(models::finish_pipeline(built));
  return built;
}

const char* Suite::version() { return "1.0.0"; }

}  // namespace rms
