// The six molecular edit operations reaction rules are built from
// (paper §2): (1) disconnect two atoms; (2) connect two atoms; (3) decrease
// the bond order; (4) increase the bond order; (5) remove a hydrogen atom;
// (6) add hydrogen atoms.
//
// Each operation validates valence feasibility and returns a Status rather
// than silently producing impossible chemistry. Bond homolysis (disconnect,
// decrease order, remove hydrogen) leaves radical sites — free valence that
// later connect/add-hydrogen operations consume.
#pragma once

#include "chem/molecule.hpp"
#include "support/status.hpp"

namespace rms::chem {

/// (1) Breaks the bond between a and b (homolytic: both ends gain free
/// valence equal to the former bond order).
support::Status disconnect(Molecule& mol, AtomIndex a, AtomIndex b);

/// (2) Forms a bond of the given order; both atoms need `order` free valence.
support::Status connect(Molecule& mol, AtomIndex a, AtomIndex b,
                        std::uint8_t order = 1);

/// (3) Decreases the a-b bond order by one (order-1 bonds are removed).
support::Status decrease_bond_order(Molecule& mol, AtomIndex a, AtomIndex b);

/// (4) Increases the a-b bond order by one; both atoms need a free valence.
support::Status increase_bond_order(Molecule& mol, AtomIndex a, AtomIndex b);

/// (5) Removes one hydrogen from the atom (homolytic: leaves free valence).
support::Status remove_hydrogen(Molecule& mol, AtomIndex a);

/// (6) Adds `count` hydrogens to the atom (consumes free valence).
support::Status add_hydrogen(Molecule& mol, AtomIndex a, int count = 1);

}  // namespace rms::chem
