#include "chem/smiles.hpp"

#include <algorithm>
#include <cctype>
#include <map>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::chem {

namespace {

using support::Expected;
using support::parse_error;
using support::Status;

class SmilesParser {
 public:
  explicit SmilesParser(std::string_view text) : text_(text) {}

  Expected<Molecule> parse() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
        continue;
      }
      Status s = step(c);
      if (!s.is_ok()) return s;
    }
    if (!branch_stack_.empty()) {
      return parse_error(context("unclosed '(' branch"));
    }
    for (const auto& [digit, open] : ring_bonds_) {
      (void)open;
      return parse_error(
          support::str_format("unmatched ring closure %%%d", digit));
    }
    // Fill implicit hydrogens for bare (non-bracket) atoms only.
    for (AtomIndex i = 0; i < mol_.atom_count(); ++i) {
      if (bracket_atom_[i]) continue;
      const int fv = mol_.free_valence(i);
      if (fv > 0) {
        mol_.atom(i).hydrogens =
            static_cast<std::uint8_t>(mol_.atom(i).hydrogens + fv);
      }
    }
    return mol_;
  }

 private:
  struct RingOpen {
    AtomIndex atom;
    std::uint8_t order;  // 0 = unspecified at open site
  };

  Status step(char c) {
    switch (c) {
      case '-': return set_pending_bond(1);
      case '=': return set_pending_bond(2);
      case '#': return set_pending_bond(3);
      case '(': {
        if (prev_atom_ == kNoAtom) {
          return parse_error(context("branch '(' before any atom"));
        }
        branch_stack_.push_back(prev_atom_);
        ++pos_;
        return Status::ok();
      }
      case ')': {
        if (branch_stack_.empty()) {
          return parse_error(context("')' without matching '('"));
        }
        prev_atom_ = branch_stack_.back();
        branch_stack_.pop_back();
        ++pos_;
        return Status::ok();
      }
      case '.': {
        prev_atom_ = kNoAtom;
        pending_order_ = 0;
        ++pos_;
        return Status::ok();
      }
      case '[': return parse_bracket_atom();
      case '%': {
        if (pos_ + 2 >= text_.size() ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])) ||
            !std::isdigit(static_cast<unsigned char>(text_[pos_ + 2]))) {
          return parse_error(context("'%' must be followed by two digits"));
        }
        const int digit = (text_[pos_ + 1] - '0') * 10 + (text_[pos_ + 2] - '0');
        pos_ += 3;
        return ring_closure(digit);
      }
      default:
        if (std::isdigit(static_cast<unsigned char>(c))) {
          ++pos_;
          return ring_closure(c - '0');
        }
        if (std::islower(static_cast<unsigned char>(c))) {
          return parse_error(context(
              "aromatic (lowercase) atoms are not supported; use Kekulé form"));
        }
        return parse_bare_atom();
    }
  }

  Status set_pending_bond(std::uint8_t order) {
    if (pending_order_ != 0) {
      return parse_error(context("two bond symbols in a row"));
    }
    pending_order_ = order;
    ++pos_;
    return Status::ok();
  }

  Status parse_bare_atom() {
    // Longest symbol match: two-letter organic-subset symbols first.
    std::string_view rest = text_.substr(pos_);
    Element element;
    std::size_t advance = 0;
    if (support::starts_with(rest, "Cl")) {
      element = Element::kCl;
      advance = 2;
    } else if (support::starts_with(rest, "Br")) {
      element = Element::kBr;
      advance = 2;
    } else {
      const auto parsed = parse_element(rest.substr(0, 1));
      if (!parsed.has_value() || !in_organic_subset(*parsed)) {
        return parse_error(context("unknown atom symbol (bare atoms must be "
                                   "in the organic subset)"));
      }
      element = *parsed;
      advance = 1;
    }
    pos_ += advance;
    return attach_atom(element, /*hydrogens=*/0, /*charge=*/0,
                       /*bracket=*/false);
  }

  Status parse_bracket_atom() {
    const std::size_t close = text_.find(']', pos_);
    if (close == std::string_view::npos) {
      return parse_error(context("unterminated '['"));
    }
    std::string_view body = text_.substr(pos_ + 1, close - pos_ - 1);
    pos_ = close + 1;

    // Grammar: SYMBOL [H [count]] [(+|-)[count]]
    std::size_t i = 0;
    auto symbol_len = [&]() -> std::size_t {
      if (i + 1 < body.size() &&
          std::islower(static_cast<unsigned char>(body[i + 1]))) {
        return 2;
      }
      return 1;
    };
    if (body.empty()) return parse_error(context("empty bracket atom"));
    const std::size_t sl = symbol_len();
    const auto element = parse_element(body.substr(i, sl));
    if (!element.has_value()) {
      return parse_error(context("unknown element in bracket atom"));
    }
    i += sl;

    int hydrogens = 0;
    if (i < body.size() && body[i] == 'H') {
      ++i;
      hydrogens = 1;
      if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
        hydrogens = body[i] - '0';
        ++i;
      }
    }
    int charge = 0;
    if (i < body.size() && (body[i] == '+' || body[i] == '-')) {
      const int sign = body[i] == '+' ? 1 : -1;
      ++i;
      int magnitude = 1;
      if (i < body.size() && std::isdigit(static_cast<unsigned char>(body[i]))) {
        magnitude = body[i] - '0';
        ++i;
      }
      charge = sign * magnitude;
    }
    if (i != body.size()) {
      return parse_error(context("trailing characters in bracket atom"));
    }
    return attach_atom(*element, static_cast<std::uint8_t>(hydrogens),
                       static_cast<std::int8_t>(charge), /*bracket=*/true);
  }

  Status attach_atom(Element element, std::uint8_t hydrogens,
                     std::int8_t charge, bool bracket) {
    const AtomIndex idx = mol_.add_atom(element, hydrogens, charge);
    bracket_atom_.push_back(bracket);
    if (prev_atom_ != kNoAtom) {
      const std::uint8_t order = pending_order_ == 0 ? 1 : pending_order_;
      mol_.add_bond(prev_atom_, idx, order);
    }
    pending_order_ = 0;
    prev_atom_ = idx;
    return Status::ok();
  }

  Status ring_closure(int digit) {
    if (prev_atom_ == kNoAtom) {
      return parse_error(context("ring closure digit before any atom"));
    }
    auto it = ring_bonds_.find(digit);
    if (it == ring_bonds_.end()) {
      ring_bonds_.emplace(digit, RingOpen{prev_atom_, pending_order_});
      pending_order_ = 0;
      return Status::ok();
    }
    const RingOpen open = it->second;
    ring_bonds_.erase(it);
    std::uint8_t order = 1;
    if (open.order != 0 && pending_order_ != 0 && open.order != pending_order_) {
      return parse_error(context("conflicting ring bond orders"));
    }
    if (open.order != 0) order = open.order;
    if (pending_order_ != 0) order = pending_order_;
    pending_order_ = 0;
    if (open.atom == prev_atom_) {
      return parse_error(context("ring closure to the same atom"));
    }
    if (mol_.bond_between(open.atom, prev_atom_) != kNoBond) {
      return parse_error(
          context("ring closure duplicates an existing bond"));
    }
    mol_.add_bond(open.atom, prev_atom_, order);
    return Status::ok();
  }

  std::string context(const char* msg) const {
    return support::str_format("%s at position %zu in \"%.*s\"", msg, pos_,
                               static_cast<int>(text_.size()), text_.data());
  }

  static constexpr AtomIndex kNoAtom = ~AtomIndex{0};

  std::string_view text_;
  std::size_t pos_ = 0;
  Molecule mol_;
  std::vector<bool> bracket_atom_;
  AtomIndex prev_atom_ = kNoAtom;
  std::uint8_t pending_order_ = 0;
  std::vector<AtomIndex> branch_stack_;
  std::map<int, RingOpen> ring_bonds_;
};

class SmilesWriter {
 public:
  SmilesWriter(const Molecule& mol, const std::vector<std::uint32_t>* ranks)
      : mol_(mol), ranks_(ranks) {}

  std::string write() {
    const std::size_t n = mol_.atom_count();
    visited_.assign(n, false);
    ring_digit_of_bond_.clear();
    next_ring_digit_ = 1;

    // Visit roots in rank order (or index order without ranks).
    std::vector<AtomIndex> order(n);
    for (AtomIndex i = 0; i < n; ++i) order[i] = i;
    if (ranks_ != nullptr) {
      std::sort(order.begin(), order.end(), [this](AtomIndex a, AtomIndex b) {
        return (*ranks_)[a] < (*ranks_)[b];
      });
    }

    std::string out;
    bool first_fragment = true;
    for (AtomIndex root : order) {
      if (visited_[root]) continue;
      find_ring_bonds(root);
      if (!first_fragment) out += ".";
      first_fragment = false;
      emit_atom(root, kNoBond, out);
    }
    return out;
  }

 private:
  /// DFS to classify back edges (ring closures) before emission.
  void find_ring_bonds(AtomIndex root) {
    std::vector<bool> seen(mol_.atom_count(), false);
    // (atom, incoming bond) DFS replicating emit order.
    dfs_rings(root, kNoBond, seen);
  }

  void dfs_rings(AtomIndex atom, BondIndex incoming, std::vector<bool>& seen) {
    seen[atom] = true;
    for (BondIndex bi : sorted_bonds(atom)) {
      if (bi == incoming) continue;
      const AtomIndex next = mol_.bond(bi).other(atom);
      if (seen[next]) {
        if (ring_digit_of_bond_.find(bi) == ring_digit_of_bond_.end()) {
          ring_digit_of_bond_[bi] = next_ring_digit_++;
        }
      } else {
        dfs_rings(next, bi, seen);
      }
    }
  }

  std::vector<BondIndex> sorted_bonds(AtomIndex atom) const {
    std::vector<BondIndex> out(mol_.bonds_of(atom).begin(),
                               mol_.bonds_of(atom).end());
    if (ranks_ != nullptr) {
      std::sort(out.begin(), out.end(), [this, atom](BondIndex x, BondIndex y) {
        return (*ranks_)[mol_.bond(x).other(atom)] <
               (*ranks_)[mol_.bond(y).other(atom)];
      });
    }
    return out;
  }

  void emit_atom(AtomIndex atom, BondIndex incoming, std::string& out) {
    visited_[atom] = true;
    out += atom_text(atom);

    // Ring closure digits at this atom.
    for (BondIndex bi : sorted_bonds(atom)) {
      auto it = ring_digit_of_bond_.find(bi);
      if (it == ring_digit_of_bond_.end()) continue;
      out += bond_text(mol_.bond(bi).order);
      out += ring_digit_text(it->second);
    }

    // Children in rank order; all but the last go in branches.
    std::vector<BondIndex> children;
    for (BondIndex bi : sorted_bonds(atom)) {
      if (bi == incoming) continue;
      if (ring_digit_of_bond_.find(bi) != ring_digit_of_bond_.end()) continue;
      const AtomIndex next = mol_.bond(bi).other(atom);
      if (!visited_[next]) children.push_back(bi);
    }
    for (std::size_t c = 0; c < children.size(); ++c) {
      const BondIndex bi = children[c];
      const AtomIndex next = mol_.bond(bi).other(atom);
      if (visited_[next]) continue;  // reached via an earlier child
      const bool branch = c + 1 < children.size();
      if (branch) out += "(";
      out += bond_text(mol_.bond(bi).order);
      emit_atom(next, bi, out);
      if (branch) out += ")";
    }
  }

  std::string atom_text(AtomIndex i) const {
    const Atom& a = mol_.atom(i);
    const bool needs_bracket =
        !in_organic_subset(a.element) || a.charge != 0 ||
        mol_.free_valence(i) != 0;
    if (!needs_bracket) return std::string(element_symbol(a.element));
    std::string out = "[";
    out += element_symbol(a.element);
    if (a.hydrogens == 1) {
      out += "H";
    } else if (a.hydrogens > 1) {
      out += support::str_format("H%d", a.hydrogens);
    }
    if (a.charge > 0) {
      out += a.charge == 1 ? "+" : support::str_format("+%d", a.charge);
    } else if (a.charge < 0) {
      out += a.charge == -1 ? "-" : support::str_format("-%d", -a.charge);
    }
    out += "]";
    return out;
  }

  static std::string bond_text(std::uint8_t order) {
    switch (order) {
      case 1: return "";
      case 2: return "=";
      case 3: return "#";
      default: RMS_UNREACHABLE();
    }
  }

  static std::string ring_digit_text(int digit) {
    if (digit < 10) return support::str_format("%d", digit);
    return support::str_format("%%%02d", digit);
  }

  const Molecule& mol_;
  const std::vector<std::uint32_t>* ranks_;
  std::vector<bool> visited_;
  std::map<BondIndex, int> ring_digit_of_bond_;
  int next_ring_digit_ = 1;
};

}  // namespace

Expected<Molecule> parse_smiles(std::string_view smiles) {
  return SmilesParser(smiles).parse();
}

std::string write_smiles(const Molecule& mol) {
  return SmilesWriter(mol, nullptr).write();
}

std::string write_smiles_ranked(const Molecule& mol,
                                const std::vector<std::uint32_t>& ranks) {
  RMS_CHECK(ranks.size() == mol.atom_count());
  return SmilesWriter(mol, &ranks).write();
}

}  // namespace rms::chem
