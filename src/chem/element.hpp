// Chemical elements and valence bookkeeping.
//
// The subset needed for rubber vulcanization chemistry: the organic set plus
// sulfur and zinc (accelerator complexes), and a pseudo-element R standing
// for a polymer-backbone site (the rubber chain carbon a crosslink attaches
// to). R lets models abbreviate the polyisoprene backbone the way the
// chemists' RDL inputs do.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace rms::chem {

enum class Element : std::uint8_t {
  kH = 0,
  kC,
  kN,
  kO,
  kS,
  kP,
  kF,
  kCl,
  kBr,
  kI,
  kZn,
  kR,  // pseudo-element: polymer backbone site
  kCount,
};

/// Standard (lowest common) valence used to fill implicit hydrogens.
int default_valence(Element e);

/// Chemical symbol, e.g. "Cl". R renders as "R".
std::string_view element_symbol(Element e);

/// Parses a symbol (longest match first, so "Cl" beats "C").
/// Returns nullopt for unknown symbols.
std::optional<Element> parse_element(std::string_view symbol);

/// True for elements written bare (no brackets) in our SMILES subset.
bool in_organic_subset(Element e);

}  // namespace rms::chem
