#include "chem/pattern.hpp"

#include <algorithm>
#include <deque>

#include "support/assert.hpp"

namespace rms::chem {

namespace {

class Matcher {
 public:
  Matcher(const Pattern& pattern, const Molecule& mol, std::size_t limit)
      : pattern_(pattern), mol_(mol), limit_(limit) {}

  std::vector<Embedding> run() {
    const std::size_t np = pattern_.atom_count();
    assignment_.assign(np, kUnassigned);
    used_.assign(mol_.atom_count(), false);
    // Pre-index pattern bonds by the later endpoint so constraints are
    // checked as soon as both endpoints are assigned.
    bonds_by_later_.assign(np, {});
    for (const BondConstraint& bc : pattern_.bonds()) {
      bonds_by_later_[std::max(bc.a, bc.b)].push_back(bc);
    }
    extend(0);
    return std::move(results_);
  }

 private:
  static constexpr AtomIndex kUnassigned = ~AtomIndex{0};

  void extend(std::uint32_t pattern_atom) {
    if (results_.size() >= limit_) return;
    if (pattern_atom == pattern_.atom_count()) {
      results_.push_back(assignment_);
      return;
    }
    for (AtomIndex candidate = 0; candidate < mol_.atom_count(); ++candidate) {
      if (used_[candidate]) continue;
      if (!atom_matches(pattern_atom, candidate)) continue;
      if (!bonds_match(pattern_atom, candidate)) continue;
      assignment_[pattern_atom] = candidate;
      used_[candidate] = true;
      extend(pattern_atom + 1);
      used_[candidate] = false;
      assignment_[pattern_atom] = kUnassigned;
      if (results_.size() >= limit_) return;
    }
  }

  bool atom_matches(std::uint32_t p, AtomIndex m) const {
    const AtomConstraint& c = pattern_.atom(p);
    const Atom& a = mol_.atom(m);
    if (c.element.has_value() && a.element != *c.element) return false;
    if (c.min_free_valence.has_value() &&
        mol_.free_valence(m) < *c.min_free_valence) {
      return false;
    }
    if (c.exact_free_valence.has_value() &&
        mol_.free_valence(m) != *c.exact_free_valence) {
      return false;
    }
    if (c.min_hydrogens.has_value() && a.hydrogens < *c.min_hydrogens) {
      return false;
    }
    if (c.exact_degree.has_value() &&
        static_cast<int>(mol_.degree(m)) != *c.exact_degree) {
      return false;
    }
    if (c.min_chain_depth.has_value() &&
        chain_depth(mol_, m) < *c.min_chain_depth) {
      return false;
    }
    return true;
  }

  bool bonds_match(std::uint32_t p, AtomIndex m) const {
    for (const BondConstraint& bc : bonds_by_later_[p]) {
      const std::uint32_t other_p = bc.a == p ? bc.b : bc.a;
      const AtomIndex other_m = assignment_[other_p];
      RMS_DCHECK(other_m != kUnassigned);
      const BondIndex bi = mol_.bond_between(m, other_m);
      if (bi == kNoBond) return false;
      if (bc.order != 0 && mol_.bond(bi).order != bc.order) return false;
    }
    return true;
  }

  const Pattern& pattern_;
  const Molecule& mol_;
  std::size_t limit_;
  Embedding assignment_;
  std::vector<bool> used_;
  std::vector<std::vector<BondConstraint>> bonds_by_later_;
  std::vector<Embedding> results_;
};

}  // namespace

std::uint32_t Pattern::add_atom(AtomConstraint constraint) {
  atoms_.push_back(std::move(constraint));
  return static_cast<std::uint32_t>(atoms_.size() - 1);
}

void Pattern::add_bond(std::uint32_t a, std::uint32_t b, std::uint8_t order) {
  RMS_CHECK(a < atoms_.size() && b < atoms_.size() && a != b);
  bonds_.push_back(BondConstraint{a, b, order});
}

std::vector<Embedding> Pattern::match(const Molecule& mol) const {
  return Matcher(*this, mol, ~std::size_t{0}).run();
}

std::vector<Embedding> Pattern::match_limited(const Molecule& mol,
                                              std::size_t limit) const {
  return Matcher(*this, mol, limit).run();
}

Pattern substructure_pattern(const Molecule& mol) {
  Pattern pattern;
  for (AtomIndex i = 0; i < mol.atom_count(); ++i) {
    AtomConstraint constraint;
    constraint.element = mol.atom(i).element;
    pattern.add_atom(constraint);
  }
  for (BondIndex b = 0; b < mol.bond_count(); ++b) {
    const Bond& bond = mol.bond(b);
    pattern.add_bond(bond.a, bond.b, bond.order);
  }
  return pattern;
}

int chain_depth(const Molecule& mol, AtomIndex atom) {
  const Element element = mol.atom(atom).element;
  // BFS within the same-element induced subgraph; a chain end is an atom
  // with at most one same-element neighbour.
  std::vector<int> dist(mol.atom_count(), -1);
  std::deque<AtomIndex> queue;
  dist[atom] = 0;
  queue.push_back(atom);
  while (!queue.empty()) {
    const AtomIndex cur = queue.front();
    queue.pop_front();
    int same_element_neighbors = 0;
    for (BondIndex bi : mol.bonds_of(cur)) {
      const AtomIndex next = mol.bond(bi).other(cur);
      if (mol.atom(next).element == element) ++same_element_neighbors;
    }
    if (same_element_neighbors <= 1) return dist[cur];  // reached a chain end
    for (BondIndex bi : mol.bonds_of(cur)) {
      const AtomIndex next = mol.bond(bi).other(cur);
      if (mol.atom(next).element == element && dist[next] < 0) {
        dist[next] = dist[cur] + 1;
        queue.push_back(next);
      }
    }
  }
  // Same-element cycle (e.g. S8 ring): no end is reachable; treat as
  // infinitely deep.
  return static_cast<int>(mol.atom_count());
}

}  // namespace rms::chem
