#include "chem/molecule.hpp"

#include <algorithm>
#include <array>
#include <map>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::chem {

AtomIndex Molecule::add_atom(Element e, std::uint8_t hydrogens,
                             std::int8_t charge) {
  atoms_.push_back(Atom{e, charge, hydrogens});
  adjacency_.emplace_back();
  return static_cast<AtomIndex>(atoms_.size() - 1);
}

BondIndex Molecule::add_bond(AtomIndex a, AtomIndex b, std::uint8_t order) {
  RMS_CHECK(a < atoms_.size() && b < atoms_.size() && a != b);
  RMS_CHECK_MSG(bond_between(a, b) == kNoBond, "duplicate bond");
  RMS_CHECK(order >= 1 && order <= 3);
  bonds_.push_back(Bond{a, b, order});
  const BondIndex bi = static_cast<BondIndex>(bonds_.size() - 1);
  adjacency_[a].push_back(bi);
  adjacency_[b].push_back(bi);
  return bi;
}

void Molecule::remove_bond(BondIndex bi) {
  RMS_CHECK(bi < bonds_.size());
  auto drop = [this](AtomIndex atom, BondIndex bond_idx) {
    auto& adj = adjacency_[atom];
    auto it = std::find(adj.begin(), adj.end(), bond_idx);
    RMS_CHECK(it != adj.end());
    adj.erase(it);
  };
  drop(bonds_[bi].a, bi);
  drop(bonds_[bi].b, bi);
  bonds_.erase(bonds_.begin() + bi);
  // Bond indices after bi shift down; fix adjacency lists.
  for (auto& adj : adjacency_) {
    for (BondIndex& idx : adj) {
      if (idx > bi) --idx;
    }
  }
}

BondIndex Molecule::bond_between(AtomIndex a, AtomIndex b) const {
  RMS_CHECK(a < atoms_.size() && b < atoms_.size());
  for (BondIndex bi : adjacency_[a]) {
    if (bonds_[bi].other(a) == b) return bi;
  }
  return kNoBond;
}

int Molecule::bond_order_sum(AtomIndex i) const {
  int sum = 0;
  for (BondIndex bi : adjacency_[i]) sum += bonds_[bi].order;
  return sum;
}

int Molecule::free_valence(AtomIndex i) const {
  const Atom& a = atoms_[i];
  // Positive charge removes an electron (one less bond possible for anions,
  // one more for cations of N etc.); the simple model used here treats the
  // charge as directly extending/shrinking the valence, which is adequate
  // for the closed-shell + radical species vulcanization models use.
  return default_valence(a.element) + a.charge - bond_order_sum(i) -
         static_cast<int>(a.hydrogens);
}

bool Molecule::is_radical() const {
  for (AtomIndex i = 0; i < atoms_.size(); ++i) {
    if (free_valence(i) > 0) return true;
  }
  return false;
}

void Molecule::saturate_with_hydrogens() {
  for (AtomIndex i = 0; i < atoms_.size(); ++i) {
    const int fv = free_valence(i);
    if (fv > 0) {
      atoms_[i].hydrogens = static_cast<std::uint8_t>(atoms_[i].hydrogens + fv);
    }
  }
}

int Molecule::total_hydrogens() const {
  int total = 0;
  for (const Atom& a : atoms_) total += a.hydrogens;
  return total;
}

std::string Molecule::formula() const {
  std::array<int, static_cast<std::size_t>(Element::kCount)> counts{};
  int hydrogens = 0;
  for (const Atom& a : atoms_) {
    ++counts[static_cast<std::size_t>(a.element)];
    hydrogens += a.hydrogens;
  }
  hydrogens += counts[static_cast<std::size_t>(Element::kH)];
  counts[static_cast<std::size_t>(Element::kH)] = 0;

  // Hill order: C first, H second, then remaining symbols alphabetically.
  std::map<std::string, int> rest;
  for (std::size_t e = 0; e < counts.size(); ++e) {
    const Element el = static_cast<Element>(e);
    if (el == Element::kC || el == Element::kH || counts[e] == 0) continue;
    rest[std::string(element_symbol(el))] = counts[e];
  }

  std::string out;
  auto append = [&out](std::string_view sym, int n) {
    out += sym;
    if (n > 1) out += support::str_format("%d", n);
  };
  const int carbons = counts[static_cast<std::size_t>(Element::kC)];
  if (carbons > 0) append("C", carbons);
  if (hydrogens > 0) append("H", hydrogens);
  for (const auto& [sym, n] : rest) append(sym, n);
  return out;
}

std::size_t Molecule::connected_components(
    std::vector<std::uint32_t>& labels) const {
  labels.assign(atoms_.size(), ~std::uint32_t{0});
  std::size_t count = 0;
  std::vector<AtomIndex> stack;
  for (AtomIndex start = 0; start < atoms_.size(); ++start) {
    if (labels[start] != ~std::uint32_t{0}) continue;
    const auto label = static_cast<std::uint32_t>(count++);
    stack.push_back(start);
    labels[start] = label;
    while (!stack.empty()) {
      const AtomIndex cur = stack.back();
      stack.pop_back();
      for (BondIndex bi : adjacency_[cur]) {
        const AtomIndex next = bonds_[bi].other(cur);
        if (labels[next] == ~std::uint32_t{0}) {
          labels[next] = label;
          stack.push_back(next);
        }
      }
    }
  }
  return count;
}

std::vector<Molecule> Molecule::split_fragments() const {
  std::vector<std::uint32_t> labels;
  const std::size_t n = connected_components(labels);
  std::vector<Molecule> fragments(n);
  std::vector<AtomIndex> remap(atoms_.size());
  for (AtomIndex i = 0; i < atoms_.size(); ++i) {
    const Atom& a = atoms_[i];
    remap[i] = fragments[labels[i]].add_atom(a.element, a.hydrogens, a.charge);
  }
  for (const Bond& b : bonds_) {
    fragments[labels[b.a]].add_bond(remap[b.a], remap[b.b], b.order);
  }
  return fragments;
}

}  // namespace rms::chem
