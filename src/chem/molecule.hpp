// Molecular graph: atoms, bonds, and valence accounting.
//
// Hydrogens are stored as per-atom counts, not graph vertices — the reaction
// rules that add/remove hydrogens (paper §2, rules 5 and 6) just adjust the
// count. An atom whose valence is not saturated by bonds + hydrogens is a
// radical site; vulcanization chemistry is driven by such sites.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/element.hpp"
#include "support/small_vector.hpp"

namespace rms::chem {

using AtomIndex = std::uint32_t;
using BondIndex = std::uint32_t;

inline constexpr BondIndex kNoBond = ~BondIndex{0};

struct Atom {
  Element element = Element::kC;
  std::int8_t charge = 0;
  std::uint8_t hydrogens = 0;  ///< attached hydrogen count
};

struct Bond {
  AtomIndex a = 0;
  AtomIndex b = 0;
  std::uint8_t order = 1;  ///< 1 = single, 2 = double, 3 = triple

  /// The endpoint that is not `from`.
  [[nodiscard]] AtomIndex other(AtomIndex from) const {
    return from == a ? b : a;
  }
};

class Molecule {
 public:
  Molecule() = default;

  /// Adds an atom with the given explicit hydrogen count.
  AtomIndex add_atom(Element e, std::uint8_t hydrogens = 0,
                     std::int8_t charge = 0);

  /// Adds a bond; endpoints must be distinct existing atoms with no bond yet.
  BondIndex add_bond(AtomIndex a, AtomIndex b, std::uint8_t order = 1);

  /// Removes the bond (bond indices above `bi` shift down by one).
  void remove_bond(BondIndex bi);

  /// Index of the bond between a and b, or kNoBond.
  [[nodiscard]] BondIndex bond_between(AtomIndex a, AtomIndex b) const;

  [[nodiscard]] std::size_t atom_count() const { return atoms_.size(); }
  [[nodiscard]] std::size_t bond_count() const { return bonds_.size(); }

  [[nodiscard]] const Atom& atom(AtomIndex i) const { return atoms_[i]; }
  [[nodiscard]] Atom& atom(AtomIndex i) { return atoms_[i]; }
  [[nodiscard]] const Bond& bond(BondIndex i) const { return bonds_[i]; }
  [[nodiscard]] Bond& bond(BondIndex i) { return bonds_[i]; }

  /// Bond indices incident to atom i.
  [[nodiscard]] const support::SmallVector<BondIndex, 4>& bonds_of(
      AtomIndex i) const {
    return adjacency_[i];
  }

  /// Number of heavy-atom neighbours.
  [[nodiscard]] std::size_t degree(AtomIndex i) const {
    return adjacency_[i].size();
  }

  /// Sum of bond orders at atom i (excludes hydrogens).
  [[nodiscard]] int bond_order_sum(AtomIndex i) const;

  /// Unused valence: default_valence - bond orders - hydrogens + charge
  /// adjustment. Positive means a radical/open site.
  [[nodiscard]] int free_valence(AtomIndex i) const;

  /// True if any atom has positive free valence.
  [[nodiscard]] bool is_radical() const;

  /// Fills every atom's hydrogen count so free valence becomes zero
  /// (skips atoms already over-saturated). SMILES organic-subset semantics.
  void saturate_with_hydrogens();

  /// Sum of atomic hydrogen counts.
  [[nodiscard]] int total_hydrogens() const;

  /// Molecular formula like "C6H12O" (Hill order: C, H, then alphabetical).
  [[nodiscard]] std::string formula() const;

  /// Connected-component label per atom; returns component count.
  std::size_t connected_components(std::vector<std::uint32_t>& labels) const;

  /// Splits a (possibly disconnected) molecule into connected fragments.
  [[nodiscard]] std::vector<Molecule> split_fragments() const;

 private:
  std::vector<Atom> atoms_;
  std::vector<Bond> bonds_;
  std::vector<support::SmallVector<BondIndex, 4>> adjacency_;
};

}  // namespace rms::chem
