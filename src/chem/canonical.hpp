// Canonical atom ranking and canonical SMILES.
//
// A Morgan-style iterative refinement assigns permutation-invariant ranks;
// remaining symmetry ties are broken by trying each candidate atom and
// keeping the lexicographically smallest SMILES (exact, exponential only in
// the automorphism group size — reaction species are small molecules).
// Canonical SMILES is the species identity used to deduplicate molecules
// during reaction network generation (the role CDK played in the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chem/molecule.hpp"

namespace rms::chem {

struct CanonicalResult {
  std::string smiles;                ///< canonical SMILES string
  std::vector<std::uint32_t> ranks;  ///< winning atom ranks (a permutation)
};

/// Computes canonical ranks and the canonical SMILES string.
CanonicalResult canonicalize(const Molecule& mol);

/// Convenience: canonical SMILES only.
std::string canonical_smiles(const Molecule& mol);

/// Memoized canonical_smiles. The cache is keyed by the exact molecular
/// graph (atom order included), so it is a pure lookup of previous results —
/// two isomorphic molecules built in different atom orders simply miss the
/// cache and canonicalize to the same string the slow way. The cache is
/// per-thread (no sharing, no locks), which fits the network generator's
/// fan-out: pool workers are long-lived, so each accumulates its own cache
/// across rounds. The returned reference is invalidated by the next call on
/// the same thread.
const std::string& canonical_smiles_cached(const Molecule& mol);

/// Morgan refinement without tie breaking: atoms in the same orbit share a
/// rank. Exposed for tests and for symmetry queries.
std::vector<std::uint32_t> morgan_ranks(const Molecule& mol);

}  // namespace rms::chem
