// Substructure patterns with context-sensitive constraints.
//
// Reaction rules locate their reaction site with a pattern (paper §2: rules
// are "applied with context sensitive knowledge, e.g. to only break sulfur
// to sulfur bonds when the bonds are between sulfur atoms at least three
// atoms from the end of a chain of sulfurs"). A Pattern is a small graph of
// atom constraints; match() enumerates embeddings by backtracking.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "chem/molecule.hpp"

namespace rms::chem {

struct AtomConstraint {
  /// Required element; nullopt matches any element.
  std::optional<Element> element;
  /// Minimum free valence (radical/open sites). nullopt = no requirement.
  std::optional<int> min_free_valence;
  /// Exact free valence requirement (0 = saturated atom).
  std::optional<int> exact_free_valence;
  /// Minimum hydrogen count (for hydrogen-abstraction sites).
  std::optional<int> min_hydrogens;
  /// Exact heavy-atom degree requirement.
  std::optional<int> exact_degree;
  /// Minimum distance (in atoms) from the end of a maximal same-element
  /// chain run. The vulcanization "three atoms from the chain end" context
  /// condition uses this; see chain_depth().
  std::optional<int> min_chain_depth;
};

struct BondConstraint {
  std::uint32_t a = 0;  ///< pattern atom index
  std::uint32_t b = 0;  ///< pattern atom index
  /// Required bond order; 0 matches any order.
  std::uint8_t order = 1;
};

/// One embedding: pattern atom i is matched to atoms[i] in the target.
using Embedding = std::vector<AtomIndex>;

class Pattern {
 public:
  std::uint32_t add_atom(AtomConstraint constraint);
  void add_bond(std::uint32_t a, std::uint32_t b, std::uint8_t order = 1);

  [[nodiscard]] std::size_t atom_count() const { return atoms_.size(); }
  [[nodiscard]] const AtomConstraint& atom(std::uint32_t i) const {
    return atoms_[i];
  }
  [[nodiscard]] const std::vector<BondConstraint>& bonds() const {
    return bonds_;
  }

  /// Enumerates all embeddings of this pattern into `mol` (injective on
  /// atoms). Distinct embeddings may map the same site with swapped
  /// symmetric pattern atoms; callers deduplicate at the reaction level.
  [[nodiscard]] std::vector<Embedding> match(const Molecule& mol) const;

  /// As match(), but stops after `limit` embeddings.
  [[nodiscard]] std::vector<Embedding> match_limited(const Molecule& mol,
                                                     std::size_t limit) const;

 private:
  std::vector<AtomConstraint> atoms_;
  std::vector<BondConstraint> bonds_;
};

/// Builds the substructure pattern of a molecule: one constraint per atom
/// (exact element, no hydrogen/valence requirements) and one bond
/// constraint per bond (exact order). match() on the result finds every
/// embedding of the molecule as a subgraph — used by `forbid substructure`
/// declarations.
Pattern substructure_pattern(const Molecule& mol);

/// Distance (in atoms, 0-based) from `atom` to the nearest end of the
/// maximal same-element chain run containing it. An atom whose element
/// differs from all neighbours has depth 0. For a sulfur in S-S-S-S-S the
/// middle atom has depth 2.
int chain_depth(const Molecule& mol, AtomIndex atom);

}  // namespace rms::chem
