#include "chem/canonical.hpp"

#include <algorithm>
#include <tuple>
#include <unordered_map>

#include "chem/smiles.hpp"
#include "support/assert.hpp"

namespace rms::chem {

namespace {

using Ranks = std::vector<std::uint32_t>;

/// Exact (sort-based, hash-free) refinement of an initial ranking: each
/// atom's key is (own rank, sorted multiset of (bond order, neighbour
/// rank)); iterate until the partition stops splitting.
Ranks refine(const Molecule& mol, Ranks ranks) {
  const std::size_t n = mol.atom_count();
  if (n == 0) return ranks;

  using NeighborKey = std::vector<std::pair<std::uint32_t, std::uint32_t>>;
  using Key = std::pair<std::uint32_t, NeighborKey>;

  std::size_t distinct = 0;
  for (;;) {
    std::vector<Key> keys(n);
    for (AtomIndex i = 0; i < n; ++i) {
      NeighborKey nk;
      nk.reserve(mol.degree(i));
      for (BondIndex bi : mol.bonds_of(i)) {
        const Bond& b = mol.bond(bi);
        nk.emplace_back(b.order, ranks[b.other(i)]);
      }
      std::sort(nk.begin(), nk.end());
      keys[i] = Key{ranks[i], std::move(nk)};
    }
    std::vector<AtomIndex> order(n);
    for (AtomIndex i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&keys](AtomIndex a, AtomIndex b) {
      return keys[a] < keys[b];
    });
    Ranks next(n);
    std::uint32_t rank = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (i > 0 && keys[order[i]] != keys[order[i - 1]]) ++rank;
      next[order[i]] = rank;
    }
    const std::size_t new_distinct = static_cast<std::size_t>(rank) + 1;
    if (new_distinct == distinct) return next;
    distinct = new_distinct;
    ranks = std::move(next);
  }
}

Ranks initial_ranks(const Molecule& mol) {
  const std::size_t n = mol.atom_count();
  using Key = std::tuple<std::uint8_t, std::int8_t, std::uint8_t, std::size_t, int>;
  std::vector<Key> keys(n);
  for (AtomIndex i = 0; i < n; ++i) {
    const Atom& a = mol.atom(i);
    keys[i] = Key{static_cast<std::uint8_t>(a.element), a.charge, a.hydrogens,
                  mol.degree(i), mol.bond_order_sum(i)};
  }
  std::vector<AtomIndex> order(n);
  for (AtomIndex i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&keys](AtomIndex a, AtomIndex b) { return keys[a] < keys[b]; });
  Ranks ranks(n);
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && keys[order[i]] != keys[order[i - 1]]) ++rank;
    ranks[order[i]] = rank;
  }
  return ranks;
}

/// True if every atom has a unique rank.
bool discrete(const Ranks& ranks) {
  std::vector<bool> seen(ranks.size(), false);
  for (std::uint32_t r : ranks) {
    if (seen[r]) return false;
    seen[r] = true;
  }
  return true;
}

/// Recursive tie-breaking: pick the lowest tied rank class, individually
/// promote each member, refine, recurse; keep the smallest SMILES.
void break_ties(const Molecule& mol, const Ranks& ranks, CanonicalResult& best,
                bool& have_best) {
  if (discrete(ranks)) {
    std::string smiles = write_smiles_ranked(mol, ranks);
    if (!have_best || smiles < best.smiles) {
      best.smiles = std::move(smiles);
      best.ranks = ranks;
      have_best = true;
    }
    return;
  }

  // Find the smallest rank value shared by more than one atom.
  const std::size_t n = ranks.size();
  std::vector<std::uint32_t> class_size(n, 0);
  for (std::uint32_t r : ranks) ++class_size[r];
  std::uint32_t target = 0;
  while (class_size[target] <= 1) ++target;

  for (AtomIndex candidate = 0; candidate < n; ++candidate) {
    if (ranks[candidate] != target) continue;
    // Double all ranks and give the candidate a strictly smaller one.
    Ranks tweaked(n);
    for (AtomIndex i = 0; i < n; ++i) tweaked[i] = ranks[i] * 2 + 1;
    tweaked[candidate] -= 1;
    break_ties(mol, refine(mol, std::move(tweaked)), best, have_best);
  }
}

}  // namespace

Ranks morgan_ranks(const Molecule& mol) {
  return refine(mol, initial_ranks(mol));
}

CanonicalResult canonicalize(const Molecule& mol) {
  CanonicalResult best;
  if (mol.atom_count() == 0) return best;
  bool have_best = false;
  break_ties(mol, morgan_ranks(mol), best, have_best);
  RMS_CHECK(have_best);
  return best;
}

std::string canonical_smiles(const Molecule& mol) {
  return canonicalize(mol).smiles;
}

namespace {

/// Byte-exact encoding of the molecular graph, used as the memo key.
std::string graph_key(const Molecule& mol) {
  std::string key;
  key.reserve(mol.atom_count() * 3 + mol.bond_count() * 9);
  for (AtomIndex i = 0; i < mol.atom_count(); ++i) {
    const Atom& a = mol.atom(i);
    key.push_back(static_cast<char>(a.element));
    key.push_back(static_cast<char>(a.charge));
    key.push_back(static_cast<char>(a.hydrogens));
  }
  auto append_u32 = [&key](std::uint32_t v) {
    key.push_back(static_cast<char>(v & 0xFF));
    key.push_back(static_cast<char>((v >> 8) & 0xFF));
    key.push_back(static_cast<char>((v >> 16) & 0xFF));
    key.push_back(static_cast<char>((v >> 24) & 0xFF));
  };
  for (BondIndex bi = 0; bi < mol.bond_count(); ++bi) {
    const Bond& b = mol.bond(bi);
    append_u32(b.a);
    append_u32(b.b);
    key.push_back(static_cast<char>(b.order));
  }
  return key;
}

}  // namespace

const std::string& canonical_smiles_cached(const Molecule& mol) {
  // Bounded per-thread memo; cleared wholesale when it grows past the cap
  // (simpler than eviction, and a full clear just re-pays a few misses).
  constexpr std::size_t kMaxEntries = 1u << 16;
  thread_local std::unordered_map<std::string, std::string> cache;
  if (cache.size() > kMaxEntries) cache.clear();
  std::string key = graph_key(mol);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(std::move(key), canonical_smiles(mol)).first;
  }
  return it->second;
}

}  // namespace rms::chem
