// SMILES subset reader and writer.
//
// Supported: the organic subset written bare (C N O S P F Cl Br I) with
// implicit hydrogens, bracket atoms with explicit hydrogen counts and
// charges ([SH], [CH3], [S-], [Zn], [R]), bond symbols - = #, branches,
// ring closures (1-9 and %nn), and '.' separated fragments. Aromatic
// (lowercase) notation is intentionally rejected: vulcanization models are
// written in Kekulé form so no aromaticity perception is needed.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "chem/molecule.hpp"
#include "support/status.hpp"

namespace rms::chem {

/// Parses a SMILES string into a molecule. Bare organic-subset atoms are
/// saturated with implicit hydrogens; bracket atoms keep exactly their
/// written hydrogen count (so "[S]" is a diradical sulfur).
support::Expected<Molecule> parse_smiles(std::string_view smiles);

/// Writes SMILES using atom input order (not canonical). Ring bonds get
/// closure digits; fragments are joined with '.'.
std::string write_smiles(const Molecule& mol);

/// Writes SMILES visiting atoms in the order induced by `ranks` (lower rank
/// first, both for the DFS roots and neighbour ordering). Used by the
/// canonicalizer. `ranks` must be a permutation-invariant ranking.
std::string write_smiles_ranked(const Molecule& mol,
                                const std::vector<std::uint32_t>& ranks);

}  // namespace rms::chem
