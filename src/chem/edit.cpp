#include "chem/edit.hpp"

#include "support/strings.hpp"

namespace rms::chem {

using support::invalid_argument;
using support::Status;

Status disconnect(Molecule& mol, AtomIndex a, AtomIndex b) {
  const BondIndex bi = mol.bond_between(a, b);
  if (bi == kNoBond) {
    return invalid_argument(
        support::str_format("disconnect: no bond between atoms %u and %u", a, b));
  }
  mol.remove_bond(bi);
  return Status::ok();
}

Status connect(Molecule& mol, AtomIndex a, AtomIndex b, std::uint8_t order) {
  if (a == b) return invalid_argument("connect: cannot bond an atom to itself");
  if (mol.bond_between(a, b) != kNoBond) {
    return invalid_argument(support::str_format(
        "connect: atoms %u and %u are already bonded", a, b));
  }
  if (mol.free_valence(a) < order || mol.free_valence(b) < order) {
    return invalid_argument(support::str_format(
        "connect: insufficient free valence (%d, %d) for order-%d bond",
        mol.free_valence(a), mol.free_valence(b), order));
  }
  mol.add_bond(a, b, order);
  return Status::ok();
}

Status decrease_bond_order(Molecule& mol, AtomIndex a, AtomIndex b) {
  const BondIndex bi = mol.bond_between(a, b);
  if (bi == kNoBond) {
    return invalid_argument("decrease_bond_order: atoms are not bonded");
  }
  if (mol.bond(bi).order == 1) {
    mol.remove_bond(bi);
  } else {
    --mol.bond(bi).order;
  }
  return Status::ok();
}

Status increase_bond_order(Molecule& mol, AtomIndex a, AtomIndex b) {
  const BondIndex bi = mol.bond_between(a, b);
  if (bi == kNoBond) {
    return invalid_argument("increase_bond_order: atoms are not bonded");
  }
  if (mol.bond(bi).order >= 3) {
    return invalid_argument("increase_bond_order: bond is already triple");
  }
  if (mol.free_valence(a) < 1 || mol.free_valence(b) < 1) {
    return invalid_argument(
        "increase_bond_order: an endpoint has no free valence");
  }
  ++mol.bond(bi).order;
  return Status::ok();
}

Status remove_hydrogen(Molecule& mol, AtomIndex a) {
  if (mol.atom(a).hydrogens == 0) {
    return invalid_argument(
        support::str_format("remove_hydrogen: atom %u has no hydrogens", a));
  }
  --mol.atom(a).hydrogens;
  return Status::ok();
}

Status add_hydrogen(Molecule& mol, AtomIndex a, int count) {
  if (count < 1) return invalid_argument("add_hydrogen: count must be >= 1");
  if (mol.free_valence(a) < count) {
    return invalid_argument(support::str_format(
        "add_hydrogen: atom %u has free valence %d < %d", a,
        mol.free_valence(a), count));
  }
  mol.atom(a).hydrogens = static_cast<std::uint8_t>(mol.atom(a).hydrogens + count);
  return Status::ok();
}

}  // namespace rms::chem
