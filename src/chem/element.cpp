#include "chem/element.hpp"

#include "support/assert.hpp"

namespace rms::chem {

int default_valence(Element e) {
  switch (e) {
    case Element::kH: return 1;
    case Element::kC: return 4;
    case Element::kN: return 3;
    case Element::kO: return 2;
    case Element::kS: return 2;
    case Element::kP: return 3;
    case Element::kF: return 1;
    case Element::kCl: return 1;
    case Element::kBr: return 1;
    case Element::kI: return 1;
    case Element::kZn: return 2;
    case Element::kR: return 4;  // behaves like a backbone carbon
    case Element::kCount: break;
  }
  RMS_UNREACHABLE();
}

std::string_view element_symbol(Element e) {
  switch (e) {
    case Element::kH: return "H";
    case Element::kC: return "C";
    case Element::kN: return "N";
    case Element::kO: return "O";
    case Element::kS: return "S";
    case Element::kP: return "P";
    case Element::kF: return "F";
    case Element::kCl: return "Cl";
    case Element::kBr: return "Br";
    case Element::kI: return "I";
    case Element::kZn: return "Zn";
    case Element::kR: return "R";
    case Element::kCount: break;
  }
  RMS_UNREACHABLE();
}

std::optional<Element> parse_element(std::string_view symbol) {
  if (symbol == "H") return Element::kH;
  if (symbol == "C") return Element::kC;
  if (symbol == "N") return Element::kN;
  if (symbol == "O") return Element::kO;
  if (symbol == "S") return Element::kS;
  if (symbol == "P") return Element::kP;
  if (symbol == "F") return Element::kF;
  if (symbol == "Cl") return Element::kCl;
  if (symbol == "Br") return Element::kBr;
  if (symbol == "I") return Element::kI;
  if (symbol == "Zn") return Element::kZn;
  if (symbol == "R") return Element::kR;
  return std::nullopt;
}

bool in_organic_subset(Element e) {
  switch (e) {
    case Element::kC:
    case Element::kN:
    case Element::kO:
    case Element::kS:
    case Element::kP:
    case Element::kF:
    case Element::kCl:
    case Element::kBr:
    case Element::kI:
      return true;
    default:
      return false;
  }
}

}  // namespace rms::chem
