#include "nlopt/levmar.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/qr.hpp"
#include "support/strings.hpp"

namespace rms::nlopt {

namespace {

using linalg::Matrix;
using linalg::Vector;
using support::Status;

double cost_of(const Vector& r) {
  double sum = 0.0;
  for (double v : r) sum += v * v;
  return 0.5 * sum;
}

void clamp_to_bounds(Vector& x, const Vector& lower, const Vector& upper) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::clamp(x[i], lower[i], upper[i]);
  }
}

}  // namespace

double bound_aware_fd_step(double x, double lower, double upper,
                           double relative_step) {
  double step = relative_step * std::max(std::fabs(x), 1e-8);
  const double up_room = upper - x;
  const double down_room = x - lower;
  if (step <= up_room) return step;
  if (step <= down_room) return -step;
  // Box narrower than the step on both sides (x hugging a bound of a tight
  // box): take the wider side at its full width so the perturbed point
  // stays feasible and the step stays nonzero.
  if (up_room >= down_room && up_room > 0.0) return up_room;
  if (down_room > 0.0) return -down_room;
  // Zero-width box: the parameter is pinned, its column cannot matter, but
  // a zero step would divide by zero — keep the nominal forward step.
  return step;
}

support::Expected<LevMarResult> bounded_least_squares(
    const ResidualFunction& residuals, std::size_t residual_size,
    Vector x0, const Vector& lower, const Vector& upper,
    const LevMarOptions& options) {
  return bounded_least_squares(residuals, JacobianFunction{}, residual_size,
                               std::move(x0), lower, upper, options);
}

support::Expected<LevMarResult> bounded_least_squares(
    const ResidualFunction& residuals, const JacobianFunction& jacobian_fn,
    std::size_t residual_size, Vector x0, const Vector& lower,
    const Vector& upper, const LevMarOptions& options) {
  const std::size_t n = x0.size();
  const std::size_t m = residual_size;
  if (lower.size() != n || upper.size() != n) {
    return support::invalid_argument("bound dimension mismatch");
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (lower[i] > upper[i]) {
      return support::invalid_argument(support::str_format(
          "lower bound %zu exceeds upper bound (%g > %g)", i, lower[i],
          upper[i]));
    }
  }
  if (m < n) {
    return support::invalid_argument(
        "fewer residuals than parameters: the problem is underdetermined");
  }

  LevMarResult result;
  clamp_to_bounds(x0, lower, upper);
  result.x = std::move(x0);

  Vector r(m);
  RMS_RETURN_IF_ERROR(residuals(result.x, r));
  ++result.residual_evaluations;
  if (r.size() != m) {
    return support::invalid_argument("residual size mismatch");
  }
  result.cost = cost_of(r);

  Matrix jacobian(m, n);
  Vector r_pert(m);
  Vector gradient(n);
  // Marquardt column scaling: the damping acts on D dx rather than dx, so
  // parameters of wildly different magnitudes (rate prefactors ~1e7 next to
  // O(1) constants) take sensible steps. Scales only ever grow (MINPACK
  // convention), keeping the trust region stable.
  Vector scale(n, 0.0);
  double lambda = options.initial_lambda;
  int small_cost_reductions = 0;
  bool jacobian_valid = false;

  for (result.iterations = 0; result.iterations < options.max_iterations;
       ++result.iterations) {
    if (!jacobian_valid) {
      // Forward-difference Jacobian with bound-aware, never-zero
      // perturbations (backward when forward leaves the box, shrunk when
      // the box is narrower than the step).
      Vector steps(n);
      for (std::size_t j = 0; j < n; ++j) {
        steps[j] = bound_aware_fd_step(result.x[j], lower[j], upper[j],
                                       options.fd_relative_step);
      }
      if (jacobian_fn) {
        // The caller owns the n perturbed evaluations (parallel FD columns).
        RMS_RETURN_IF_ERROR(jacobian_fn(result.x, r, steps, jacobian));
        result.residual_evaluations += n;
      } else {
        for (std::size_t j = 0; j < n; ++j) {
          Vector x_pert = result.x;
          x_pert[j] += steps[j];
          RMS_RETURN_IF_ERROR(residuals(x_pert, r_pert));
          ++result.residual_evaluations;
          const double inv_step = 1.0 / steps[j];
          for (std::size_t i = 0; i < m; ++i) {
            jacobian(i, j) = (r_pert[i] - r[i]) * inv_step;
          }
        }
      }
      ++result.jacobian_evaluations;
      jacobian_valid = true;
      for (std::size_t j = 0; j < n; ++j) {
        double column_norm_sq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
          column_norm_sq += jacobian(i, j) * jacobian(i, j);
        }
        scale[j] = std::max(scale[j], std::sqrt(column_norm_sq));
      }
    }

    // gradient = J^T r; scale-invariant convergence check (MINPACK's gtol
    // criterion: the cosine of the angle between r and each column of J).
    jacobian.multiply_transpose(r, gradient);
    const double r_norm = std::sqrt(2.0 * result.cost);
    double gradient_measure = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      // Projected gradient: a binding bound with the gradient pushing
      // outward contributes nothing (active-set treatment).
      const bool at_lower = result.x[j] <= lower[j] && gradient[j] > 0.0;
      const bool at_upper = result.x[j] >= upper[j] && gradient[j] < 0.0;
      if (at_lower || at_upper) continue;
      const double denom = scale[j] * r_norm;
      if (denom > 0.0) {
        gradient_measure =
            std::max(gradient_measure, std::fabs(gradient[j]) / denom);
      }
    }
    if (gradient_measure < options.gradient_tolerance ||
        r_norm == 0.0) {
      result.converged = true;
      result.message = "projected gradient below tolerance";
      break;
    }

    // Damped step: minimize ||[J; sqrt(lambda) I] dx + [r; 0]||.
    bool step_accepted = false;
    while (lambda <= options.max_lambda) {
      Matrix stacked(m + n, n);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < n; ++j) stacked(i, j) = jacobian(i, j);
      }
      const double sqrt_lambda = std::sqrt(lambda);
      for (std::size_t j = 0; j < n; ++j) {
        stacked(m + j, j) =
            sqrt_lambda * (scale[j] > 0.0 ? scale[j] : 1.0);
      }
      Vector rhs(m + n, 0.0);
      for (std::size_t i = 0; i < m; ++i) rhs[i] = -r[i];

      Vector dx;
      if (!linalg::solve_least_squares(stacked, rhs, dx)) {
        lambda *= options.lambda_grow;
        continue;
      }

      Vector x_new = result.x;
      for (std::size_t j = 0; j < n; ++j) x_new[j] += dx[j];
      clamp_to_bounds(x_new, lower, upper);

      Vector r_new(m);
      RMS_RETURN_IF_ERROR(residuals(x_new, r_new));
      ++result.residual_evaluations;
      const double new_cost = cost_of(r_new);

      if (new_cost < result.cost && std::isfinite(new_cost)) {
        // Accept.
        double step_norm = 0.0;
        double x_norm = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          step_norm += (x_new[j] - result.x[j]) * (x_new[j] - result.x[j]);
          x_norm += x_new[j] * x_new[j];
        }
        const double relative_reduction =
            (result.cost - new_cost) / std::max(result.cost, 1e-300);
        result.x = std::move(x_new);
        r = std::move(r_new);
        result.cost = new_cost;
        lambda = std::max(lambda * options.lambda_shrink, 1e-12);
        jacobian_valid = false;
        step_accepted = true;

        if (std::sqrt(step_norm) <
            options.step_tolerance * (std::sqrt(x_norm) + 1e-30)) {
          result.converged = true;
          result.message = "step length below tolerance";
        }
        if (relative_reduction < options.cost_tolerance) {
          if (++small_cost_reductions >= 3) {
            result.converged = true;
            result.message = "cost reduction below tolerance";
          }
        } else {
          small_cost_reductions = 0;
        }
        break;
      }
      lambda *= options.lambda_grow;
    }

    if (!step_accepted) {
      result.converged = result.cost == 0.0;
      result.message = "lambda exceeded maximum without an acceptable step";
      break;
    }
    if (result.converged) break;
  }

  if (!result.converged && result.message.empty()) {
    result.message = "iteration limit reached";
  }
  return result;
}

}  // namespace rms::nlopt
