// Bounded non-linear least squares (the role of IMSL's
// imsl_f_bounded_least_squares).
//
// A modified Levenberg-Marquardt method [Levenberg 1944, Marquardt 1963]
// with simple variable bounds: each damped step solves the stacked system
//   [ J; sqrt(lambda) I ] dx = [ -r; 0 ]
// by Householder QR, the candidate is projected onto the box (the active-set
// treatment of binding bounds), and lambda adapts on accept/reject. The
// Jacobian is forward-difference with bound-aware perturbations. This is
// the estimator the Parallel Parameter Estimator wraps around the ODE
// solver to fit kinetic rate constants to experimental data (paper §4.2).
#pragma once

#include <functional>
#include <string>

#include "linalg/matrix.hpp"
#include "support/status.hpp"

namespace rms::nlopt {

/// Computes the residual vector r(x) (length fixed across calls).
using ResidualFunction =
    std::function<support::Status(const linalg::Vector& x, linalg::Vector& r)>;

/// Batched forward-difference Jacobian hook: fills the m x n matrix with
/// column j = (r(x + steps[j] e_j) - r) / steps[j]. The optimizer supplies
/// the base point x, the base residual r(x), and the bound-aware (always
/// nonzero) perturbations `steps`; the *caller* owns how the n perturbed
/// residual evaluations are computed — the parallel estimator schedules
/// them as one flat pool of (column, data file) ODE solves instead of n
/// serial objective calls.
using JacobianFunction = std::function<support::Status(
    const linalg::Vector& x, const linalg::Vector& r,
    const linalg::Vector& steps, linalg::Matrix& jacobian)>;

struct LevMarOptions {
  std::size_t max_iterations = 200;
  /// Convergence: ||J^T r||_inf below this.
  double gradient_tolerance = 1e-8;
  /// Convergence: relative step length below this.
  double step_tolerance = 1e-12;
  /// Convergence: relative cost reduction below this for 3 iterations.
  double cost_tolerance = 1e-14;
  double initial_lambda = 1e-3;
  double lambda_shrink = 1.0 / 3.0;
  double lambda_grow = 4.0;
  double max_lambda = 1e12;
  /// Relative forward-difference step for the Jacobian.
  double fd_relative_step = 1e-7;
};

struct LevMarResult {
  linalg::Vector x;
  double cost = 0.0;  ///< 0.5 * ||r||^2
  std::size_t iterations = 0;
  std::size_t residual_evaluations = 0;
  std::size_t jacobian_evaluations = 0;
  bool converged = false;
  std::string message;
};

/// Minimizes 0.5*||r(x)||^2 subject to lower <= x <= upper.
/// `residual_size` is the length of r. x0 must lie inside the bounds
/// (it is clamped if not).
support::Expected<LevMarResult> bounded_least_squares(
    const ResidualFunction& residuals, std::size_t residual_size,
    linalg::Vector x0, const linalg::Vector& lower, const linalg::Vector& upper,
    const LevMarOptions& options = {});

/// Same, with the Jacobian computed through `jacobian` (null falls back to
/// the serial per-column loop over `residuals`). Each hook invocation
/// counts as n residual evaluations.
support::Expected<LevMarResult> bounded_least_squares(
    const ResidualFunction& residuals, const JacobianFunction& jacobian,
    std::size_t residual_size, linalg::Vector x0, const linalg::Vector& lower,
    const linalg::Vector& upper, const LevMarOptions& options = {});

/// The forward-difference perturbation for a parameter at `x` inside
/// [lower, upper]: relative-sized, flipped backward when the forward step
/// leaves the box, shrunk to the wider in-box side when neither full step
/// fits, and never zero (a parameter pinned by a zero-width box keeps the
/// nominal forward step). Exposed for tests and for callers implementing
/// JacobianFunction against the same step convention.
double bound_aware_fd_step(double x, double lower, double upper,
                           double relative_step);

}  // namespace rms::nlopt
