// Conservation-law analysis of reaction networks.
//
// Mass-action dynamics obey dy/dt = S r(y) with S the stoichiometric matrix
// (species x reactions); every vector w in the left null space of S is a
// conserved quantity: d(w . y)/dt = 0 along every trajectory. Vulcanization
// networks conserve, e.g., total accelerator residue and total rubber
// sites. The basis computed here powers both model sanity checks ("did the
// rule set leak atoms?") and solver validation (integrated trajectories
// must keep w . y constant to solver tolerance).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "network/generator.hpp"

namespace rms::odegen {

/// S[i][j] = net stoichiometric coefficient of species i in reaction j
/// (products positive, reactants negative; multiplicity is a rate factor,
/// not a stoichiometry, and is excluded).
linalg::Matrix stoichiometric_matrix(const network::ReactionNetwork& network);

/// Basis of the left null space of S (each vector has one entry per
/// species). Vectors are normalized so the first nonzero entry is +1.
/// `tolerance` bounds what counts as numerically zero during elimination.
std::vector<linalg::Vector> conservation_laws(
    const network::ReactionNetwork& network, double tolerance = 1e-9);

/// Convenience: w . y.
double conserved_value(const linalg::Vector& law,
                       const std::vector<double>& y);

}  // namespace rms::odegen
