// The equation table and ODE generation (paper §2, Figs. 4-5).
//
// For every reaction  - A - B + C ... \ [K], mass action gives the rate
//   r = multiplicity * K * [A] * [B]
// and each species occurrence contributes +/- r to its equation. The
// equation table stores one sum-of-products per species (the paper uses a
// doubly linked list of term nodes; SumOfProducts is the contiguous
// equivalent with the same on-the-fly §3.1 like-term combining).
#pragma once

#include <string>
#include <vector>

#include "expr/product.hpp"
#include "network/generator.hpp"
#include "rcip/rate_table.hpp"
#include "support/status.hpp"

namespace rms::odegen {

/// The symbolic ODE system dy/dt = f(y, k).
class EquationTable {
 public:
  EquationTable() = default;
  EquationTable(std::size_t species_count) : equations_(species_count) {}

  [[nodiscard]] std::size_t size() const { return equations_.size(); }
  [[nodiscard]] const expr::SumOfProducts& equation(std::size_t i) const {
    return equations_[i];
  }
  [[nodiscard]] expr::SumOfProducts& equation(std::size_t i) {
    return equations_[i];
  }
  [[nodiscard]] const std::vector<expr::SumOfProducts>& equations() const {
    return equations_;
  }
  [[nodiscard]] std::vector<expr::SumOfProducts>& equations() {
    return equations_;
  }

  /// Total multiply / add-sub operation counts across all equations
  /// (the unoptimized counts reported in Table 1).
  [[nodiscard]] std::size_t multiply_count() const;
  [[nodiscard]] std::size_t add_sub_count() const;

  /// Dense evaluation of all right-hand sides (reference path for tests).
  void evaluate(const std::vector<double>& species,
                const std::vector<double>& rate_consts, double t,
                std::vector<double>& dydt) const;

 private:
  std::vector<expr::SumOfProducts> equations_;
};

struct GeneratedOdes {
  EquationTable table;
  std::vector<std::string> species_names;
  std::vector<double> init_concentrations;
  rcip::RateTable rates;

  /// Renders every equation "d<name>/dt = ..." (Fig. 5 style).
  [[nodiscard]] std::string to_string() const;
};

struct OdeGenOptions {
  /// Apply the §3.1 on-the-fly equation simplification (combine products
  /// that differ only in the constant coefficient). Off reproduces the
  /// paper's Fig. 4 raw form / unoptimized baselines.
  bool combine_like_terms = true;
};

/// Generates the ODE system for a reaction network.
support::Expected<GeneratedOdes> generate_odes(
    const network::ReactionNetwork& network, const rcip::RateTable& rates,
    const OdeGenOptions& options = {});

}  // namespace rms::odegen
