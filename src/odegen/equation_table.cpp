#include "odegen/equation_table.hpp"

#include "support/assert.hpp"

namespace rms::odegen {

std::size_t EquationTable::multiply_count() const {
  std::size_t count = 0;
  for (const expr::SumOfProducts& eq : equations_) count += eq.multiply_count();
  return count;
}

std::size_t EquationTable::add_sub_count() const {
  std::size_t count = 0;
  for (const expr::SumOfProducts& eq : equations_) count += eq.add_sub_count();
  return count;
}

void EquationTable::evaluate(const std::vector<double>& species,
                             const std::vector<double>& rate_consts, double t,
                             std::vector<double>& dydt) const {
  dydt.resize(equations_.size());
  for (std::size_t i = 0; i < equations_.size(); ++i) {
    dydt[i] = equations_[i].evaluate(species, rate_consts, t);
  }
}

std::string GeneratedOdes::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < table.size(); ++i) {
    out += "d" + species_names[i] + "/dt = " + table.equation(i).to_string() +
           ";\n";
  }
  return out;
}

support::Expected<GeneratedOdes> generate_odes(
    const network::ReactionNetwork& network, const rcip::RateTable& rates,
    const OdeGenOptions& options) {
  GeneratedOdes out;
  out.rates = rates;
  const std::size_t n = network.species.size();
  out.table = EquationTable(n);
  out.species_names.reserve(n);
  out.init_concentrations.reserve(n);
  for (const network::SpeciesEntry& entry : network.species.entries()) {
    out.species_names.push_back(entry.name);
    out.init_concentrations.push_back(entry.init_concentration);
  }

  // Pre-size every equation to its contribution count (an upper bound when
  // like terms combine); one pass of integer increments spares each equation
  // the push_back growth ladder.
  {
    std::vector<std::uint32_t> contributions(n, 0);
    for (const network::Reaction& reaction : network.reactions) {
      for (network::SpeciesId id : reaction.reactants) ++contributions[id];
      for (network::SpeciesId id : reaction.products) ++contributions[id];
    }
    for (std::size_t i = 0; i < n; ++i) {
      out.table.equation(i).reserve(contributions[i]);
    }
  }

  for (const network::Reaction& reaction : network.reactions) {
    std::uint32_t rate_index = 0;
    if (!rates.index_of(reaction.rate_name, rate_index)) {
      return support::semantic_error("undefined rate constant '" +
                                     reaction.rate_name + "'");
    }
    // The mass-action rate term: multiplicity * k * prod(reactants).
    expr::Product rate_term;
    rate_term.coeff = reaction.multiplicity;
    rate_term.factors.push_back(expr::VarId::rate_const(rate_index));
    for (network::SpeciesId id : reaction.reactants) {
      rate_term.factors.push_back(expr::VarId::species(id));
    }
    rate_term.normalize();

    auto contribute = [&](network::SpeciesId id, double sign) {
      expr::Product p = rate_term;
      p.coeff *= sign;
      if (options.combine_like_terms) {
        out.table.equation(id).add_combining(std::move(p));
      } else {
        out.table.equation(id).add_raw(std::move(p));
      }
    };
    // One signed contribution per occurrence: a species consumed twice gets
    // -2r after combining (or two -r terms raw), matching Figs. 4 -> 5.
    for (network::SpeciesId id : reaction.reactants) contribute(id, -1.0);
    for (network::SpeciesId id : reaction.products) contribute(id, +1.0);
  }

  for (expr::SumOfProducts& eq : out.table.equations()) eq.sort_canonical();
  return out;
}

}  // namespace rms::odegen
