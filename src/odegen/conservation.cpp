#include "odegen/conservation.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace rms::odegen {

linalg::Matrix stoichiometric_matrix(const network::ReactionNetwork& network) {
  const std::size_t n_species = network.species.size();
  const std::size_t n_reactions = network.reactions.size();
  linalg::Matrix s(n_species, n_reactions);
  for (std::size_t j = 0; j < n_reactions; ++j) {
    const network::Reaction& r = network.reactions[j];
    for (network::SpeciesId id : r.reactants) s(id, j) -= 1.0;
    for (network::SpeciesId id : r.products) s(id, j) += 1.0;
  }
  return s;
}

std::vector<linalg::Vector> conservation_laws(
    const network::ReactionNetwork& network, double tolerance) {
  // Solve S^T w = 0: Gaussian elimination with partial pivoting on the
  // (reactions x species) matrix; the free columns parameterize the basis.
  const linalg::Matrix s = stoichiometric_matrix(network);
  const std::size_t n_species = s.rows();
  const std::size_t n_reactions = s.cols();

  // a = S^T (dense work copy).
  linalg::Matrix a(n_reactions, n_species);
  for (std::size_t i = 0; i < n_species; ++i) {
    for (std::size_t j = 0; j < n_reactions; ++j) a(j, i) = s(i, j);
  }

  std::vector<std::size_t> pivot_columns;
  std::vector<bool> is_pivot(n_species, false);
  std::size_t row = 0;
  for (std::size_t col = 0; col < n_species && row < n_reactions; ++col) {
    // Partial pivot in this column.
    std::size_t best = row;
    double best_magnitude = std::fabs(a(row, col));
    for (std::size_t r = row + 1; r < n_reactions; ++r) {
      const double magnitude = std::fabs(a(r, col));
      if (magnitude > best_magnitude) {
        best_magnitude = magnitude;
        best = r;
      }
    }
    if (best_magnitude <= tolerance) continue;  // free column
    if (best != row) {
      for (std::size_t c = 0; c < n_species; ++c) {
        std::swap(a(row, c), a(best, c));
      }
    }
    const double inv = 1.0 / a(row, col);
    for (std::size_t c = 0; c < n_species; ++c) a(row, c) *= inv;
    for (std::size_t r = 0; r < n_reactions; ++r) {
      if (r == row) continue;
      const double factor = a(r, col);
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < n_species; ++c) {
        a(r, c) -= factor * a(row, c);
      }
    }
    pivot_columns.push_back(col);
    is_pivot[col] = true;
    ++row;
  }

  // Each free column yields a basis vector: w[free] = 1,
  // w[pivot_col(r)] = -a(r, free).
  std::vector<linalg::Vector> basis;
  for (std::size_t col = 0; col < n_species; ++col) {
    if (is_pivot[col]) continue;
    linalg::Vector w(n_species, 0.0);
    w[col] = 1.0;
    for (std::size_t r = 0; r < pivot_columns.size(); ++r) {
      const double value = -a(r, col);
      if (std::fabs(value) > tolerance) w[pivot_columns[r]] = value;
    }
    basis.push_back(std::move(w));
  }
  return basis;
}

double conserved_value(const linalg::Vector& law,
                       const std::vector<double>& y) {
  RMS_CHECK(law.size() == y.size());
  double total = 0.0;
  for (std::size_t i = 0; i < law.size(); ++i) total += law[i] * y[i];
  return total;
}

}  // namespace rms::odegen
