#include "estimator/objective.hpp"

#include <algorithm>
#include <mutex>

#include "parallel/minimpi.hpp"
#include "parallel/schedule.hpp"
#include "solver/adams_gear.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

namespace rms::estimator {

using support::Status;

ObjectiveFunction::ObjectiveFunction(const vm::Program& program,
                                     data::Observable observable,
                                     std::vector<Experiment> experiments,
                                     std::vector<std::uint32_t> estimated_slots,
                                     std::vector<double> base_rates,
                                     ObjectiveOptions options)
    : program_(&program),
      interpreter_(program),
      observable_(std::move(observable)),
      experiments_(std::move(experiments)),
      estimated_slots_(std::move(estimated_slots)),
      base_rates_(std::move(base_rates)),
      options_(options) {
  for (const Experiment& e : experiments_) {
    max_records_ = std::max(max_records_, e.data.record_count());
  }
  file_times_.assign(experiments_.size(), 0.0);
}

std::size_t ObjectiveFunction::residual_size() const {
  if (options_.layout == ResidualLayout::kGlobalPerTimestep) {
    return max_records_;
  }
  std::size_t total = 0;
  for (const Experiment& e : experiments_) total += e.data.record_count();
  return total;
}

Status ObjectiveFunction::solve_file(std::size_t file_index,
                                     const std::vector<double>& prefactors,
                                     std::vector<double>& local_errors,
                                     double& solve_seconds) const {
  const Experiment& experiment = experiments_[file_index];
  support::WallTimer timer;

  // Evaluate the rate law at the file's cure temperature: Arrhenius slots
  // combine the (possibly estimated) prefactor with their activation
  // energy; plain slots pass through.
  std::vector<double> rates = prefactors;
  if (options_.rate_table != nullptr && experiment.temperature > 0.0) {
    for (std::uint32_t s = 0; s < rates.size(); ++s) {
      rates[s] = options_.rate_table->value_with_prefactor(
          s, prefactors[s], experiment.temperature);
    }
  }

  // The interpreter is shared across ranks (run() is const; registers live
  // in per-thread scratch), so concurrent solves are race-free without
  // per-file interpreter state. The native backend is stateless outright:
  // its entry points are compiled functions over caller-owned buffers.
  const vm::Interpreter& interpreter = interpreter_;
  const codegen::NativeBackend* native = options_.native_backend;
  solver::OdeSystem system;
  system.dimension = program_->species_count;
  vm::Scratch batch_scratch;
  if (native != nullptr) {
    system.rhs = [native, &rates](double t, const double* y, double* ydot) {
      native->rhs(t, y, rates.data(), ydot);
    };
    if (native->has_batch()) {
      system.rhs_batch = [native, &rates](double t, const double* ys,
                                          double* ydots, std::size_t count) {
        native->rhs_batch(t, ys, rates.data(), ydots, count);
      };
    }
  } else {
    system.rhs = [&interpreter, &rates](double t, const double* y,
                                        double* ydot) {
      interpreter.run(t, y, rates.data(), ydot);
    };
    // Batched RHS: the solver's finite-difference Jacobian evaluates chunks
    // of perturbed states in one pass over the tape.
    system.rhs_batch = [&interpreter, &rates, &batch_scratch](
                           double t, const double* ys, double* ydots,
                           std::size_t count) {
      interpreter.run_batch_shared_k(t, ys, rates.data(), ydots, count,
                                     batch_scratch);
    };
  }
  solver::IntegrationOptions integration = options_.integration;
  if (native != nullptr && native->has_jacobian()) {
    system.sparse_jacobian = [native, &rates](double t, const double* y,
                                              linalg::CsrMatrix& out) {
      out.rows = out.cols = native->dimension();
      out.row_offsets = native->jacobian_row_offsets();
      out.col_indices = native->jacobian_col_indices();
      out.values.resize(out.col_indices.size());
      native->jacobian_values(t, y, rates.data(), out.values.data());
    };
    integration.newton_linear_solver = solver::NewtonLinearSolver::kSparseLu;
  } else if (options_.compiled_jacobian != nullptr) {
    system.sparse_jacobian =
        codegen::SparseJacobianEvaluator(options_.compiled_jacobian, &rates);
    integration.newton_linear_solver = solver::NewtonLinearSolver::kSparseLu;
  }

  solver::AdamsGear integrator(system, integration);
  RMS_RETURN_IF_ERROR(
      integrator.initialize(experiment.data.times.empty()
                                ? 0.0
                                : std::min(0.0, experiment.data.times.front()),
                            experiment.initial_state));

  // Offset of this file's records in the per-file layout.
  std::size_t offset = 0;
  if (options_.layout == ResidualLayout::kPerFileRecord) {
    for (std::size_t f = 0; f < file_index; ++f) {
      offset += experiments_[f].data.record_count();
    }
  }

  std::vector<double> y;
  for (std::size_t j = 0; j < experiment.data.record_count(); ++j) {
    RMS_RETURN_IF_ERROR(integrator.advance_to(experiment.data.times[j], y));
    const double simulated = observable_.measure(y);
    const double difference = simulated - experiment.data.values[j];
    if (options_.layout == ResidualLayout::kGlobalPerTimestep) {
      local_errors[j] += difference;
    } else {
      local_errors[offset + j] = difference;
    }
  }
  solve_seconds = timer.seconds();
  return Status::ok();
}

Status ObjectiveFunction::evaluate(const linalg::Vector& x,
                                   linalg::Vector& residuals) {
  if (x.size() != estimated_slots_.size()) {
    return support::invalid_argument(support::str_format(
        "expected %zu parameters, got %zu", estimated_slots_.size(),
        x.size()));
  }
  std::vector<double> rates = base_rates_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    RMS_CHECK(estimated_slots_[i] < rates.size());
    rates[estimated_slots_[i]] = x[i];
  }

  // Schedule: block distribution, or LPT on the previous call's times
  // ("at the next objective function call, every processor will receive the
  //  balanced workload calculated by the current objective function call").
  const int ranks = std::max(options_.ranks, 1);
  const bool have_times =
      *std::max_element(file_times_.begin(), file_times_.end()) > 0.0;
  if (options_.dynamic_load_balancing && have_times) {
    assignment_ = parallel::lpt_schedule(file_times_, ranks);
  } else {
    assignment_ = parallel::block_schedule(experiments_.size(), ranks);
  }

  const std::size_t m = residual_size();
  residuals.assign(m, 0.0);
  std::vector<double> new_times(experiments_.size(), 0.0);

  Status first_error = Status::ok();
  std::mutex error_mutex;

  if (ranks == 1) {
    for (std::size_t f = 0; f < experiments_.size(); ++f) {
      RMS_RETURN_IF_ERROR(solve_file(f, rates, residuals, new_times[f]));
    }
  } else {
    // Fig. 9: every rank solves its files into a local error vector, then
    // Allreduce(SUM) combines error vectors and timing vectors.
    parallel::run_parallel(ranks, [&](parallel::Communicator& comm) {
      std::vector<double> local_errors(m, 0.0);
      std::vector<double> local_times(experiments_.size(), 0.0);
      for (std::size_t f = 0; f < experiments_.size(); ++f) {
        if (assignment_[f] != comm.rank()) continue;
        Status s = solve_file(f, rates, local_errors, local_times[f]);
        if (!s.is_ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.is_ok()) first_error = s;
        }
      }
      comm.all_reduce_sum(local_errors);
      comm.all_reduce_sum(local_times);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < m; ++i) residuals[i] = local_errors[i];
        new_times = local_times;
      }
      comm.barrier();
    });
    RMS_RETURN_IF_ERROR(first_error);
  }

  file_times_ = std::move(new_times);
  return Status::ok();
}

}  // namespace rms::estimator
