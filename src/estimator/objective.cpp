#include "estimator/objective.hpp"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "parallel/minimpi.hpp"
#include "parallel/schedule.hpp"
#include "support/assert.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"
#include "support/timer.hpp"

namespace rms::estimator {

using support::Status;

/// Everything one in-flight solve needs, reusable across solves: the rate
/// buffer the ODE closures read through a stable pointer, the VM's batch
/// registers, the solver (its history, Newton and Jacobian workspaces
/// persist across initialize() calls), and the interpolation output. A
/// scratch is checked out of a freelist per task; which scratch a task gets
/// never affects results because initialize() resets all result-bearing
/// solver state.
struct ObjectiveFunction::SolveScratch {
  std::vector<double> rates;
  vm::Scratch batch_scratch;
  std::unique_ptr<solver::AdamsGear> integrator;
  std::vector<double> y;
};

ObjectiveFunction::ObjectiveFunction(const vm::Program& program,
                                     data::Observable observable,
                                     std::vector<Experiment> experiments,
                                     std::vector<std::uint32_t> estimated_slots,
                                     std::vector<double> base_rates,
                                     ObjectiveOptions options)
    : program_(&program),
      interpreter_(program),
      observable_(std::move(observable)),
      experiments_(std::move(experiments)),
      estimated_slots_(std::move(estimated_slots)),
      base_rates_(std::move(base_rates)),
      options_(options) {
  file_offsets_.resize(experiments_.size());
  for (std::size_t f = 0; f < experiments_.size(); ++f) {
    const std::size_t count = experiments_[f].data.record_count();
    file_offsets_[f] = total_records_;
    total_records_ += count;
    max_records_ = std::max(max_records_, count);
  }
  file_times_.assign(experiments_.size(), 0.0);
  if (options_.warm_start) {
    warm_profiles_.resize(experiments_.size());
    new_profiles_.resize(experiments_.size());
    warm_valid_.assign(experiments_.size(), false);
    factor_caches_.resize(experiments_.size());
    new_factor_caches_.resize(experiments_.size());
  }
  if (options_.pool_workers > 0) {
    // cap_to_hardware=false: the pool exists for deterministic task-level
    // parallelism, and the worker count must match what the caller asked
    // for even on small machines (results are bit-identical regardless).
    pool_ = std::make_unique<support::ThreadPool>(
        static_cast<std::size_t>(options_.pool_workers),
        /*cap_to_hardware=*/false);
  }
}

ObjectiveFunction::~ObjectiveFunction() = default;

std::size_t ObjectiveFunction::residual_size() const {
  return options_.layout == ResidualLayout::kGlobalPerTimestep
             ? max_records_
             : total_records_;
}

void ObjectiveFunction::rates_for(const linalg::Vector& x,
                                  std::vector<double>& rates) const {
  rates = base_rates_;
  for (std::size_t i = 0; i < x.size(); ++i) {
    RMS_CHECK(estimated_slots_[i] < rates.size());
    rates[estimated_slots_[i]] = x[i];
  }
}

Status ObjectiveFunction::solve_file(std::size_t file_index,
                                     const std::vector<double>& prefactors,
                                     SolveScratch& scratch,
                                     const solver::WarmStartProfile* warm,
                                     const solver::FactorCache* factors,
                                     solver::WarmStartProfile* capture,
                                     solver::FactorCache* factor_capture,
                                     double* segment, double& solve_seconds,
                                     solver::IntegrationStats& stats) const {
  const Experiment& experiment = experiments_[file_index];
  support::WallTimer timer;

  // Evaluate the rate law at the file's cure temperature: Arrhenius slots
  // combine the (possibly estimated) prefactor with their activation
  // energy; plain slots pass through.
  scratch.rates.assign(prefactors.begin(), prefactors.end());
  if (options_.rate_table != nullptr && experiment.temperature > 0.0) {
    for (std::uint32_t s = 0; s < scratch.rates.size(); ++s) {
      scratch.rates[s] = options_.rate_table->value_with_prefactor(
          s, prefactors[s], experiment.temperature);
    }
  }

  if (scratch.integrator == nullptr) {
    // The ODE closures read the scratch's rate buffer through a pointer, so
    // the system (and the solver holding it) is built once per scratch and
    // reused for every file and parameter vector. The interpreter is shared
    // across threads (run() is const; registers live in per-scratch state);
    // the native backend is stateless outright.
    const vm::Interpreter* interpreter = &interpreter_;
    const codegen::NativeBackend* native = options_.native_backend;
    std::vector<double>* rates = &scratch.rates;
    vm::Scratch* batch = &scratch.batch_scratch;
    solver::OdeSystem system;
    system.dimension = program_->species_count;
    if (native != nullptr) {
      system.rhs = [native, rates](double t, const double* y, double* ydot) {
        native->rhs(t, y, rates->data(), ydot);
      };
      if (native->has_batch()) {
        system.rhs_batch = [native, rates](double t, const double* ys,
                                           double* ydots, std::size_t count) {
          native->rhs_batch(t, ys, rates->data(), ydots, count);
        };
      }
    } else {
      system.rhs = [interpreter, rates](double t, const double* y,
                                        double* ydot) {
        interpreter->run(t, y, rates->data(), ydot);
      };
      // Batched RHS: the solver's finite-difference Jacobian evaluates
      // chunks of perturbed states in one pass over the tape.
      system.rhs_batch = [interpreter, rates, batch](double t,
                                                     const double* ys,
                                                     double* ydots,
                                                     std::size_t count) {
        interpreter->run_batch_shared_k(t, ys, rates->data(), ydots, count,
                                        *batch);
      };
    }
    solver::IntegrationOptions integration = options_.integration;
    if (native != nullptr && native->has_jacobian()) {
      system.sparse_jacobian = [native, rates](double t, const double* y,
                                               linalg::CsrMatrix& out) {
        out.rows = out.cols = native->dimension();
        out.row_offsets = native->jacobian_row_offsets();
        out.col_indices = native->jacobian_col_indices();
        out.values.resize(out.col_indices.size());
        native->jacobian_values(t, y, rates->data(), out.values.data());
      };
      integration.newton_linear_solver = solver::NewtonLinearSolver::kSparseLu;
    } else if (options_.compiled_jacobian != nullptr) {
      system.sparse_jacobian =
          codegen::SparseJacobianEvaluator(options_.compiled_jacobian, rates);
      integration.newton_linear_solver = solver::NewtonLinearSolver::kSparseLu;
    }
    scratch.integrator =
        std::make_unique<solver::AdamsGear>(system, integration);
  }

  solver::AdamsGear& integrator = *scratch.integrator;
  integrator.set_warm_start(warm);
  integrator.set_factor_cache(factors);
  integrator.set_factor_recorder(factor_capture);
  Status status = integrator.initialize(
      experiment.data.times.empty()
          ? 0.0
          : std::min(0.0, experiment.data.times.front()),
      experiment.initial_state);
  if (status.is_ok()) {
    for (std::size_t j = 0; j < experiment.data.record_count(); ++j) {
      status = integrator.advance_to(experiment.data.times[j], scratch.y);
      if (!status.is_ok()) break;
      const double simulated = observable_.measure(scratch.y);
      segment[j] = simulated - experiment.data.values[j];
    }
  }
  integrator.set_warm_start(nullptr);
  integrator.set_factor_cache(nullptr);
  integrator.set_factor_recorder(nullptr);
  if (status.is_ok() && capture != nullptr) {
    integrator.capture_warm_start(*capture);
  }
  stats = integrator.stats();
  solve_seconds = timer.seconds();
  return status;
}

ObjectiveFunction::SolveScratch& ObjectiveFunction::acquire_scratch() {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  if (free_scratch_.empty()) {
    scratch_pool_.push_back(std::make_unique<SolveScratch>());
    return *scratch_pool_.back();
  }
  SolveScratch* scratch = free_scratch_.back();
  free_scratch_.pop_back();
  return *scratch;
}

void ObjectiveFunction::release_scratch(SolveScratch& scratch) {
  std::lock_guard<std::mutex> lock(scratch_mutex_);
  free_scratch_.push_back(&scratch);
}

void ObjectiveFunction::run_tasks(
    std::size_t count, const std::vector<double>& predicted,
    const std::function<void(std::size_t)>& body) {
  // Longest-predicted-first task order: §4.4's priority queue as a list
  // schedule. With the work-stealing pool this behaves like dynamic LPT
  // (idle workers pull the longest remaining work); serially it is just a
  // permutation. Either way every task commits into its own slot, so the
  // execution order never shows in the results.
  task_order_.resize(count);
  std::iota(task_order_.begin(), task_order_.end(), std::size_t{0});
  const bool have_predictions =
      predicted.size() == count &&
      std::any_of(predicted.begin(), predicted.end(),
                  [](double t) { return t > 0.0; });
  if (have_predictions) {
    std::stable_sort(task_order_.begin(), task_order_.end(),
                     [&predicted](std::size_t a, std::size_t b) {
                       return predicted[a] > predicted[b];
                     });
  }
  const auto run_one = [this, &body](std::size_t i) { body(task_order_[i]); };
  if (pool_ != nullptr) {
    pool_->parallel_for(0, count, 1, run_one);
  } else {
    for (std::size_t i = 0; i < count; ++i) run_one(i);
  }
}

Status ObjectiveFunction::evaluate(const linalg::Vector& x,
                                   linalg::Vector& residuals) {
  if (x.size() != estimated_slots_.size()) {
    return support::invalid_argument(support::str_format(
        "expected %zu parameters, got %zu", estimated_slots_.size(),
        x.size()));
  }
  std::vector<double> rates;
  rates_for(x, rates);

  const std::size_t files = experiments_.size();
  const std::size_t m = residual_size();
  const int ranks = std::max(options_.ranks, 1);
  const bool have_times =
      !file_times_.empty() &&
      *std::max_element(file_times_.begin(), file_times_.end()) > 0.0;

  // Schedule: block distribution, or LPT on the previous call's times
  // ("at the next objective function call, every processor will receive the
  //  balanced workload calculated by the current objective function call").
  // In pool mode the assignment is the §4.4 plan over the pool's workers;
  // work stealing may rebalance execution without affecting results.
  const int schedule_ranks =
      options_.pool_workers > 0 ? options_.pool_workers : ranks;
  if (options_.dynamic_load_balancing && have_times) {
    assignment_ = parallel::lpt_schedule(file_times_, schedule_ranks);
  } else {
    assignment_ = parallel::block_schedule(files, schedule_ranks);
  }

  residuals.assign(m, 0.0);
  std::vector<double> new_times(files, 0.0);
  const bool per_file = options_.layout == ResidualLayout::kPerFileRecord;

  Status first_error = Status::ok();
  std::mutex error_mutex;

  if (options_.pool_workers > 0 || ranks == 1) {
    // Throughput path: one task per file over the persistent pool (or
    // inline), disjoint per-file segments, deterministic serial reduction.
    const bool warm = options_.warm_start;
    eval_segments_.assign(total_records_, 0.0);
    task_seconds_.assign(files, 0.0);
    task_stats_.assign(files, solver::IntegrationStats{});
    run_tasks(files, file_times_, [&](std::size_t f) {
      SolveScratch& scratch = acquire_scratch();
      const solver::WarmStartProfile* seed =
          warm && warm_valid_[f] ? &warm_profiles_[f] : nullptr;
      const solver::FactorCache* factors =
          warm && !factor_caches_[f].empty() ? &factor_caches_[f] : nullptr;
      solver::WarmStartProfile* capture = warm ? &new_profiles_[f] : nullptr;
      solver::FactorCache* factor_capture =
          warm ? &new_factor_caches_[f] : nullptr;
      Status s = solve_file(f, rates, scratch, seed, factors, capture,
                            factor_capture,
                            eval_segments_.data() + file_offsets_[f],
                            task_seconds_[f], task_stats_[f]);
      release_scratch(scratch);
      if (!s.is_ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.is_ok()) first_error = s;
      }
    });
    RMS_RETURN_IF_ERROR(first_error);
    for (std::size_t f = 0; f < files; ++f) {
      const std::size_t count = experiments_[f].data.record_count();
      const double* segment = eval_segments_.data() + file_offsets_[f];
      if (per_file) {
        std::copy(segment, segment + count,
                  residuals.begin() +
                      static_cast<std::ptrdiff_t>(file_offsets_[f]));
      } else {
        for (std::size_t j = 0; j < count; ++j) residuals[j] += segment[j];
      }
      new_times[f] = task_seconds_[f];
      solver_stats_.solves += 1;
      solver_stats_.integration += task_stats_[f];
      if (warm && !new_profiles_[f].empty()) {
        // The base evaluation is the warm cache's single writer: Jacobian
        // column solves read these profiles but never update them, so the
        // cache content is independent of task interleaving.
        std::swap(warm_profiles_[f], new_profiles_[f]);
        new_profiles_[f].clear();
        warm_valid_[f] = true;
      }
      if (warm && !new_factor_caches_[f].empty()) {
        // Same single-writer rule for the factorization cache.
        std::swap(factor_caches_[f], new_factor_caches_[f]);
        new_factor_caches_[f].clear();
      }
    }
  } else {
    // Fig. 9: every rank solves its files into a local error vector, then
    // Allreduce(SUM) combines error vectors and timing vectors.
    parallel::run_parallel(ranks, [&](parallel::Communicator& comm) {
      std::vector<double> local_errors(m, 0.0);
      std::vector<double> local_times(files, 0.0);
      std::vector<double> segment;
      SolveScratch scratch;
      solver::IntegrationStats local_stats;
      std::size_t local_solves = 0;
      for (std::size_t f = 0; f < files; ++f) {
        if (assignment_[f] != comm.rank()) continue;
        const std::size_t count = experiments_[f].data.record_count();
        segment.assign(count, 0.0);
        solver::IntegrationStats stats;
        Status s = solve_file(f, rates, scratch, nullptr, nullptr, nullptr,
                              nullptr, segment.data(), local_times[f], stats);
        local_stats += stats;
        ++local_solves;
        if (!s.is_ok()) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (first_error.is_ok()) first_error = s;
          continue;
        }
        if (per_file) {
          std::copy(segment.begin(), segment.end(),
                    local_errors.begin() +
                        static_cast<std::ptrdiff_t>(file_offsets_[f]));
        } else {
          for (std::size_t j = 0; j < count; ++j) {
            local_errors[j] += segment[j];
          }
        }
      }
      comm.all_reduce_sum(local_errors);
      comm.all_reduce_sum(local_times);
      if (comm.rank() == 0) {
        for (std::size_t i = 0; i < m; ++i) residuals[i] = local_errors[i];
        new_times = local_times;
      }
      {
        // Integer sums are order-independent, so accumulating under a mutex
        // keeps the aggregate deterministic.
        std::lock_guard<std::mutex> lock(error_mutex);
        solver_stats_.solves += local_solves;
        solver_stats_.integration += local_stats;
      }
      comm.barrier();
    });
    RMS_RETURN_IF_ERROR(first_error);
  }

  file_times_ = std::move(new_times);
  return Status::ok();
}

Status ObjectiveFunction::evaluate_jacobian(const linalg::Vector& x,
                                            const linalg::Vector& r,
                                            const linalg::Vector& steps,
                                            linalg::Matrix& jacobian) {
  const std::size_t n = x.size();
  const std::size_t m = residual_size();
  const std::size_t files = experiments_.size();
  if (n != estimated_slots_.size()) {
    return support::invalid_argument(support::str_format(
        "expected %zu parameters, got %zu", estimated_slots_.size(), n));
  }
  if (steps.size() != n || r.size() != m) {
    return support::invalid_argument("jacobian input size mismatch");
  }

  // One full prefactor vector per FD column, shared read-only by that
  // column's file tasks. Built through the same x -> rates mapping a
  // perturbed evaluate() call would use, so the hook path reproduces the
  // serial per-column loop bit for bit.
  column_rates_.resize(n);
  linalg::Vector x_pert = x;
  for (std::size_t c = 0; c < n; ++c) {
    x_pert[c] = x[c] + steps[c];
    rates_for(x_pert, column_rates_[c]);
    x_pert[c] = x[c];
  }

  // The flat task pool of the tentpole: one LM iteration's Jacobian is
  // n_columns x n_files independent solves, ordered by recorded per-file
  // time and committed into disjoint flat-buffer segments.
  const std::size_t tasks = n * files;
  jacobian_segments_.assign(n * total_records_, 0.0);
  task_seconds_.assign(tasks, 0.0);
  task_stats_.assign(tasks, solver::IntegrationStats{});
  std::vector<double> predicted(tasks, 0.0);
  if (file_times_.size() == files) {
    for (std::size_t t = 0; t < tasks; ++t) {
      predicted[t] = file_times_[t % files];
    }
  }

  const bool warm = options_.warm_start;
  Status first_error = Status::ok();
  std::mutex error_mutex;
  run_tasks(tasks, predicted, [&](std::size_t t) {
    const std::size_t c = t / files;
    const std::size_t f = t % files;
    SolveScratch& scratch = acquire_scratch();
    // Columns warm-start from the current iterate's base-solve profile and
    // factorizations (the perturbation is tiny, so the base trajectory's
    // step/order history and iteration matrices are near-perfect seeds) and
    // never write either cache back.
    const solver::WarmStartProfile* seed =
        warm && warm_valid_[f] ? &warm_profiles_[f] : nullptr;
    const solver::FactorCache* factors =
        warm && !factor_caches_[f].empty() ? &factor_caches_[f] : nullptr;
    Status s = solve_file(
        f, column_rates_[c], scratch, seed, factors, nullptr, nullptr,
        jacobian_segments_.data() + c * total_records_ + file_offsets_[f],
        task_seconds_[t], task_stats_[t]);
    release_scratch(scratch);
    if (!s.is_ok()) {
      std::lock_guard<std::mutex> lock(error_mutex);
      if (first_error.is_ok()) first_error = s;
    }
  });
  RMS_RETURN_IF_ERROR(first_error);

  const bool per_file = options_.layout == ResidualLayout::kPerFileRecord;
  std::vector<double> column(per_file ? 0 : m);
  for (std::size_t c = 0; c < n; ++c) {
    const double* flat = jacobian_segments_.data() + c * total_records_;
    const double* r_pert = flat;
    if (!per_file) {
      std::fill(column.begin(), column.end(), 0.0);
      for (std::size_t f = 0; f < files; ++f) {
        const std::size_t count = experiments_[f].data.record_count();
        const double* segment = flat + file_offsets_[f];
        for (std::size_t j = 0; j < count; ++j) column[j] += segment[j];
      }
      r_pert = column.data();
    }
    const double inv_step = 1.0 / steps[c];
    for (std::size_t i = 0; i < m; ++i) {
      jacobian(i, c) = (r_pert[i] - r[i]) * inv_step;
    }
  }

  // Per-file time for the next schedule: mean over this iteration's
  // columns. Work and stats aggregate in fixed task order.
  if (n > 0) {
    for (std::size_t f = 0; f < files; ++f) {
      double sum = 0.0;
      for (std::size_t c = 0; c < n; ++c) sum += task_seconds_[c * files + f];
      file_times_[f] = sum / static_cast<double>(n);
    }
  }
  for (std::size_t t = 0; t < tasks; ++t) {
    solver_stats_.solves += 1;
    solver_stats_.integration += task_stats_[t];
  }
  return Status::ok();
}

}  // namespace rms::estimator
