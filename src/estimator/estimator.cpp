#include "estimator/estimator.hpp"

namespace rms::estimator {

support::Expected<EstimationResult> estimate_parameters(
    ObjectiveFunction& objective, std::vector<double> x0,
    const std::vector<double>& lower_bounds,
    const std::vector<double>& upper_bounds,
    const EstimatorOptions& options) {
  auto residual_fn = [&objective](const linalg::Vector& x,
                                  linalg::Vector& r) -> support::Status {
    return objective.evaluate(x, r);
  };
  // The objective owns the FD Jacobian: the optimizer hands over the base
  // residual and the bound-aware steps, and all (column, file) solves run
  // as one flat task pool (warm-started from the base solve when enabled).
  auto jacobian_fn = [&objective](const linalg::Vector& x,
                                  const linalg::Vector& r,
                                  const linalg::Vector& steps,
                                  linalg::Matrix& jacobian) -> support::Status {
    return objective.evaluate_jacobian(x, r, steps, jacobian);
  };
  auto lm = nlopt::bounded_least_squares(residual_fn, jacobian_fn,
                                         objective.residual_size(),
                                         std::move(x0), lower_bounds,
                                         upper_bounds, options.levmar);
  if (!lm.is_ok()) return lm.status();

  EstimationResult result;
  result.rate_constants = lm->x;
  result.final_cost = lm->cost;
  result.iterations = lm->iterations;
  result.objective_evaluations = lm->residual_evaluations;
  result.converged = lm->converged;
  result.message = lm->message;
  result.file_times = objective.last_file_times();
  result.solver_stats = objective.solver_stats();
  return result;
}

}  // namespace rms::estimator
