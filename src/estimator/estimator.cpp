#include "estimator/estimator.hpp"

namespace rms::estimator {

support::Expected<EstimationResult> estimate_parameters(
    ObjectiveFunction& objective, std::vector<double> x0,
    const std::vector<double>& lower_bounds,
    const std::vector<double>& upper_bounds,
    const EstimatorOptions& options) {
  auto residual_fn = [&objective](const linalg::Vector& x,
                                  linalg::Vector& r) -> support::Status {
    return objective.evaluate(x, r);
  };
  auto lm = nlopt::bounded_least_squares(residual_fn, objective.residual_size(),
                                         std::move(x0), lower_bounds,
                                         upper_bounds, options.levmar);
  if (!lm.is_ok()) return lm.status();

  EstimationResult result;
  result.rate_constants = lm->x;
  result.final_cost = lm->cost;
  result.iterations = lm->iterations;
  result.objective_evaluations = lm->residual_evaluations;
  result.converged = lm->converged;
  result.message = lm->message;
  result.file_times = objective.last_file_times();
  return result;
}

}  // namespace rms::estimator
