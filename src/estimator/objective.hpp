// The parallel objective function (paper §4.3, Fig. 9).
//
// For a candidate vector of kinetic rate constants, every experimental data
// file is solved: the ODE system is integrated with the Adams-Gear solver
// over the file's time grid, the simulated property is compared against the
// measured values, and the differences accumulate into an error vector.
// Ranks process disjoint file subsets (block distribution, or the §4.4
// dynamic load balancing schedule built from the previous call's recorded
// per-file solve times) and combine their local error vectors with
// Allreduce(SUM), exactly as in Fig. 9.
#pragma once

#include <memory>
#include <vector>

#include "codegen/jacobian.hpp"
#include "codegen/native_backend.hpp"
#include "data/experiment.hpp"
#include "data/synthetic.hpp"
#include "linalg/matrix.hpp"
#include "rcip/rate_table.hpp"
#include "solver/ode.hpp"
#include "support/status.hpp"
#include "vm/interpreter.hpp"
#include "vm/program.hpp"

namespace rms::estimator {

/// One experiment: the measured records plus the formulation's initial
/// concentrations (formulations differ in their initial state) and cure
/// temperature — the paper's files record "different formulations cured at
/// different temperatures".
struct Experiment {
  data::ExperimentData data;
  std::vector<double> initial_state;
  /// Cure temperature [K]; 0 means "no temperature dependence" (Arrhenius
  /// slots evaluate at the reference temperature).
  double temperature = 0.0;
};

enum class ResidualLayout {
  /// The paper's layout: error_vector[j] accumulates the per-timestep
  /// differences summed over files (global error vector of Fig. 9).
  kGlobalPerTimestep,
  /// One residual per (file, record): better conditioned for the
  /// Levenberg-Marquardt fit; used by the recovery tests and examples.
  kPerFileRecord,
};

struct ObjectiveOptions {
  solver::IntegrationOptions integration;
  ResidualLayout layout = ResidualLayout::kPerFileRecord;
  /// Ranks for the MiniMpi execution of Fig. 9. 1 = sequential.
  int ranks = 1;
  /// Use the §4.4 dynamic load balancing schedule (LPT on the previous
  /// call's recorded times) instead of the block distribution.
  bool dynamic_load_balancing = false;
  /// When set, experiments with a positive cure temperature evaluate
  /// Arrhenius-form rate constants at that temperature; an estimated
  /// parameter for an Arrhenius slot is its (temperature-independent)
  /// prefactor. Must outlive the objective.
  const rcip::RateTable* rate_table = nullptr;
  /// When set, every per-file solve uses the compiler-generated analytic
  /// Jacobian with the sparse-direct Newton path instead of dense finite
  /// differences — the fast configuration for large models. Must outlive
  /// the objective.
  const codegen::CompiledJacobian* compiled_jacobian = nullptr;
  /// When set, every per-file solve runs the RHS, the batched RHS, and —
  /// when the module carries one — the analytic sparse Jacobian through
  /// the AOT-compiled native backend instead of the bytecode VM. Must
  /// outlive the objective; `program` is then only consulted for the
  /// system dimension. Takes precedence over compiled_jacobian.
  const codegen::NativeBackend* native_backend = nullptr;
};

class ObjectiveFunction {
 public:
  /// `program` computes the ODE RHS given (t, y, k); `estimated_slots[i]`
  /// says which rate-constant slot parameter x[i] controls; `base_rates` is
  /// the full k vector (slots not estimated keep their base value).
  ObjectiveFunction(const vm::Program& program, data::Observable observable,
                    std::vector<Experiment> experiments,
                    std::vector<std::uint32_t> estimated_slots,
                    std::vector<double> base_rates,
                    ObjectiveOptions options = {});

  /// Length of the residual vector under the configured layout.
  [[nodiscard]] std::size_t residual_size() const;

  /// Evaluates the residuals for parameter vector x.
  support::Status evaluate(const linalg::Vector& x, linalg::Vector& residuals);

  /// Per-file solve seconds recorded by the most recent evaluate() — the
  /// timing list the dynamic load balancer consumes (§4.4) and the input to
  /// the SimCluster Table 2 replay.
  [[nodiscard]] const std::vector<double>& last_file_times() const {
    return file_times_;
  }

  /// Schedule used by the most recent evaluate().
  [[nodiscard]] const std::vector<int>& last_assignment() const {
    return assignment_;
  }

  [[nodiscard]] std::size_t experiment_count() const {
    return experiments_.size();
  }

 private:
  support::Status solve_file(std::size_t file_index,
                             const std::vector<double>& rates,
                             std::vector<double>& local_errors,
                             double& solve_seconds) const;

  const vm::Program* program_;
  /// Shared across all ranks: Interpreter::run is const and keeps its
  /// registers in per-thread scratch, so one instance serves every
  /// concurrent solve.
  vm::Interpreter interpreter_;
  data::Observable observable_;
  std::vector<Experiment> experiments_;
  std::vector<std::uint32_t> estimated_slots_;
  std::vector<double> base_rates_;
  ObjectiveOptions options_;
  std::size_t max_records_ = 0;
  std::vector<double> file_times_;
  std::vector<int> assignment_;
};

}  // namespace rms::estimator
