// The parallel objective function (paper §4.3, Fig. 9).
//
// For a candidate vector of kinetic rate constants, every experimental data
// file is solved: the ODE system is integrated with the Adams-Gear solver
// over the file's time grid, the simulated property is compared against the
// measured values, and the differences accumulate into an error vector.
//
// Two execution engines are provided:
//   - the paper-faithful MiniMpi path (Fig. 9): `ranks` threads are
//     launched per call, each solves a disjoint file subset (block
//     distribution, or the §4.4 LPT schedule built from the previous call's
//     recorded per-file solve times) and the local error vectors combine
//     with Allreduce(SUM);
//   - the throughput path (`pool_workers` > 0): a *persistent* work-stealing
//     pool owned by the objective. One Levenberg-Marquardt iteration is a
//     flat pool of independent (FD column, file) solve tasks
//     (evaluate_jacobian), ordered longest-recorded-time-first (§4.4 LPT as
//     a list schedule) and committed into disjoint buffers, so results are
//     bit-identical for any worker count. Per-worker scratch (solver,
//     VM registers, rate buffers) and per-file warm-start profiles make the
//     steady-state solve allocation-free and skip the solver's cold-start
//     ramp.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "codegen/jacobian.hpp"
#include "codegen/native_backend.hpp"
#include "data/experiment.hpp"
#include "data/synthetic.hpp"
#include "linalg/matrix.hpp"
#include "rcip/rate_table.hpp"
#include "solver/adams_gear.hpp"
#include "solver/ode.hpp"
#include "support/status.hpp"
#include "vm/interpreter.hpp"
#include "vm/program.hpp"

namespace rms::support {
class ThreadPool;
}

namespace rms::estimator {

/// One experiment: the measured records plus the formulation's initial
/// concentrations (formulations differ in their initial state) and cure
/// temperature — the paper's files record "different formulations cured at
/// different temperatures".
struct Experiment {
  data::ExperimentData data;
  std::vector<double> initial_state;
  /// Cure temperature [K]; 0 means "no temperature dependence" (Arrhenius
  /// slots evaluate at the reference temperature).
  double temperature = 0.0;
};

enum class ResidualLayout {
  /// The paper's layout: error_vector[j] accumulates the per-timestep
  /// differences summed over files (global error vector of Fig. 9).
  kGlobalPerTimestep,
  /// One residual per (file, record): better conditioned for the
  /// Levenberg-Marquardt fit; used by the recovery tests and examples.
  kPerFileRecord,
};

/// Aggregated Adams-Gear work over every per-file solve the objective ran,
/// surfaced end-to-end into EstimationResult so warm-start and
/// factorization savings are observable, not just believed.
struct SolverStats {
  std::size_t solves = 0;
  solver::IntegrationStats integration;
};

struct ObjectiveOptions {
  solver::IntegrationOptions integration;
  ResidualLayout layout = ResidualLayout::kPerFileRecord;
  /// Ranks for the MiniMpi execution of Fig. 9. 1 = sequential. Ignored
  /// when pool_workers > 0.
  int ranks = 1;
  /// Use the §4.4 dynamic load balancing schedule (LPT on the previous
  /// call's recorded times) instead of the block distribution.
  bool dynamic_load_balancing = false;
  /// Workers of the persistent solve pool. 0 disables the pool (MiniMpi /
  /// sequential execution); N > 0 keeps N worker threads alive for the
  /// objective's lifetime — no thread spawn per objective call — and runs
  /// every evaluation (and every batched-Jacobian column) over them.
  /// Results are bit-identical for any value.
  int pool_workers = 0;
  /// Warm-start every per-file solve from the state the previous solve of
  /// the same file recorded: its step-size/order profile seeds the step
  /// controller (skipping the cold-start ramp), and its iteration-matrix
  /// factorizations are reused whenever the needed d0 is within the
  /// solver's drift band — FD Jacobian columns then solve with almost no
  /// sparse-LU factorization work. The error controller still validates
  /// every step, so accuracy is at solver tolerance either way.
  bool warm_start = false;
  /// When set, experiments with a positive cure temperature evaluate
  /// Arrhenius-form rate constants at that temperature; an estimated
  /// parameter for an Arrhenius slot is its (temperature-independent)
  /// prefactor. Must outlive the objective.
  const rcip::RateTable* rate_table = nullptr;
  /// When set, every per-file solve uses the compiler-generated analytic
  /// Jacobian with the sparse-direct Newton path instead of dense finite
  /// differences — the fast configuration for large models. Must outlive
  /// the objective.
  const codegen::CompiledJacobian* compiled_jacobian = nullptr;
  /// When set, every per-file solve runs the RHS, the batched RHS, and —
  /// when the module carries one — the analytic sparse Jacobian through
  /// the AOT-compiled native backend instead of the bytecode VM. Must
  /// outlive the objective; `program` is then only consulted for the
  /// system dimension. Takes precedence over compiled_jacobian.
  const codegen::NativeBackend* native_backend = nullptr;
};

class ObjectiveFunction {
 public:
  /// `program` computes the ODE RHS given (t, y, k); `estimated_slots[i]`
  /// says which rate-constant slot parameter x[i] controls; `base_rates` is
  /// the full k vector (slots not estimated keep their base value).
  ObjectiveFunction(const vm::Program& program, data::Observable observable,
                    std::vector<Experiment> experiments,
                    std::vector<std::uint32_t> estimated_slots,
                    std::vector<double> base_rates,
                    ObjectiveOptions options = {});
  ~ObjectiveFunction();

  ObjectiveFunction(const ObjectiveFunction&) = delete;
  ObjectiveFunction& operator=(const ObjectiveFunction&) = delete;

  /// Length of the residual vector under the configured layout.
  [[nodiscard]] std::size_t residual_size() const;

  /// Evaluates the residuals for parameter vector x.
  support::Status evaluate(const linalg::Vector& x, linalg::Vector& residuals);

  /// Batched forward-difference Jacobian (the nlopt::JacobianFunction
  /// contract): fills column j with (r(x + steps[j] e_j) - r) / steps[j],
  /// scheduling all (column, file) solves as one flat LPT-ordered task pool
  /// over the persistent workers (serially without a pool — identical
  /// results either way).
  support::Status evaluate_jacobian(const linalg::Vector& x,
                                    const linalg::Vector& r,
                                    const linalg::Vector& steps,
                                    linalg::Matrix& jacobian);

  /// Per-file solve seconds recorded by the most recent evaluate() or
  /// evaluate_jacobian() — the timing list the dynamic load balancer
  /// consumes (§4.4) and the input to the SimCluster Table 2 replay.
  [[nodiscard]] const std::vector<double>& last_file_times() const {
    return file_times_;
  }

  /// Schedule used (pool mode: planned; work stealing may rebalance
  /// execution without affecting results) by the most recent evaluate().
  [[nodiscard]] const std::vector<int>& last_assignment() const {
    return assignment_;
  }

  [[nodiscard]] std::size_t experiment_count() const {
    return experiments_.size();
  }

  /// Aggregated Adams-Gear statistics over every solve since construction.
  [[nodiscard]] const SolverStats& solver_stats() const {
    return solver_stats_;
  }

 private:
  struct SolveScratch;

  /// Builds the full prefactor vector for parameter vector x.
  void rates_for(const linalg::Vector& x, std::vector<double>& rates) const;

  /// Solves one file and writes the residual of record j to segment[j]
  /// (record_count entries). `warm` seeds the solver and `factors` lends it
  /// reusable iteration-matrix factorizations (either may be null);
  /// `capture` / `factor_capture` receive the accepted-step profile and the
  /// factorizations this solve performed (may be null).
  support::Status solve_file(std::size_t file_index,
                             const std::vector<double>& prefactors,
                             SolveScratch& scratch,
                             const solver::WarmStartProfile* warm,
                             const solver::FactorCache* factors,
                             solver::WarmStartProfile* capture,
                             solver::FactorCache* factor_capture,
                             double* segment, double& solve_seconds,
                             solver::IntegrationStats& stats) const;

  SolveScratch& acquire_scratch();
  void release_scratch(SolveScratch& scratch);

  /// Runs tasks 0..count-1 through `body` over the persistent pool
  /// (inline when absent), longest-predicted-first.
  void run_tasks(std::size_t count, const std::vector<double>& predicted,
                 const std::function<void(std::size_t)>& body);

  const vm::Program* program_;
  /// Shared across all ranks: Interpreter::run is const and keeps its
  /// registers in per-thread scratch, so one instance serves every
  /// concurrent solve.
  vm::Interpreter interpreter_;
  data::Observable observable_;
  std::vector<Experiment> experiments_;
  std::vector<std::uint32_t> estimated_slots_;
  std::vector<double> base_rates_;
  ObjectiveOptions options_;
  std::size_t max_records_ = 0;
  std::size_t total_records_ = 0;
  /// Record offset of file f in the kPerFileRecord layout (and in the flat
  /// per-column task buffers of evaluate_jacobian).
  std::vector<std::size_t> file_offsets_;
  std::vector<double> file_times_;
  std::vector<int> assignment_;
  SolverStats solver_stats_;

  // Persistent execution state (tentpole): long-lived worker pool,
  // per-worker scratch, per-file warm-start profiles, reusable buffers.
  std::unique_ptr<support::ThreadPool> pool_;
  std::vector<std::unique_ptr<SolveScratch>> scratch_pool_;
  std::vector<SolveScratch*> free_scratch_;
  std::mutex scratch_mutex_;
  std::vector<solver::WarmStartProfile> warm_profiles_;
  std::vector<bool> warm_valid_;
  std::vector<solver::WarmStartProfile> new_profiles_;
  /// Per-file iteration-matrix factorizations recorded by the latest base
  /// evaluation (single writer, like the warm profiles): the solver reuses
  /// a cached factor instead of refactoring whenever the needed d0 lies
  /// within the warm drift band of a recorded one, which removes most of
  /// the sparse-LU cost from FD column solves.
  std::vector<solver::FactorCache> factor_caches_;
  std::vector<solver::FactorCache> new_factor_caches_;
  std::vector<double> eval_segments_;      ///< evaluate(): per-file residuals
  std::vector<double> jacobian_segments_;  ///< evaluate_jacobian(): per (column, file)
  std::vector<double> task_seconds_;
  std::vector<solver::IntegrationStats> task_stats_;
  std::vector<std::size_t> task_order_;
  std::vector<std::vector<double>> column_rates_;
};

}  // namespace rms::estimator
