// Parallel Parameter Estimator (paper §4): bounded Levenberg-Marquardt over
// the parallel objective function, estimating the kinetic rate constants
// that best fit the experimental data within chemist-supplied bounds.
#pragma once

#include <vector>

#include "estimator/objective.hpp"
#include "nlopt/levmar.hpp"
#include "support/status.hpp"

namespace rms::estimator {

struct EstimationResult {
  /// Estimated value per parameter (same order as estimated_slots).
  std::vector<double> rate_constants;
  double final_cost = 0.0;
  std::size_t iterations = 0;
  std::size_t objective_evaluations = 0;
  bool converged = false;
  std::string message;
  /// Per-file solve seconds from the final objective evaluation.
  std::vector<double> file_times;
  /// Aggregated Adams-Gear work over every per-file solve of the run
  /// (steps, Newton iterations, Jacobian evaluations, factorizations,
  /// warm-start hits).
  SolverStats solver_stats;
};

struct EstimatorOptions {
  nlopt::LevMarOptions levmar;

  EstimatorOptions() {
    // Residuals come out of an adaptive ODE solver whose output carries
    // tolerance-level noise (~rtol). A forward-difference step well above
    // that floor keeps the Jacobian signal-dominated; 1e-7 (the analytic
    // default) would difference the solver noise instead.
    levmar.fd_relative_step = 1e-4;
  }
};

/// Runs the full estimation: bounds constrain the rate constants
/// (paper §4: "the chemist ... set[s] bounds on the different kinetic
/// parameters"), x0 is the initial guess.
support::Expected<EstimationResult> estimate_parameters(
    ObjectiveFunction& objective, std::vector<double> x0,
    const std::vector<double>& lower_bounds,
    const std::vector<double>& upper_bounds,
    const EstimatorOptions& options = {});

}  // namespace rms::estimator
