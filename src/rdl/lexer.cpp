#include "rdl/lexer.hpp"

#include <cctype>
#include <unordered_map>

#include "support/strings.hpp"

namespace rms::rdl {

namespace {

const std::unordered_map<std::string_view, TokenKind>& keyword_table() {
  static const auto* table = new std::unordered_map<std::string_view, TokenKind>{
      {"species", TokenKind::kSpecies},
      {"const", TokenKind::kConst},
      {"rule", TokenKind::kRule},
      {"forbid", TokenKind::kForbid},
      {"site", TokenKind::kSite},
      {"bond", TokenKind::kBond},
      {"rate", TokenKind::kRate},
      {"init", TokenKind::kInit},
      {"disconnect", TokenKind::kDisconnect},
      {"connect", TokenKind::kConnect},
      {"inc_bond", TokenKind::kIncBond},
      {"dec_bond", TokenKind::kDecBond},
      {"remove_h", TokenKind::kRemoveH},
      {"add_h", TokenKind::kAddH},
      {"where", TokenKind::kWhere},
  };
  return *table;
}

}  // namespace

std::string_view token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEof: return "end of input";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kString: return "string";
    case TokenKind::kSpecies: return "'species'";
    case TokenKind::kConst: return "'const'";
    case TokenKind::kRule: return "'rule'";
    case TokenKind::kForbid: return "'forbid'";
    case TokenKind::kSite: return "'site'";
    case TokenKind::kBond: return "'bond'";
    case TokenKind::kRate: return "'rate'";
    case TokenKind::kInit: return "'init'";
    case TokenKind::kDisconnect: return "'disconnect'";
    case TokenKind::kConnect: return "'connect'";
    case TokenKind::kIncBond: return "'inc_bond'";
    case TokenKind::kDecBond: return "'dec_bond'";
    case TokenKind::kRemoveH: return "'remove_h'";
    case TokenKind::kAddH: return "'add_h'";
    case TokenKind::kWhere: return "'where'";
    case TokenKind::kLBrace: return "'{'";
    case TokenKind::kRBrace: return "'}'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kSemicolon: return "';'";
    case TokenKind::kComma: return "','";
    case TokenKind::kColon: return "':'";
    case TokenKind::kAssign: return "'='";
    case TokenKind::kPlus: return "'+'";
    case TokenKind::kMinus: return "'-'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kSlash: return "'/'";
    case TokenKind::kDotDot: return "'..'";
    case TokenKind::kGreaterEqual: return "'>='";
    case TokenKind::kLessEqual: return "'<='";
    case TokenKind::kEqualEqual: return "'=='";
  }
  return "?";
}

support::Expected<std::vector<Token>> tokenize(std::string_view source) {
  std::vector<Token> tokens;
  SourceLocation loc;
  std::size_t i = 0;

  auto advance = [&](std::size_t n = 1) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i < source.size() && source[i] == '\n') {
        ++loc.line;
        loc.column = 1;
      } else {
        ++loc.column;
      }
      ++i;
    }
  };
  auto peek = [&](std::size_t offset = 0) -> char {
    return i + offset < source.size() ? source[i + offset] : '\0';
  };
  auto push = [&](TokenKind kind, SourceLocation at, std::string text = {},
                  double number = 0.0) {
    tokens.push_back(Token{kind, std::move(text), number, at});
  };

  while (i < source.size()) {
    const char c = peek();
    const SourceLocation at = loc;

    if (std::isspace(static_cast<unsigned char>(c))) {
      advance();
      continue;
    }
    if (c == '#' || (c == '/' && peek(1) == '/')) {
      while (i < source.size() && peek() != '\n') advance();
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')) {
        advance();
      }
      std::string_view word = source.substr(start, i - start);
      auto kw = keyword_table().find(word);
      if (kw != keyword_table().end()) {
        push(kw->second, at);
      } else {
        push(TokenKind::kIdent, at, std::string(word));
      }
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      while (i < source.size() &&
             (std::isdigit(static_cast<unsigned char>(peek())) || peek() == '.' ||
              peek() == 'e' || peek() == 'E' ||
              ((peek() == '+' || peek() == '-') &&
               (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        // Stop before '..' range operator.
        if (peek() == '.' && peek(1) == '.') break;
        advance();
      }
      double value = 0.0;
      if (!support::parse_double(source.substr(start, i - start), value)) {
        return support::parse_error(support::str_format(
            "malformed number at line %u column %u", at.line, at.column));
      }
      push(TokenKind::kNumber, at, std::string(source.substr(start, i - start)),
           value);
      continue;
    }
    if (c == '"') {
      advance();
      std::size_t start = i;
      while (i < source.size() && peek() != '"' && peek() != '\n') advance();
      if (peek() != '"') {
        return support::parse_error(support::str_format(
            "unterminated string at line %u column %u", at.line, at.column));
      }
      push(TokenKind::kString, at, std::string(source.substr(start, i - start)));
      advance();
      continue;
    }

    // Multi-character operators.
    if (c == '.' && peek(1) == '.') {
      push(TokenKind::kDotDot, at);
      advance(2);
      continue;
    }
    if (c == '>' && peek(1) == '=') {
      push(TokenKind::kGreaterEqual, at);
      advance(2);
      continue;
    }
    if (c == '<' && peek(1) == '=') {
      push(TokenKind::kLessEqual, at);
      advance(2);
      continue;
    }
    if (c == '=' && peek(1) == '=') {
      push(TokenKind::kEqualEqual, at);
      advance(2);
      continue;
    }

    TokenKind kind;
    switch (c) {
      case '{': kind = TokenKind::kLBrace; break;
      case '}': kind = TokenKind::kRBrace; break;
      case '(': kind = TokenKind::kLParen; break;
      case ')': kind = TokenKind::kRParen; break;
      case ';': kind = TokenKind::kSemicolon; break;
      case ',': kind = TokenKind::kComma; break;
      case ':': kind = TokenKind::kColon; break;
      case '=': kind = TokenKind::kAssign; break;
      case '+': kind = TokenKind::kPlus; break;
      case '-': kind = TokenKind::kMinus; break;
      case '*': kind = TokenKind::kStar; break;
      case '/': kind = TokenKind::kSlash; break;
      default:
        return support::parse_error(support::str_format(
            "unexpected character '%c' at line %u column %u", c, at.line,
            at.column));
    }
    push(kind, at);
    advance();
  }
  push(TokenKind::kEof, loc);
  return tokens;
}

}  // namespace rms::rdl
