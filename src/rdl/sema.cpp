#include "rdl/sema.hpp"

#include <cctype>
#include <cmath>
#include <functional>
#include <unordered_set>

#include "chem/canonical.hpp"
#include "rdl/parser.hpp"
#include "chem/smiles.hpp"
#include "support/strings.hpp"

namespace rms::rdl {

namespace {

using support::Expected;
using support::semantic_error;
using support::Status;

Status located(const SourceLocation& loc, const std::string& msg) {
  return semantic_error(
      support::str_format("%s (line %u)", msg.c_str(), loc.line));
}

Expected<double> evaluate_const(
    const ConstExpr& expr,
    const std::unordered_map<std::string, double>& env) {
  switch (expr.kind) {
    case ConstExpr::Kind::kNumber:
      return expr.number;
    case ConstExpr::Kind::kReference: {
      auto it = env.find(expr.reference);
      if (it == env.end()) {
        return located(expr.location,
                       "reference to undefined constant '" + expr.reference +
                           "' (constants must be defined before use)");
      }
      return it->second;
    }
    case ConstExpr::Kind::kNeg: {
      auto v = evaluate_const(*expr.lhs, env);
      if (!v.is_ok()) return v.status();
      return -*v;
    }
    default: {
      auto lhs = evaluate_const(*expr.lhs, env);
      if (!lhs.is_ok()) return lhs.status();
      auto rhs = evaluate_const(*expr.rhs, env);
      if (!rhs.is_ok()) return rhs.status();
      switch (expr.kind) {
        case ConstExpr::Kind::kAdd: return *lhs + *rhs;
        case ConstExpr::Kind::kSub: return *lhs - *rhs;
        case ConstExpr::Kind::kMul: return *lhs * *rhs;
        case ConstExpr::Kind::kDiv:
          if (*rhs == 0.0) {
            return located(expr.location, "division by zero in constant");
          }
          return *lhs / *rhs;
        default: break;
      }
    }
  }
  RMS_UNREACHABLE();
}

/// Length of the atom token ending at position `end` (exclusive) in `s`:
/// a [bracket group] or a one/two-letter bare element symbol.
std::size_t trailing_atom_token_length(const std::string& s, std::size_t end) {
  if (end == 0) return 0;
  if (s[end - 1] == ']') {
    const std::size_t open = s.rfind('[', end - 1);
    if (open == std::string::npos) return 0;
    return end - open;
  }
  // Two-letter symbols in our subset: Cl, Br, Zn.
  if (end >= 2) {
    const std::string two = s.substr(end - 2, 2);
    if (two == "Cl" || two == "Br" || two == "Zn") return 2;
  }
  const char c = s[end - 1];
  if (std::isupper(static_cast<unsigned char>(c))) return 1;
  return 0;
}

int pattern_component_count(const chem::Pattern& pattern) {
  const std::size_t n = pattern.atom_count();
  std::vector<std::uint32_t> parent(n);
  for (std::uint32_t i = 0; i < n; ++i) parent[i] = i;
  std::function<std::uint32_t(std::uint32_t)> find =
      [&](std::uint32_t x) -> std::uint32_t {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const chem::BondConstraint& bc : pattern.bonds()) {
    parent[find(bc.a)] = find(bc.b);
  }
  std::unordered_set<std::uint32_t> roots;
  for (std::uint32_t i = 0; i < n; ++i) roots.insert(find(i));
  return static_cast<int>(roots.size());
}

}  // namespace

const CompiledSpecies* CompiledModel::find_species(
    const std::string& name) const {
  for (const CompiledSpecies& s : species) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double CompiledModel::constant_value(const std::string& name,
                                     bool* found) const {
  for (const auto& [n, v] : constants) {
    if (n == name) {
      if (found != nullptr) *found = true;
      return v;
    }
  }
  if (found != nullptr) *found = false;
  return 0.0;
}

Expected<std::string> expand_template(const std::string& tmpl,
                                      const std::string& parameter,
                                      int value) {
  std::string out;
  std::size_t i = 0;
  const std::string needle = "{" + parameter + "}";
  while (i < tmpl.size()) {
    if (tmpl.compare(i, needle.size(), needle) == 0) {
      const std::size_t atom_len = trailing_atom_token_length(out, out.size());
      if (atom_len == 0) {
        return semantic_error(
            "variant placeholder '" + needle +
            "' must directly follow an atom token in the SMILES template");
      }
      const std::string atom = out.substr(out.size() - atom_len);
      for (int rep = 1; rep < value; ++rep) out += atom;
      i += needle.size();
      continue;
    }
    if (tmpl[i] == '{') {
      return semantic_error("unknown placeholder in SMILES template '" + tmpl +
                            "' (expected {" + parameter + "})");
    }
    out += tmpl[i];
    ++i;
  }
  return out;
}

Expected<CompiledModel> analyze(const Program& program) {
  CompiledModel model;

  // ---- Constants (define-before-use evaluation). ----
  std::unordered_map<std::string, double> env;
  for (const ConstDecl& decl : program.constants) {
    if (env.count(decl.name) != 0) {
      return located(decl.location,
                     "constant '" + decl.name + "' redefined");
    }
    ConstantDef def;
    def.name = decl.name;
    if (decl.is_arrhenius()) {
      auto prefactor = evaluate_const(*decl.arrhenius_prefactor, env);
      if (!prefactor.is_ok()) return prefactor.status();
      auto energy = evaluate_const(*decl.arrhenius_energy, env);
      if (!energy.is_ok()) return energy.status();
      if (*prefactor <= 0.0) {
        return located(decl.location,
                       "arrhenius prefactor must be positive");
      }
      def.is_arrhenius = true;
      def.prefactor = *prefactor;
      def.activation_energy = *energy;
      def.value = *prefactor *
                  std::exp(-*energy /
                           (kGasConstant * kReferenceTemperature));
    } else {
      auto value = evaluate_const(*decl.value, env);
      if (!value.is_ok()) return value.status();
      def.value = *value;
    }
    env[decl.name] = def.value;
    model.constants.emplace_back(def.name, def.value);
    model.constant_defs.push_back(std::move(def));
  }

  // ---- Species (with variant expansion). ----
  std::unordered_set<std::string> names;
  std::unordered_map<std::string, std::string> canonical_owner;
  for (const SpeciesDecl& decl : program.species) {
    const int lo = decl.variant ? decl.variant->lo : 0;
    const int hi = decl.variant ? decl.variant->hi : 0;
    for (int v = lo; v <= hi; ++v) {
      CompiledSpecies species;
      species.base_name = decl.name;
      species.variant_value = v;
      std::string smiles = decl.smiles_template;
      if (decl.variant) {
        species.name = decl.name + "_" + support::str_format("%d", v);
        auto expanded = expand_template(decl.smiles_template,
                                        decl.variant->parameter, v);
        if (!expanded.is_ok()) return expanded.status();
        smiles = *expanded;
      } else {
        species.name = decl.name;
      }
      if (!names.insert(species.name).second) {
        return located(decl.location,
                       "species '" + species.name + "' redefined");
      }
      auto mol = chem::parse_smiles(smiles);
      if (!mol.is_ok()) {
        return located(decl.location, "species '" + species.name +
                                          "': " + mol.status().message());
      }
      species.molecule = std::move(mol).value();
      species.canonical = chem::canonical_smiles(species.molecule);
      auto [it, inserted] =
          canonical_owner.emplace(species.canonical, species.name);
      if (!inserted) {
        return located(decl.location, "species '" + species.name +
                                          "' is structurally identical to '" +
                                          it->second + "'");
      }
      model.species.push_back(std::move(species));
      if (!decl.variant) break;
    }
  }

  // ---- Initial concentrations. ----
  for (const InitDecl& decl : program.inits) {
    auto value = evaluate_const(*decl.value, env);
    if (!value.is_ok()) return value.status();
    bool found = false;
    for (CompiledSpecies& s : model.species) {
      if (s.name == decl.species_name || s.base_name == decl.species_name) {
        s.init_concentration = *value;
        found = true;
      }
    }
    if (!found) {
      return located(decl.location, "init names unknown species '" +
                                        decl.species_name + "'");
    }
  }

  // ---- Rules. ----
  for (const RuleDecl& decl : program.rules) {
    CompiledRule rule;
    rule.name = decl.name;
    rule.rate_name = decl.rate_name;

    if (env.count(decl.rate_name) == 0) {
      return located(decl.location, "rule '" + decl.name +
                                        "' uses undefined rate constant '" +
                                        decl.rate_name + "'");
    }

    std::unordered_map<std::string, std::uint32_t> site_index;
    for (const SiteDecl& site : decl.sites) {
      chem::AtomConstraint constraint;
      if (site.element != "*") {
        auto element = chem::parse_element(site.element);
        if (!element.has_value()) {
          return located(site.location, "unknown element '" + site.element +
                                            "' in site '" + site.name + "'");
        }
        constraint.element = *element;
      }
      for (const SiteConstraintAst& c : site.constraints) {
        switch (c.kind) {
          case SiteConstraintAst::Kind::kRadical:
            constraint.min_free_valence = 1;
            break;
          case SiteConstraintAst::Kind::kMinDepth:
            constraint.min_chain_depth = c.argument;
            break;
          case SiteConstraintAst::Kind::kMinHydrogens:
            constraint.min_hydrogens = c.argument;
            break;
          case SiteConstraintAst::Kind::kExactDegree:
            constraint.exact_degree = c.argument;
            break;
          case SiteConstraintAst::Kind::kExactFreeValence:
            constraint.exact_free_valence = c.argument;
            break;
        }
      }
      const std::uint32_t idx = rule.pattern.add_atom(constraint);
      if (!site_index.emplace(site.name, idx).second) {
        return located(site.location,
                       "site '" + site.name + "' redefined in rule '" +
                           decl.name + "'");
      }
      rule.site_names.push_back(site.name);
    }

    auto resolve_site = [&](const std::string& name,
                            const SourceLocation& loc,
                            std::uint32_t& out) -> Status {
      auto it = site_index.find(name);
      if (it == site_index.end()) {
        return located(loc, "unknown site '" + name + "' in rule '" +
                                decl.name + "'");
      }
      out = it->second;
      return Status::ok();
    };

    for (const BondDecl& bond : decl.bonds) {
      std::uint32_t a = 0;
      std::uint32_t b = 0;
      RMS_RETURN_IF_ERROR(resolve_site(bond.site_a, bond.location, a));
      RMS_RETURN_IF_ERROR(resolve_site(bond.site_b, bond.location, b));
      if (a == b) {
        return located(bond.location, "bond endpoints must differ");
      }
      rule.pattern.add_bond(a, b, static_cast<std::uint8_t>(bond.order));
    }

    for (const ActionDecl& action : decl.actions) {
      CompiledAction compiled;
      compiled.kind = action.kind;
      compiled.argument = action.argument;
      RMS_RETURN_IF_ERROR(
          resolve_site(action.site_a, action.location, compiled.site_a));
      const bool binary = action.kind == ActionDecl::Kind::kDisconnect ||
                          action.kind == ActionDecl::Kind::kConnect ||
                          action.kind == ActionDecl::Kind::kIncBond ||
                          action.kind == ActionDecl::Kind::kDecBond;
      if (binary) {
        RMS_RETURN_IF_ERROR(
            resolve_site(action.site_b, action.location, compiled.site_b));
        if (compiled.site_a == compiled.site_b) {
          return located(action.location, "action endpoints must differ");
        }
      }
      rule.actions.push_back(compiled);
    }

    rule.molecularity = pattern_component_count(rule.pattern);
    if (rule.molecularity > 2) {
      return located(decl.location,
                     "rule '" + decl.name +
                         "' has more than two pattern components; at most "
                         "bimolecular reactions are supported");
    }
    model.rules.push_back(std::move(rule));
  }

  // ---- Forbidden forms. ----
  for (const ForbidDecl& decl : program.forbids) {
    auto mol = chem::parse_smiles(decl.smiles);
    if (!mol.is_ok()) {
      return located(decl.location,
                     "forbid: " + mol.status().message());
    }
    if (decl.substructure) {
      model.forbidden_substructures.push_back(chem::substructure_pattern(*mol));
    } else {
      model.forbidden_canonical.push_back(chem::canonical_smiles(*mol));
    }
  }

  return model;
}

Expected<CompiledModel> compile_rdl(std::string_view source) {
  auto program = parse_program(source);
  if (!program.is_ok()) return program.status();
  return analyze(*program);
}

}  // namespace rms::rdl
