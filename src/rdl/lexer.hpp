// RDL lexer: hand-written scanner producing a token stream.
#pragma once

#include <string_view>
#include <vector>

#include "rdl/token.hpp"
#include "support/status.hpp"

namespace rms::rdl {

/// Scans the whole source; the final token is always kEof. Comments run
/// from '#' or "//" to end of line.
support::Expected<std::vector<Token>> tokenize(std::string_view source);

}  // namespace rms::rdl
