// Tokens for the Reaction Description Language (RDL) dialect.
//
// The language follows the structure of Prickett & Mavrovouniotis' RDL as
// adopted by the paper: species declarations (with compact chain-length
// variant families), rate-constant definitions, reaction rules built from
// the six edit primitives with context-sensitive site constraints, and
// forbidden forms.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rms::rdl {

enum class TokenKind : std::uint8_t {
  kEof,
  kIdent,
  kNumber,
  kString,
  // Keywords.
  kSpecies,
  kConst,
  kRule,
  kForbid,
  kSite,
  kBond,
  kRate,
  kInit,
  kDisconnect,
  kConnect,
  kIncBond,
  kDecBond,
  kRemoveH,
  kAddH,
  kWhere,
  // Punctuation / operators.
  kLBrace,
  kRBrace,
  kLParen,
  kRParen,
  kSemicolon,
  kComma,
  kColon,
  kAssign,
  kPlus,
  kMinus,
  kStar,
  kSlash,
  kDotDot,
  kGreaterEqual,
  kLessEqual,
  kEqualEqual,
};

struct SourceLocation {
  std::uint32_t line = 1;
  std::uint32_t column = 1;
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;        ///< identifier name / string payload
  double number = 0.0;     ///< numeric payload for kNumber
  SourceLocation location;
};

/// Human-readable token kind name for diagnostics.
std::string_view token_kind_name(TokenKind kind);

}  // namespace rms::rdl
