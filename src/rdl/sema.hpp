// Semantic analysis: turns a parsed RDL program into a compiled model.
//
// Responsibilities:
//  - evaluate rate-constant definition expressions (define-before-use),
//  - expand compact variant families into concrete species ("S{n}" chain
//    templates -> one species per chain length, named e.g. "Ax_3"),
//  - parse and canonicalize every species' structure (duplicates rejected),
//  - compile rule site/bond clauses into substructure Patterns and resolve
//    action site references,
//  - resolve init declarations and forbidden forms.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "chem/molecule.hpp"
#include "chem/pattern.hpp"
#include "rdl/ast.hpp"
#include "support/status.hpp"

namespace rms::rdl {

struct CompiledSpecies {
  std::string name;         ///< instance name (variants: "base_<n>")
  std::string base_name;    ///< declared family name
  int variant_value = 0;    ///< chain length for variants, 0 otherwise
  chem::Molecule molecule;
  std::string canonical;    ///< canonical SMILES — the species identity
  double init_concentration = 0.0;
};

struct CompiledAction {
  ActionDecl::Kind kind = ActionDecl::Kind::kDisconnect;
  std::uint32_t site_a = 0;
  std::uint32_t site_b = 0;  ///< unused for unary actions
  int argument = 1;          ///< connect order / add_h count
};

struct CompiledRule {
  std::string name;
  chem::Pattern pattern;
  std::vector<std::string> site_names;   ///< pattern atom i = site_names[i]
  std::vector<CompiledAction> actions;
  std::string rate_name;
  /// Number of connected components of the pattern graph: 1 = unimolecular
  /// site, 2 = bimolecular (sites live in two distinct molecules).
  int molecularity = 1;
};

/// Gas constant [J/(mol K)] and the reference temperature at which plain
/// constant values of Arrhenius-form definitions are reported.
inline constexpr double kGasConstant = 8.314462618;
inline constexpr double kReferenceTemperature = 298.15;

struct ConstantDef {
  std::string name;
  /// Value at the reference temperature (Arrhenius) or the plain value.
  double value = 0.0;
  bool is_arrhenius = false;
  double prefactor = 0.0;          ///< A in k(T) = A exp(-Ea/(R T))
  double activation_energy = 0.0;  ///< Ea [J/mol]
};

struct CompiledModel {
  std::vector<CompiledSpecies> species;
  std::vector<CompiledRule> rules;
  /// Rate-constant definitions in declaration order (value at the
  /// reference temperature for Arrhenius constants).
  std::vector<std::pair<std::string, double>> constants;
  /// Full definitions including Arrhenius parameters; parallel to
  /// `constants`.
  std::vector<ConstantDef> constant_defs;
  /// Canonical SMILES of exact-molecule forbids: producing one of these
  /// exact species is rejected during network generation.
  std::vector<std::string> forbidden_canonical;
  /// Substructure forbids: any product containing one of these patterns as
  /// a subgraph is rejected ("forbid substructure \"...\";").
  std::vector<chem::Pattern> forbidden_substructures;

  [[nodiscard]] const CompiledSpecies* find_species(
      const std::string& name) const;
  [[nodiscard]] double constant_value(const std::string& name, bool* found =
                                          nullptr) const;
};

/// Runs semantic analysis on a parsed program.
support::Expected<CompiledModel> analyze(const Program& program);

/// Convenience: parse + analyze.
support::Expected<CompiledModel> compile_rdl(std::string_view source);

/// Expands a SMILES variant template: every "E{param}" (E a bare element
/// symbol, possibly two letters, or a [bracket atom]) is replaced by `value`
/// consecutive copies of E. Exposed for tests.
support::Expected<std::string> expand_template(const std::string& tmpl,
                                               const std::string& parameter,
                                               int value);

}  // namespace rms::rdl
