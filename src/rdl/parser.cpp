#include "rdl/parser.hpp"

#include "rdl/lexer.hpp"
#include "support/strings.hpp"

namespace rms::rdl {

namespace {

using support::Expected;
using support::parse_error;
using support::Status;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Expected<Program> parse() {
    Program program;
    while (!at(TokenKind::kEof)) {
      Status s = Status::ok();
      switch (current().kind) {
        case TokenKind::kSpecies:
          s = parse_species(program);
          break;
        case TokenKind::kConst:
          s = parse_const(program);
          break;
        case TokenKind::kInit:
          s = parse_init(program);
          break;
        case TokenKind::kRule:
          s = parse_rule(program);
          break;
        case TokenKind::kForbid:
          s = parse_forbid(program);
          break;
        default:
          return error("expected a declaration (species/const/init/rule/forbid)");
      }
      if (!s.is_ok()) return s;
    }
    return program;
  }

 private:
  const Token& current() const { return tokens_[pos_]; }
  bool at(TokenKind kind) const { return current().kind == kind; }

  const Token& advance() { return tokens_[pos_++]; }

  bool accept(TokenKind kind) {
    if (at(kind)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status expect(TokenKind kind) {
    if (!at(kind)) {
      return error(support::str_format(
          "expected %.*s, found %.*s",
          static_cast<int>(token_kind_name(kind).size()),
          token_kind_name(kind).data(),
          static_cast<int>(token_kind_name(current().kind).size()),
          token_kind_name(current().kind).data()));
    }
    ++pos_;
    return Status::ok();
  }

  Status error(std::string msg) const {
    return parse_error(support::str_format("%s at line %u column %u",
                                           msg.c_str(), current().location.line,
                                           current().location.column));
  }

  Status expect_ident(std::string& out) {
    if (!at(TokenKind::kIdent)) return error("expected an identifier");
    out = advance().text;
    return Status::ok();
  }

  Status expect_integer(int& out) {
    if (!at(TokenKind::kNumber)) return error("expected a number");
    const double v = current().number;
    if (v != static_cast<int>(v)) return error("expected an integer");
    out = static_cast<int>(v);
    ++pos_;
    return Status::ok();
  }

  Status parse_species(Program& program) {
    SpeciesDecl decl;
    decl.location = current().location;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kSpecies));
    RMS_RETURN_IF_ERROR(expect_ident(decl.name));
    if (accept(TokenKind::kLParen)) {
      VariantRange range;
      RMS_RETURN_IF_ERROR(expect_ident(range.parameter));
      RMS_RETURN_IF_ERROR(expect(TokenKind::kAssign));
      RMS_RETURN_IF_ERROR(expect_integer(range.lo));
      RMS_RETURN_IF_ERROR(expect(TokenKind::kDotDot));
      RMS_RETURN_IF_ERROR(expect_integer(range.hi));
      RMS_RETURN_IF_ERROR(expect(TokenKind::kRParen));
      if (range.lo < 1 || range.hi < range.lo) {
        return error("variant range must satisfy 1 <= lo <= hi");
      }
      decl.variant = range;
    }
    RMS_RETURN_IF_ERROR(expect(TokenKind::kAssign));
    if (!at(TokenKind::kString)) return error("expected a SMILES string");
    decl.smiles_template = advance().text;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    program.species.push_back(std::move(decl));
    return Status::ok();
  }

  Status parse_const(Program& program) {
    ConstDecl decl;
    decl.location = current().location;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kConst));
    RMS_RETURN_IF_ERROR(expect_ident(decl.name));
    RMS_RETURN_IF_ERROR(expect(TokenKind::kAssign));
    // Arrhenius form: "arrhenius" is contextual (only a call-looking
    // occurrence right after '=' is special; a plain identifier named
    // arrhenius elsewhere stays an ordinary reference).
    if (at(TokenKind::kIdent) && current().text == "arrhenius" &&
        tokens_[pos_ + 1].kind == TokenKind::kLParen) {
      pos_ += 2;
      auto prefactor = parse_const_expr();
      if (!prefactor.is_ok()) return prefactor.status();
      decl.arrhenius_prefactor = std::move(prefactor).value();
      RMS_RETURN_IF_ERROR(expect(TokenKind::kComma));
      auto energy = parse_const_expr();
      if (!energy.is_ok()) return energy.status();
      decl.arrhenius_energy = std::move(energy).value();
      RMS_RETURN_IF_ERROR(expect(TokenKind::kRParen));
    } else {
      auto expr = parse_const_expr();
      if (!expr.is_ok()) return expr.status();
      decl.value = std::move(expr).value();
    }
    RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    program.constants.push_back(std::move(decl));
    return Status::ok();
  }

  Status parse_init(Program& program) {
    InitDecl decl;
    decl.location = current().location;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kInit));
    RMS_RETURN_IF_ERROR(expect_ident(decl.species_name));
    RMS_RETURN_IF_ERROR(expect(TokenKind::kAssign));
    auto expr = parse_const_expr();
    if (!expr.is_ok()) return expr.status();
    decl.value = std::move(expr).value();
    RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    program.inits.push_back(std::move(decl));
    return Status::ok();
  }

  Expected<ConstExprPtr> parse_const_expr() {
    auto lhs = parse_term();
    if (!lhs.is_ok()) return lhs.status();
    ConstExprPtr node = std::move(lhs).value();
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      const bool add = at(TokenKind::kPlus);
      const SourceLocation loc = current().location;
      ++pos_;
      auto rhs = parse_term();
      if (!rhs.is_ok()) return rhs.status();
      auto parent = std::make_unique<ConstExpr>();
      parent->kind = add ? ConstExpr::Kind::kAdd : ConstExpr::Kind::kSub;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      parent->location = loc;
      node = std::move(parent);
    }
    return node;
  }

  Expected<ConstExprPtr> parse_term() {
    auto lhs = parse_factor();
    if (!lhs.is_ok()) return lhs.status();
    ConstExprPtr node = std::move(lhs).value();
    while (at(TokenKind::kStar) || at(TokenKind::kSlash)) {
      const bool mul = at(TokenKind::kStar);
      const SourceLocation loc = current().location;
      ++pos_;
      auto rhs = parse_factor();
      if (!rhs.is_ok()) return rhs.status();
      auto parent = std::make_unique<ConstExpr>();
      parent->kind = mul ? ConstExpr::Kind::kMul : ConstExpr::Kind::kDiv;
      parent->lhs = std::move(node);
      parent->rhs = std::move(rhs).value();
      parent->location = loc;
      node = std::move(parent);
    }
    return node;
  }

  Expected<ConstExprPtr> parse_factor() {
    auto node = std::make_unique<ConstExpr>();
    node->location = current().location;
    if (at(TokenKind::kNumber)) {
      node->kind = ConstExpr::Kind::kNumber;
      node->number = advance().number;
      return node;
    }
    if (at(TokenKind::kIdent)) {
      node->kind = ConstExpr::Kind::kReference;
      node->reference = advance().text;
      return node;
    }
    if (accept(TokenKind::kLParen)) {
      auto inner = parse_const_expr();
      if (!inner.is_ok()) return inner.status();
      RMS_RETURN_IF_ERROR(expect(TokenKind::kRParen));
      return std::move(inner).value();
    }
    if (accept(TokenKind::kMinus)) {
      auto operand = parse_factor();
      if (!operand.is_ok()) return operand.status();
      node->kind = ConstExpr::Kind::kNeg;
      node->lhs = std::move(operand).value();
      return node;
    }
    return Status(error("expected a number, identifier, or '('"));
  }

  Status parse_rule(Program& program) {
    RuleDecl rule;
    rule.location = current().location;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kRule));
    RMS_RETURN_IF_ERROR(expect_ident(rule.name));
    RMS_RETURN_IF_ERROR(expect(TokenKind::kLBrace));
    while (!at(TokenKind::kRBrace)) {
      switch (current().kind) {
        case TokenKind::kSite: {
          SiteDecl site;
          site.location = current().location;
          ++pos_;
          RMS_RETURN_IF_ERROR(expect_ident(site.name));
          RMS_RETURN_IF_ERROR(expect(TokenKind::kColon));
          if (accept(TokenKind::kStar)) {
            // assign(count, char) sidesteps a GCC 12 -Wrestrict false
            // positive (PR105329) on the const char* assignment here.
            site.element.assign(1, '*');
          } else {
            RMS_RETURN_IF_ERROR(expect_ident(site.element));
          }
          if (accept(TokenKind::kWhere)) {
            do {
              SiteConstraintAst constraint;
              std::string kind;
              RMS_RETURN_IF_ERROR(expect_ident(kind));
              if (kind == "radical") {
                constraint.kind = SiteConstraintAst::Kind::kRadical;
              } else if (kind == "depth") {
                RMS_RETURN_IF_ERROR(expect(TokenKind::kGreaterEqual));
                RMS_RETURN_IF_ERROR(expect_integer(constraint.argument));
                constraint.kind = SiteConstraintAst::Kind::kMinDepth;
              } else if (kind == "h") {
                RMS_RETURN_IF_ERROR(expect(TokenKind::kGreaterEqual));
                RMS_RETURN_IF_ERROR(expect_integer(constraint.argument));
                constraint.kind = SiteConstraintAst::Kind::kMinHydrogens;
              } else if (kind == "degree") {
                RMS_RETURN_IF_ERROR(expect(TokenKind::kEqualEqual));
                RMS_RETURN_IF_ERROR(expect_integer(constraint.argument));
                constraint.kind = SiteConstraintAst::Kind::kExactDegree;
              } else if (kind == "fv") {
                RMS_RETURN_IF_ERROR(expect(TokenKind::kEqualEqual));
                RMS_RETURN_IF_ERROR(expect_integer(constraint.argument));
                constraint.kind = SiteConstraintAst::Kind::kExactFreeValence;
              } else {
                return error("unknown constraint '" + kind +
                             "' (radical/depth/h/degree/fv)");
              }
              site.constraints.push_back(constraint);
            } while (accept(TokenKind::kComma));
          }
          RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
          rule.sites.push_back(std::move(site));
          break;
        }
        case TokenKind::kBond: {
          BondDecl bond;
          bond.location = current().location;
          ++pos_;
          RMS_RETURN_IF_ERROR(expect_ident(bond.site_a));
          RMS_RETURN_IF_ERROR(expect_ident(bond.site_b));
          if (at(TokenKind::kNumber)) {
            RMS_RETURN_IF_ERROR(expect_integer(bond.order));
            if (bond.order < 0 || bond.order > 3) {
              return error("bond order must be 0 (any) through 3");
            }
          }
          RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
          rule.bonds.push_back(std::move(bond));
          break;
        }
        case TokenKind::kDisconnect:
        case TokenKind::kConnect:
        case TokenKind::kIncBond:
        case TokenKind::kDecBond: {
          ActionDecl action;
          action.location = current().location;
          const TokenKind kind = advance().kind;
          action.kind = kind == TokenKind::kDisconnect
                            ? ActionDecl::Kind::kDisconnect
                        : kind == TokenKind::kConnect ? ActionDecl::Kind::kConnect
                        : kind == TokenKind::kIncBond ? ActionDecl::Kind::kIncBond
                                                      : ActionDecl::Kind::kDecBond;
          RMS_RETURN_IF_ERROR(expect_ident(action.site_a));
          RMS_RETURN_IF_ERROR(expect_ident(action.site_b));
          if (kind == TokenKind::kConnect && at(TokenKind::kNumber)) {
            RMS_RETURN_IF_ERROR(expect_integer(action.argument));
            if (action.argument < 1 || action.argument > 3) {
              return error("connect order must be 1 through 3");
            }
          }
          RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
          rule.actions.push_back(std::move(action));
          break;
        }
        case TokenKind::kRemoveH:
        case TokenKind::kAddH: {
          ActionDecl action;
          action.location = current().location;
          const TokenKind kind = advance().kind;
          action.kind = kind == TokenKind::kRemoveH ? ActionDecl::Kind::kRemoveH
                                                    : ActionDecl::Kind::kAddH;
          RMS_RETURN_IF_ERROR(expect_ident(action.site_a));
          if (kind == TokenKind::kAddH && at(TokenKind::kNumber)) {
            RMS_RETURN_IF_ERROR(expect_integer(action.argument));
            if (action.argument < 1) return error("add_h count must be >= 1");
          }
          RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
          rule.actions.push_back(std::move(action));
          break;
        }
        case TokenKind::kRate: {
          ++pos_;
          if (!rule.rate_name.empty()) {
            return error("rule has multiple rate clauses");
          }
          RMS_RETURN_IF_ERROR(expect_ident(rule.rate_name));
          RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
          break;
        }
        default:
          return error("expected site/bond/action/rate clause in rule body");
      }
    }
    RMS_RETURN_IF_ERROR(expect(TokenKind::kRBrace));
    if (rule.sites.empty()) return error("rule '" + rule.name + "' has no sites");
    if (rule.actions.empty()) {
      return error("rule '" + rule.name + "' has no actions");
    }
    if (rule.rate_name.empty()) {
      return error("rule '" + rule.name + "' has no rate clause");
    }
    program.rules.push_back(std::move(rule));
    return Status::ok();
  }

  Status parse_forbid(Program& program) {
    ForbidDecl decl;
    decl.location = current().location;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kForbid));
    if (at(TokenKind::kIdent) && current().text == "substructure") {
      decl.substructure = true;
      ++pos_;
    }
    if (!at(TokenKind::kString)) return error("expected a SMILES string");
    decl.smiles = advance().text;
    RMS_RETURN_IF_ERROR(expect(TokenKind::kSemicolon));
    program.forbids.push_back(std::move(decl));
    return Status::ok();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

support::Expected<Program> parse_program(std::string_view source) {
  auto tokens = tokenize(source);
  if (!tokens.is_ok()) return tokens.status();
  return Parser(std::move(tokens).value()).parse();
}

}  // namespace rms::rdl
