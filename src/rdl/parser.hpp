// Recursive-descent parser for the RDL dialect (grammar in ast.hpp).
#pragma once

#include <string_view>

#include "rdl/ast.hpp"
#include "support/status.hpp"

namespace rms::rdl {

/// Tokenizes and parses a full RDL program.
support::Expected<Program> parse_program(std::string_view source);

}  // namespace rms::rdl
