// Abstract syntax for the RDL dialect.
//
// Grammar (EBNF, comments run '#'/'//' to end of line):
//
//   program      := item*
//   item         := species_decl | const_decl | init_decl | rule_decl
//                 | forbid_decl
//   species_decl := "species" IDENT [variant] "=" STRING ";"
//   variant      := "(" IDENT "=" NUMBER ".." NUMBER ")"
//   const_decl   := "const" IDENT "=" (const_expr
//                 | "arrhenius" "(" const_expr "," const_expr ")") ";"
//   init_decl    := "init" IDENT "=" const_expr ";"
//   const_expr   := term (("+" | "-") term)*
//   term         := factor (("*" | "/") factor)*
//   factor       := NUMBER | IDENT | "(" const_expr ")" | "-" factor
//   rule_decl    := "rule" IDENT "{" clause* "}"
//   clause       := site | bond | action | rate
//   site         := "site" IDENT ":" (IDENT | "*") ["where" constraint
//                   ("," constraint)*] ";"
//   constraint   := "radical" | "depth" ">=" NUMBER | "h" ">=" NUMBER
//                 | "degree" "==" NUMBER | "fv" "==" NUMBER
//   bond         := "bond" IDENT IDENT [NUMBER] ";"
//   action       := "disconnect" IDENT IDENT ";"
//                 | "connect" IDENT IDENT [NUMBER] ";"
//                 | "inc_bond" IDENT IDENT ";" | "dec_bond" IDENT IDENT ";"
//                 | "remove_h" IDENT ";"      | "add_h" IDENT [NUMBER] ";"
//   rate         := "rate" IDENT ";"
//   forbid_decl  := "forbid" ["substructure"] STRING ";"
//
// A species SMILES template may contain "X{n}" (X a bare element symbol or a
// [bracket atom], n the variant parameter): the atom repeats n times,
// expressing the paper's compact chain-length variant families
// ("molecules differ only in the lengths of chains of some atom").
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "rdl/token.hpp"

namespace rms::rdl {

// ---- Constant expressions --------------------------------------------------

struct ConstExpr;
using ConstExprPtr = std::unique_ptr<ConstExpr>;

struct ConstExpr {
  enum class Kind { kNumber, kReference, kAdd, kSub, kMul, kDiv, kNeg };
  Kind kind = Kind::kNumber;
  double number = 0.0;      ///< kNumber
  std::string reference;    ///< kReference
  ConstExprPtr lhs;         ///< binary ops / kNeg operand
  ConstExprPtr rhs;         ///< binary ops
  SourceLocation location;
};

// ---- Declarations -----------------------------------------------------------

struct VariantRange {
  std::string parameter;  ///< loop variable name, e.g. "n"
  int lo = 1;
  int hi = 1;
};

struct SpeciesDecl {
  std::string name;
  std::string smiles_template;
  std::optional<VariantRange> variant;
  SourceLocation location;
};

struct ConstDecl {
  std::string name;
  ConstExprPtr value;  ///< null for Arrhenius-form constants
  /// Arrhenius form k(T) = A * exp(-Ea / (R*T)): prefactor A and activation
  /// energy Ea [J/mol]. Both null for plain constants.
  ConstExprPtr arrhenius_prefactor;
  ConstExprPtr arrhenius_energy;
  SourceLocation location;

  [[nodiscard]] bool is_arrhenius() const {
    return arrhenius_prefactor != nullptr;
  }
};

struct InitDecl {
  std::string species_name;  ///< may name a variant instance, e.g. "Sx_8"
  ConstExprPtr value;
  SourceLocation location;
};

struct SiteConstraintAst {
  enum class Kind { kRadical, kMinDepth, kMinHydrogens, kExactDegree, kExactFreeValence };
  Kind kind = Kind::kRadical;
  int argument = 0;
};

struct SiteDecl {
  std::string name;
  std::string element;  ///< element symbol, or "*" wildcard
  std::vector<SiteConstraintAst> constraints;
  SourceLocation location;
};

struct BondDecl {
  std::string site_a;
  std::string site_b;
  int order = 1;  ///< 0 = any order
  SourceLocation location;
};

struct ActionDecl {
  enum class Kind { kDisconnect, kConnect, kIncBond, kDecBond, kRemoveH, kAddH };
  Kind kind = Kind::kDisconnect;
  std::string site_a;
  std::string site_b;  ///< empty for unary actions
  int argument = 1;    ///< bond order for connect, H count for add_h
  SourceLocation location;
};

struct RuleDecl {
  std::string name;
  std::vector<SiteDecl> sites;
  std::vector<BondDecl> bonds;
  std::vector<ActionDecl> actions;
  std::string rate_name;
  SourceLocation location;
};

struct ForbidDecl {
  std::string smiles;
  /// false: the exact molecule is forbidden; true: any product *containing*
  /// the structure as a subgraph is forbidden.
  bool substructure = false;
  SourceLocation location;
};

struct Program {
  std::vector<SpeciesDecl> species;
  std::vector<ConstDecl> constants;
  std::vector<InitDecl> inits;
  std::vector<RuleDecl> rules;
  std::vector<ForbidDecl> forbids;
};

}  // namespace rms::rdl
