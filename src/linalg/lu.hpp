// LU factorization with partial pivoting.
//
// The modified-Newton iteration inside the Adams-Gear solver factors the
// iteration matrix (I - h*beta*J) once and reuses the factors across Newton
// steps and, when possible, across time steps.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace rms::linalg {

class LuFactorization {
 public:
  LuFactorization() = default;

  /// Factors `a` in place (copy kept internally). Returns false if the
  /// matrix is numerically singular.
  bool factor(const Matrix& a);

  /// Solves L*U*x = P*b. factor() must have succeeded.
  void solve(const Vector& b, Vector& x) const;

  /// In-place convenience: b is replaced with the solution.
  void solve_in_place(Vector& b) const;

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t dimension() const { return lu_.rows(); }

  /// |det A| growth proxy: product of |pivots| (useful in tests only).
  [[nodiscard]] double abs_determinant() const;

 private:
  Matrix lu_;
  std::vector<std::size_t> perm_;
  bool ok_ = false;
};

/// One-shot helper: solves A x = b; returns false if A is singular.
bool solve_linear_system(const Matrix& a, const Vector& b, Vector& x);

}  // namespace rms::linalg
