#include "linalg/lu.hpp"

#include <cmath>

namespace rms::linalg {

bool LuFactorization::factor(const Matrix& a) {
  RMS_CHECK(a.rows() == a.cols());
  const std::size_t n = a.rows();
  lu_ = a;
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;
  ok_ = true;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude entry in column k.
    std::size_t pivot = k;
    double pivot_mag = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double mag = std::fabs(lu_(i, k));
      if (mag > pivot_mag) {
        pivot_mag = mag;
        pivot = i;
      }
    }
    if (pivot_mag == 0.0 || !std::isfinite(pivot_mag)) {
      ok_ = false;
      return false;
    }
    if (pivot != k) {
      std::swap(perm_[k], perm_[pivot]);
      double* rk = lu_.row(k);
      double* rp = lu_.row(pivot);
      for (std::size_t j = 0; j < n; ++j) std::swap(rk[j], rp[j]);
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = lu_(i, k) * inv_pivot;
      lu_(i, k) = factor;
      if (factor == 0.0) continue;
      const double* rk = lu_.row(k);
      double* ri = lu_.row(i);
      for (std::size_t j = k + 1; j < n; ++j) ri[j] -= factor * rk[j];
    }
  }
  return true;
}

void LuFactorization::solve(const Vector& b, Vector& x) const {
  RMS_CHECK(ok_);
  const std::size_t n = lu_.rows();
  RMS_CHECK(b.size() == n);
  x.resize(n);
  // Apply permutation, then forward substitution (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = lu_.row(i);
    double sum = x[i];
    for (std::size_t j = 0; j < i; ++j) sum -= ri[j] * x[j];
    x[i] = sum;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* ri = lu_.row(ii);
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= ri[j] * x[j];
    x[ii] = sum / ri[ii];
  }
}

void LuFactorization::solve_in_place(Vector& b) const {
  Vector x;
  solve(b, x);
  b = std::move(x);
}

double LuFactorization::abs_determinant() const {
  RMS_CHECK(ok_);
  double det = 1.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= std::fabs(lu_(i, i));
  return det;
}

bool solve_linear_system(const Matrix& a, const Vector& b, Vector& x) {
  LuFactorization lu;
  if (!lu.factor(a)) return false;
  lu.solve(b, x);
  return true;
}

}  // namespace rms::linalg
