#include "linalg/qr.hpp"

#include <cmath>

namespace rms::linalg {

bool QrFactorization::factor(const Matrix& a) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  RMS_CHECK(m >= n);
  qr_ = a;
  tau_.assign(n, 0.0);
  ok_ = true;

  // Rank-deficiency threshold relative to the overall matrix scale.
  const double tolerance = a.frobenius_norm() * 1e-12;

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += qr_(i, k) * qr_(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm <= tolerance || !std::isfinite(norm)) {
      ok_ = false;
      return false;
    }
    const double alpha = qr_(k, k) >= 0.0 ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    // Normalize so v[k] = 1 implicitly; store v[i]/v0 below the diagonal.
    for (std::size_t i = k + 1; i < m; ++i) qr_(i, k) /= v0;
    tau_[k] = -v0 / alpha;  // beta such that H = I - beta * v * v^T
    qr_(k, k) = alpha;      // R diagonal entry

    // Apply H to the remaining columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double s = qr_(k, j);
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * qr_(i, j);
      s *= tau_[k];
      qr_(k, j) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr_(i, j) -= s * qr_(i, k);
    }
  }
  return true;
}

void QrFactorization::solve_least_squares(const Vector& b, Vector& x) const {
  RMS_CHECK(ok_);
  const std::size_t m = qr_.rows();
  const std::size_t n = qr_.cols();
  RMS_CHECK(b.size() == m);
  Vector y = b;

  // y = Q^T b by applying Householder reflections in order.
  for (std::size_t k = 0; k < n; ++k) {
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }

  // Back substitution with R.
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double sum = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) sum -= qr_(ii, j) * x[j];
    x[ii] = sum / qr_(ii, ii);
  }
}

bool solve_least_squares(const Matrix& a, const Vector& b, Vector& x) {
  QrFactorization qr;
  if (!qr.factor(a)) return false;
  qr.solve_least_squares(b, x);
  return true;
}

}  // namespace rms::linalg
