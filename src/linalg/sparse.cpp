#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace rms::linalg {

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  RMS_CHECK(x.size() == cols);
  y.assign(rows, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    double sum = 0.0;
    for (std::uint32_t e = row_offsets[r]; e < row_offsets[r + 1]; ++e) {
      sum += values[e] * x[col_indices[e]];
    }
    y[r] = sum;
  }
}

CsrMatrix CsrMatrix::from_dense(const Matrix& dense, double threshold) {
  CsrMatrix out;
  out.rows = dense.rows();
  out.cols = dense.cols();
  out.row_offsets.reserve(out.rows + 1);
  out.row_offsets.push_back(0);
  for (std::size_t r = 0; r < out.rows; ++r) {
    for (std::size_t c = 0; c < out.cols; ++c) {
      const double v = dense(r, c);
      if (std::fabs(v) > threshold) {
        out.col_indices.push_back(static_cast<std::uint32_t>(c));
        out.values.push_back(v);
      }
    }
    out.row_offsets.push_back(static_cast<std::uint32_t>(out.values.size()));
  }
  return out;
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::uint32_t e = row_offsets[r]; e < row_offsets[r + 1]; ++e) {
      out(r, col_indices[e]) = values[e];
    }
  }
  return out;
}

namespace {

/// Column-compressed copy of a CSR matrix (the left-looking factorization
/// consumes columns).
struct CscView {
  std::vector<std::uint32_t> col_offsets;
  std::vector<std::uint32_t> row_indices;
  std::vector<double> values;

  explicit CscView(const CsrMatrix& a) {
    col_offsets.assign(a.cols + 1, 0);
    for (std::uint32_t c : a.col_indices) ++col_offsets[c + 1];
    for (std::size_t c = 0; c < a.cols; ++c) {
      col_offsets[c + 1] += col_offsets[c];
    }
    row_indices.resize(a.nonzero_count());
    values.resize(a.nonzero_count());
    std::vector<std::uint32_t> cursor(col_offsets.begin(),
                                      col_offsets.end() - 1);
    for (std::size_t r = 0; r < a.rows; ++r) {
      for (std::uint32_t e = a.row_offsets[r]; e < a.row_offsets[r + 1]; ++e) {
        const std::uint32_t c = a.col_indices[e];
        row_indices[cursor[c]] = static_cast<std::uint32_t>(r);
        values[cursor[c]] = a.values[e];
        ++cursor[c];
      }
    }
  }
};

constexpr std::uint32_t kNotPivotal = ~std::uint32_t{0};
constexpr std::uint32_t kNever = ~std::uint32_t{0};

}  // namespace

bool SparseLu::factor(const CsrMatrix& a) {
  RMS_CHECK(a.rows == a.cols);
  n_ = a.rows;
  ok_ = false;
  lower_.assign(n_, {});
  upper_.assign(n_, {});
  diagonal_.assign(n_, 0.0);
  row_permutation_.assign(n_, kNotPivotal);

  const CscView csc(a);

  // pivot_rows[c]: the original row chosen as column c's pivot.
  std::vector<std::uint32_t> pivot_rows;
  pivot_rows.reserve(n_);

  // Dense accumulator, DFS visit stamps (per column j) and scatter stamps.
  std::vector<double> work(n_, 0.0);
  std::vector<std::uint32_t> visit_stamp(n_, kNever);    // per column
  std::vector<std::uint32_t> scatter_stamp(n_, kNever);  // per row
  std::vector<std::uint32_t> topo;       // reverse topological column order
  std::vector<std::uint32_t> dfs_stack;
  std::vector<std::uint32_t> dfs_pos;
  std::vector<std::uint32_t> touched;    // rows scattered into `work`

  auto touch = [&](std::uint32_t row, std::uint32_t j) {
    if (scatter_stamp[row] != j) {
      scatter_stamp[row] = j;
      work[row] = 0.0;
      touched.push_back(row);
    }
  };

  for (std::uint32_t j = 0; j < n_; ++j) {
    topo.clear();
    touched.clear();

    // Reach of A(:,j) through the graph of L: every already-pivotal column
    // feeding column j's sparse triangular solve, collected in reverse
    // topological (DFS finish) order.
    auto dfs_from = [&](std::uint32_t start_column) {
      if (visit_stamp[start_column] == j) return;
      visit_stamp[start_column] = j;
      dfs_stack.assign(1, start_column);
      dfs_pos.assign(1, 0);
      while (!dfs_stack.empty()) {
        const std::uint32_t column = dfs_stack.back();
        bool descended = false;
        const SparseColumn& lcol = lower_[column];
        for (std::uint32_t& k = dfs_pos.back(); k < lcol.indices.size();) {
          const std::uint32_t child = row_permutation_[lcol.indices[k]];
          ++k;
          if (child != kNotPivotal && visit_stamp[child] != j) {
            visit_stamp[child] = j;
            dfs_stack.push_back(child);
            dfs_pos.push_back(0);
            descended = true;
            break;
          }
        }
        if (!descended) {
          topo.push_back(column);
          dfs_stack.pop_back();
          dfs_pos.pop_back();
        }
      }
    };

    // Scatter A(:,j); seed the DFS from its already-pivotal rows.
    for (std::uint32_t e = csc.col_offsets[j]; e < csc.col_offsets[j + 1];
         ++e) {
      const std::uint32_t row = csc.row_indices[e];
      touch(row, j);
      work[row] += csc.values[e];
      const std::uint32_t column = row_permutation_[row];
      if (column != kNotPivotal) dfs_from(column);
    }

    // Sparse triangular solve in topological order (topo holds reverse
    // topological order, so process back-to-front).
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
      const std::uint32_t column = *it;
      const double xc = work[pivot_rows[column]];
      if (xc == 0.0) continue;
      const SparseColumn& lcol = lower_[column];
      for (std::size_t k = 0; k < lcol.indices.size(); ++k) {
        const std::uint32_t row = lcol.indices[k];
        touch(row, j);
        work[row] -= xc * lcol.values[k];
        // Fill-in below the current column may reach further pivotal rows;
        // the DFS already accounted for them via L's graph, so no extra
        // traversal is needed here.
      }
    }

    // Partial pivoting among the not-yet-pivotal rows.
    std::uint32_t pivot_row = kNotPivotal;
    double pivot_magnitude = 0.0;
    for (std::uint32_t row : touched) {
      if (row_permutation_[row] != kNotPivotal) continue;
      const double magnitude = std::fabs(work[row]);
      if (magnitude > pivot_magnitude) {
        pivot_magnitude = magnitude;
        pivot_row = row;
      }
    }
    if (pivot_row == kNotPivotal || pivot_magnitude == 0.0 ||
        !std::isfinite(pivot_magnitude)) {
      return false;  // numerically or structurally singular
    }

    const double pivot = work[pivot_row];
    diagonal_[j] = pivot;
    row_permutation_[pivot_row] = j;
    pivot_rows.push_back(pivot_row);

    SparseColumn& lcol = lower_[j];
    SparseColumn& ucol = upper_[j];
    for (std::uint32_t row : touched) {
      const double value = work[row];
      if (value == 0.0 || row == pivot_row) continue;
      const std::uint32_t pivotal_at = row_permutation_[row];
      if (pivotal_at != kNotPivotal) {
        ucol.indices.push_back(pivotal_at);
        ucol.values.push_back(value);
      } else {
        lcol.indices.push_back(row);
        lcol.values.push_back(value / pivot);
      }
    }
  }

  // Remap L's original-row indices to pivot positions for fast solves.
  for (SparseColumn& column : lower_) {
    for (std::uint32_t& row : column.indices) {
      row = row_permutation_[row];
    }
  }
  ok_ = true;
  return true;
}

void SparseLu::solve(const Vector& b, Vector& x) const {
  RMS_CHECK(ok_);
  RMS_CHECK(b.size() == n_);
  // y = P b.
  Vector y(n_);
  for (std::size_t row = 0; row < n_; ++row) {
    y[row_permutation_[row]] = b[row];
  }
  // Forward solve L y = y (unit diagonal, column-oriented).
  for (std::size_t j = 0; j < n_; ++j) {
    const double yj = y[j];
    if (yj == 0.0) continue;
    const SparseColumn& lcol = lower_[j];
    for (std::size_t k = 0; k < lcol.indices.size(); ++k) {
      y[lcol.indices[k]] -= yj * lcol.values[k];
    }
  }
  // Back solve U x = y (column-oriented: U(:,j) holds the above-diagonal
  // entries of column j, indexed by their pivot columns).
  for (std::size_t jj = n_; jj-- > 0;) {
    y[jj] /= diagonal_[jj];
    const double xj = y[jj];
    if (xj == 0.0) continue;
    const SparseColumn& ucol = upper_[jj];
    for (std::size_t k = 0; k < ucol.indices.size(); ++k) {
      y[ucol.indices[k]] -= xj * ucol.values[k];
    }
  }
  x = std::move(y);
}

std::size_t SparseLu::factor_nonzeros() const {
  std::size_t count = n_;  // diagonal
  for (const SparseColumn& c : lower_) count += c.indices.size();
  for (const SparseColumn& c : upper_) count += c.indices.size();
  return count;
}

}  // namespace rms::linalg
