// Householder QR for least-squares subproblems.
//
// The bounded Levenberg-Marquardt optimizer solves the damped system
// [J; sqrt(lambda) I] dx = [r; 0] — QR keeps that well-conditioned even when
// J^T J would lose half the digits.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace rms::linalg {

class QrFactorization {
 public:
  /// Factors the m x n matrix `a` (m >= n). Returns false if a column is
  /// numerically rank deficient.
  bool factor(const Matrix& a);

  /// Minimizes ||A x - b||_2; b has m entries, x gets n entries.
  void solve_least_squares(const Vector& b, Vector& x) const;

  [[nodiscard]] bool ok() const { return ok_; }

 private:
  Matrix qr_;          // Householder vectors below the diagonal, R on/above.
  Vector tau_;         // Householder scalar factors.
  bool ok_ = false;
};

/// One-shot helper; returns false on rank deficiency.
bool solve_least_squares(const Matrix& a, const Vector& b, Vector& x);

}  // namespace rms::linalg
