// Dense row-major matrix and vector helpers.
//
// Sized for the Newton systems inside the Adams-Gear solver and the normal
// equations inside the bounded Levenberg-Marquardt optimizer: hundreds to a
// few thousand unknowns, dense storage, partial-pivoting LU.
#pragma once

#include <cstddef>
#include <vector>

#include "support/assert.hpp"

namespace rms::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    RMS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    RMS_DCHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  double* row(std::size_t r) { return &data_[r * cols_]; }
  const double* row(std::size_t r) const { return &data_[r * cols_]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  /// y = A * x.
  void multiply(const Vector& x, Vector& y) const;

  /// y = A^T * x.
  void multiply_transpose(const Vector& x, Vector& y) const;

  /// C = A * B.
  [[nodiscard]] Matrix multiply(const Matrix& other) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm of a vector.
double norm2(const Vector& v);

/// Infinity norm of a vector.
double norm_inf(const Vector& v);

/// Dot product (sizes must match).
double dot(const Vector& a, const Vector& b);

/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);

}  // namespace rms::linalg
