#include "linalg/gmres.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"

namespace rms::linalg {

namespace {

void apply_preconditioner(const Vector& inverse_diagonal, const Vector& in,
                          Vector& out) {
  if (inverse_diagonal.empty()) {
    out = in;
    return;
  }
  out.resize(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = in[i] * inverse_diagonal[i];
  }
}

}  // namespace

GmresResult gmres(const LinearOperator& apply, const Vector& b, Vector& x,
                  const GmresOptions& options,
                  const Vector& inverse_diagonal) {
  const std::size_t n = b.size();
  if (x.size() != n) x.assign(n, 0.0);
  GmresResult result;

  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    x.assign(n, 0.0);
    result.converged = true;
    return result;
  }

  const std::size_t m = std::max<std::size_t>(options.restart, 1);
  std::vector<Vector> basis(m + 1);
  // Hessenberg in column-major-ish (h[j] holds column j, length j+2).
  std::vector<Vector> h(m);
  Vector cs(m, 0.0);
  Vector sn(m, 0.0);
  Vector g(m + 1, 0.0);
  Vector work(n);
  Vector precond(n);

  while (result.iterations < options.max_iterations) {
    // r = b - A x.
    apply(x, work);
    Vector r(n);
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - work[i];
    double beta = norm2(r);
    result.relative_residual = beta / b_norm;
    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      return result;
    }

    basis[0] = r;
    for (double& v : basis[0]) v /= beta;
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    std::size_t k = 0;
    for (; k < m && result.iterations < options.max_iterations; ++k) {
      ++result.iterations;
      // w = A M^-1 v_k.
      apply_preconditioner(inverse_diagonal, basis[k], precond);
      apply(precond, work);

      // Modified Gram-Schmidt.
      h[k].assign(k + 2, 0.0);
      for (std::size_t i = 0; i <= k; ++i) {
        h[k][i] = dot(work, basis[i]);
        axpy(-h[k][i], basis[i], work);
      }
      h[k][k + 1] = norm2(work);
      if (h[k][k + 1] > 1e-300) {
        basis[k + 1] = work;
        for (double& v : basis[k + 1]) v /= h[k][k + 1];
      } else {
        basis[k + 1].assign(n, 0.0);  // happy breakdown
      }

      // Apply the accumulated Givens rotations, then create a new one.
      for (std::size_t i = 0; i < k; ++i) {
        const double temp = cs[i] * h[k][i] + sn[i] * h[k][i + 1];
        h[k][i + 1] = -sn[i] * h[k][i] + cs[i] * h[k][i + 1];
        h[k][i] = temp;
      }
      const double denom =
          std::sqrt(h[k][k] * h[k][k] + h[k][k + 1] * h[k][k + 1]);
      if (denom < 1e-300) {
        cs[k] = 1.0;
        sn[k] = 0.0;
      } else {
        cs[k] = h[k][k] / denom;
        sn[k] = h[k][k + 1] / denom;
      }
      h[k][k] = cs[k] * h[k][k] + sn[k] * h[k][k + 1];
      h[k][k + 1] = 0.0;
      const double g_next = -sn[k] * g[k];
      g[k] = cs[k] * g[k];
      g[k + 1] = g_next;

      result.relative_residual = std::fabs(g[k + 1]) / b_norm;
      if (result.relative_residual <= options.tolerance) {
        ++k;
        break;
      }
    }

    // Back-substitute for the Krylov coefficients and update x.
    Vector yk(k, 0.0);
    for (std::size_t ii = k; ii-- > 0;) {
      double sum = g[ii];
      for (std::size_t j = ii + 1; j < k; ++j) sum -= h[j][ii] * yk[j];
      RMS_CHECK(std::fabs(h[ii][ii]) > 0.0);
      yk[ii] = sum / h[ii][ii];
    }
    Vector update(n, 0.0);
    for (std::size_t j = 0; j < k; ++j) axpy(yk[j], basis[j], update);
    apply_preconditioner(inverse_diagonal, update, precond);
    for (std::size_t i = 0; i < n; ++i) x[i] += precond[i];

    if (result.relative_residual <= options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

}  // namespace rms::linalg
