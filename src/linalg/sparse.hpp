// Sparse matrices (CSR) and sparse LU factorization.
//
// Chemistry Jacobians are very sparse — each species couples only to its
// reaction partners — and the chemical compiler knows the exact pattern
// (codegen::CompiledJacobian). SparseLu factors such matrices with the
// classic left-looking column algorithm (Gilbert-Peierls): each column is
// solved against the already-factored columns with a sparse triangular
// solve whose reach is found by depth-first search, with partial pivoting.
// Complexity is proportional to the flops of the factorization itself, not
// to n^3, so stiff integration of 10^4-10^5-equation systems stays
// feasible.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/matrix.hpp"

namespace rms::linalg {

/// Compressed sparse row matrix.
struct CsrMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<std::uint32_t> row_offsets;  ///< size rows + 1
  std::vector<std::uint32_t> col_indices;  ///< size nnz
  std::vector<double> values;              ///< size nnz

  [[nodiscard]] std::size_t nonzero_count() const { return values.size(); }

  /// y = A * x.
  void multiply(const Vector& x, Vector& y) const;

  /// Builds from a dense matrix, dropping exact zeros.
  static CsrMatrix from_dense(const Matrix& dense, double threshold = 0.0);

  [[nodiscard]] Matrix to_dense() const;
};

/// Sparse LU with partial pivoting (left-looking, Gilbert-Peierls).
/// factor() may be called repeatedly with matrices of the same or different
/// patterns; internal workspaces are reused.
class SparseLu {
 public:
  /// Factors A (CSR). Returns false when numerically singular.
  bool factor(const CsrMatrix& a);

  /// Solves A x = b using the factors. factor() must have succeeded.
  void solve(const Vector& b, Vector& x) const;

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t dimension() const { return n_; }
  /// Fill-in diagnostic: nonzeros in L + U.
  [[nodiscard]] std::size_t factor_nonzeros() const;

 private:
  // Column-compressed L and U (unit-diagonal L implicit).
  struct SparseColumn {
    std::vector<std::uint32_t> indices;
    std::vector<double> values;
  };

  std::size_t n_ = 0;
  std::vector<SparseColumn> lower_;  ///< L columns (rows > pivot, permuted)
  std::vector<SparseColumn> upper_;  ///< U columns (rows <= pivot, permuted)
  std::vector<double> diagonal_;     ///< U diagonal
  std::vector<std::uint32_t> row_permutation_;  ///< original row -> pivot row
  bool ok_ = false;
};

}  // namespace rms::linalg
