#include "linalg/matrix.hpp"

#include <cmath>

namespace rms::linalg {

void Matrix::multiply(const Vector& x, Vector& y) const {
  RMS_CHECK(x.size() == cols_);
  y.assign(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = row(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += row_ptr[c] * x[c];
    y[r] = sum;
  }
}

void Matrix::multiply_transpose(const Vector& x, Vector& y) const {
  RMS_CHECK(x.size() == rows_);
  y.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* row_ptr = row(r);
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row_ptr[c] * xr;
  }
}

Matrix Matrix::multiply(const Matrix& other) const {
  RMS_CHECK(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      const double* brow = other.row(k);
      double* orow = out.row(i);
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double norm2(const Vector& v) {
  double sum = 0.0;
  for (double x : v) sum += x * x;
  return std::sqrt(sum);
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::fabs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  RMS_CHECK(a.size() == b.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  RMS_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace rms::linalg
