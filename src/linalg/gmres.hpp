// Restarted GMRES for abstract linear operators.
//
// Solves A x = b where A is only available as a matrix-vector product —
// the form the Jacobian-free Newton-Krylov path of the Adams-Gear solver
// needs (A v = d0*v - J v, with J v approximated by a directional
// difference of the RHS). Arnoldi with modified Gram-Schmidt and Givens
// rotations; optional diagonal (Jacobi) right preconditioning.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace rms::linalg {

/// y = A * x.
using LinearOperator = std::function<void(const Vector& x, Vector& y)>;

struct GmresOptions {
  std::size_t restart = 30;       ///< Krylov subspace size per cycle
  std::size_t max_iterations = 300;
  double tolerance = 1e-8;        ///< relative residual target
};

struct GmresResult {
  bool converged = false;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
};

/// Solves A x = b from initial guess x (updated in place). When
/// `inverse_diagonal` is non-empty it is used as a Jacobi right
/// preconditioner: A M^-1 u = b with x = M^-1 u, M = diag(1 ./ inv_diag).
GmresResult gmres(const LinearOperator& apply, const Vector& b, Vector& x,
                  const GmresOptions& options = {},
                  const Vector& inverse_diagonal = {});

}  // namespace rms::linalg
