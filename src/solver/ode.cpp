#include "solver/ode.hpp"

#include <cmath>

#include "support/assert.hpp"

namespace rms::solver {

double error_norm(const std::vector<double>& error, const std::vector<double>& y,
                  double rtol, double atol) {
  RMS_CHECK(error.size() == y.size());
  if (error.empty()) return 0.0;
  double sum = 0.0;
  for (std::size_t i = 0; i < error.size(); ++i) {
    const double scale = atol + rtol * std::fabs(y[i]);
    const double ratio = error[i] / scale;
    sum += ratio * ratio;
  }
  return std::sqrt(sum / static_cast<double>(error.size()));
}

}  // namespace rms::solver
