// Common ODE-solver interface (the role of the IMSL solver managers).
//
// Both solvers integrate y' = f(t, y) from an initial state, advancing to
// caller-requested output times; values at an output time inside the last
// internal step are produced by interpolation, so a caller asking for 3000
// closely spaced sample times (the experimental-data comparison loop of
// Fig. 9) does not force 3000 tiny steps.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "linalg/sparse.hpp"
#include "support/status.hpp"

namespace rms::solver {

/// Fills the dense row-major Jacobian J[i*n+j] = df_i/dy_j.
using JacobianFn =
    std::function<void(double t, const double* y, double* jacobian)>;

/// Fills a CSR Jacobian (structure + values). The pattern may stay fixed
/// across calls (chemistry Jacobians do), but the solver does not rely on
/// that.
using SparseJacobianFn =
    std::function<void(double t, const double* y, linalg::CsrMatrix& jacobian)>;

/// Batched right-hand side: evaluates n independent states in one call.
/// `ys` and `ydots` are row-major with stride `dimension` (lane l's state
/// is ys + l*dimension). vm::Interpreter::run_batch_shared_k provides this
/// in one cache-resident pass over the bytecode tape.
using RhsBatchFn = std::function<void(double t, const double* ys,
                                      double* ydots, std::size_t n)>;

/// Right-hand side dy/dt = f(t, y). `ydot` has `dimension` entries.
struct OdeSystem {
  std::size_t dimension = 0;
  std::function<void(double t, const double* y, double* ydot)> rhs;
  /// Optional analytic dense Jacobian (e.g. codegen::CompiledJacobian);
  /// when absent, implicit solvers fall back to forward differences.
  JacobianFn jacobian;
  /// Optional analytic sparse Jacobian — required by the kSparseLu Newton
  /// strategy (codegen::SparseJacobianEvaluator provides it directly from
  /// the compiled CSR structure).
  SparseJacobianFn sparse_jacobian;
  /// Optional batched RHS. When present, implicit solvers build their
  /// finite-difference Jacobians from chunked batch evaluations instead of
  /// n + 1 scalar sweeps.
  RhsBatchFn rhs_batch;
};

/// How the implicit solver solves its Newton linear systems.
enum class NewtonLinearSolver {
  /// Dense finite-difference (or analytic) Jacobian + LU. Robust; the
  /// factorization is O(n^3), right up to a few thousand equations.
  kDenseLu,
  /// Jacobian-free Newton-Krylov: unpreconditioned GMRES with directional
  /// finite-difference J*v products. No Jacobian storage or factorization —
  /// the option that scales to the 10^5-equation systems of Table 1.
  kMatrixFreeGmres,
  /// Sparse direct LU on the analytic sparse Jacobian (requires
  /// OdeSystem::sparse_jacobian). Fill-proportional cost: the robustness of
  /// a direct method at a fraction of the dense O(n^3).
  kSparseLu,
};

struct IntegrationOptions {
  double relative_tolerance = 1e-6;
  double absolute_tolerance = 1e-9;
  /// Initial step size; 0 picks one automatically.
  double initial_step = 0.0;
  double min_step = 1e-14;
  std::size_t max_steps_per_call = 10'000'000;
  /// Maximum BDF order (Adams-Gear solver only), 1..5.
  int max_order = 5;
  NewtonLinearSolver newton_linear_solver = NewtonLinearSolver::kDenseLu;
  /// Relative residual target for the inner GMRES solves.
  double krylov_tolerance = 1e-5;
};

struct IntegrationStats {
  std::size_t steps = 0;
  std::size_t rejected_steps = 0;
  std::size_t rhs_evaluations = 0;
  std::size_t jacobian_evaluations = 0;
  std::size_t factorizations = 0;
  std::size_t newton_iterations = 0;
  /// 1 when this integration was initialized from a warm-start profile
  /// captured on an earlier solve (AdamsGear::set_warm_start).
  std::size_t warm_starts = 0;
  /// Iteration-matrix factorizations avoided by reusing a factorization
  /// recorded on an earlier solve (AdamsGear::set_factor_cache).
  std::size_t factor_cache_hits = 0;

  IntegrationStats& operator+=(const IntegrationStats& other) {
    steps += other.steps;
    rejected_steps += other.rejected_steps;
    rhs_evaluations += other.rhs_evaluations;
    jacobian_evaluations += other.jacobian_evaluations;
    factorizations += other.factorizations;
    newton_iterations += other.newton_iterations;
    warm_starts += other.warm_starts;
    factor_cache_hits += other.factor_cache_hits;
    return *this;
  }
};

/// Abstract solver: initialize once, then advance to increasing times.
class OdeSolver {
 public:
  virtual ~OdeSolver() = default;

  /// (Re)starts the integration at (t0, y0).
  virtual support::Status initialize(double t0,
                                     const std::vector<double>& y0) = 0;

  /// Integrates forward and writes y(t_target) to `y_out`. t_target must be
  /// >= the current time.
  virtual support::Status advance_to(double t_target,
                                     std::vector<double>& y_out) = 0;

  [[nodiscard]] virtual double current_time() const = 0;
  [[nodiscard]] virtual const IntegrationStats& stats() const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

/// Weighted RMS error norm used by both step controllers:
/// sqrt(mean((e_i / (atol + rtol * |y_i|))^2)).
double error_norm(const std::vector<double>& error, const std::vector<double>& y,
                  double rtol, double atol);

}  // namespace rms::solver
