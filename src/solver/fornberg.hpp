// Fornberg finite-difference weights.
//
// Computes the weights w[d][j] such that the d-th derivative at x0 of the
// polynomial interpolating f at nodes x[0..n-1] equals sum_j w[d][j]*f(x[j]).
// The variable-step BDF (Adams-Gear) solver uses the first-derivative
// weights to build its corrector equation, and the zeroth-derivative
// weights for dense output interpolation.
//
// Reference algorithm: B. Fornberg, "Generation of finite difference
// formulas on arbitrarily spaced grids", Math. Comp. 51 (1988).
#pragma once

#include <vector>

namespace rms::solver {

/// weights[d * n + j] = weight of f(x[j]) for the d-th derivative at x0,
/// for d = 0..max_derivative. Nodes must be distinct.
void fornberg_weights(double x0, const double* x, int n, int max_derivative,
                      std::vector<double>& weights);

}  // namespace rms::solver
