// Runge-Kutta-Verner 6(5) solver.
//
// The eight-stage embedded pair of J. H. Verner (the method behind the
// DVERK code and IMSL's imsl_f_ode_runge_kutta, which the paper describes
// as "the Runge Kutta Verner fifth order and sixth order method"). The
// sixth-order solution propagates; the difference against the embedded
// fifth-order solution drives the adaptive step controller. Efficient for
// non-stiff systems; the Adams-Gear solver handles the stiff ones.
#pragma once

#include "solver/ode.hpp"

namespace rms::solver {

class RungeKuttaVerner final : public OdeSolver {
 public:
  RungeKuttaVerner(OdeSystem system, IntegrationOptions options = {});

  support::Status initialize(double t0, const std::vector<double>& y0) override;
  support::Status advance_to(double t_target,
                             std::vector<double>& y_out) override;
  [[nodiscard]] double current_time() const override { return t_; }
  [[nodiscard]] const IntegrationStats& stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override {
    return "runge-kutta-verner-6(5)";
  }

 private:
  /// One accepted internal step; updates t_, y_, f0_ and proposes h_.
  support::Status step();

  /// Cubic Hermite interpolation within the last accepted step.
  void interpolate(double t, std::vector<double>& y_out) const;

  void eval_rhs(double t, const std::vector<double>& y, std::vector<double>& f);

  OdeSystem system_;
  IntegrationOptions options_;
  IntegrationStats stats_;
  double t_ = 0.0;
  double h_ = 0.0;
  std::vector<double> y_;
  std::vector<double> f0_;  ///< f(t_, y_)
  // Previous accepted step endpoints for interpolation.
  double t_prev_ = 0.0;
  std::vector<double> y_prev_;
  std::vector<double> f_prev_;
  // Stage storage.
  std::vector<std::vector<double>> stages_;
  std::vector<double> work_;
  std::vector<double> y_high_;
  std::vector<double> error_;
  bool initialized_ = false;
};

}  // namespace rms::solver
