// Adams-Gear stiff solver: variable-order (1..5), variable-step BDF with a
// modified Newton corrector (the role of IMSL's imsl_f_ode_adams_gear).
//
// "Because chemical reactions proceed to equilibrium, where molecules and
// their variants effectively complete their reactions in different epochs,
// the differential equations modeling the behavior of such systems are
// stiff. Therefore we use the Adams-Gear solver." (paper §4.1)
//
// Method: at order q the solution history (t_{n-1}, y_{n-1}), ..., is
// interpolated together with the unknown (t_n, y_n); requiring the
// interpolant's derivative at t_n to equal f(t_n, y_n) gives the
// variable-coefficient BDF corrector
//     d_0 y_n + sum_{i>=1} d_i y_{n-i} = f(t_n, y_n)
// whose weights d_i come from Fornberg's algorithm on the actual (unevenly
// spaced) history nodes. The corrector is solved by a modified Newton
// iteration with iteration matrix M = d_0 I - J, J a finite-difference
// Jacobian that is reused across steps until convergence degrades.
#pragma once

#include <deque>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "solver/ode.hpp"

namespace rms::solver {

class AdamsGear final : public OdeSolver {
 public:
  AdamsGear(OdeSystem system, IntegrationOptions options = {});

  support::Status initialize(double t0, const std::vector<double>& y0) override;
  support::Status advance_to(double t_target,
                             std::vector<double>& y_out) override;
  [[nodiscard]] double current_time() const override { return history_.front().t; }
  [[nodiscard]] const IntegrationStats& stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "adams-gear-bdf"; }

  /// Current BDF order (for tests/diagnostics).
  [[nodiscard]] int current_order() const { return order_; }

 private:
  struct HistoryPoint {
    double t = 0.0;
    std::vector<double> y;
  };

  support::Status step();
  support::Status newton_solve(double t_new, const std::vector<double>& d,
                               std::vector<double>& y, bool& converged);
  void compute_jacobian(double t, const std::vector<double>& y);
  bool factor_iteration_matrix(double d0);
  void compute_sparse_jacobian(double t, const std::vector<double>& y);
  bool factor_sparse_iteration_matrix(double d0);
  void interpolate(double t, std::vector<double>& y_out) const;
  void predict(double t_new, std::vector<double>& y_pred) const;

  OdeSystem system_;
  IntegrationOptions options_;
  IntegrationStats stats_;

  std::deque<HistoryPoint> history_;  ///< newest first
  double h_ = 0.0;
  int order_ = 1;
  int accepts_at_order_ = 0;
  int consecutive_rejects_ = 0;

  linalg::Matrix jacobian_;
  linalg::LuFactorization lu_;
  linalg::CsrMatrix sparse_jacobian_;
  linalg::SparseLu sparse_lu_;
  double factored_d0_ = 0.0;
  bool jacobian_fresh_ = false;
  bool have_jacobian_ = false;

  std::vector<double> f_work_;
  std::vector<double> g_work_;
  std::vector<double> delta_;
  std::vector<double> weights_;
  bool initialized_ = false;
};

}  // namespace rms::solver
