// Adams-Gear stiff solver: variable-order (1..5), variable-step BDF with a
// modified Newton corrector (the role of IMSL's imsl_f_ode_adams_gear).
//
// "Because chemical reactions proceed to equilibrium, where molecules and
// their variants effectively complete their reactions in different epochs,
// the differential equations modeling the behavior of such systems are
// stiff. Therefore we use the Adams-Gear solver." (paper §4.1)
//
// Method: at order q the solution history (t_{n-1}, y_{n-1}), ..., is
// interpolated together with the unknown (t_n, y_n); requiring the
// interpolant's derivative at t_n to equal f(t_n, y_n) gives the
// variable-coefficient BDF corrector
//     d_0 y_n + sum_{i>=1} d_i y_{n-i} = f(t_n, y_n)
// whose weights d_i come from Fornberg's algorithm on the actual (unevenly
// spaced) history nodes. The corrector is solved by a modified Newton
// iteration with iteration matrix M = d_0 I - J, J a finite-difference
// Jacobian that is reused across steps until convergence degrades.
//
// Warm starts: the parameter estimator re-solves each data file once per
// finite-difference column per Levenberg-Marquardt iteration, at rate
// constants that barely move between solves. A completed solve records its
// accepted step-size/order profile (capture_warm_start); a later solve of
// the same file seeded with that profile (set_warm_start) skips the
// conservative cold-start ramp — larger initial step, earlier order raises,
// faster step growth toward the recorded profile — while the error
// controller still validates every step, so accuracy is unchanged.
#pragma once

#include <deque>

#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "solver/ode.hpp"

namespace rms::solver {

/// Accepted-step profile of a completed integration: entry i says the step
/// starting at times[i] used step size steps[i] at BDF order orders[i].
/// A profile captured on one trajectory warm-starts a re-solve of a nearby
/// trajectory (same file, perturbed rate constants).
struct WarmStartProfile {
  std::vector<double> times;
  std::vector<double> steps;
  std::vector<int> orders;

  [[nodiscard]] bool empty() const { return steps.empty(); }
  void clear() {
    times.clear();
    steps.clear();
    orders.clear();
  }
};

/// Reusable iteration-matrix factorizations recorded on one solve: entry i
/// factored M = d0 I - J at d0 values[i].d0 somewhere along the trajectory.
/// A later solve of a nearby trajectory (same data file, rate constants
/// perturbed at finite-difference magnitude) reuses the factors directly —
/// the modified Newton corrector tolerates both the stale Jacobian and a
/// bounded d0 mismatch — trading a few extra Newton iterations for the
/// dominant sparse-LU factorization cost.
struct FactorCache {
  struct Entry {
    double d0 = 0.0;
    linalg::SparseLu lu;
  };
  std::vector<Entry> entries;

  [[nodiscard]] bool empty() const { return entries.empty(); }
  void clear() { entries.clear(); }
};

class AdamsGear final : public OdeSolver {
 public:
  AdamsGear(OdeSystem system, IntegrationOptions options = {});

  support::Status initialize(double t0, const std::vector<double>& y0) override;
  support::Status advance_to(double t_target,
                             std::vector<double>& y_out) override;
  [[nodiscard]] double current_time() const override { return history_.front().t; }
  [[nodiscard]] const IntegrationStats& stats() const override { return stats_; }
  [[nodiscard]] std::string name() const override { return "adams-gear-bdf"; }

  /// Current BDF order (for tests/diagnostics).
  [[nodiscard]] int current_order() const { return order_; }

  /// Copies the accepted-step profile of the integration since the last
  /// initialize() into `out` (cleared first). Meaningful after advance_to.
  void capture_warm_start(WarmStartProfile& out) const;

  /// Borrows a profile consumed by subsequent initialize() calls: the
  /// initial step and the controller's ramp heuristics follow the profile.
  /// nullptr (the default) restores cold starts. The profile must outlive
  /// the integration (it is read during stepping).
  void set_warm_start(const WarmStartProfile* profile) { warm_ = profile; }

  /// Borrows recorded factorizations from an earlier solve of a nearby
  /// trajectory (sparse-LU path only): whenever a step would refactor the
  /// iteration matrix, a cached factor whose d0 lies within the warm drift
  /// band of the needed one is reused instead. nullptr disables reuse. The
  /// cache must outlive the integration and is never written through.
  void set_factor_cache(const FactorCache* cache) { factor_cache_ = cache; }

  /// Directs factorizations of subsequent integrations into `out` (cleared
  /// on initialize): every factorization this solver performs — and every
  /// cache hit it reuses — is appended, so the recording is a complete d0
  /// ladder for the trajectory. nullptr (the default) disables recording.
  void set_factor_recorder(FactorCache* out) { factor_recorder_ = out; }

 private:
  struct HistoryPoint {
    double t = 0.0;
    std::vector<double> y;
  };

  support::Status step();
  support::Status newton_solve(double t_new, const std::vector<double>& d,
                               std::vector<double>& y, bool& converged);
  void compute_jacobian(double t, const std::vector<double>& y);
  bool factor_iteration_matrix(double d0);
  void compute_sparse_jacobian(double t, const std::vector<double>& y);
  bool factor_sparse_iteration_matrix(double d0);
  /// Looks for a borrowed factorization within the warm drift band of d0;
  /// on a hit installs it as the active factorization and returns true.
  bool try_factor_cache(double d0);
  bool iteration_structure_matches() const;
  void build_iteration_structure();
  void interpolate(double t, std::vector<double>& y_out);
  void predict(double t_new, std::vector<double>& y_pred);
  /// Profile entry in effect at time t (monotone cursor; t must not
  /// decrease between calls within one integration).
  std::size_t warm_index_at(double t);

  OdeSystem system_;
  IntegrationOptions options_;
  IntegrationStats stats_;

  std::deque<HistoryPoint> history_;  ///< newest first
  double h_ = 0.0;
  int order_ = 1;
  int accepts_at_order_ = 0;
  int consecutive_rejects_ = 0;

  linalg::Matrix jacobian_;
  linalg::LuFactorization lu_;
  linalg::CsrMatrix sparse_jacobian_;
  linalg::SparseLu sparse_lu_;
  /// The factorization Newton solves with: &sparse_lu_ after an own
  /// factorization, or a borrowed FactorCache entry after a cache hit.
  const linalg::SparseLu* active_sparse_lu_ = nullptr;
  const FactorCache* factor_cache_ = nullptr;
  FactorCache* factor_recorder_ = nullptr;
  double factored_d0_ = 0.0;
  bool has_factorization_ = false;
  bool jacobian_fresh_ = false;
  bool have_jacobian_ = false;

  // Iteration matrix M = d0*I - J built into persistent storage: the
  // symbolic merge of J's pattern with the diagonal is computed once and
  // reused while the Jacobian pattern is unchanged (chemistry patterns are
  // fixed), so refactorization only rewrites values.
  linalg::CsrMatrix iteration_matrix_;
  std::vector<std::uint32_t> iteration_source_;  ///< jac entry per M entry
  std::vector<std::uint32_t> iteration_diagonal_;  ///< M entry of (r, r)
  static constexpr std::uint32_t kNoSource = 0xffffffffu;

  // Step workspaces, reused across steps so a steady-state solve performs
  // no heap allocation.
  std::vector<double> f_work_;
  std::vector<double> g_work_;
  std::vector<double> delta_;
  std::vector<double> weights_;
  std::vector<double> step_nodes_;
  std::vector<double> step_d_;
  std::vector<double> y_new_;
  std::vector<double> y_pred_;
  std::vector<double> err_vec_;
  std::vector<double> history_term_;
  std::vector<double> interp_nodes_;
  std::vector<double> interp_w_;
  std::vector<double> jac_f0_;
  std::vector<double> jac_ys_;
  std::vector<double> jac_fs_;
  std::vector<double> jac_deltas_;
  std::vector<double> jac_y_pert_;

  // Accepted-step profile of the current integration (capture_warm_start)
  // and the borrowed profile steering it (set_warm_start).
  std::vector<double> profile_times_;
  std::vector<double> profile_steps_;
  std::vector<int> profile_orders_;
  const WarmStartProfile* warm_ = nullptr;
  std::size_t warm_cursor_ = 0;

  bool initialized_ = false;
};

}  // namespace rms::solver
