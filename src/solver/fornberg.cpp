#include "solver/fornberg.hpp"

#include "support/assert.hpp"

namespace rms::solver {

void fornberg_weights(double x0, const double* x, int n, int max_derivative,
                      std::vector<double>& weights) {
  RMS_CHECK(n >= 1 && max_derivative >= 0);
  const int m = max_derivative;
  weights.assign(static_cast<std::size_t>(m + 1) * n, 0.0);
  auto w = [&](int d, int j) -> double& {
    return weights[static_cast<std::size_t>(d) * n + j];
  };

  double c1 = 1.0;
  double c4 = x[0] - x0;
  w(0, 0) = 1.0;
  for (int i = 1; i < n; ++i) {
    const int mn = std::min(i, m);
    double c2 = 1.0;
    const double c5 = c4;
    c4 = x[i] - x0;
    for (int j = 0; j < i; ++j) {
      const double c3 = x[i] - x[j];
      RMS_CHECK_MSG(c3 != 0.0, "fornberg_weights: duplicate nodes");
      c2 *= c3;
      if (j == i - 1) {
        for (int d = mn; d >= 1; --d) {
          w(d, i) = c1 * (d * w(d - 1, i - 1) - c5 * w(d, i - 1)) / c2;
        }
        w(0, i) = -c1 * c5 * w(0, i - 1) / c2;
      }
      for (int d = mn; d >= 1; --d) {
        w(d, j) = (c4 * w(d, j) - d * w(d - 1, j)) / c3;
      }
      w(0, j) = c4 * w(0, j) / c3;
    }
    c1 = c2;
  }
}

}  // namespace rms::solver
