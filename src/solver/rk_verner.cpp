#include "solver/rk_verner.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::solver {

namespace {

// Verner's 8-stage 6(5) pair (the DVERK coefficients).
constexpr int kStages = 8;

constexpr double kC[kStages] = {
    0.0, 1.0 / 6.0, 4.0 / 15.0, 2.0 / 3.0, 5.0 / 6.0, 1.0, 1.0 / 15.0, 1.0};

constexpr double kA[kStages][kStages] = {
    {},
    {1.0 / 6.0},
    {4.0 / 75.0, 16.0 / 75.0},
    {5.0 / 6.0, -8.0 / 3.0, 5.0 / 2.0},
    {-165.0 / 64.0, 55.0 / 6.0, -425.0 / 64.0, 85.0 / 96.0},
    {12.0 / 5.0, -8.0, 4015.0 / 612.0, -11.0 / 36.0, 88.0 / 255.0},
    {-8263.0 / 15000.0, 124.0 / 75.0, -643.0 / 680.0, -81.0 / 250.0,
     2484.0 / 10625.0, 0.0},
    {3501.0 / 1720.0, -300.0 / 43.0, 297275.0 / 52632.0, -319.0 / 2322.0,
     24068.0 / 84065.0, 0.0, 3850.0 / 26703.0},
};

// Sixth-order weights (propagated solution).
constexpr double kB6[kStages] = {3.0 / 40.0,    0.0, 875.0 / 2244.0,
                                 23.0 / 72.0,   264.0 / 1955.0, 0.0,
                                 125.0 / 11592.0, 43.0 / 616.0};

// Embedded fifth-order weights (error estimator).
constexpr double kB5[kStages] = {13.0 / 160.0, 0.0, 2375.0 / 5984.0,
                                 5.0 / 16.0,   12.0 / 85.0, 3.0 / 44.0,
                                 0.0,          0.0};

constexpr double kSafety = 0.9;
constexpr double kMinShrink = 0.2;
constexpr double kMaxGrow = 5.0;

}  // namespace

RungeKuttaVerner::RungeKuttaVerner(OdeSystem system, IntegrationOptions options)
    : system_(std::move(system)), options_(options) {
  stages_.assign(kStages, std::vector<double>(system_.dimension));
  work_.resize(system_.dimension);
  y_high_.resize(system_.dimension);
  error_.resize(system_.dimension);
}

void RungeKuttaVerner::eval_rhs(double t, const std::vector<double>& y,
                                std::vector<double>& f) {
  f.resize(system_.dimension);
  system_.rhs(t, y.data(), f.data());
  ++stats_.rhs_evaluations;
}

support::Status RungeKuttaVerner::initialize(double t0,
                                             const std::vector<double>& y0) {
  if (y0.size() != system_.dimension) {
    return support::invalid_argument("initial state dimension mismatch");
  }
  t_ = t_prev_ = t0;
  y_ = y_prev_ = y0;
  stats_ = IntegrationStats{};
  eval_rhs(t0, y_, f0_);
  f_prev_ = f0_;

  if (options_.initial_step > 0.0) {
    h_ = options_.initial_step;
  } else {
    // Conservative automatic start: based on the scale of y and f.
    const double ynorm = error_norm(y_, y_, options_.relative_tolerance,
                                    options_.absolute_tolerance);
    const double fnorm = error_norm(f0_, y_, options_.relative_tolerance,
                                    options_.absolute_tolerance);
    h_ = fnorm > 1e-12 ? 0.01 * ynorm / fnorm : 1e-6;
    if (!(h_ > options_.min_step)) h_ = 1e-6;
  }
  initialized_ = true;
  return support::Status::ok();
}

support::Status RungeKuttaVerner::step() {
  const std::size_t n = system_.dimension;
  for (std::size_t attempt = 0; attempt < 64; ++attempt) {
    // Stage 0 reuses f0_.
    stages_[0] = f0_;
    // Stage combinations run stage-major: one contiguous pass per (nonzero)
    // tableau coefficient instead of touching all previous stage vectors
    // per component. At TC scale the strided form thrashes the cache; this
    // form streams each stage vector exactly once and vectorizes.
    for (int s = 1; s < kStages; ++s) {
      std::fill(work_.begin(), work_.end(), 0.0);
      for (int j = 0; j < s; ++j) {
        const double a = kA[s][j];
        if (a == 0.0) continue;
        const double* f = stages_[j].data();
        for (std::size_t i = 0; i < n; ++i) work_[i] += a * f[i];
      }
      for (std::size_t i = 0; i < n; ++i) work_[i] = y_[i] + h_ * work_[i];
      eval_rhs(t_ + kC[s] * h_, work_, stages_[s]);
    }
    // y_high_ accumulates the 6th-order sum, error_ the embedded 5th-order
    // sum; both are finalized in one last pass (error_ first — it reads the
    // high-order accumulator before y_high_ is overwritten).
    std::fill(y_high_.begin(), y_high_.end(), 0.0);
    std::fill(error_.begin(), error_.end(), 0.0);
    for (int s = 0; s < kStages; ++s) {
      const double* f = stages_[s].data();
      if (kB6[s] != 0.0) {
        for (std::size_t i = 0; i < n; ++i) y_high_[i] += kB6[s] * f[i];
      }
      if (kB5[s] != 0.0) {
        for (std::size_t i = 0; i < n; ++i) error_[i] += kB5[s] * f[i];
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      error_[i] = h_ * (y_high_[i] - error_[i]);
      y_high_[i] = y_[i] + h_ * y_high_[i];
    }
    const double err = error_norm(error_, y_, options_.relative_tolerance,
                                  options_.absolute_tolerance);
    if (err <= 1.0 || h_ <= options_.min_step) {
      // Accept.
      t_prev_ = t_;
      y_prev_ = y_;
      f_prev_ = f0_;
      t_ += h_;
      y_ = y_high_;
      eval_rhs(t_, y_, f0_);
      ++stats_.steps;
      const double grow =
          err > 1e-10 ? kSafety * std::pow(1.0 / err, 1.0 / 6.0) : kMaxGrow;
      h_ *= std::clamp(grow, kMinShrink, kMaxGrow);
      return support::Status::ok();
    }
    ++stats_.rejected_steps;
    const double shrink = kSafety * std::pow(1.0 / err, 1.0 / 6.0);
    h_ *= std::clamp(shrink, kMinShrink, 0.9);
    if (!(h_ > 0.0) || !std::isfinite(h_)) {
      return support::numeric_error("step size underflow");
    }
  }
  return support::numeric_error(
      "step repeatedly rejected; the system may be stiff — use the "
      "Adams-Gear solver");
}

void RungeKuttaVerner::interpolate(double t, std::vector<double>& y_out) const {
  // Cubic Hermite over [t_prev_, t_] using endpoint values and derivatives.
  const double dt = t_ - t_prev_;
  if (dt == 0.0) {
    y_out = y_;
    return;
  }
  const double s = (t - t_prev_) / dt;
  const double h00 = (1 + 2 * s) * (1 - s) * (1 - s);
  const double h10 = s * (1 - s) * (1 - s);
  const double h01 = s * s * (3 - 2 * s);
  const double h11 = s * s * (s - 1);
  y_out.resize(system_.dimension);
  for (std::size_t i = 0; i < system_.dimension; ++i) {
    y_out[i] = h00 * y_prev_[i] + h10 * dt * f_prev_[i] + h01 * y_[i] +
               h11 * dt * f0_[i];
  }
}

support::Status RungeKuttaVerner::advance_to(double t_target,
                                             std::vector<double>& y_out) {
  if (!initialized_) {
    return support::Status(support::StatusCode::kFailedPrecondition,
                           "initialize() must be called first");
  }
  if (t_target < t_prev_) {
    return support::invalid_argument(
        support::str_format("cannot integrate backwards: target %g < %g",
                            t_target, t_prev_));
  }
  std::size_t steps = 0;
  while (t_ < t_target) {
    // Never step far past the target (allow 1 step overshoot for
    // interpolation, but cap the step to reach the target region).
    h_ = std::min(h_, std::max(t_target - t_, options_.min_step) * 1.0);
    RMS_RETURN_IF_ERROR(step());
    if (++steps > options_.max_steps_per_call) {
      return support::numeric_error("max_steps_per_call exceeded");
    }
  }
  if (t_target >= t_) {
    y_out = y_;
  } else {
    interpolate(t_target, y_out);
  }
  return support::Status::ok();
}

}  // namespace rms::solver
