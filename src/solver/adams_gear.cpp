#include "solver/adams_gear.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/gmres.hpp"
#include "solver/fornberg.hpp"
#include "support/strings.hpp"

namespace rms::solver {

namespace {

constexpr double kSafety = 0.9;
constexpr double kMinShrink = 0.25;
constexpr double kMaxGrow = 4.0;
// Growth cap while chasing a warm-start profile: the profile proves larger
// steps were accepted here on a nearby trajectory, so the controller may
// close the gap faster than the cold 4x-per-step ramp.
constexpr double kWarmMaxGrow = 64.0;
// Warm-mode step hysteresis (the CVODE eta threshold): an accepted step
// keeps its size unless the controller wants at least 1.5x growth. A
// constant h keeps d0 constant, and a constant d0 keeps the factored
// iteration matrix valid — refactorization is ~30x a Newton iteration on
// the paper-scale sparse systems, so trading a few extra steps for long
// constant-h stretches is a large net win.
constexpr double kWarmGrowThreshold = 1.5;
// Warm-mode d0 drift band before refactoring (the role of CVODE's dgmax,
// widened). At the band edge (d0 ratio 1.5x either way) the stale-d0
// correction below bounds the extra per-iteration Newton error factor at
// ~1/3, costing a couple of extra iterations — roughly 1/30th of the
// refactorization it avoids. The cold band stays at 0.2.
constexpr double kWarmDriftBand = 0.5;
// Recorded factorizations per solve are capped: a sparse LU on paper-scale
// systems is a few hundred kilobytes, and a well-behaved solve records
// ~10 rungs — the cap only guards against reject storms.
constexpr std::size_t kFactorCacheCap = 64;
constexpr int kMaxNewtonIterations = 7;
constexpr int kMaxStepAttempts = 64;

}  // namespace

AdamsGear::AdamsGear(OdeSystem system, IntegrationOptions options)
    : system_(std::move(system)), options_(options) {
  options_.max_order = std::clamp(options_.max_order, 1, 5);
  const std::size_t n = system_.dimension;
  // The dense n x n Jacobian is allocated lazily in compute_jacobian(): the
  // matrix-free Krylov path must not pay n^2 memory.
  f_work_.resize(n);
  g_work_.resize(n);
  delta_.resize(n);
}

support::Status AdamsGear::initialize(double t0, const std::vector<double>& y0) {
  if (y0.size() != system_.dimension) {
    return support::invalid_argument("initial state dimension mismatch");
  }
  // Recycle history buffers: clear() would free the per-point state
  // vectors, and a re-initialized solver (the estimator re-solves each data
  // file hundreds of times) should reach steady state without reallocating.
  while (history_.size() > 1) history_.pop_back();
  if (history_.empty()) {
    history_.push_front(HistoryPoint{});
  }
  history_.front().t = t0;
  history_.front().y = y0;
  stats_ = IntegrationStats{};
  order_ = 1;
  accepts_at_order_ = 0;
  consecutive_rejects_ = 0;
  have_jacobian_ = false;
  jacobian_fresh_ = false;
  has_factorization_ = false;
  active_sparse_lu_ = nullptr;
  if (factor_recorder_ != nullptr) factor_recorder_->clear();
  profile_times_.clear();
  profile_steps_.clear();
  profile_orders_.clear();
  warm_cursor_ = 0;

  if (options_.initial_step > 0.0) {
    h_ = options_.initial_step;
  } else if (warm_ != nullptr && !warm_->empty()) {
    // Start with the largest step the previous solve accepted during its
    // own order-1 startup: the trajectories differ only by a parameter
    // perturbation, so the step that worked there works here (and a
    // rejection merely halves it back).
    double h0 = 0.0;
    for (std::size_t i = 0; i < warm_->steps.size() && warm_->orders[i] == 1;
         ++i) {
      h0 = std::max(h0, warm_->steps[i]);
    }
    h_ = h0 > options_.min_step ? h0 : 1e-6;
    stats_.warm_starts = 1;
  } else {
    system_.rhs(t0, y0.data(), f_work_.data());
    ++stats_.rhs_evaluations;
    const double ynorm = error_norm(y0, y0, options_.relative_tolerance,
                                    options_.absolute_tolerance);
    const double fnorm = error_norm(f_work_, y0, options_.relative_tolerance,
                                    options_.absolute_tolerance);
    h_ = fnorm > 1e-12 ? 0.001 * ynorm / fnorm : 1e-6;
    if (!(h_ > options_.min_step)) h_ = 1e-6;
  }
  initialized_ = true;
  return support::Status::ok();
}

void AdamsGear::capture_warm_start(WarmStartProfile& out) const {
  out.times = profile_times_;
  out.steps = profile_steps_;
  out.orders = profile_orders_;
}

std::size_t AdamsGear::warm_index_at(double t) {
  const std::vector<double>& times = warm_->times;
  while (warm_cursor_ + 1 < times.size() && times[warm_cursor_ + 1] <= t) {
    ++warm_cursor_;
  }
  return warm_cursor_;
}

void AdamsGear::compute_jacobian(double t, const std::vector<double>& y) {
  const std::size_t n = system_.dimension;
  if (jacobian_.rows() != n) jacobian_ = linalg::Matrix(n, n);
  if (system_.jacobian) {
    system_.jacobian(t, y.data(), jacobian_.data());
    ++stats_.jacobian_evaluations;
    jacobian_fresh_ = true;
    have_jacobian_ = true;
    return;
  }
  jac_f0_.resize(n);
  system_.rhs(t, y.data(), jac_f0_.data());
  ++stats_.rhs_evaluations;
  const std::vector<double>& f0 = jac_f0_;
  if (system_.rhs_batch) {
    // Batched forward differences: evaluate a chunk of perturbed states in
    // one pass over the RHS (one tape traversal in the bytecode case)
    // instead of one full sweep per column.
    constexpr std::size_t kChunk = 16;
    jac_ys_.resize(kChunk * n);
    jac_fs_.resize(kChunk * n);
    jac_deltas_.resize(kChunk);
    for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
      const std::size_t m = std::min(kChunk, n - j0);
      for (std::size_t c = 0; c < m; ++c) {
        const std::size_t j = j0 + c;
        jac_deltas_[c] = std::sqrt(1e-16) * std::max(std::fabs(y[j]), 1e-5);
        double* row = jac_ys_.data() + c * n;
        std::copy(y.begin(), y.end(), row);
        row[j] += jac_deltas_[c];
      }
      system_.rhs_batch(t, jac_ys_.data(), jac_fs_.data(), m);
      stats_.rhs_evaluations += m;
      for (std::size_t c = 0; c < m; ++c) {
        const double inv_delta = 1.0 / jac_deltas_[c];
        const double* f = jac_fs_.data() + c * n;
        for (std::size_t i = 0; i < n; ++i) {
          jacobian_(i, j0 + c) = (f[i] - f0[i]) * inv_delta;
        }
      }
    }
  } else {
    jac_y_pert_ = y;
    for (std::size_t j = 0; j < n; ++j) {
      const double delta =
          std::sqrt(1e-16) * std::max(std::fabs(y[j]), 1e-5);
      jac_y_pert_[j] = y[j] + delta;
      system_.rhs(t, jac_y_pert_.data(), f_work_.data());
      ++stats_.rhs_evaluations;
      jac_y_pert_[j] = y[j];
      const double inv_delta = 1.0 / delta;
      for (std::size_t i = 0; i < n; ++i) {
        jacobian_(i, j) = (f_work_[i] - f0[i]) * inv_delta;
      }
    }
  }
  ++stats_.jacobian_evaluations;
  jacobian_fresh_ = true;
  have_jacobian_ = true;
}

void AdamsGear::compute_sparse_jacobian(double t,
                                        const std::vector<double>& y) {
  RMS_CHECK_MSG(static_cast<bool>(system_.sparse_jacobian),
                "kSparseLu requires OdeSystem::sparse_jacobian");
  system_.sparse_jacobian(t, y.data(), sparse_jacobian_);
  ++stats_.jacobian_evaluations;
  jacobian_fresh_ = true;
  have_jacobian_ = true;
}

bool AdamsGear::iteration_structure_matches() const {
  const linalg::CsrMatrix& jac = sparse_jacobian_;
  return iteration_matrix_.rows == jac.rows &&
         iteration_source_.size() == iteration_matrix_.values.size() &&
         iteration_diagonal_.size() == jac.rows &&
         // The symbolic merge depends only on J's pattern; compare it
         // entry-for-entry against the pattern the cache was built from.
         iteration_matrix_.row_offsets.size() == jac.row_offsets.size() &&
         [&] {
           std::size_t e_jac = 0;
           for (std::size_t e = 0; e < iteration_source_.size(); ++e) {
             if (iteration_source_[e] == kNoSource) continue;
             if (iteration_source_[e] != e_jac ||
                 e_jac >= jac.col_indices.size() ||
                 iteration_matrix_.col_indices[e] != jac.col_indices[e_jac]) {
               return false;
             }
             ++e_jac;
           }
           return e_jac == jac.col_indices.size();
         }();
}

void AdamsGear::build_iteration_structure() {
  // Symbolic merge of J's pattern with the full diagonal; J's per-row
  // columns are assumed sorted (true for compiled Jacobians and from_dense
  // conversions). Each M entry records which J entry feeds it (kNoSource
  // for a diagonal inserted where J has none), so refactorizations rewrite
  // values without touching the structure.
  const std::size_t n = system_.dimension;
  const linalg::CsrMatrix& jac = sparse_jacobian_;
  RMS_CHECK(jac.rows == n && jac.cols == n);
  linalg::CsrMatrix& m = iteration_matrix_;
  m.rows = m.cols = n;
  m.row_offsets.clear();
  m.row_offsets.reserve(n + 1);
  m.row_offsets.push_back(0);
  m.col_indices.clear();
  m.col_indices.reserve(jac.nonzero_count() + n);
  iteration_source_.clear();
  iteration_source_.reserve(jac.nonzero_count() + n);
  iteration_diagonal_.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    bool wrote_diagonal = false;
    for (std::uint32_t e = jac.row_offsets[r]; e < jac.row_offsets[r + 1];
         ++e) {
      const std::uint32_t c = jac.col_indices[e];
      if (!wrote_diagonal && c >= r) {
        if (c == r) {
          iteration_diagonal_[r] =
              static_cast<std::uint32_t>(m.col_indices.size());
          m.col_indices.push_back(c);
          iteration_source_.push_back(e);
          wrote_diagonal = true;
          continue;
        }
        iteration_diagonal_[r] =
            static_cast<std::uint32_t>(m.col_indices.size());
        m.col_indices.push_back(static_cast<std::uint32_t>(r));
        iteration_source_.push_back(kNoSource);
        wrote_diagonal = true;
      }
      m.col_indices.push_back(c);
      iteration_source_.push_back(e);
    }
    if (!wrote_diagonal) {
      iteration_diagonal_[r] =
          static_cast<std::uint32_t>(m.col_indices.size());
      m.col_indices.push_back(static_cast<std::uint32_t>(r));
      iteration_source_.push_back(kNoSource);
    }
    m.row_offsets.push_back(static_cast<std::uint32_t>(m.col_indices.size()));
  }
  m.values.resize(m.col_indices.size());
}

bool AdamsGear::factor_sparse_iteration_matrix(double d0) {
  // M = d0*I - J into the cached structure: values only, unless the
  // Jacobian pattern changed since the structure was built.
  if (!iteration_structure_matches()) build_iteration_structure();
  const linalg::CsrMatrix& jac = sparse_jacobian_;
  linalg::CsrMatrix& m = iteration_matrix_;
  for (std::size_t e = 0; e < m.values.size(); ++e) {
    m.values[e] =
        iteration_source_[e] == kNoSource ? 0.0 : -jac.values[iteration_source_[e]];
  }
  for (std::size_t r = 0; r < m.rows; ++r) {
    m.values[iteration_diagonal_[r]] += d0;
  }
  ++stats_.factorizations;
  if (!sparse_lu_.factor(m)) return false;
  factored_d0_ = d0;
  has_factorization_ = true;
  active_sparse_lu_ = &sparse_lu_;
  if (factor_recorder_ != nullptr &&
      factor_recorder_->entries.size() < kFactorCacheCap) {
    factor_recorder_->entries.push_back({d0, sparse_lu_});
  }
  return true;
}

bool AdamsGear::try_factor_cache(double d0) {
  if (factor_cache_ == nullptr || factor_cache_->empty()) return false;
  // Closest recorded d0; usable when within the warm drift band, where the
  // stale-d0 Newton correction keeps the corrector contracting.
  const FactorCache::Entry* best = nullptr;
  double best_gap = kWarmDriftBand;
  for (const FactorCache::Entry& e : factor_cache_->entries) {
    const double gap = std::fabs(e.d0 - d0) / std::fabs(e.d0);
    if (gap < best_gap) {
      best_gap = gap;
      best = &e;
    }
  }
  if (best == nullptr) return false;
  active_sparse_lu_ = &best->lu;
  factored_d0_ = best->d0;
  has_factorization_ = true;
  ++stats_.factor_cache_hits;
  if (factor_recorder_ != nullptr) {
    // Re-record the reused rung so the recording stays a complete ladder
    // for the next solve even when this one mostly hit the cache. A rung
    // reused many times is recorded once (exact d0 match: copied doubles).
    bool recorded = false;
    for (const FactorCache::Entry& e : factor_recorder_->entries) {
      if (e.d0 == best->d0) {
        recorded = true;
        break;
      }
    }
    if (!recorded && factor_recorder_->entries.size() < kFactorCacheCap) {
      factor_recorder_->entries.push_back(*best);
    }
  }
  return true;
}

bool AdamsGear::factor_iteration_matrix(double d0) {
  // M = d0 * I - J.
  const std::size_t n = system_.dimension;
  linalg::Matrix m = jacobian_;
  for (std::size_t i = 0; i < n; ++i) {
    double* row = m.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = -row[j];
    row[i] += d0;
  }
  ++stats_.factorizations;
  if (!lu_.factor(m)) return false;
  factored_d0_ = d0;
  has_factorization_ = true;
  return true;
}

void AdamsGear::predict(double t_new, std::vector<double>& y_pred) {
  // Extrapolate through order+1 points when available: the predictor then
  // has the corrector's order, so corrector - predictor estimates the local
  // truncation term.
  const int points = static_cast<int>(std::min<std::size_t>(
      history_.size(), static_cast<std::size_t>(order_) + 1));
  interp_nodes_.resize(points);
  for (int i = 0; i < points; ++i) interp_nodes_[i] = history_[i].t;
  fornberg_weights(t_new, interp_nodes_.data(), points, 0, interp_w_);
  const std::size_t n = system_.dimension;
  y_pred.assign(n, 0.0);
  for (int i = 0; i < points; ++i) {
    const std::vector<double>& y = history_[i].y;
    const double wi = interp_w_[i];
    for (std::size_t j = 0; j < n; ++j) y_pred[j] += wi * y[j];
  }
}

support::Status AdamsGear::newton_solve(double t_new,
                                        const std::vector<double>& d,
                                        std::vector<double>& y,
                                        bool& converged) {
  const std::size_t n = system_.dimension;
  const int q_points = static_cast<int>(d.size());  // unknown + history
  converged = false;

  // Constant part of the corrector: sum_{i>=1} d_i y_{n-i}.
  history_term_.assign(n, 0.0);
  for (int i = 1; i < q_points; ++i) {
    const std::vector<double>& yh = history_[i - 1].y;
    for (std::size_t j = 0; j < n; ++j) history_term_[j] += d[i] * yh[j];
  }
  const std::vector<double>& history_term = history_term_;

  const bool matrix_free = options_.newton_linear_solver ==
                           NewtonLinearSolver::kMatrixFreeGmres;
  std::vector<double> y_pert;
  std::vector<double> f_pert;
  double previous_norm = 0.0;
  for (int iteration = 0; iteration < kMaxNewtonIterations; ++iteration) {
    system_.rhs(t_new, y.data(), f_work_.data());
    ++stats_.rhs_evaluations;
    ++stats_.newton_iterations;
    for (std::size_t j = 0; j < n; ++j) {
      g_work_[j] = -(d[0] * y[j] + history_term[j] - f_work_[j]);
    }
    if (matrix_free) {
      // JFNK: M v = d0 v - J v with J v by a directional difference around
      // the current Newton iterate.
      const double y_norm = linalg::norm2(y);
      auto apply = [&](const linalg::Vector& v, linalg::Vector& out) {
        const double v_norm = linalg::norm2(v);
        out.resize(n);
        if (v_norm == 0.0) {
          for (double& o : out) o = 0.0;
          return;
        }
        const double sigma = 1.0e-8 * (1.0 + y_norm) / v_norm;
        y_pert.resize(n);
        for (std::size_t j = 0; j < n; ++j) y_pert[j] = y[j] + sigma * v[j];
        f_pert.resize(n);
        system_.rhs(t_new, y_pert.data(), f_pert.data());
        ++stats_.rhs_evaluations;
        const double inv_sigma = 1.0 / sigma;
        for (std::size_t j = 0; j < n; ++j) {
          out[j] = d[0] * v[j] - (f_pert[j] - f_work_[j]) * inv_sigma;
        }
      };
      linalg::GmresOptions gmres_options;
      gmres_options.tolerance = options_.krylov_tolerance;
      delta_.assign(n, 0.0);
      const auto gm = linalg::gmres(apply, g_work_, delta_, gmres_options);
      if (!gm.converged && gm.relative_residual > 0.1) {
        return support::Status::ok();  // treat as Newton failure -> retry
      }
    } else if (options_.newton_linear_solver ==
               NewtonLinearSolver::kSparseLu) {
      active_sparse_lu_->solve(g_work_, delta_);
    } else {
      lu_.solve(g_work_, delta_);
    }
    // Warm-mode stale-d0 correction (CVODE's 2/(1+gamrat) scaling): the
    // factored matrix is d0_old I - J but the residual uses the current d0,
    // so each eigenmode of the update is off by (d0_old - l)/(d0 - l),
    // a factor between 1 and d0_old/d0. Scaling the step by the harmonic
    // midpoint keeps the modified Newton contraction healthy across the
    // widened drift band without touching the fixed point.
    const bool warm_assisted =
        (warm_ != nullptr && !warm_->empty()) || factor_cache_ != nullptr;
    if (warm_assisted && !matrix_free &&
        has_factorization_ && factored_d0_ != d[0]) {
      const double relax = 2.0 / (1.0 + d[0] / factored_d0_);
      for (std::size_t j = 0; j < n; ++j) delta_[j] *= relax;
    }
    for (std::size_t j = 0; j < n; ++j) y[j] += delta_[j];

    const double norm = error_norm(delta_, y, options_.relative_tolerance,
                                   options_.absolute_tolerance);
    if (!std::isfinite(norm)) return support::Status::ok();  // diverged
    if (norm < 0.03) {
      converged = true;
      return support::Status::ok();
    }
    // Divergence check: the modified Newton contraction should shrink.
    if (iteration > 0 && norm > 2.0 * previous_norm) return support::Status::ok();
    previous_norm = norm;
  }
  return support::Status::ok();
}

support::Status AdamsGear::step() {
  const std::size_t n = system_.dimension;
  const double t = history_.front().t;
  const bool warm = warm_ != nullptr && !warm_->empty();
  bool refreshed_jacobian_this_step = false;

  for (int attempt = 0; attempt < kMaxStepAttempts; ++attempt) {
    const int q = static_cast<int>(
        std::min<std::size_t>(history_.size(), static_cast<std::size_t>(order_)));
    const double t_new = t + h_;

    // BDF weights on [t_new, history...] for the first derivative at t_new.
    step_nodes_.resize(q + 1);
    step_nodes_[0] = t_new;
    for (int i = 0; i < q; ++i) step_nodes_[i + 1] = history_[i].t;
    fornberg_weights(t_new, step_nodes_.data(), q + 1, 1, weights_);
    step_d_.resize(q + 1);
    for (int i = 0; i <= q; ++i) {
      step_d_[i] = weights_[(q + 1) + i];  // derivative row
    }
    const std::vector<double>& d = step_d_;

    // (Re)factor the iteration matrix when d0 drifted or J was refreshed.
    // The matrix-free path has no Jacobian or factorization at all.
    if (options_.newton_linear_solver != NewtonLinearSolver::kMatrixFreeGmres) {
      const bool sparse =
          options_.newton_linear_solver == NewtonLinearSolver::kSparseLu;
      if (!have_jacobian_) {
        if (sparse) {
          compute_sparse_jacobian(t, history_.front().y);
        } else {
          compute_jacobian(t, history_.front().y);
        }
      }
      const double drift_band = warm ? kWarmDriftBand : 0.2;
      const bool d0_drifted =
          !has_factorization_ ||
          std::fabs(d[0] - factored_d0_) > drift_band * std::fabs(factored_d0_);
      if (d0_drifted || jacobian_fresh_) {
        jacobian_fresh_ = false;
        // Borrowed factorizations first (sparse path): a nearby solve
        // already factored this d0 neighbourhood. After a Newton failure
        // this step, insist on own fresh factors.
        if (!(sparse && !refreshed_jacobian_this_step &&
              try_factor_cache(d[0]))) {
          const bool factored = sparse ? factor_sparse_iteration_matrix(d[0])
                                       : factor_iteration_matrix(d[0]);
          if (!factored) {
            h_ *= 0.5;
            ++stats_.rejected_steps;
            continue;
          }
        }
      }
    }

    // Predict, then correct by Newton.
    predict(t_new, y_pred_);
    y_new_ = y_pred_;
    bool converged = false;
    RMS_RETURN_IF_ERROR(newton_solve(t_new, d, y_new_, converged));
    if (!converged) {
      // Retry once with a fresh Jacobian at the current state; afterwards
      // only a smaller step can help. (The matrix-free path has no Jacobian
      // to refresh, so it goes straight to the smaller step.)
      if (!refreshed_jacobian_this_step &&
          options_.newton_linear_solver !=
              NewtonLinearSolver::kMatrixFreeGmres) {
        refreshed_jacobian_this_step = true;
        const bool sparse =
            options_.newton_linear_solver == NewtonLinearSolver::kSparseLu;
        if (sparse) {
          compute_sparse_jacobian(t, history_.front().y);
        } else {
          compute_jacobian(t, history_.front().y);
        }
        const bool factored = sparse ? factor_sparse_iteration_matrix(d[0])
                                     : factor_iteration_matrix(d[0]);
        if (!factored) h_ *= 0.5;
        jacobian_fresh_ = false;
        ++stats_.rejected_steps;
        continue;
      }
      h_ *= 0.5;
      ++stats_.rejected_steps;
      ++consecutive_rejects_;
      if (h_ < options_.min_step) {
        return support::numeric_error("Newton failed at minimum step size");
      }
      continue;
    }

    // Local error estimate: corrector minus predictor, scaled by order.
    err_vec_.resize(n);
    const double scale = 1.0 / static_cast<double>(q + 1);
    for (std::size_t j = 0; j < n; ++j) {
      err_vec_[j] = (y_new_[j] - y_pred_[j]) * scale;
    }
    const double err = error_norm(err_vec_, y_new_, options_.relative_tolerance,
                                  options_.absolute_tolerance);

    if (err <= 1.0 || h_ <= options_.min_step) {
      // Accept the step. Recycle the oldest history point's storage so the
      // steady-state loop performs no allocation.
      profile_times_.push_back(t);
      profile_steps_.push_back(h_);
      profile_orders_.push_back(q);
      HistoryPoint recycled;
      if (history_.size() >=
          static_cast<std::size_t>(options_.max_order) + 2) {
        recycled = std::move(history_.back());
        history_.pop_back();
      }
      recycled.t = t_new;
      recycled.y.swap(y_new_);
      history_.push_front(std::move(recycled));
      ++stats_.steps;
      consecutive_rejects_ = 0;
      ++accepts_at_order_;

      // Order raise heuristic: after a stretch of clean accepts at this
      // order, try the next one (history permitting). A warm-start profile
      // that used a higher order at this time shortens the stretch to one
      // accept — the previous solve already proved the order works here.
      int accepts_needed = order_ + 2;
      if (warm && warm_->orders[warm_index_at(t_new)] > order_) {
        accepts_needed = 1;
      }
      if (order_ < options_.max_order &&
          accepts_at_order_ >= accepts_needed &&
          history_.size() > static_cast<std::size_t>(order_)) {
        ++order_;
        accepts_at_order_ = 0;
      }
      // Warm solves let the error controller, not the conservative cold 4x
      // cap, limit step growth: the previous solve of this file already
      // proved large steps work on this trajectory, and every accepted step
      // still passes the same error test. This collapses the start-up ramp
      // (four decades of h) from ~7 growth steps — each a d0 jump forcing a
      // refactorization — to ~3.
      const double grow_cap = warm ? kWarmMaxGrow : kMaxGrow;
      const double grow =
          err > 1e-10
              ? kSafety * std::pow(1.0 / err, 1.0 / static_cast<double>(q + 1))
              : grow_cap;
      const double factor = std::clamp(grow, kMinShrink, grow_cap);
      if (warm && factor < kWarmGrowThreshold) {
        // Hysteresis: keep h (and with it d0 and the factored matrix)
        // unless the controller wants a decisive change.
        return support::Status::ok();
      }
      h_ *= factor;
      return support::Status::ok();
    }

    // Reject: shrink, possibly drop the order.
    ++stats_.rejected_steps;
    ++consecutive_rejects_;
    if (consecutive_rejects_ >= 2 && order_ > 1) {
      --order_;
      accepts_at_order_ = 0;
    }
    const double shrink =
        kSafety * std::pow(1.0 / err, 1.0 / static_cast<double>(q + 1));
    h_ *= std::clamp(shrink, kMinShrink, 0.9);
    if (!(h_ > 0.0) || !std::isfinite(h_)) {
      return support::numeric_error("step size underflow");
    }
  }
  return support::numeric_error("step repeatedly rejected");
}

void AdamsGear::interpolate(double t, std::vector<double>& y_out) {
  const int points = static_cast<int>(std::min<std::size_t>(
      history_.size(), static_cast<std::size_t>(order_) + 1));
  interp_nodes_.resize(points);
  for (int i = 0; i < points; ++i) interp_nodes_[i] = history_[i].t;
  fornberg_weights(t, interp_nodes_.data(), points, 0, interp_w_);
  const std::size_t n = system_.dimension;
  y_out.assign(n, 0.0);
  for (int i = 0; i < points; ++i) {
    const std::vector<double>& y = history_[i].y;
    for (std::size_t j = 0; j < n; ++j) y_out[j] += interp_w_[i] * y[j];
  }
}

support::Status AdamsGear::advance_to(double t_target,
                                      std::vector<double>& y_out) {
  if (!initialized_) {
    return support::Status(support::StatusCode::kFailedPrecondition,
                           "initialize() must be called first");
  }
  std::size_t steps = 0;
  // Warm solves keep the step size the error controller chose and
  // interpolate record times out of the step's interior; the loop stops as
  // soon as the newest accepted step passes the target, so the target
  // always lies inside the newest history interval. Clamping h to every
  // record gap (the cold behaviour below) makes h track the record grid
  // instead of the solution, which churns d0 and forces constant
  // refactorization on densely-sampled files.
  const bool warm = warm_ != nullptr && !warm_->empty();
  while (history_.front().t < t_target) {
    if (!warm) {
      // Do not overshoot the target by more than one step; clamp h so the
      // final step lands close to it (interpolation covers the interior).
      h_ = std::min(h_, std::max(t_target - history_.front().t,
                                 options_.min_step));
    }
    RMS_RETURN_IF_ERROR(step());
    if (++steps > options_.max_steps_per_call) {
      return support::numeric_error("max_steps_per_call exceeded");
    }
  }
  if (history_.front().t == t_target) {
    y_out = history_.front().y;
  } else {
    interpolate(t_target, y_out);
  }
  return support::Status::ok();
}

}  // namespace rms::solver
