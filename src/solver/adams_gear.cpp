#include "solver/adams_gear.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/gmres.hpp"
#include "solver/fornberg.hpp"
#include "support/strings.hpp"

namespace rms::solver {

namespace {

constexpr double kSafety = 0.9;
constexpr double kMinShrink = 0.25;
constexpr double kMaxGrow = 4.0;
constexpr int kMaxNewtonIterations = 7;
constexpr int kMaxStepAttempts = 64;

}  // namespace

AdamsGear::AdamsGear(OdeSystem system, IntegrationOptions options)
    : system_(std::move(system)), options_(options) {
  options_.max_order = std::clamp(options_.max_order, 1, 5);
  const std::size_t n = system_.dimension;
  // The dense n x n Jacobian is allocated lazily in compute_jacobian(): the
  // matrix-free Krylov path must not pay n^2 memory.
  f_work_.resize(n);
  g_work_.resize(n);
  delta_.resize(n);
}

support::Status AdamsGear::initialize(double t0, const std::vector<double>& y0) {
  if (y0.size() != system_.dimension) {
    return support::invalid_argument("initial state dimension mismatch");
  }
  history_.clear();
  history_.push_front(HistoryPoint{t0, y0});
  stats_ = IntegrationStats{};
  order_ = 1;
  accepts_at_order_ = 0;
  consecutive_rejects_ = 0;
  have_jacobian_ = false;
  jacobian_fresh_ = false;

  if (options_.initial_step > 0.0) {
    h_ = options_.initial_step;
  } else {
    system_.rhs(t0, y0.data(), f_work_.data());
    ++stats_.rhs_evaluations;
    const double ynorm = error_norm(y0, y0, options_.relative_tolerance,
                                    options_.absolute_tolerance);
    const double fnorm = error_norm(f_work_, y0, options_.relative_tolerance,
                                    options_.absolute_tolerance);
    h_ = fnorm > 1e-12 ? 0.001 * ynorm / fnorm : 1e-6;
    if (!(h_ > options_.min_step)) h_ = 1e-6;
  }
  initialized_ = true;
  return support::Status::ok();
}

void AdamsGear::compute_jacobian(double t, const std::vector<double>& y) {
  const std::size_t n = system_.dimension;
  if (jacobian_.rows() != n) jacobian_ = linalg::Matrix(n, n);
  if (system_.jacobian) {
    system_.jacobian(t, y.data(), jacobian_.data());
    ++stats_.jacobian_evaluations;
    jacobian_fresh_ = true;
    have_jacobian_ = true;
    return;
  }
  std::vector<double> f0(n);
  system_.rhs(t, y.data(), f0.data());
  ++stats_.rhs_evaluations;
  if (system_.rhs_batch) {
    // Batched forward differences: evaluate a chunk of perturbed states in
    // one pass over the RHS (one tape traversal in the bytecode case)
    // instead of one full sweep per column.
    constexpr std::size_t kChunk = 16;
    std::vector<double> ys(kChunk * n);
    std::vector<double> fs(kChunk * n);
    std::vector<double> deltas(kChunk);
    for (std::size_t j0 = 0; j0 < n; j0 += kChunk) {
      const std::size_t m = std::min(kChunk, n - j0);
      for (std::size_t c = 0; c < m; ++c) {
        const std::size_t j = j0 + c;
        deltas[c] = std::sqrt(1e-16) * std::max(std::fabs(y[j]), 1e-5);
        double* row = ys.data() + c * n;
        std::copy(y.begin(), y.end(), row);
        row[j] += deltas[c];
      }
      system_.rhs_batch(t, ys.data(), fs.data(), m);
      stats_.rhs_evaluations += m;
      for (std::size_t c = 0; c < m; ++c) {
        const double inv_delta = 1.0 / deltas[c];
        const double* f = fs.data() + c * n;
        for (std::size_t i = 0; i < n; ++i) {
          jacobian_(i, j0 + c) = (f[i] - f0[i]) * inv_delta;
        }
      }
    }
  } else {
    std::vector<double> y_pert = y;
    for (std::size_t j = 0; j < n; ++j) {
      const double delta =
          std::sqrt(1e-16) * std::max(std::fabs(y[j]), 1e-5);
      y_pert[j] = y[j] + delta;
      system_.rhs(t, y_pert.data(), f_work_.data());
      ++stats_.rhs_evaluations;
      y_pert[j] = y[j];
      const double inv_delta = 1.0 / delta;
      for (std::size_t i = 0; i < n; ++i) {
        jacobian_(i, j) = (f_work_[i] - f0[i]) * inv_delta;
      }
    }
  }
  ++stats_.jacobian_evaluations;
  jacobian_fresh_ = true;
  have_jacobian_ = true;
}

void AdamsGear::compute_sparse_jacobian(double t,
                                        const std::vector<double>& y) {
  RMS_CHECK_MSG(static_cast<bool>(system_.sparse_jacobian),
                "kSparseLu requires OdeSystem::sparse_jacobian");
  system_.sparse_jacobian(t, y.data(), sparse_jacobian_);
  ++stats_.jacobian_evaluations;
  jacobian_fresh_ = true;
  have_jacobian_ = true;
}

bool AdamsGear::factor_sparse_iteration_matrix(double d0) {
  // M = d0*I - J, built row by row; J's per-row columns are assumed sorted
  // (true for compiled Jacobians and from_dense conversions).
  const std::size_t n = system_.dimension;
  const linalg::CsrMatrix& jac = sparse_jacobian_;
  RMS_CHECK(jac.rows == n && jac.cols == n);
  linalg::CsrMatrix m;
  m.rows = m.cols = n;
  m.row_offsets.reserve(n + 1);
  m.row_offsets.push_back(0);
  m.col_indices.reserve(jac.nonzero_count() + n);
  m.values.reserve(jac.nonzero_count() + n);
  for (std::size_t r = 0; r < n; ++r) {
    bool wrote_diagonal = false;
    for (std::uint32_t e = jac.row_offsets[r]; e < jac.row_offsets[r + 1];
         ++e) {
      const std::uint32_t c = jac.col_indices[e];
      if (!wrote_diagonal && c >= r) {
        if (c == r) {
          m.col_indices.push_back(c);
          m.values.push_back(d0 - jac.values[e]);
          wrote_diagonal = true;
          continue;
        }
        m.col_indices.push_back(static_cast<std::uint32_t>(r));
        m.values.push_back(d0);
        wrote_diagonal = true;
      }
      m.col_indices.push_back(c);
      m.values.push_back(-jac.values[e]);
    }
    if (!wrote_diagonal) {
      m.col_indices.push_back(static_cast<std::uint32_t>(r));
      m.values.push_back(d0);
    }
    m.row_offsets.push_back(static_cast<std::uint32_t>(m.values.size()));
  }
  ++stats_.factorizations;
  if (!sparse_lu_.factor(m)) return false;
  factored_d0_ = d0;
  return true;
}

bool AdamsGear::factor_iteration_matrix(double d0) {
  // M = d0 * I - J.
  const std::size_t n = system_.dimension;
  linalg::Matrix m = jacobian_;
  for (std::size_t i = 0; i < n; ++i) {
    double* row = m.row(i);
    for (std::size_t j = 0; j < n; ++j) row[j] = -row[j];
    row[i] += d0;
  }
  ++stats_.factorizations;
  if (!lu_.factor(m)) return false;
  factored_d0_ = d0;
  return true;
}

void AdamsGear::predict(double t_new, std::vector<double>& y_pred) const {
  // Extrapolate through order+1 points when available: the predictor then
  // has the corrector's order, so corrector - predictor estimates the local
  // truncation term.
  const int points = static_cast<int>(std::min<std::size_t>(
      history_.size(), static_cast<std::size_t>(order_) + 1));
  std::vector<double> nodes(points);
  for (int i = 0; i < points; ++i) nodes[i] = history_[i].t;
  std::vector<double> w;
  fornberg_weights(t_new, nodes.data(), points, 0, w);
  const std::size_t n = system_.dimension;
  y_pred.assign(n, 0.0);
  for (int i = 0; i < points; ++i) {
    const std::vector<double>& y = history_[i].y;
    const double wi = w[i];
    for (std::size_t j = 0; j < n; ++j) y_pred[j] += wi * y[j];
  }
}

support::Status AdamsGear::newton_solve(double t_new,
                                        const std::vector<double>& d,
                                        std::vector<double>& y,
                                        bool& converged) {
  const std::size_t n = system_.dimension;
  const int q_points = static_cast<int>(d.size());  // unknown + history
  converged = false;

  // Constant part of the corrector: sum_{i>=1} d_i y_{n-i}.
  std::vector<double> history_term(n, 0.0);
  for (int i = 1; i < q_points; ++i) {
    const std::vector<double>& yh = history_[i - 1].y;
    for (std::size_t j = 0; j < n; ++j) history_term[j] += d[i] * yh[j];
  }

  const bool matrix_free = options_.newton_linear_solver ==
                           NewtonLinearSolver::kMatrixFreeGmres;
  std::vector<double> y_pert;
  std::vector<double> f_pert;
  double previous_norm = 0.0;
  for (int iteration = 0; iteration < kMaxNewtonIterations; ++iteration) {
    system_.rhs(t_new, y.data(), f_work_.data());
    ++stats_.rhs_evaluations;
    ++stats_.newton_iterations;
    for (std::size_t j = 0; j < n; ++j) {
      g_work_[j] = -(d[0] * y[j] + history_term[j] - f_work_[j]);
    }
    if (matrix_free) {
      // JFNK: M v = d0 v - J v with J v by a directional difference around
      // the current Newton iterate.
      const double y_norm = linalg::norm2(y);
      auto apply = [&](const linalg::Vector& v, linalg::Vector& out) {
        const double v_norm = linalg::norm2(v);
        out.resize(n);
        if (v_norm == 0.0) {
          for (double& o : out) o = 0.0;
          return;
        }
        const double sigma = 1.0e-8 * (1.0 + y_norm) / v_norm;
        y_pert.resize(n);
        for (std::size_t j = 0; j < n; ++j) y_pert[j] = y[j] + sigma * v[j];
        f_pert.resize(n);
        system_.rhs(t_new, y_pert.data(), f_pert.data());
        ++stats_.rhs_evaluations;
        const double inv_sigma = 1.0 / sigma;
        for (std::size_t j = 0; j < n; ++j) {
          out[j] = d[0] * v[j] - (f_pert[j] - f_work_[j]) * inv_sigma;
        }
      };
      linalg::GmresOptions gmres_options;
      gmres_options.tolerance = options_.krylov_tolerance;
      delta_.assign(n, 0.0);
      const auto gm = linalg::gmres(apply, g_work_, delta_, gmres_options);
      if (!gm.converged && gm.relative_residual > 0.1) {
        return support::Status::ok();  // treat as Newton failure -> retry
      }
    } else if (options_.newton_linear_solver ==
               NewtonLinearSolver::kSparseLu) {
      sparse_lu_.solve(g_work_, delta_);
    } else {
      lu_.solve(g_work_, delta_);
    }
    for (std::size_t j = 0; j < n; ++j) y[j] += delta_[j];

    const double norm = error_norm(delta_, y, options_.relative_tolerance,
                                   options_.absolute_tolerance);
    if (!std::isfinite(norm)) return support::Status::ok();  // diverged
    if (norm < 0.03) {
      converged = true;
      return support::Status::ok();
    }
    // Divergence check: the modified Newton contraction should shrink.
    if (iteration > 0 && norm > 2.0 * previous_norm) return support::Status::ok();
    previous_norm = norm;
  }
  return support::Status::ok();
}

support::Status AdamsGear::step() {
  const std::size_t n = system_.dimension;
  const double t = history_.front().t;
  bool refreshed_jacobian_this_step = false;

  for (int attempt = 0; attempt < kMaxStepAttempts; ++attempt) {
    const int q = static_cast<int>(
        std::min<std::size_t>(history_.size(), static_cast<std::size_t>(order_)));
    const double t_new = t + h_;

    // BDF weights on [t_new, history...] for the first derivative at t_new.
    std::vector<double> nodes(q + 1);
    nodes[0] = t_new;
    for (int i = 0; i < q; ++i) nodes[i + 1] = history_[i].t;
    fornberg_weights(t_new, nodes.data(), q + 1, 1, weights_);
    std::vector<double> d(q + 1);
    for (int i = 0; i <= q; ++i) d[i] = weights_[(q + 1) + i];  // derivative row

    // (Re)factor the iteration matrix when d0 drifted or J was refreshed.
    // The matrix-free path has no Jacobian or factorization at all.
    if (options_.newton_linear_solver != NewtonLinearSolver::kMatrixFreeGmres) {
      const bool sparse =
          options_.newton_linear_solver == NewtonLinearSolver::kSparseLu;
      if (!have_jacobian_) {
        if (sparse) {
          compute_sparse_jacobian(t, history_.front().y);
        } else {
          compute_jacobian(t, history_.front().y);
        }
      }
      const bool d0_drifted =
          factored_d0_ == 0.0 ||
          std::fabs(d[0] - factored_d0_) > 0.2 * std::fabs(factored_d0_);
      if (d0_drifted || jacobian_fresh_) {
        jacobian_fresh_ = false;
        const bool factored = sparse ? factor_sparse_iteration_matrix(d[0])
                                     : factor_iteration_matrix(d[0]);
        if (!factored) {
          h_ *= 0.5;
          ++stats_.rejected_steps;
          continue;
        }
      }
    }

    // Predict, then correct by Newton.
    std::vector<double> y_new;
    predict(t_new, y_new);
    std::vector<double> y_pred = y_new;
    bool converged = false;
    RMS_RETURN_IF_ERROR(newton_solve(t_new, d, y_new, converged));
    if (!converged) {
      // Retry once with a fresh Jacobian at the current state; afterwards
      // only a smaller step can help. (The matrix-free path has no Jacobian
      // to refresh, so it goes straight to the smaller step.)
      if (!refreshed_jacobian_this_step &&
          options_.newton_linear_solver !=
              NewtonLinearSolver::kMatrixFreeGmres) {
        refreshed_jacobian_this_step = true;
        const bool sparse =
            options_.newton_linear_solver == NewtonLinearSolver::kSparseLu;
        if (sparse) {
          compute_sparse_jacobian(t, history_.front().y);
        } else {
          compute_jacobian(t, history_.front().y);
        }
        const bool factored = sparse ? factor_sparse_iteration_matrix(d[0])
                                     : factor_iteration_matrix(d[0]);
        if (!factored) h_ *= 0.5;
        jacobian_fresh_ = false;
        ++stats_.rejected_steps;
        continue;
      }
      h_ *= 0.5;
      ++stats_.rejected_steps;
      ++consecutive_rejects_;
      if (h_ < options_.min_step) {
        return support::numeric_error("Newton failed at minimum step size");
      }
      continue;
    }

    // Local error estimate: corrector minus predictor, scaled by order.
    std::vector<double> err_vec(n);
    const double scale = 1.0 / static_cast<double>(q + 1);
    for (std::size_t j = 0; j < n; ++j) {
      err_vec[j] = (y_new[j] - y_pred[j]) * scale;
    }
    const double err = error_norm(err_vec, y_new, options_.relative_tolerance,
                                  options_.absolute_tolerance);

    if (err <= 1.0 || h_ <= options_.min_step) {
      // Accept the step.
      history_.push_front(HistoryPoint{t_new, std::move(y_new)});
      while (history_.size() >
             static_cast<std::size_t>(options_.max_order) + 2) {
        history_.pop_back();
      }
      ++stats_.steps;
      consecutive_rejects_ = 0;
      ++accepts_at_order_;

      // Order raise heuristic: after a stretch of clean accepts at this
      // order, try the next one (history permitting).
      if (order_ < options_.max_order &&
          accepts_at_order_ >= order_ + 2 &&
          history_.size() > static_cast<std::size_t>(order_)) {
        ++order_;
        accepts_at_order_ = 0;
      }
      const double grow =
          err > 1e-10
              ? kSafety * std::pow(1.0 / err, 1.0 / static_cast<double>(q + 1))
              : kMaxGrow;
      h_ *= std::clamp(grow, kMinShrink, kMaxGrow);
      return support::Status::ok();
    }

    // Reject: shrink, possibly drop the order.
    ++stats_.rejected_steps;
    ++consecutive_rejects_;
    if (consecutive_rejects_ >= 2 && order_ > 1) {
      --order_;
      accepts_at_order_ = 0;
    }
    const double shrink =
        kSafety * std::pow(1.0 / err, 1.0 / static_cast<double>(q + 1));
    h_ *= std::clamp(shrink, kMinShrink, 0.9);
    if (!(h_ > 0.0) || !std::isfinite(h_)) {
      return support::numeric_error("step size underflow");
    }
  }
  return support::numeric_error("step repeatedly rejected");
}

void AdamsGear::interpolate(double t, std::vector<double>& y_out) const {
  const int points = static_cast<int>(std::min<std::size_t>(
      history_.size(), static_cast<std::size_t>(order_) + 1));
  std::vector<double> nodes(points);
  for (int i = 0; i < points; ++i) nodes[i] = history_[i].t;
  std::vector<double> w;
  fornberg_weights(t, nodes.data(), points, 0, w);
  const std::size_t n = system_.dimension;
  y_out.assign(n, 0.0);
  for (int i = 0; i < points; ++i) {
    const std::vector<double>& y = history_[i].y;
    for (std::size_t j = 0; j < n; ++j) y_out[j] += w[i] * y[j];
  }
}

support::Status AdamsGear::advance_to(double t_target,
                                      std::vector<double>& y_out) {
  if (!initialized_) {
    return support::Status(support::StatusCode::kFailedPrecondition,
                           "initialize() must be called first");
  }
  std::size_t steps = 0;
  while (history_.front().t < t_target) {
    // Do not overshoot the target by more than one step; clamp h so the
    // final step lands close to it (interpolation covers the interior).
    h_ = std::min(h_, std::max(t_target - history_.front().t,
                               options_.min_step));
    RMS_RETURN_IF_ERROR(step());
    if (++steps > options_.max_steps_per_call) {
      return support::numeric_error("max_steps_per_call exceeded");
    }
  }
  if (history_.front().t == t_target) {
    y_out = history_.front().y;
  } else {
    interpolate(t_target, y_out);
  }
  return support::Status::ok();
}

}  // namespace rms::solver
