// Experimental data files.
//
// Each file holds the time evolution of one measured property for one rubber
// formulation — ">3000 records of the form <t_i, property value>" (paper
// §4.3). The on-disk format is line-oriented:
//
//   # rms-experiment v1
//   # name: formulation-03
//   # property: crosslink-concentration
//   0.000000 0.000000
//   0.120000 0.004513
//   ...
//
// Comment lines start with '#'; the "name:"/"property:" headers are
// optional metadata.
#pragma once

#include <string>
#include <vector>

#include "support/status.hpp"

namespace rms::data {

struct ExperimentData {
  std::string name;
  std::string property;
  std::vector<double> times;   ///< strictly increasing
  std::vector<double> values;  ///< same length as times

  [[nodiscard]] std::size_t record_count() const { return times.size(); }
};

/// Parses the experiment file format from a string.
support::Expected<ExperimentData> parse_experiment(const std::string& text);

/// Reads an experiment file from disk.
support::Expected<ExperimentData> read_experiment_file(const std::string& path);

/// Serializes to the file format.
std::string format_experiment(const ExperimentData& data);

/// Writes to disk (overwrites).
support::Status write_experiment_file(const std::string& path,
                                      const ExperimentData& data);

}  // namespace rms::data
