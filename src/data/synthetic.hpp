// Synthetic experimental data generation.
//
// The paper's evaluation uses 16 lab data files recording crosslink
// concentration evolution for different rubber formulations. We do not have
// the Purdue lab's measurements, so we synthesize equivalents: integrate the
// model with ground-truth rate constants and a formulation-specific initial
// state, sample an observable at >3000 time points, and add measurement
// noise. Because the ground truth is known, the synthetic files also let
// tests verify that the parameter estimator recovers the constants it
// should.
#pragma once

#include <vector>

#include "data/experiment.hpp"
#include "solver/ode.hpp"
#include "support/status.hpp"

namespace rms::data {

/// The measured property as a linear combination of species concentrations
/// (e.g. total crosslink concentration = sum over crosslink species).
struct Observable {
  std::vector<std::pair<std::size_t, double>> weighted_species;

  [[nodiscard]] double measure(const std::vector<double>& y) const {
    double total = 0.0;
    for (const auto& [index, weight] : weighted_species) {
      total += weight * y[index];
    }
    return total;
  }
};

struct SyntheticOptions {
  double t_begin = 0.0;
  double t_end = 10.0;
  std::size_t record_count = 3200;  ///< paper: "more than 3000 records"
  /// Relative measurement noise (std-dev as a fraction of the signal range);
  /// 0 disables noise.
  double noise_level = 0.0;
  std::uint64_t noise_seed = 1;
  solver::IntegrationOptions integration;
};

/// Integrates `system` from y0 with the stiff solver and samples
/// `observable` at uniformly spaced times.
support::Expected<ExperimentData> synthesize_experiment(
    const solver::OdeSystem& system, const std::vector<double>& y0,
    const Observable& observable, const SyntheticOptions& options,
    std::string name = {});

}  // namespace rms::data
