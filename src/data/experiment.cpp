#include "data/experiment.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/strings.hpp"

namespace rms::data {

using support::Status;

support::Expected<ExperimentData> parse_experiment(const std::string& text) {
  ExperimentData data;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string_view line = support::trim(
        std::string_view(text).substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty()) {
      if (start > text.size()) break;
      continue;
    }
    if (line[0] == '#') {
      std::string_view body = support::trim(line.substr(1));
      if (support::starts_with(body, "name:")) {
        data.name = std::string(support::trim(body.substr(5)));
      } else if (support::starts_with(body, "property:")) {
        data.property = std::string(support::trim(body.substr(9)));
      }
      continue;
    }
    auto fields = support::split_whitespace(line);
    if (fields.size() != 2) {
      return support::parse_error(support::str_format(
          "experiment line %zu: expected '<t> <value>'", line_number));
    }
    double t = 0.0;
    double v = 0.0;
    if (!support::parse_double(fields[0], t) ||
        !support::parse_double(fields[1], v)) {
      return support::parse_error(support::str_format(
          "experiment line %zu: malformed number", line_number));
    }
    if (!data.times.empty() && t <= data.times.back()) {
      return support::parse_error(support::str_format(
          "experiment line %zu: times must be strictly increasing",
          line_number));
    }
    data.times.push_back(t);
    data.values.push_back(v);
  }
  if (data.times.empty()) {
    return support::parse_error("experiment file contains no records");
  }
  return data;
}

support::Expected<ExperimentData> read_experiment_file(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return support::not_found("cannot open experiment file: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_experiment(buffer.str());
}

std::string format_experiment(const ExperimentData& data) {
  std::string out = "# rms-experiment v1\n";
  if (!data.name.empty()) out += "# name: " + data.name + "\n";
  if (!data.property.empty()) out += "# property: " + data.property + "\n";
  for (std::size_t i = 0; i < data.times.size(); ++i) {
    out += support::str_format("%.9g %.9g\n", data.times[i], data.values[i]);
  }
  return out;
}

Status write_experiment_file(const std::string& path,
                             const ExperimentData& data) {
  std::ofstream out(path);
  if (!out) {
    return support::invalid_argument("cannot open for writing: " + path);
  }
  out << format_experiment(data);
  return out.good() ? Status::ok()
                    : support::internal_error("write failed: " + path);
}

}  // namespace rms::data
