#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>

#include "solver/adams_gear.hpp"
#include "support/rng.hpp"

namespace rms::data {

support::Expected<ExperimentData> synthesize_experiment(
    const solver::OdeSystem& system, const std::vector<double>& y0,
    const Observable& observable, const SyntheticOptions& options,
    std::string name) {
  if (options.record_count < 2) {
    return support::invalid_argument("record_count must be >= 2");
  }
  ExperimentData data;
  data.name = std::move(name);
  data.property = "crosslink-concentration";
  data.times.reserve(options.record_count);
  data.values.reserve(options.record_count);

  solver::AdamsGear integrator(system, options.integration);
  RMS_RETURN_IF_ERROR(integrator.initialize(options.t_begin, y0));

  const double dt = (options.t_end - options.t_begin) /
                    static_cast<double>(options.record_count - 1);
  std::vector<double> y;
  for (std::size_t i = 0; i < options.record_count; ++i) {
    const double t = options.t_begin + dt * static_cast<double>(i);
    if (i == 0) {
      y = y0;
    } else {
      RMS_RETURN_IF_ERROR(integrator.advance_to(t, y));
    }
    data.times.push_back(t);
    data.values.push_back(observable.measure(y));
  }

  if (options.noise_level > 0.0) {
    const auto [lo, hi] =
        std::minmax_element(data.values.begin(), data.values.end());
    const double range = std::max(*hi - *lo, 1e-12);
    support::Xoshiro256 rng(options.noise_seed);
    for (double& v : data.values) {
      v += options.noise_level * range * rng.normal();
    }
  }
  return data;
}

}  // namespace rms::data
