// Reactions and the reaction network produced by the chemical compiler.
//
// A Reaction records which species are consumed and produced (with
// multiplicity, as repeated entries) plus the kinetic rate constant name —
// exactly the information in the paper's intermediate equations (Fig. 3):
//   - A + B + B \ [K_A];
// The `multiplicity` counts distinct rule embeddings yielding the same
// transformation; it scales the mass-action rate (two equivalent reactive
// sites react twice as fast).
#pragma once

#include <cstdint>
#include <string>

#include "support/small_vector.hpp"

namespace rms::network {

using SpeciesId = std::uint32_t;

struct Reaction {
  support::SmallVector<SpeciesId, 2> reactants;  ///< consumed (repeated = stoich)
  support::SmallVector<SpeciesId, 4> products;   ///< produced (repeated = stoich)
  std::string rate_name;                         ///< kinetic rate constant
  std::string rule_name;                         ///< provenance
  double multiplicity = 1.0;                     ///< embedding count
};

}  // namespace rms::network
