#include "network/generator.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "chem/canonical.hpp"
#include "chem/edit.hpp"
#include "support/strings.hpp"
#include "support/thread_pool.hpp"

namespace rms::network {

namespace {

using rdl::ActionDecl;
using rdl::CompiledAction;
using rdl::CompiledModel;
using rdl::CompiledRule;
using support::Expected;
using support::Status;

/// Key identifying a reaction up to embedding multiplicity.
struct ReactionKey {
  std::vector<SpeciesId> reactants;
  std::vector<SpeciesId> products;
  std::string rate_name;
  std::string rule_name;

  bool operator<(const ReactionKey& other) const {
    return std::tie(reactants, products, rate_name, rule_name) <
           std::tie(other.reactants, other.products, other.rate_name,
                    other.rule_name);
  }
  bool operator==(const ReactionKey& other) const {
    return reactants == other.reactants && products == other.products &&
           rate_name == other.rate_name && rule_name == other.rule_name;
  }
};

struct ReactionKeyHash {
  static std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
    h ^= v + 0x9E3779B97F4A7C15ull + (h << 6) + (h >> 2);
    h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
    return h ^ (h >> 27);
  }
  std::size_t operator()(const ReactionKey& key) const {
    std::uint64_t h = 0xB5297A4D3C2F1E0Dull;
    for (SpeciesId id : key.reactants) h = mix(h, id);
    h = mix(h, 0xFFFFFFFFull);  // reactants/products separator
    for (SpeciesId id : key.products) h = mix(h, id);
    h = mix(h, std::hash<std::string>{}(key.rate_name));
    h = mix(h, std::hash<std::string>{}(key.rule_name));
    return static_cast<std::size_t>(h);
  }
};

/// A product fragment, canonicalized by a worker, awaiting registration.
struct FragmentProposal {
  chem::Molecule molecule;
  std::string canonical;
};

/// Everything one embedding wants to do to the network. Workers compute
/// these read-only; the serial merge replays them in candidate order, so
/// species ids and reaction multiplicities come out exactly as in a serial
/// run. `fragments` holds the products built before any guard tripped —
/// the serial code registers species as it walks the fragments and only
/// then abandons, so the replay must register them too even when the
/// reaction itself is dropped (record == false).
struct ReactionProposal {
  std::vector<FragmentProposal> fragments;
  std::vector<SpeciesId> reactants;
  bool record = false;
};

class NetworkBuilder {
 public:
  NetworkBuilder(const CompiledModel& model, const GeneratorOptions& options)
      : model_(model), options_(options) {
    forbidden_.insert(model.forbidden_canonical.begin(),
                      model.forbidden_canonical.end());
  }

  Expected<ReactionNetwork> build() {
    // Seed with declared species.
    for (const rdl::CompiledSpecies& s : model_.species) {
      const SpeciesId id = network_.species.add(s.molecule, s.name);
      network_.species.entry(id).init_concentration = s.init_concentration;
      network_.species.entry(id).seed = true;
    }

    // Fixed point: keep applying rules while new species appear.
    for (int round = 0; round < options_.max_rounds; ++round) {
      const std::size_t species_before = network_.species.size();
      const std::size_t reactions_before = reaction_index_.size();

      for (const CompiledRule& rule : model_.rules) {
        Status s = rule.molecularity == 1 ? apply_unimolecular(rule)
                                          : apply_bimolecular(rule);
        if (!s.is_ok()) return s;
      }
      if (network_.species.size() == species_before &&
          reaction_index_.size() == reactions_before) {
        break;  // converged
      }
      if (network_.species.size() > options_.max_species) {
        return support::resource_exhausted(support::str_format(
            "reaction network exceeded %zu species; tighten rule context "
            "constraints or raise GeneratorOptions::max_species",
            options_.max_species));
      }
      if (reaction_index_.size() > options_.max_reactions) {
        return support::resource_exhausted(support::str_format(
            "reaction network exceeded %zu reactions", options_.max_reactions));
      }
    }

    // Materialize reactions in deterministic order. The index is hashed for
    // O(1) dedup during generation; one sort here restores exactly the
    // ordering an ordered map would have produced.
    std::vector<const std::pair<const ReactionKey, double>*> sorted;
    sorted.reserve(reaction_index_.size());
    for (const auto& item : reaction_index_) sorted.push_back(&item);
    std::sort(sorted.begin(), sorted.end(),
              [](const auto* a, const auto* b) { return a->first < b->first; });
    for (const auto* item : sorted) {
      const ReactionKey& key = item->first;
      Reaction r;
      for (SpeciesId id : key.reactants) r.reactants.push_back(id);
      for (SpeciesId id : key.products) r.products.push_back(id);
      r.rate_name = key.rate_name;
      r.rule_name = key.rule_name;
      r.multiplicity = item->second;
      network_.reactions.push_back(std::move(r));
    }
    return std::move(network_);
  }

 private:
  Status apply_unimolecular(const CompiledRule& rule) {
    // Only species not yet seen by this rule are processed (watermark), so a
    // fixed-point round never recounts embeddings into the multiplicity.
    // The candidate list is frozen before the fan-out: species registered by
    // this rule's own reactions are only seen by the next round.
    const SpeciesId limit = static_cast<SpeciesId>(network_.species.size());
    const SpeciesId start = watermark_[&rule];
    watermark_[&rule] = limit;

    std::vector<std::vector<ReactionProposal>> proposals =
        support::parallel_map<std::vector<ReactionProposal>>(
            options_.pool, limit - start, 4, [&](std::size_t idx) {
              const SpeciesId id = start + static_cast<SpeciesId>(idx);
              const chem::Molecule& mol = network_.species.entry(id).molecule;
              std::vector<ReactionProposal> out;
              for (const chem::Embedding& embedding :
                   rule.pattern.match(mol)) {
                propose_embedding(rule, mol, embedding, {id}, out);
              }
              return out;
            });
    return commit(rule, proposals);
  }

  Status apply_bimolecular(const CompiledRule& rule) {
    // Unordered pairs with at least one endpoint the rule has not seen yet;
    // the reaction key dedup collapses the symmetric double counting into
    // multiplicity. Pairs are flattened into one candidate index space so a
    // pool can shard them; the merge walks them in (a, b) order.
    const SpeciesId limit = static_cast<SpeciesId>(network_.species.size());
    const SpeciesId start = watermark_[&rule];
    watermark_[&rule] = limit;

    std::vector<std::pair<SpeciesId, SpeciesId>> pairs;
    for (SpeciesId a = 0; a < limit; ++a) {
      for (SpeciesId b = std::max(a, start); b < limit; ++b) {
        pairs.emplace_back(a, b);
      }
    }

    std::vector<std::vector<ReactionProposal>> proposals =
        support::parallel_map<std::vector<ReactionProposal>>(
            options_.pool, pairs.size(), 4, [&](std::size_t idx) {
              const auto [a, b] = pairs[idx];
              const chem::Molecule& ma = network_.species.entry(a).molecule;
              const chem::Molecule& mb = network_.species.entry(b).molecule;
              // Combined disconnected graph: A's atoms then B's atoms.
              chem::Molecule combined = ma;
              const chem::AtomIndex offset =
                  static_cast<chem::AtomIndex>(ma.atom_count());
              for (chem::AtomIndex i = 0; i < mb.atom_count(); ++i) {
                const chem::Atom& atom = mb.atom(i);
                combined.add_atom(atom.element, atom.hydrogens, atom.charge);
              }
              for (chem::BondIndex bi = 0; bi < mb.bond_count(); ++bi) {
                const chem::Bond& bond = mb.bond(bi);
                combined.add_bond(offset + bond.a, offset + bond.b,
                                  bond.order);
              }
              std::vector<ReactionProposal> out;
              for (const chem::Embedding& embedding :
                   rule.pattern.match(combined)) {
                // Require a genuinely bimolecular embedding: sites must
                // touch both fragments (an embedding inside one fragment is
                // the unimolecular version of the reaction and is produced
                // by a dedicated unimolecular rule if the chemist wants it).
                bool uses_a = false;
                bool uses_b = false;
                for (chem::AtomIndex atom : embedding) {
                  (atom < offset ? uses_a : uses_b) = true;
                }
                if (!uses_a || !uses_b) continue;
                propose_embedding(rule, combined, embedding,
                                  a == b ? std::vector<SpeciesId>{a, a}
                                         : std::vector<SpeciesId>{a, b},
                                  out);
              }
              return out;
            });
    return commit(rule, proposals);
  }

  /// Worker side: applies the rule's actions at one embedding and collects
  /// the resulting proposal. Read-only with respect to the network; all
  /// skip conditions that the serial code evaluated against immutable state
  /// (action failures, size/forbidden guards) are decided here.
  void propose_embedding(const CompiledRule& rule, const chem::Molecule& input,
                         const chem::Embedding& embedding,
                         std::vector<SpeciesId> reactants,
                         std::vector<ReactionProposal>& out) const {
    chem::Molecule work = input;
    for (const CompiledAction& action : rule.actions) {
      const chem::AtomIndex a = embedding[action.site_a];
      const chem::AtomIndex b =
          action.kind == ActionDecl::Kind::kRemoveH ||
                  action.kind == ActionDecl::Kind::kAddH
              ? 0
              : embedding[action.site_b];
      Status s;
      switch (action.kind) {
        case ActionDecl::Kind::kDisconnect:
          s = chem::disconnect(work, a, b);
          break;
        case ActionDecl::Kind::kConnect:
          s = chem::connect(work, a, b,
                            static_cast<std::uint8_t>(action.argument));
          break;
        case ActionDecl::Kind::kIncBond:
          s = chem::increase_bond_order(work, a, b);
          break;
        case ActionDecl::Kind::kDecBond:
          s = chem::decrease_bond_order(work, a, b);
          break;
        case ActionDecl::Kind::kRemoveH:
          s = chem::remove_hydrogen(work, a);
          break;
        case ActionDecl::Kind::kAddH:
          s = chem::add_hydrogen(work, a, action.argument);
          break;
      }
      // An action that is chemically impossible at this embedding (e.g.
      // connect with no free valence) silently skips the embedding: the
      // pattern selected a site the action set cannot legally transform.
      if (!s.is_ok()) return;
    }

    // Split and canonicalize products; check forbidden forms and the
    // molecule size guard. A tripped guard abandons the reaction but keeps
    // the fragments canonicalized so far — the serial code had already
    // registered them, and the replay must too.
    ReactionProposal proposal;
    proposal.reactants = std::move(reactants);
    for (chem::Molecule& fragment : work.split_fragments()) {
      if (fragment.atom_count() > options_.max_atoms_per_species) {
        out.push_back(std::move(proposal));
        return;
      }
      for (const chem::Pattern& pattern : model_.forbidden_substructures) {
        if (!pattern.match_limited(fragment, 1).empty()) {
          out.push_back(std::move(proposal));
          return;
        }
      }
      std::string canonical = chem::canonical_smiles_cached(fragment);
      if (forbidden_.count(canonical) != 0) {
        out.push_back(std::move(proposal));
        return;
      }
      proposal.fragments.push_back(
          FragmentProposal{std::move(fragment), std::move(canonical)});
    }
    proposal.record = true;
    out.push_back(std::move(proposal));
  }

  /// Merge side: replays every proposal in candidate order against the
  /// mutable network state.
  Status commit(const CompiledRule& rule,
                std::vector<std::vector<ReactionProposal>>& proposals) {
    for (std::vector<ReactionProposal>& candidate : proposals) {
      for (ReactionProposal& proposal : candidate) {
        std::vector<SpeciesId> products;
        products.reserve(proposal.fragments.size());
        for (FragmentProposal& fragment : proposal.fragments) {
          products.push_back(network_.species.add_with_canonical(
              std::move(fragment.molecule), std::move(fragment.canonical)));
        }
        if (!proposal.record) continue;
        ReactionKey key;
        key.reactants = std::move(proposal.reactants);
        key.products = std::move(products);
        std::sort(key.reactants.begin(), key.reactants.end());
        std::sort(key.products.begin(), key.products.end());
        // A no-op transformation (products == reactants) carries no
        // kinetics.
        if (key.reactants == key.products) continue;
        key.rate_name = rule.rate_name;
        key.rule_name = rule.name;
        reaction_index_[std::move(key)] += 1.0;
      }
    }
    return Status::ok();
  }

  const CompiledModel& model_;
  GeneratorOptions options_;
  ReactionNetwork network_;
  std::unordered_map<ReactionKey, double, ReactionKeyHash> reaction_index_;
  std::unordered_set<std::string> forbidden_;
  std::unordered_map<const CompiledRule*, SpeciesId> watermark_;
};

}  // namespace

std::string ReactionNetwork::to_string() const {
  std::string out;
  for (const Reaction& r : reactions) {
    for (SpeciesId id : r.reactants) {
      out += "- " + species.entry(id).name + " ";
    }
    for (SpeciesId id : r.products) {
      out += "+ " + species.entry(id).name + " ";
    }
    out += "\\ [" + r.rate_name + "]";
    if (r.multiplicity != 1.0) {
      out += support::str_format(" x%g", r.multiplicity);
    }
    out += ";\n";
  }
  return out;
}

Expected<ReactionNetwork> generate_network(const CompiledModel& model,
                                           const GeneratorOptions& options) {
  return NetworkBuilder(model, options).build();
}

}  // namespace rms::network