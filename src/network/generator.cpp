#include "network/generator.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "chem/canonical.hpp"
#include "chem/edit.hpp"
#include "support/strings.hpp"

namespace rms::network {

namespace {

using rdl::ActionDecl;
using rdl::CompiledAction;
using rdl::CompiledModel;
using rdl::CompiledRule;
using support::Expected;
using support::Status;

/// Key identifying a reaction up to embedding multiplicity.
struct ReactionKey {
  std::vector<SpeciesId> reactants;
  std::vector<SpeciesId> products;
  std::string rate_name;
  std::string rule_name;

  bool operator<(const ReactionKey& other) const {
    return std::tie(reactants, products, rate_name, rule_name) <
           std::tie(other.reactants, other.products, other.rate_name,
                    other.rule_name);
  }
};

class NetworkBuilder {
 public:
  NetworkBuilder(const CompiledModel& model, const GeneratorOptions& options)
      : model_(model), options_(options) {
    forbidden_.insert(model.forbidden_canonical.begin(),
                      model.forbidden_canonical.end());
  }

  Expected<ReactionNetwork> build() {
    // Seed with declared species.
    for (const rdl::CompiledSpecies& s : model_.species) {
      const SpeciesId id = network_.species.add(s.molecule, s.name);
      network_.species.entry(id).init_concentration = s.init_concentration;
      network_.species.entry(id).seed = true;
    }

    // Fixed point: keep applying rules while new species appear.
    std::size_t processed_pairs_marker = 0;
    for (int round = 0; round < options_.max_rounds; ++round) {
      const std::size_t species_before = network_.species.size();
      const std::size_t reactions_before = reaction_index_.size();

      for (const CompiledRule& rule : model_.rules) {
        Status s = rule.molecularity == 1 ? apply_unimolecular(rule)
                                          : apply_bimolecular(rule);
        if (!s.is_ok()) return s;
      }
      (void)processed_pairs_marker;
      if (network_.species.size() == species_before &&
          reaction_index_.size() == reactions_before) {
        break;  // converged
      }
      if (network_.species.size() > options_.max_species) {
        return support::resource_exhausted(support::str_format(
            "reaction network exceeded %zu species; tighten rule context "
            "constraints or raise GeneratorOptions::max_species",
            options_.max_species));
      }
      if (reaction_index_.size() > options_.max_reactions) {
        return support::resource_exhausted(support::str_format(
            "reaction network exceeded %zu reactions", options_.max_reactions));
      }
    }

    // Materialize reactions in deterministic order.
    for (const auto& [key, multiplicity] : reaction_index_) {
      Reaction r;
      for (SpeciesId id : key.reactants) r.reactants.push_back(id);
      for (SpeciesId id : key.products) r.products.push_back(id);
      r.rate_name = key.rate_name;
      r.rule_name = key.rule_name;
      r.multiplicity = multiplicity;
      network_.reactions.push_back(std::move(r));
    }
    return std::move(network_);
  }

 private:
  Status apply_unimolecular(const CompiledRule& rule) {
    // Only species not yet seen by this rule are processed (watermark), so a
    // fixed-point round never recounts embeddings into the multiplicity.
    const SpeciesId limit = static_cast<SpeciesId>(network_.species.size());
    const SpeciesId start = watermark_[&rule];
    watermark_[&rule] = limit;
    for (SpeciesId id = start; id < limit; ++id) {
      const chem::Molecule mol = network_.species.entry(id).molecule;
      for (const chem::Embedding& embedding : rule.pattern.match(mol)) {
        RMS_RETURN_IF_ERROR(
            apply_embedding(rule, mol, embedding, {id}));
      }
    }
    return Status::ok();
  }

  Status apply_bimolecular(const CompiledRule& rule) {
    // Unordered pairs with at least one endpoint the rule has not seen yet;
    // the reaction key dedup collapses the symmetric double counting into
    // multiplicity.
    const SpeciesId limit = static_cast<SpeciesId>(network_.species.size());
    const SpeciesId start = watermark_[&rule];
    watermark_[&rule] = limit;
    for (SpeciesId a = 0; a < limit; ++a) {
      for (SpeciesId b = std::max(a, start); b < limit; ++b) {
        const chem::Molecule& ma = network_.species.entry(a).molecule;
        const chem::Molecule& mb = network_.species.entry(b).molecule;
        // Combined disconnected graph: A's atoms then B's atoms.
        chem::Molecule combined = ma;
        const chem::AtomIndex offset =
            static_cast<chem::AtomIndex>(ma.atom_count());
        for (chem::AtomIndex i = 0; i < mb.atom_count(); ++i) {
          const chem::Atom& atom = mb.atom(i);
          combined.add_atom(atom.element, atom.hydrogens, atom.charge);
        }
        for (chem::BondIndex bi = 0; bi < mb.bond_count(); ++bi) {
          const chem::Bond& bond = mb.bond(bi);
          combined.add_bond(offset + bond.a, offset + bond.b, bond.order);
        }
        for (const chem::Embedding& embedding : rule.pattern.match(combined)) {
          // Require a genuinely bimolecular embedding: sites must touch
          // both fragments (an embedding inside one fragment is the
          // unimolecular version of the reaction and is produced by a
          // dedicated unimolecular rule if the chemist wants it).
          bool uses_a = false;
          bool uses_b = false;
          for (chem::AtomIndex atom : embedding) {
            (atom < offset ? uses_a : uses_b) = true;
          }
          if (!uses_a || !uses_b) continue;
          RMS_RETURN_IF_ERROR(apply_embedding(rule, combined, embedding,
                                              a == b
                                                  ? std::vector<SpeciesId>{a, a}
                                                  : std::vector<SpeciesId>{a, b}));
        }
      }
    }
    return Status::ok();
  }

  Status apply_embedding(const CompiledRule& rule, const chem::Molecule& input,
                         const chem::Embedding& embedding,
                         std::vector<SpeciesId> reactants) {
    chem::Molecule work = input;
    for (const CompiledAction& action : rule.actions) {
      const chem::AtomIndex a = embedding[action.site_a];
      const chem::AtomIndex b =
          action.kind == ActionDecl::Kind::kRemoveH ||
                  action.kind == ActionDecl::Kind::kAddH
              ? 0
              : embedding[action.site_b];
      Status s;
      switch (action.kind) {
        case ActionDecl::Kind::kDisconnect:
          s = chem::disconnect(work, a, b);
          break;
        case ActionDecl::Kind::kConnect:
          s = chem::connect(work, a, b, static_cast<std::uint8_t>(action.argument));
          break;
        case ActionDecl::Kind::kIncBond:
          s = chem::increase_bond_order(work, a, b);
          break;
        case ActionDecl::Kind::kDecBond:
          s = chem::decrease_bond_order(work, a, b);
          break;
        case ActionDecl::Kind::kRemoveH:
          s = chem::remove_hydrogen(work, a);
          break;
        case ActionDecl::Kind::kAddH:
          s = chem::add_hydrogen(work, a, action.argument);
          break;
      }
      // An action that is chemically impossible at this embedding (e.g.
      // connect with no free valence) silently skips the embedding: the
      // pattern selected a site the action set cannot legally transform.
      if (!s.is_ok()) return Status::ok();
    }

    // Split and canonicalize products; check forbidden forms and the
    // molecule size guard.
    std::vector<SpeciesId> products;
    for (chem::Molecule& fragment : work.split_fragments()) {
      if (fragment.atom_count() > options_.max_atoms_per_species) {
        return Status::ok();
      }
      for (const chem::Pattern& pattern : model_.forbidden_substructures) {
        if (!pattern.match_limited(fragment, 1).empty()) return Status::ok();
      }
      const std::string canonical = chem::canonical_smiles(fragment);
      if (forbidden_.count(canonical) != 0) return Status::ok();
      products.push_back(network_.species.add(std::move(fragment)));
    }

    ReactionKey key;
    key.reactants = std::move(reactants);
    key.products = std::move(products);
    std::sort(key.reactants.begin(), key.reactants.end());
    std::sort(key.products.begin(), key.products.end());
    // A no-op transformation (products == reactants) carries no kinetics.
    if (key.reactants == key.products) return Status::ok();
    key.rate_name = rule.rate_name;
    key.rule_name = rule.name;
    reaction_index_[key] += 1.0;
    return Status::ok();
  }

  const CompiledModel& model_;
  GeneratorOptions options_;
  ReactionNetwork network_;
  std::map<ReactionKey, double> reaction_index_;
  std::unordered_set<std::string> forbidden_;
  std::unordered_map<const CompiledRule*, SpeciesId> watermark_;
};

}  // namespace

std::string ReactionNetwork::to_string() const {
  std::string out;
  for (const Reaction& r : reactions) {
    for (SpeciesId id : r.reactants) {
      out += "- " + species.entry(id).name + " ";
    }
    for (SpeciesId id : r.products) {
      out += "+ " + species.entry(id).name + " ";
    }
    out += "\\ [" + r.rate_name + "]";
    if (r.multiplicity != 1.0) {
      out += support::str_format(" x%g", r.multiplicity);
    }
    out += ";\n";
  }
  return out;
}

Expected<ReactionNetwork> generate_network(const CompiledModel& model,
                                           const GeneratorOptions& options) {
  return NetworkBuilder(model, options).build();
}

}  // namespace rms::network
