// Reaction network serialization.
//
// Network generation (rule application + canonicalization) is the expensive
// front half of the pipeline; the text format here lets a generated network
// be cached, inspected, diffed, or hand-written and re-loaded. The format is
// line-oriented:
//
//   # rms-network v1
//   species <name> <init-concentration> <seed 0|1> [<canonical-smiles>]
//   reaction <rate> <rule> <multiplicity> : <reactants...> => <products...>
//
// Loaded networks are *symbolic* — molecule graphs are not round-tripped
// (the ODE pipeline never needs them); a species' canonical SMILES is kept
// as an opaque identity string when present.
#pragma once

#include <string>

#include "network/generator.hpp"
#include "support/status.hpp"

namespace rms::network {

/// Serializes a network to the text format.
std::string serialize_network(const ReactionNetwork& network);

/// Parses the text format.
support::Expected<ReactionNetwork> parse_network(const std::string& text);

/// File convenience wrappers.
support::Status write_network_file(const std::string& path,
                                   const ReactionNetwork& network);
support::Expected<ReactionNetwork> read_network_file(const std::string& path);

}  // namespace rms::network
