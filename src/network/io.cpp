#include "network/io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "support/strings.hpp"

namespace rms::network {

using support::Status;

std::string serialize_network(const ReactionNetwork& network) {
  std::string out = "# rms-network v1\n";
  for (const SpeciesEntry& entry : network.species.entries()) {
    out += support::str_format("species %s %.17g %d", entry.name.c_str(),
                               entry.init_concentration, entry.seed ? 1 : 0);
    if (!entry.canonical.empty() && entry.canonical != entry.name) {
      out += " " + entry.canonical;
    }
    out += "\n";
  }
  for (const Reaction& r : network.reactions) {
    out += support::str_format("reaction %s %s %.17g :", r.rate_name.c_str(),
                               r.rule_name.empty() ? "-" : r.rule_name.c_str(),
                               r.multiplicity);
    for (SpeciesId id : r.reactants) {
      out += " " + network.species.entry(id).name;
    }
    out += " =>";
    for (SpeciesId id : r.products) {
      out += " " + network.species.entry(id).name;
    }
    out += "\n";
  }
  return out;
}

support::Expected<ReactionNetwork> parse_network(const std::string& text) {
  ReactionNetwork network;
  std::unordered_map<std::string, SpeciesId> by_name;
  std::size_t line_number = 0;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string_view line =
        support::trim(std::string_view(text).substr(start, end - start));
    start = end + 1;
    ++line_number;
    if (line.empty() || line[0] == '#') continue;

    const auto fields = support::split_whitespace(line);
    auto error = [&](const char* msg) {
      return support::parse_error(
          support::str_format("network line %zu: %s", line_number, msg));
    };

    if (fields[0] == "species") {
      if (fields.size() < 4 || fields.size() > 5) {
        return error("expected 'species <name> <init> <seed> [<canonical>]'");
      }
      const std::string name(fields[1]);
      double init = 0.0;
      unsigned long seed = 0;
      if (!support::parse_double(fields[2], init) ||
          !support::parse_uint(fields[3], seed) || seed > 1) {
        return error("malformed species fields");
      }
      if (by_name.count(name) != 0) return error("duplicate species name");
      const SpeciesId id = network.species.add_symbolic(
          fields.size() == 5 ? std::string(fields[4]) : name);
      // add_symbolic keys on the identity string; keep the display name.
      network.species.entry(id).name = name;
      network.species.entry(id).init_concentration = init;
      network.species.entry(id).seed = seed == 1;
      by_name.emplace(name, id);
      continue;
    }
    if (fields[0] == "reaction") {
      if (fields.size() < 6) {
        return error(
            "expected 'reaction <rate> <rule> <mult> : <reactants> => "
            "<products>'");
      }
      Reaction r;
      r.rate_name = std::string(fields[1]);
      r.rule_name = fields[2] == "-" ? "" : std::string(fields[2]);
      double multiplicity = 1.0;
      if (!support::parse_double(fields[3], multiplicity) ||
          multiplicity <= 0.0) {
        return error("malformed multiplicity");
      }
      r.multiplicity = multiplicity;
      if (fields[4] != ":") return error("expected ':' after multiplicity");
      std::size_t i = 5;
      bool in_products = false;
      for (; i < fields.size(); ++i) {
        if (fields[i] == "=>") {
          if (in_products) return error("duplicate '=>'");
          in_products = true;
          continue;
        }
        auto it = by_name.find(std::string(fields[i]));
        if (it == by_name.end()) {
          return error("reaction references undeclared species");
        }
        if (in_products) {
          r.products.push_back(it->second);
        } else {
          r.reactants.push_back(it->second);
        }
      }
      if (!in_products) return error("missing '=>'");
      network.reactions.push_back(std::move(r));
      continue;
    }
    return error("unknown directive (expected 'species' or 'reaction')");
  }
  return network;
}

Status write_network_file(const std::string& path,
                          const ReactionNetwork& network) {
  std::ofstream out(path);
  if (!out) return support::invalid_argument("cannot open for writing: " + path);
  out << serialize_network(network);
  return out.good() ? Status::ok()
                    : support::internal_error("write failed: " + path);
}

support::Expected<ReactionNetwork> read_network_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return support::not_found("cannot open network file: " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return parse_network(buffer.str());
}

}  // namespace rms::network
