#include "network/registry.hpp"

#include "chem/canonical.hpp"
#include "support/strings.hpp"

namespace rms::network {

SpeciesId SpeciesRegistry::add(chem::Molecule molecule, std::string name) {
  std::string canonical = chem::canonical_smiles(molecule);
  return add_with_canonical(std::move(molecule), std::move(canonical),
                            std::move(name));
}

SpeciesId SpeciesRegistry::add_with_canonical(chem::Molecule molecule,
                                              std::string canonical,
                                              std::string name) {
  auto it = by_canonical_.find(canonical);
  if (it != by_canonical_.end()) return it->second;
  const SpeciesId id = static_cast<SpeciesId>(entries_.size());
  SpeciesEntry entry;
  entry.name = name.empty() ? support::str_format("X%u", id) : std::move(name);
  entry.canonical = std::move(canonical);
  entry.molecule = std::move(molecule);
  by_canonical_.emplace(entry.canonical, id);
  entries_.push_back(std::move(entry));
  return id;
}

SpeciesId SpeciesRegistry::add_symbolic(std::string name) {
  auto it = by_canonical_.find(name);
  if (it != by_canonical_.end()) return it->second;
  const SpeciesId id = static_cast<SpeciesId>(entries_.size());
  SpeciesEntry entry;
  entry.name = name;
  entry.canonical = std::move(name);
  by_canonical_.emplace(entry.canonical, id);
  entries_.push_back(std::move(entry));
  return id;
}

bool SpeciesRegistry::find_canonical(const std::string& canonical,
                                     SpeciesId& out) const {
  auto it = by_canonical_.find(canonical);
  if (it == by_canonical_.end()) return false;
  out = it->second;
  return true;
}

}  // namespace rms::network
