// Reaction network generation: fixed-point application of compiled rules.
//
// Starting from the declared species, every rule is applied to every species
// (unimolecular rules) or species pair (bimolecular rules). Each embedding of
// the rule's site pattern is transformed with the rule's edit actions; the
// resulting fragments are canonicalized, deduplicated, checked against the
// forbidden forms, registered, and the reaction recorded. New species feed
// the next round until nothing new appears (or a safety cap trips).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "network/reaction.hpp"
#include "network/registry.hpp"
#include "rdl/sema.hpp"
#include "support/status.hpp"

namespace rms::support {
class ThreadPool;
}  // namespace rms::support

namespace rms::network {

struct GeneratorOptions {
  std::size_t max_species = 20000;
  std::size_t max_reactions = 200000;
  int max_rounds = 64;
  /// Products larger than this many heavy atoms are treated like forbidden
  /// forms (the reaction is skipped). Guards against rule sets that grow
  /// molecules without bound — the generator reports progress per round, so
  /// a run that would explode fails fast instead of churning.
  std::size_t max_atoms_per_species = 80;
  /// Worker pool for the per-rule candidate fan-out (matching, editing and
  /// canonicalization run read-only in parallel; network mutation replays
  /// serially in candidate order, so the result is identical to a serial
  /// run). Null runs everything inline.
  const support::ThreadPool* pool = nullptr;
};

struct ReactionNetwork {
  SpeciesRegistry species;
  std::vector<Reaction> reactions;

  /// Renders the network in the paper's Fig. 3 intermediate-equation style:
  ///   - A - B + C + C \ [K_x];
  [[nodiscard]] std::string to_string() const;
};

/// Generates the full reaction network for a compiled RDL model.
support::Expected<ReactionNetwork> generate_network(
    const rdl::CompiledModel& model, const GeneratorOptions& options = {});

}  // namespace rms::network
