// Species registry: canonical-SMILES-keyed deduplicating store.
//
// Every molecule the network generator creates is canonicalized; the
// canonical string is the species identity (the role the SMILES/CDK library
// played in the paper's chemical compiler).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "chem/molecule.hpp"

namespace rms::network {

using SpeciesId = std::uint32_t;

struct SpeciesEntry {
  std::string name;       ///< display name ("CBS", "Ax_3", or auto "X12")
  std::string canonical;  ///< canonical SMILES
  chem::Molecule molecule;
  double init_concentration = 0.0;
  bool seed = false;  ///< declared in the RDL input (vs. discovered)
};

class SpeciesRegistry {
 public:
  /// Adds a molecule (computing its canonical form) or returns the existing
  /// id. Auto-names discovered species "X<id>" unless `name` is non-empty.
  SpeciesId add(chem::Molecule molecule, std::string name = {});

  /// add() with the canonical SMILES already computed (the generator's
  /// parallel workers canonicalize; the serial merge registers). `canonical`
  /// must be exactly canonical_smiles(molecule).
  SpeciesId add_with_canonical(chem::Molecule molecule, std::string canonical,
                               std::string name = {});

  /// Adds a species identified by name only (no molecular graph) — used by
  /// the synthetic scaled test-case networks, where building and
  /// canonicalizing hundreds of thousands of molecule graphs would add
  /// nothing: the ODE pipeline only consumes species identities.
  SpeciesId add_symbolic(std::string name);

  /// Looks up by canonical SMILES; returns false if absent.
  bool find_canonical(const std::string& canonical, SpeciesId& out) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const SpeciesEntry& entry(SpeciesId id) const {
    return entries_[id];
  }
  [[nodiscard]] SpeciesEntry& entry(SpeciesId id) { return entries_[id]; }
  [[nodiscard]] const std::vector<SpeciesEntry>& entries() const {
    return entries_;
  }

 private:
  std::vector<SpeciesEntry> entries_;
  std::unordered_map<std::string, SpeciesId> by_canonical_;
};

}  // namespace rms::network
