#include "vm/regalloc.hpp"

#include <vector>

#include "support/assert.hpp"

namespace rms::vm {

namespace {

constexpr std::size_t kNoIndex = ~std::size_t{0};

/// Calls fn(reg&) for every register field of the instruction, defs and
/// uses alike. The dst field of stores is not a register.
template <typename Fn>
void for_each_register(Instr& instr, Fn&& fn) {
  switch (instr.op) {
    case Op::kLoadY:
    case Op::kLoadK:
    case Op::kLoadT:
    case Op::kLoadConst:
      fn(instr.dst);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
      fn(instr.a);
      fn(instr.b);
      fn(instr.dst);
      break;
    case Op::kNeg:
      fn(instr.a);
      fn(instr.dst);
      break;
    case Op::kStoreOut:
      if (instr.b != kNoReg) fn(instr.b);
      break;
    case Op::kMulAdd:
    case Op::kMulSub:
      fn(instr.a);
      fn(instr.b);
      fn(instr.c);
      fn(instr.dst);
      break;
    case Op::kLoadYMul:
    case Op::kLoadKMul:
      fn(instr.b);
      fn(instr.dst);
      break;
    case Op::kStoreNeg:
      fn(instr.b);
      break;
  }
}

}  // namespace

Program compact_registers(const Program& input, RegAllocStats* stats) {
  Program out;
  out.consts = input.consts;
  out.species_count = input.species_count;
  out.rate_count = input.rate_count;
  out.output_count = input.output_count;
  out.code = input.code;

  const std::size_t reg_count = input.register_count;
  // Live interval of each register: [first occurrence, last occurrence].
  // Treating defs and uses uniformly keeps the renaming correct even for
  // non-SSA input (a redefined register keeps one slot for its whole
  // lifetime — conservative but always sound, since renaming is uniform).
  std::vector<std::size_t> last(reg_count, kNoIndex);
  for (std::size_t i = 0; i < out.code.size(); ++i) {
    for_each_register(out.code[i], [&](std::uint32_t& r) {
      RMS_CHECK(r < reg_count);
      last[r] = i;
    });
  }

  std::vector<std::uint32_t> name(reg_count, kNoReg);
  std::vector<std::uint32_t> free_list;
  std::uint32_t high_water = 0;

  for (std::size_t i = 0; i < out.code.size(); ++i) {
    // Rename every field first (a register first seen here gets a slot),
    // then release slots whose interval ends at this instruction. Operands
    // are read before dst is written within one instruction, so dst
    // sharing a dying operand's slot is safe — but that reuse only happens
    // on the *next* instruction, keeping the rewrite valid even for ops
    // where dst is renamed before a later-listed operand field.
    for_each_register(out.code[i], [&](std::uint32_t& r) {
      if (name[r] == kNoReg) {
        if (free_list.empty()) {
          name[r] = high_water++;
        } else {
          name[r] = free_list.back();
          free_list.pop_back();
        }
      }
      r = name[r];
    });
    const Instr& original = input.code[i];
    Instr probe = original;
    for_each_register(probe, [&](std::uint32_t& r) {
      if (last[r] == i && name[r] != kNoReg) {
        free_list.push_back(name[r]);
        name[r] = kNoReg;
      }
    });
  }

  out.register_count = high_water;
  if (stats != nullptr) {
    stats->registers_before = input.register_count;
    stats->registers_after = out.register_count;
  }
  return out;
}

}  // namespace rms::vm
