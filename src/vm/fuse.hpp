// Peephole superinstruction fusion for bytecode programs.
//
// The emitters produce SSA-form three-address code: every register is
// defined exactly once and intermediate values are typically consumed
// exactly once. That makes the classic interpreter superinstructions safe
// to form by a use-count-driven peephole:
//
//   kMul p,a,b ; kAdd d,x,p   ->  kMulAdd  d,a,b,x   (r[d] = r[a]*r[b]+r[x])
//   kMul p,a,b ; kSub d,x,p   ->  kMulSub  d,a,b,x   (r[d] = r[x]-r[a]*r[b])
//   kLoadY v,i ; kMul d,v,r   ->  kLoadYMul d,i,r    (r[d] = y[i]*r[r])
//   kLoadK v,i ; kMul d,v,r   ->  kLoadKMul d,i,r    (r[d] = k[i]*r[r])
//   kNeg  v,r  ; kStoreOut i,v -> kStoreNeg i,r      (ydot[i] = -r[r])
//
// Fusion fires only when the intermediate register is used exactly once
// (by the fused consumer), so it never duplicates work; on mass-action
// tapes it removes 30-50% of all dispatches. Arithmetic-operation counts
// are invariant (a kMulAdd counts 1 multiply + 1 add), keeping the Table 1
// op-count rows exact.
//
// Programs that are not in SSA form (e.g. already register-compacted) are
// returned unchanged: fuse BEFORE vm::compact_registers.
#pragma once

#include <cstddef>

#include "vm/program.hpp"

namespace rms::vm {

struct FusionStats {
  std::size_t mul_adds = 0;
  std::size_t mul_subs = 0;
  std::size_t load_muls = 0;
  std::size_t store_negs = 0;
  std::size_t instructions_before = 0;
  std::size_t instructions_after = 0;

  [[nodiscard]] std::size_t fused() const {
    return mul_adds + mul_subs + load_muls + store_negs;
  }
};

/// True if every non-store instruction defines a distinct register and all
/// operands are defined before use — the form the emitters produce and the
/// precondition for fusion.
[[nodiscard]] bool is_ssa(const Program& program);

/// Returns the program with superinstructions fused (see file comment).
/// Non-SSA input is returned unchanged.
[[nodiscard]] Program fuse_superinstructions(const Program& input,
                                             FusionStats* stats = nullptr);

/// The standard execution pipeline: fuse, then compact registers
/// (vm/regalloc.hpp). This is what bytecode_emitter callers should run on
/// any program destined for the interpreter's hot path.
[[nodiscard]] Program fuse_and_compact(const Program& input,
                                       FusionStats* fusion_stats = nullptr);

/// TEST ONLY. While enabled, fuse_superinstructions mis-wires the first
/// kMulAdd it forms in each call: the multiplicand and the addend are
/// swapped, so the fused instruction computes r[a]*r[x]+r[b] instead of
/// r[a]*r[b]+r[x]. This deliberate miscompile exists so the differential
/// oracle's detection and stage-attribution paths can be exercised against
/// a known-bad optimizer; it must never be enabled outside tests.
void set_fuse_fault_for_testing(bool enabled);

}  // namespace rms::vm
