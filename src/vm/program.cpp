#include "vm/program.hpp"

#include "support/strings.hpp"

namespace rms::vm {

ArithCount Program::count_arith() const {
  ArithCount count;
  for (const Instr& instr : code) {
    switch (instr.op) {
      case Op::kAdd:
      case Op::kSub:
        ++count.add_subs;
        break;
      case Op::kMul:
      case Op::kLoadYMul:
      case Op::kLoadKMul:
        ++count.multiplies;
        break;
      case Op::kMulAdd:
      case Op::kMulSub:
        ++count.multiplies;
        ++count.add_subs;
        break;
      default:
        break;
    }
  }
  return count;
}

std::string Program::disassemble() const {
  std::string out;
  for (const Instr& instr : code) {
    switch (instr.op) {
      case Op::kLoadY:
        out += support::str_format("r%u = y[%u]\n", instr.dst, instr.a);
        break;
      case Op::kLoadK:
        out += support::str_format("r%u = k[%u]\n", instr.dst, instr.a);
        break;
      case Op::kLoadT:
        out += support::str_format("r%u = t\n", instr.dst);
        break;
      case Op::kLoadConst:
        out += support::str_format("r%u = %g\n", instr.dst, consts[instr.a]);
        break;
      case Op::kAdd:
        out += support::str_format("r%u = r%u + r%u\n", instr.dst, instr.a,
                                   instr.b);
        break;
      case Op::kSub:
        out += support::str_format("r%u = r%u - r%u\n", instr.dst, instr.a,
                                   instr.b);
        break;
      case Op::kMul:
        out += support::str_format("r%u = r%u * r%u\n", instr.dst, instr.a,
                                   instr.b);
        break;
      case Op::kNeg:
        out += support::str_format("r%u = -r%u\n", instr.dst, instr.a);
        break;
      case Op::kStoreOut:
        if (instr.b == kNoReg) {
          out += support::str_format("ydot[%u] = 0\n", instr.a);
        } else {
          out += support::str_format("ydot[%u] = r%u\n", instr.a, instr.b);
        }
        break;
      case Op::kMulAdd:
        out += support::str_format("r%u = r%u * r%u + r%u\n", instr.dst,
                                   instr.a, instr.b, instr.c);
        break;
      case Op::kMulSub:
        out += support::str_format("r%u = r%u - r%u * r%u\n", instr.dst,
                                   instr.c, instr.a, instr.b);
        break;
      case Op::kLoadYMul:
        out += support::str_format("r%u = y[%u] * r%u\n", instr.dst, instr.a,
                                   instr.b);
        break;
      case Op::kLoadKMul:
        out += support::str_format("r%u = k[%u] * r%u\n", instr.dst, instr.a,
                                   instr.b);
        break;
      case Op::kStoreNeg:
        out += support::str_format("ydot[%u] = -r%u\n", instr.a, instr.b);
        break;
    }
  }
  return out;
}

}  // namespace rms::vm
