// Linear-scan register compaction for bytecode programs.
//
// The emitters allocate one fresh register per value, so register_count
// grows with the tape: O(#instructions). At TC4/TC5 scale that register
// file is megabytes — every pass over the tape streams it through the
// cache and dispatch stalls on register loads. Compaction renames
// registers by live range (one interval per register, from first to last
// occurrence in the straight-line code), reusing a slot as soon as its
// value dies. The result is register_count = max live width, which for
// mass-action tapes is orders of magnitude smaller and cache-resident.
//
// The rewrite is a pure renaming: instruction order, opcodes and semantics
// are untouched, so count_arith() and all outputs are bit-identical.
// Compacted programs are generally NOT in SSA form; run fusion
// (vm/fuse.hpp) first.
#pragma once

#include <cstddef>

#include "vm/program.hpp"

namespace rms::vm {

struct RegAllocStats {
  std::size_t registers_before = 0;
  std::size_t registers_after = 0;
};

/// Returns the program rewritten to reuse registers by live range.
[[nodiscard]] Program compact_registers(const Program& input,
                                        RegAllocStats* stats = nullptr);

}  // namespace rms::vm
