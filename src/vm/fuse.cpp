#include "vm/fuse.hpp"

#include <utility>
#include <vector>

#include "vm/regalloc.hpp"

namespace rms::vm {

namespace {

constexpr std::size_t kNoIndex = ~std::size_t{0};

// Test-only miscompile switch; see set_fuse_fault_for_testing in the header.
bool g_fuse_fault_enabled = false;

bool defines_register(const Instr& instr) {
  return instr.op != Op::kStoreOut && instr.op != Op::kStoreNeg;
}

/// Appends every register an instruction reads to `out` (at most 3).
void read_registers(const Instr& instr, std::uint32_t out[3], int& count) {
  count = 0;
  switch (instr.op) {
    case Op::kLoadY:
    case Op::kLoadK:
    case Op::kLoadT:
    case Op::kLoadConst:
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
      out[count++] = instr.a;
      out[count++] = instr.b;
      break;
    case Op::kNeg:
      out[count++] = instr.a;
      break;
    case Op::kStoreOut:
      if (instr.b != kNoReg) out[count++] = instr.b;
      break;
    case Op::kMulAdd:
    case Op::kMulSub:
      out[count++] = instr.a;
      out[count++] = instr.b;
      out[count++] = instr.c;
      break;
    case Op::kLoadYMul:
    case Op::kLoadKMul:
      out[count++] = instr.b;
      break;
    case Op::kStoreNeg:
      out[count++] = instr.b;
      break;
  }
}

}  // namespace

bool is_ssa(const Program& program) {
  std::vector<bool> defined(program.register_count, false);
  std::uint32_t reads[3];
  int read_count = 0;
  for (const Instr& instr : program.code) {
    read_registers(instr, reads, read_count);
    for (int i = 0; i < read_count; ++i) {
      if (reads[i] >= program.register_count || !defined[reads[i]]) {
        return false;
      }
    }
    if (defines_register(instr)) {
      if (instr.dst >= program.register_count || defined[instr.dst]) {
        return false;
      }
      defined[instr.dst] = true;
    }
  }
  return true;
}

Program fuse_superinstructions(const Program& input, FusionStats* stats) {
  FusionStats local;
  local.instructions_before = input.code.size();
  local.instructions_after = input.code.size();
  if (!is_ssa(input)) {
    if (stats != nullptr) *stats = local;
    return input;
  }

  const std::size_t n = input.code.size();
  // use_count[r]: total reads of register r; def_at[r]: defining index.
  std::vector<std::uint32_t> use_count(input.register_count, 0);
  std::vector<std::size_t> def_at(input.register_count, kNoIndex);
  std::uint32_t reads[3];
  int read_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Instr& instr = input.code[i];
    read_registers(instr, reads, read_count);
    for (int r = 0; r < read_count; ++r) ++use_count[reads[r]];
    if (defines_register(instr)) def_at[instr.dst] = i;
  }

  std::vector<Instr> code = input.code;
  std::vector<bool> dead(n, false);

  // A producer may be folded into its consumer when the consumer is its
  // only reader. SSA guarantees the producer's own operands are still
  // valid at the consumer's position, so sinking the computation is safe.
  auto sole_use_def = [&](std::uint32_t reg, Op wanted) -> std::size_t {
    if (use_count[reg] != 1) return kNoIndex;
    const std::size_t at = def_at[reg];
    if (at == kNoIndex || dead[at] || code[at].op != wanted) return kNoIndex;
    return at;
  };

  // Pass 1: multiply-accumulate and store-negate fusion.
  for (std::size_t i = 0; i < n; ++i) {
    Instr& instr = code[i];
    if (instr.op == Op::kAdd) {
      // Prefer folding the second operand (the freshly computed product in
      // accumulator chains); fall back to the first — kAdd commutes.
      std::size_t mul = sole_use_def(instr.b, Op::kMul);
      std::uint32_t other = instr.a;
      if (mul == kNoIndex) {
        mul = sole_use_def(instr.a, Op::kMul);
        other = instr.b;
      }
      if (mul == kNoIndex) continue;
      instr = Instr{Op::kMulAdd, instr.dst, code[mul].a, code[mul].b, other};
      if (g_fuse_fault_enabled && local.mul_adds == 0) {
        std::swap(instr.b, instr.c);  // deliberate miscompile for tests
      }
      dead[mul] = true;
      ++local.mul_adds;
    } else if (instr.op == Op::kSub) {
      // Only the subtrahend folds: r[d] = r[a] - r[mul].
      const std::size_t mul = sole_use_def(instr.b, Op::kMul);
      if (mul == kNoIndex) continue;
      instr =
          Instr{Op::kMulSub, instr.dst, code[mul].a, code[mul].b, instr.a};
      dead[mul] = true;
      ++local.mul_subs;
    } else if (instr.op == Op::kStoreOut && instr.b != kNoReg) {
      const std::size_t neg = sole_use_def(instr.b, Op::kNeg);
      if (neg == kNoIndex) continue;
      instr = Instr{Op::kStoreNeg, 0, instr.a, code[neg].a};
      dead[neg] = true;
      ++local.store_negs;
    }
  }

  // Pass 2: fold single-use y/k loads into the multiplies that survive.
  for (std::size_t i = 0; i < n; ++i) {
    Instr& instr = code[i];
    if (dead[i] || instr.op != Op::kMul) continue;
    std::size_t load = sole_use_def(instr.a, Op::kLoadY);
    if (load == kNoIndex) load = sole_use_def(instr.a, Op::kLoadK);
    std::uint32_t other = instr.b;
    if (load == kNoIndex) {
      load = sole_use_def(instr.b, Op::kLoadY);
      if (load == kNoIndex) load = sole_use_def(instr.b, Op::kLoadK);
      other = instr.a;
    }
    if (load == kNoIndex) continue;
    const Op fused =
        code[load].op == Op::kLoadY ? Op::kLoadYMul : Op::kLoadKMul;
    instr = Instr{fused, instr.dst, code[load].a, other};
    dead[load] = true;
    ++local.load_muls;
  }

  Program out;
  out.consts = input.consts;
  out.register_count = input.register_count;
  out.species_count = input.species_count;
  out.rate_count = input.rate_count;
  out.output_count = input.output_count;
  out.code.reserve(n - local.fused());
  for (std::size_t i = 0; i < n; ++i) {
    if (!dead[i]) out.code.push_back(code[i]);
  }
  local.instructions_after = out.code.size();
  if (stats != nullptr) *stats = local;
  return out;
}

Program fuse_and_compact(const Program& input, FusionStats* fusion_stats) {
  return compact_registers(fuse_superinstructions(input, fusion_stats));
}

void set_fuse_fault_for_testing(bool enabled) {
  g_fuse_fault_enabled = enabled;
}

}  // namespace rms::vm
