// Bytecode programs for ODE right-hand-side evaluation.
//
// The chemical compiler's final output in the paper is a C function that the
// platform compiler turns into machine code. This repository additionally
// targets a register bytecode executed by rms::vm::Interpreter, so the full
// pipeline (including the Table 1 execution-time comparisons) runs without
// shelling out to a system C compiler. The instruction set is 3-address
// code over an unbounded register file — the same form the reference
// backend ("commercial compiler" model) consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rms::vm {

enum class Op : std::uint8_t {
  kLoadY,      ///< reg[dst] = y[a]
  kLoadK,      ///< reg[dst] = k[a]
  kLoadT,      ///< reg[dst] = t
  kLoadConst,  ///< reg[dst] = consts[a]
  kAdd,        ///< reg[dst] = reg[a] + reg[b]
  kSub,        ///< reg[dst] = reg[a] - reg[b]
  kMul,        ///< reg[dst] = reg[a] * reg[b]
  kNeg,        ///< reg[dst] = -reg[a]
  kStoreOut,   ///< ydot[a] = reg[b] (b may be kNoReg for 0.0)
  // Fused superinstructions (produced by vm::fuse_superinstructions, never
  // by the emitters). Each one counts the same arithmetic as the base-op
  // sequence it replaces, so count_arith() is invariant under fusion.
  kMulAdd,     ///< reg[dst] = reg[a] * reg[b] + reg[c]
  kMulSub,     ///< reg[dst] = reg[c] - reg[a] * reg[b]
  kLoadYMul,   ///< reg[dst] = y[a] * reg[b]
  kLoadKMul,   ///< reg[dst] = k[a] * reg[b]
  kStoreNeg,   ///< ydot[a] = -reg[b]
};

inline constexpr std::uint32_t kNoReg = ~std::uint32_t{0};

/// Number of distinct opcodes (dispatch-table size).
inline constexpr std::size_t kOpCount =
    static_cast<std::size_t>(Op::kStoreNeg) + 1;

struct Instr {
  Op op = Op::kLoadConst;
  std::uint32_t dst = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
  std::uint32_t c = 0;  ///< third source operand (fused ops only)
};

struct ArithCount {
  std::size_t multiplies = 0;
  std::size_t add_subs = 0;

  [[nodiscard]] std::size_t total() const { return multiplies + add_subs; }
};

struct Program {
  std::vector<Instr> code;
  std::vector<double> consts;
  std::size_t register_count = 0;
  std::size_t species_count = 0;  ///< input dimension (y)
  std::size_t rate_count = 0;     ///< input dimension (k)
  /// Output slots written by kStoreOut. RHS programs have output_count ==
  /// species_count; Jacobian programs write one slot per nonzero entry.
  std::size_t output_count = 0;

  /// Arithmetic operation counts (loads/stores/negations excluded, matching
  /// the operation-count conventions of opt::OperationCount).
  [[nodiscard]] ArithCount count_arith() const;

  /// Human-readable disassembly (debugging / goldens).
  [[nodiscard]] std::string disassemble() const;
};

}  // namespace rms::vm
