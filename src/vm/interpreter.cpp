#include "vm/interpreter.hpp"

#include "support/assert.hpp"

namespace rms::vm {

Interpreter::Interpreter(const Program& program) : program_(&program) {
  registers_.resize(program.register_count);
}

void Interpreter::run(double t, const double* y, const double* k,
                      double* ydot) {
  double* regs = registers_.data();
  const double* consts = program_->consts.data();
  for (const Instr& instr : program_->code) {
    switch (instr.op) {
      case Op::kLoadY:
        regs[instr.dst] = y[instr.a];
        break;
      case Op::kLoadK:
        regs[instr.dst] = k[instr.a];
        break;
      case Op::kLoadT:
        regs[instr.dst] = t;
        break;
      case Op::kLoadConst:
        regs[instr.dst] = consts[instr.a];
        break;
      case Op::kAdd:
        regs[instr.dst] = regs[instr.a] + regs[instr.b];
        break;
      case Op::kSub:
        regs[instr.dst] = regs[instr.a] - regs[instr.b];
        break;
      case Op::kMul:
        regs[instr.dst] = regs[instr.a] * regs[instr.b];
        break;
      case Op::kNeg:
        regs[instr.dst] = -regs[instr.a];
        break;
      case Op::kStoreOut:
        ydot[instr.a] = instr.b == kNoReg ? 0.0 : regs[instr.b];
        break;
    }
  }
}

void Interpreter::run(double t, const std::vector<double>& y,
                      const std::vector<double>& k, std::vector<double>& ydot) {
  RMS_CHECK(y.size() == program_->species_count);
  RMS_CHECK(k.size() >= program_->rate_count);
  ydot.resize(program_->output_count != 0 ? program_->output_count
                                          : program_->species_count);
  run(t, y.data(), k.data(), ydot.data());
}

}  // namespace rms::vm
