#include "vm/interpreter.hpp"

#include <algorithm>

#include "support/assert.hpp"

// Threaded dispatch: GCC and Clang support computed goto, which removes the
// bounds check + jump-back-to-loop-head of a switch and gives the branch
// predictor one indirect-jump site per opcode instead of one shared site.
#if defined(__GNUC__) || defined(__clang__)
#define RMS_VM_THREADED_DISPATCH 1
#else
#define RMS_VM_THREADED_DISPATCH 0
#endif

namespace rms::vm {

void Interpreter::run(double t, const double* y, const double* k,
                      double* ydot, Scratch& scratch) const {
  scratch.prepare(*program_);
  double* regs = scratch.regs();
  const double* consts = program_->consts.data();
  const Instr* ip = program_->code.data();
  const Instr* const end = ip + program_->code.size();

#if RMS_VM_THREADED_DISPATCH
  // Table order must match the Op enumerator order exactly.
  static const void* const kDispatch[kOpCount] = {
      &&op_load_y,    &&op_load_k,   &&op_load_t,     &&op_load_const,
      &&op_add,       &&op_sub,      &&op_mul,        &&op_neg,
      &&op_store_out, &&op_mul_add,  &&op_mul_sub,    &&op_load_y_mul,
      &&op_load_k_mul, &&op_store_neg,
  };
#define RMS_VM_NEXT()                                   \
  do {                                                  \
    if (ip == end) return;                              \
    goto* kDispatch[static_cast<std::size_t>(ip->op)];  \
  } while (0)

  RMS_VM_NEXT();
op_load_y:
  regs[ip->dst] = y[ip->a];
  ++ip;
  RMS_VM_NEXT();
op_load_k:
  regs[ip->dst] = k[ip->a];
  ++ip;
  RMS_VM_NEXT();
op_load_t:
  regs[ip->dst] = t;
  ++ip;
  RMS_VM_NEXT();
op_load_const:
  regs[ip->dst] = consts[ip->a];
  ++ip;
  RMS_VM_NEXT();
op_add:
  regs[ip->dst] = regs[ip->a] + regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_sub:
  regs[ip->dst] = regs[ip->a] - regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_mul:
  regs[ip->dst] = regs[ip->a] * regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_neg:
  regs[ip->dst] = -regs[ip->a];
  ++ip;
  RMS_VM_NEXT();
op_store_out:
  ydot[ip->a] = ip->b == kNoReg ? 0.0 : regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_mul_add:
  regs[ip->dst] = regs[ip->a] * regs[ip->b] + regs[ip->c];
  ++ip;
  RMS_VM_NEXT();
op_mul_sub:
  regs[ip->dst] = regs[ip->c] - regs[ip->a] * regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_load_y_mul:
  regs[ip->dst] = y[ip->a] * regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_load_k_mul:
  regs[ip->dst] = k[ip->a] * regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
op_store_neg:
  ydot[ip->a] = -regs[ip->b];
  ++ip;
  RMS_VM_NEXT();
#undef RMS_VM_NEXT
#else
  for (; ip != end; ++ip) {
    switch (ip->op) {
      case Op::kLoadY:
        regs[ip->dst] = y[ip->a];
        break;
      case Op::kLoadK:
        regs[ip->dst] = k[ip->a];
        break;
      case Op::kLoadT:
        regs[ip->dst] = t;
        break;
      case Op::kLoadConst:
        regs[ip->dst] = consts[ip->a];
        break;
      case Op::kAdd:
        regs[ip->dst] = regs[ip->a] + regs[ip->b];
        break;
      case Op::kSub:
        regs[ip->dst] = regs[ip->a] - regs[ip->b];
        break;
      case Op::kMul:
        regs[ip->dst] = regs[ip->a] * regs[ip->b];
        break;
      case Op::kNeg:
        regs[ip->dst] = -regs[ip->a];
        break;
      case Op::kStoreOut:
        ydot[ip->a] = ip->b == kNoReg ? 0.0 : regs[ip->b];
        break;
      case Op::kMulAdd:
        regs[ip->dst] = regs[ip->a] * regs[ip->b] + regs[ip->c];
        break;
      case Op::kMulSub:
        regs[ip->dst] = regs[ip->c] - regs[ip->a] * regs[ip->b];
        break;
      case Op::kLoadYMul:
        regs[ip->dst] = y[ip->a] * regs[ip->b];
        break;
      case Op::kLoadKMul:
        regs[ip->dst] = k[ip->a] * regs[ip->b];
        break;
      case Op::kStoreNeg:
        ydot[ip->a] = -regs[ip->b];
        break;
    }
  }
#endif
}

namespace {

Scratch& thread_scratch() {
  static thread_local Scratch scratch;
  return scratch;
}

}  // namespace

void Interpreter::run(double t, const double* y, const double* k,
                      double* ydot) const {
  run(t, y, k, ydot, thread_scratch());
}

void Interpreter::run(double t, const std::vector<double>& y,
                      const std::vector<double>& k,
                      std::vector<double>& ydot) const {
  RMS_CHECK(y.size() == program_->species_count);
  RMS_CHECK(k.size() >= program_->rate_count);
  ydot.resize(program_->output_count != 0 ? program_->output_count
                                          : program_->species_count);
  run(t, y.data(), k.data(), ydot.data());
}

void Interpreter::run_lanes(double t, const double* ys, std::size_t y_stride,
                            const double* ks, std::size_t k_stride,
                            double* ydots, std::size_t out_stride,
                            std::size_t lanes, double* regs) const {
  // Lane-blocked SoA register file: regs[r * lanes + lane]. Every
  // instruction applies to all lanes before the next dispatch, so the
  // per-instruction overhead is paid once per chunk and the inner loops
  // are trivially vectorizable.
  const double* consts = program_->consts.data();
  const std::size_t L = lanes;
  for (const Instr& in : program_->code) {
    double* d = regs + in.dst * L;
    switch (in.op) {
      case Op::kLoadY: {
        const double* src = ys + in.a;
        for (std::size_t l = 0; l < L; ++l) d[l] = src[l * y_stride];
        break;
      }
      case Op::kLoadK: {
        const double* src = ks + in.a;
        for (std::size_t l = 0; l < L; ++l) d[l] = src[l * k_stride];
        break;
      }
      case Op::kLoadT:
        for (std::size_t l = 0; l < L; ++l) d[l] = t;
        break;
      case Op::kLoadConst: {
        const double v = consts[in.a];
        for (std::size_t l = 0; l < L; ++l) d[l] = v;
        break;
      }
      case Op::kAdd: {
        const double* a = regs + in.a * L;
        const double* b = regs + in.b * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = a[l] + b[l];
        break;
      }
      case Op::kSub: {
        const double* a = regs + in.a * L;
        const double* b = regs + in.b * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = a[l] - b[l];
        break;
      }
      case Op::kMul: {
        const double* a = regs + in.a * L;
        const double* b = regs + in.b * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = a[l] * b[l];
        break;
      }
      case Op::kNeg: {
        const double* a = regs + in.a * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = -a[l];
        break;
      }
      case Op::kStoreOut: {
        double* out = ydots + in.a;
        if (in.b == kNoReg) {
          for (std::size_t l = 0; l < L; ++l) out[l * out_stride] = 0.0;
        } else {
          const double* v = regs + in.b * L;
          for (std::size_t l = 0; l < L; ++l) out[l * out_stride] = v[l];
        }
        break;
      }
      case Op::kMulAdd: {
        const double* a = regs + in.a * L;
        const double* b = regs + in.b * L;
        const double* c = regs + in.c * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = a[l] * b[l] + c[l];
        break;
      }
      case Op::kMulSub: {
        const double* a = regs + in.a * L;
        const double* b = regs + in.b * L;
        const double* c = regs + in.c * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = c[l] - a[l] * b[l];
        break;
      }
      case Op::kLoadYMul: {
        const double* src = ys + in.a;
        const double* b = regs + in.b * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = src[l * y_stride] * b[l];
        break;
      }
      case Op::kLoadKMul: {
        const double* src = ks + in.a;
        const double* b = regs + in.b * L;
        for (std::size_t l = 0; l < L; ++l) d[l] = src[l * k_stride] * b[l];
        break;
      }
      case Op::kStoreNeg: {
        double* out = ydots + in.a;
        const double* v = regs + in.b * L;
        for (std::size_t l = 0; l < L; ++l) out[l * out_stride] = -v[l];
        break;
      }
    }
  }
}

void Interpreter::run_batch(double t, const double* ys, const double* ks,
                            double* ydots, std::size_t n,
                            Scratch& scratch) const {
  const std::size_t out_stride = program_->output_count != 0
                                     ? program_->output_count
                                     : program_->species_count;
  scratch.prepare(*program_, std::min(n, kBatchLanes));
  for (std::size_t base = 0; base < n; base += kBatchLanes) {
    const std::size_t lanes = std::min(kBatchLanes, n - base);
    run_lanes(t, ys + base * program_->species_count, program_->species_count,
              ks + base * program_->rate_count, program_->rate_count,
              ydots + base * out_stride, out_stride, lanes, scratch.regs());
  }
}

void Interpreter::run_batch_shared_k(double t, const double* ys,
                                     const double* k, double* ydots,
                                     std::size_t n, Scratch& scratch) const {
  const std::size_t out_stride = program_->output_count != 0
                                     ? program_->output_count
                                     : program_->species_count;
  scratch.prepare(*program_, std::min(n, kBatchLanes));
  for (std::size_t base = 0; base < n; base += kBatchLanes) {
    const std::size_t lanes = std::min(kBatchLanes, n - base);
    run_lanes(t, ys + base * program_->species_count, program_->species_count,
              k, /*k_stride=*/0, ydots + base * out_stride, out_stride, lanes,
              scratch.regs());
  }
}

}  // namespace rms::vm
