// Bytecode interpreter for ODE right-hand-side programs.
//
// The register file is allocated once and reused across calls — the ODE
// solver calls the RHS millions of times, so per-call allocation would
// dominate. Not thread-safe by design: each worker owns an Interpreter.
#pragma once

#include <vector>

#include "vm/program.hpp"

namespace rms::vm {

class Interpreter {
 public:
  explicit Interpreter(const Program& program);

  /// Evaluates ydot = f(t, y, k). Sizes must match the program's counts.
  void run(double t, const double* y, const double* k, double* ydot);

  /// Vector-friendly overload.
  void run(double t, const std::vector<double>& y, const std::vector<double>& k,
           std::vector<double>& ydot);

  [[nodiscard]] const Program& program() const { return *program_; }

 private:
  const Program* program_;
  std::vector<double> registers_;
};

}  // namespace rms::vm
