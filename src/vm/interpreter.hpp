// Bytecode interpreter for ODE right-hand-side programs.
//
// The interpreter itself is immutable after construction: run() is const
// and writes only to a Scratch register buffer, so one Interpreter (and the
// Program it points to) can be shared freely across MiniMpi ranks and
// estimator threads. Callers that care about the last nanosecond pass their
// own Scratch; the convenience overloads fall back to a thread_local one,
// which keeps the historical call sites both valid and data-race free.
//
// Dispatch is threaded (computed goto) on GCC/Clang with a portable switch
// fallback, and run_batch() evaluates n independent inputs in one pass over
// the tape — the register file becomes a lane-blocked SoA buffer so the
// per-instruction dispatch cost is amortized over every lane and the tape
// is streamed through cache exactly once per chunk.
#pragma once

#include <cstddef>
#include <vector>

#include "vm/program.hpp"

namespace rms::vm {

/// Caller-owned mutable state for Interpreter::run / run_batch. Reusable
/// across calls and across programs (buffers only ever grow). Not
/// thread-safe: one Scratch per thread.
class Scratch {
 public:
  /// Ensures capacity for `lanes` parallel evaluations of `program`.
  void prepare(const Program& program, std::size_t lanes = 1) {
    const std::size_t need = program.register_count * lanes;
    if (regs_.size() < need) regs_.resize(need);
  }

  [[nodiscard]] double* regs() { return regs_.data(); }

 private:
  std::vector<double> regs_;
};

class Interpreter {
 public:
  /// Number of batch lanes processed per pass over the tape: large enough
  /// to amortize dispatch, small enough that lane-blocked registers of a
  /// compacted program stay cache-resident.
  static constexpr std::size_t kBatchLanes = 16;

  explicit Interpreter(const Program& program) : program_(&program) {}

  /// Evaluates ydot = f(t, y, k) using caller-owned scratch registers.
  void run(double t, const double* y, const double* k, double* ydot,
           Scratch& scratch) const;

  /// Convenience overload using a thread_local Scratch.
  void run(double t, const double* y, const double* k, double* ydot) const;

  /// Vector-friendly overload (thread_local Scratch); resizes ydot.
  void run(double t, const std::vector<double>& y, const std::vector<double>& k,
           std::vector<double>& ydot) const;

  /// Batched evaluation: n independent inputs in one pass over the tape.
  /// Row-major lanes: ys[lane * species_count + i], ks[lane * rate_count
  /// + j], ydots[lane * output_count + i] (output_count falls back to
  /// species_count when zero, as in run()).
  void run_batch(double t, const double* ys, const double* ks, double* ydots,
                 std::size_t n, Scratch& scratch) const;

  /// Batched evaluation with one shared rate vector across all lanes — the
  /// finite-difference-Jacobian case, which perturbs y only.
  void run_batch_shared_k(double t, const double* ys, const double* k,
                          double* ydots, std::size_t n,
                          Scratch& scratch) const;

  [[nodiscard]] const Program& program() const { return *program_; }

 private:
  void run_lanes(double t, const double* ys, std::size_t y_stride,
                 const double* ks, std::size_t k_stride, double* ydots,
                 std::size_t out_stride, std::size_t lanes,
                 double* regs) const;

  const Program* program_;
};

}  // namespace rms::vm
