// Small string utilities shared by the RDL front end and data file I/O.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace rms::support {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on `sep`, trimming each piece; empty pieces are kept.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on runs of ASCII whitespace; empty pieces are dropped.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a double; returns false on malformed or trailing input.
bool parse_double(std::string_view s, double& out);

/// Parses a non-negative integer; returns false on malformed input.
bool parse_uint(std::string_view s, unsigned long& out);

/// printf-style formatting into a std::string.
std::string str_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rms::support
