// Wall-clock timing helpers used by the benchmarks and the dynamic load
// balancer (which records the solve time of each data file, paper §4.4).
#pragma once

#include <chrono>

namespace rms::support {

class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last restart().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double milliseconds() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rms::support
