#include "support/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace rms::support {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(trim(s.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_double(std::string_view s, double& out) {
  s = trim(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end == buf.c_str() + buf.size();
}

bool parse_uint(std::string_view s, unsigned long& out) {
  s = trim(s);
  if (s.empty()) return false;
  // strtoul silently wraps negative inputs; reject them explicitly.
  if (s[0] == '-' || s[0] == '+') return false;
  std::string buf(s);
  char* end = nullptr;
  out = std::strtoul(buf.c_str(), &end, 10);
  return end == buf.c_str() + buf.size();
}

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace rms::support
