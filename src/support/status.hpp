// Status / Expected<T>: error propagation without exceptions on hot paths.
//
// The front end (lexer/parser/semantic analysis) reports user-facing errors
// through Status values carrying a code, a message and an optional source
// location. Expected<T> couples a Status with a payload.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "support/assert.hpp"

namespace rms::support {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kParseError,
  kSemanticError,
  kNumericError,
  kInternal,
};

/// Human-readable name of a status code ("ok", "parse error", ...).
const char* status_code_name(StatusCode code);

/// A success-or-error result. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status ok() { return Status(); }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// Formats as "<code name>: <message>" (or "ok").
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status invalid_argument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status parse_error(std::string msg) {
  return Status(StatusCode::kParseError, std::move(msg));
}
inline Status semantic_error(std::string msg) {
  return Status(StatusCode::kSemanticError, std::move(msg));
}
inline Status not_found(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status numeric_error(std::string msg) {
  return Status(StatusCode::kNumericError, std::move(msg));
}
inline Status resource_exhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status internal_error(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}

/// Value-or-Status. Access to value() requires is_ok().
template <typename T>
class Expected {
 public:
  Expected(T value) : payload_(std::move(value)) {}     // NOLINT(google-explicit-constructor)
  Expected(Status status) : payload_(std::move(status)) {  // NOLINT
    RMS_CHECK_MSG(!std::get<Status>(payload_).is_ok(),
                  "Expected constructed from OK status without a value");
  }

  [[nodiscard]] bool is_ok() const {
    return std::holds_alternative<T>(payload_);
  }

  [[nodiscard]] Status status() const {
    if (is_ok()) return Status::ok();
    return std::get<Status>(payload_);
  }

  [[nodiscard]] const T& value() const& {
    RMS_CHECK_MSG(is_ok(), status_message_for_check());
    return std::get<T>(payload_);
  }
  [[nodiscard]] T& value() & {
    RMS_CHECK_MSG(is_ok(), status_message_for_check());
    return std::get<T>(payload_);
  }
  [[nodiscard]] T&& value() && {
    RMS_CHECK_MSG(is_ok(), status_message_for_check());
    return std::get<T>(std::move(payload_));
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }
  [[nodiscard]] T* operator->() { return &value(); }

 private:
  const char* status_message_for_check() const {
    return is_ok() ? "" : std::get<Status>(payload_).message().c_str();
  }
  std::variant<T, Status> payload_;
};

#define RMS_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::rms::support::Status _rms_status = (expr);    \
    if (!_rms_status.is_ok()) return _rms_status;   \
  } while (0)

}  // namespace rms::support
