#include "support/status.hpp"

namespace rms::support {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid argument";
    case StatusCode::kNotFound: return "not found";
    case StatusCode::kOutOfRange: return "out of range";
    case StatusCode::kFailedPrecondition: return "failed precondition";
    case StatusCode::kResourceExhausted: return "resource exhausted";
    case StatusCode::kParseError: return "parse error";
    case StatusCode::kSemanticError: return "semantic error";
    case StatusCode::kNumericError: return "numeric error";
    case StatusCode::kInternal: return "internal error";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rms::support
