// SmallVector<T, N>: vector with inline storage for the first N elements.
//
// Products in the generated ODEs typically have 2-4 factors; storing them
// inline avoids a heap allocation per term.
#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "support/assert.hpp"

namespace rms::support {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVector() = default;

  SmallVector(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) push_back(v);
  }

  SmallVector(const SmallVector& other) {
    reserve(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
  }

  SmallVector(SmallVector&& other) noexcept { move_from(std::move(other)); }

  SmallVector& operator=(const SmallVector& other) {
    if (this != &other) {
      clear();
      reserve(other.size_);
      for (std::size_t i = 0; i < other.size_; ++i) push_back(other[i]);
    }
    return *this;
  }

  SmallVector& operator=(SmallVector&& other) noexcept {
    if (this != &other) {
      destroy();
      move_from(std::move(other));
    }
    return *this;
  }

  ~SmallVector() { destroy(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) {
    RMS_DCHECK(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const {
    RMS_DCHECK(i < size_);
    return data()[i];
  }

  T* data() { return heap_ ? heap_ : inline_data(); }
  const T* data() const { return heap_ ? heap_ : inline_data(); }

  iterator begin() { return data(); }
  iterator end() { return data() + size_; }
  const_iterator begin() const { return data(); }
  const_iterator end() const { return data() + size_; }

  T& front() { return (*this)[0]; }
  const T& front() const { return (*this)[0]; }
  T& back() { return (*this)[size_ - 1]; }
  const T& back() const { return (*this)[size_ - 1]; }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (size_ == capacity_) reserve(capacity_ * 2);
    T* slot = data() + size_;
    ::new (static_cast<void*>(slot)) T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  void pop_back() {
    RMS_DCHECK(size_ > 0);
    data()[--size_].~T();
  }

  void clear() {
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) d[i].~T();
    size_ = 0;
  }

  void reserve(std::size_t cap) {
    if (cap <= capacity_) return;
    std::size_t new_cap = std::max(cap, capacity_ * 2);
    T* new_heap =
        static_cast<T*>(::operator new(new_cap * sizeof(T), std::align_val_t(alignof(T))));
    T* d = data();
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(new_heap + i)) T(std::move(d[i]));
      d[i].~T();
    }
    release_heap();
    heap_ = new_heap;
    capacity_ = new_cap;
  }

  void resize(std::size_t n) {
    if (n < size_) {
      T* d = data();
      for (std::size_t i = n; i < size_; ++i) d[i].~T();
      size_ = n;
    } else {
      reserve(n);
      while (size_ < n) emplace_back();
    }
  }

  void erase(iterator pos) {
    RMS_DCHECK(pos >= begin() && pos < end());
    std::move(pos + 1, end(), pos);
    pop_back();
  }

  friend bool operator==(const SmallVector& a, const SmallVector& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }

 private:
  T* inline_data() { return std::launder(reinterpret_cast<T*>(inline_storage_)); }
  const T* inline_data() const {
    return std::launder(reinterpret_cast<const T*>(inline_storage_));
  }

  void release_heap() {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t(alignof(T)));
      heap_ = nullptr;
    }
  }

  void destroy() {
    clear();
    release_heap();
    capacity_ = N;
  }

  void move_from(SmallVector&& other) {
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      size_ = other.size_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.size_ = 0;
      other.capacity_ = N;
    } else {
      heap_ = nullptr;
      capacity_ = N;
      size_ = 0;
      for (std::size_t i = 0; i < other.size_; ++i) {
        emplace_back(std::move(other.inline_data()[i]));
      }
      other.clear();
    }
  }

  alignas(T) std::byte inline_storage_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = N;
};

}  // namespace rms::support
