// Bump-pointer arena allocator.
//
// The equation generator and the algebraic optimizer allocate millions of
// short-lived term nodes whose lifetime ends together (when the optimized
// program has been emitted). An arena turns that churn into pointer bumps
// and one bulk free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

#include "support/assert.hpp"

namespace rms::support {

class Arena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 1 << 20;  // 1 MiB

  explicit Arena(std::size_t block_bytes = kDefaultBlockBytes)
      : block_bytes_(block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocates `bytes` with the given alignment. Never returns nullptr.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    RMS_DCHECK(align != 0 && (align & (align - 1)) == 0);
    std::uintptr_t p = (cursor_ + (align - 1)) & ~(std::uintptr_t(align) - 1);
    if (p + bytes > limit_) {
      grow(bytes + align);
      p = (cursor_ + (align - 1)) & ~(std::uintptr_t(align) - 1);
    }
    cursor_ = p + bytes;
    bytes_allocated_ += bytes;
    return reinterpret_cast<void*>(p);
  }

  /// Constructs a T in the arena. T must be trivially destructible, or the
  /// caller must accept that destructors never run.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    void* mem = allocate(sizeof(T), alignof(T));
    return ::new (mem) T(std::forward<Args>(args)...);
  }

  /// Allocates an uninitialized array of n Ts.
  template <typename T>
  T* allocate_array(std::size_t n) {
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Total payload bytes handed out (excludes block overhead/padding).
  [[nodiscard]] std::size_t bytes_allocated() const { return bytes_allocated_; }

  /// Total bytes reserved from the system.
  [[nodiscard]] std::size_t bytes_reserved() const { return bytes_reserved_; }

  /// Frees every block; all previously returned pointers become invalid.
  void reset() {
    blocks_.clear();
    cursor_ = limit_ = 0;
    bytes_allocated_ = 0;
    bytes_reserved_ = 0;
  }

 private:
  void grow(std::size_t min_bytes) {
    std::size_t size = block_bytes_;
    while (size < min_bytes) size *= 2;
    blocks_.push_back(std::make_unique<std::byte[]>(size));
    bytes_reserved_ += size;
    cursor_ = reinterpret_cast<std::uintptr_t>(blocks_.back().get());
    limit_ = cursor_ + size;
  }

  std::size_t block_bytes_;
  std::vector<std::unique_ptr<std::byte[]>> blocks_;
  std::uintptr_t cursor_ = 0;
  std::uintptr_t limit_ = 0;
  std::size_t bytes_allocated_ = 0;
  std::size_t bytes_reserved_ = 0;
};

/// std-compatible allocator backed by an Arena. deallocate() is a no-op —
/// everything is released at once when the arena is reset or destroyed, so
/// this fits containers whose lifetime matches the arena's (e.g. the CSE
/// builder's interning index maps: millions of small node allocations, one
/// bulk free). The arena must outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}

  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return arena_->allocate_array<T>(n);
  }
  void deallocate(T*, std::size_t) noexcept {}  // bulk-freed with the arena

  [[nodiscard]] Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace rms::support
