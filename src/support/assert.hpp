// Lightweight runtime-check macros used across the Reaction Modeling Suite.
//
// RMS_CHECK(cond)  - always-on invariant check; aborts with location info.
// RMS_DCHECK(cond) - debug-only check, compiled out in NDEBUG builds.
// RMS_UNREACHABLE  - marks impossible control flow.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace rms::support::detail {

[[noreturn]] inline void check_failed(const char* cond, const char* file,
                                      int line, const char* msg) {
  std::fprintf(stderr, "RMS_CHECK failed: %s at %s:%d%s%s\n", cond, file, line,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace rms::support::detail

#define RMS_CHECK(cond)                                                \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rms::support::detail::check_failed(#cond, __FILE__, __LINE__,  \
                                           "");                        \
    }                                                                  \
  } while (0)

#define RMS_CHECK_MSG(cond, msg)                                       \
  do {                                                                 \
    if (!(cond)) {                                                     \
      ::rms::support::detail::check_failed(#cond, __FILE__, __LINE__,  \
                                           (msg));                     \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define RMS_DCHECK(cond) ((void)0)
#else
#define RMS_DCHECK(cond) RMS_CHECK(cond)
#endif

#define RMS_UNREACHABLE()                                                     \
  ::rms::support::detail::check_failed("unreachable", __FILE__, __LINE__, "")
