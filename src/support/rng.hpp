// Deterministic pseudo-random number generation (SplitMix64 seeding +
// xoshiro256** core) for synthetic data and property tests. No global state;
// every user owns its generator, so parallel workers stay reproducible.
#pragma once

#include <cstdint>

namespace rms::support {

/// SplitMix64: used to expand a single seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x243F6A8885A308D3ull) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n) { return n ? (*this)() % n : 0; }

  /// Standard normal via Box–Muller (uses two uniforms per pair; the spare
  /// is cached).
  double normal();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace rms::support
