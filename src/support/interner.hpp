// String interner: maps strings to dense 32-bit symbols and back.
//
// Species names, rate-constant names and SMILES canonical codes are interned
// so the rest of the pipeline compares and hashes integers.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

#include "support/assert.hpp"

namespace rms::support {

/// Dense handle for an interned string. Value 0 is reserved as invalid.
class Symbol {
 public:
  Symbol() = default;
  explicit Symbol(std::uint32_t raw) : raw_(raw) {}

  [[nodiscard]] bool valid() const { return raw_ != 0; }
  [[nodiscard]] std::uint32_t raw() const { return raw_; }

  friend bool operator==(Symbol a, Symbol b) { return a.raw_ == b.raw_; }
  friend bool operator!=(Symbol a, Symbol b) { return a.raw_ != b.raw_; }
  friend bool operator<(Symbol a, Symbol b) { return a.raw_ < b.raw_; }

 private:
  std::uint32_t raw_ = 0;
};

class Interner {
 public:
  /// Returns the symbol for `s`, interning it if new.
  Symbol intern(std::string_view s) {
    auto it = map_.find(std::string(s));
    if (it != map_.end()) return it->second;
    strings_.emplace_back(s);
    Symbol sym(static_cast<std::uint32_t>(strings_.size()));  // 1-based
    map_.emplace(strings_.back(), sym);
    return sym;
  }

  /// Returns the symbol for `s` if already interned, else an invalid Symbol.
  [[nodiscard]] Symbol find(std::string_view s) const {
    auto it = map_.find(std::string(s));
    return it == map_.end() ? Symbol() : it->second;
  }

  [[nodiscard]] std::string_view text(Symbol sym) const {
    RMS_CHECK(sym.valid() && sym.raw() <= strings_.size());
    return strings_[sym.raw() - 1];
  }

  [[nodiscard]] std::size_t size() const { return strings_.size(); }

 private:
  std::deque<std::string> strings_;  // deque: stable references for the map keys
  std::unordered_map<std::string, Symbol> map_;
};

}  // namespace rms::support

template <>
struct std::hash<rms::support::Symbol> {
  std::size_t operator()(rms::support::Symbol s) const noexcept {
    return std::hash<std::uint32_t>()(s.raw());
  }
};
