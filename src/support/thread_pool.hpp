// Work-stealing thread pool with a deterministic parallel_for.
//
// The compile pipeline (network generation, per-equation DistOpt, Jacobian
// differentiation, bytecode emission) is dominated by embarrassingly
// parallel loops whose outputs must nevertheless be bit-identical to the
// serial order — species ids, interning order and register numbers all
// depend on commit order. The pool therefore provides *static chunking*
// (chunk boundaries depend only on the range and the pool size, never on
// timing) and callers commit results by index into pre-sized slots, so a
// run with N workers produces exactly the bytes a serial run produces.
//
// Scheduling inside one parallel_for is work-stealing: every participant
// (the workers plus the calling thread) owns a contiguous range of chunks;
// a participant that drains its own range steals single chunks from the
// tail of a victim's range. Stealing redistributes *which thread executes*
// a chunk, never *what* the chunk computes, so determinism is unaffected
// while load imbalance (e.g. one huge equation) is absorbed.
//
// Guarantees:
//   - every index in [begin, end) is executed exactly once;
//   - exceptions propagate: the exception of the lowest-numbered failing
//     chunk is rethrown on the calling thread after all chunks finish;
//   - nested parallel_for calls from inside a chunk body run serially
//     inline (no deadlock, same results);
//   - a pool with thread_count() == 0 (or a null pool passed to the free
//     helpers) runs everything inline on the caller — the serial path and
//     the parallel path are the same code.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rms::support {

class ThreadPool {
 public:
  /// Worker count for "use the machine": the RMS_THREADS environment
  /// variable when set, otherwise std::thread::hardware_concurrency().
  static std::size_t default_thread_count();

  /// Spawns `threads` workers. 0 means "no workers": every parallel_for
  /// runs inline on the calling thread. With `cap_to_hardware` (the
  /// default), the worker count is clamped to hardware_concurrency() - 1 —
  /// the caller participates in every parallel_for, so extra workers beyond
  /// that only add context switches; determinism means results are
  /// identical either way. Tests that need real cross-thread schedules
  /// regardless of the host's core count pass false.
  explicit ThreadPool(std::size_t threads, bool cap_to_hardware = true);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Calls body(i) for every i in [begin, end), distributing chunks of at
  /// least `grain` indices across the workers and the calling thread.
  /// Blocks until every index has been processed.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    const Body& body) const {
    run_chunked(begin, end, grain,
                [&body](std::size_t lo, std::size_t hi) {
                  for (std::size_t i = lo; i < hi; ++i) body(i);
                });
  }

  /// Range flavour: body(lo, hi) receives whole chunks. Useful when the
  /// body wants per-chunk scratch state.
  template <typename Body>
  void parallel_for_ranges(std::size_t begin, std::size_t end,
                           std::size_t grain, const Body& body) const {
    run_chunked(begin, end, grain, body);
  }

  /// Deterministic map: out[i] = fn(i). Results are committed by index into
  /// a pre-sized vector, so the output is identical to the serial loop.
  template <typename T, typename Fn>
  std::vector<T> parallel_map(std::size_t n, std::size_t grain,
                              const Fn& fn) const {
    std::vector<T> out(n);
    parallel_for(0, n, grain,
                 [&out, &fn](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  struct Job;

  /// Type-erased chunk execution: splits [begin, end) into chunks and runs
  /// chunk_body(lo, hi) for each, work-stealing across participants.
  void run_chunked(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>&
                       chunk_body) const;

  void worker_main(std::size_t self);
  static void run_job(Job& job, std::size_t participant);

  mutable std::mutex mutex_;
  mutable std::condition_variable job_ready_;
  mutable std::shared_ptr<Job> job_;          // null when idle
  mutable std::uint64_t job_epoch_ = 0;
  mutable std::mutex submit_mutex_;           // one parallel_for at a time
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// Serial-fallback helpers: a null pool runs inline on the caller. These are
/// what the pipeline stages call, so "no pool configured" and "pool with no
/// workers" and "N workers" all share one code path.
template <typename Body>
void parallel_for(const ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain, const Body& body) {
  if (pool != nullptr) {
    pool->parallel_for(begin, end, grain, body);
  } else {
    for (std::size_t i = begin; i < end; ++i) body(i);
  }
}

template <typename T, typename Fn>
std::vector<T> parallel_map(const ThreadPool* pool, std::size_t n,
                            std::size_t grain, const Fn& fn) {
  if (pool != nullptr) return pool->parallel_map<T>(n, grain, fn);
  std::vector<T> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = fn(i);
  return out;
}

}  // namespace rms::support
