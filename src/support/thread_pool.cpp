#include "support/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "support/assert.hpp"

namespace rms::support {

namespace {

/// True while the current thread is executing a chunk body; nested
/// parallel_for calls detect this and run inline.
thread_local bool tls_in_chunk = false;

}  // namespace

/// One parallel_for invocation. Chunks are identified by index; participant
/// p owns the contiguous range [owned[p].lo, owned[p].hi) encoded in a
/// packed 64-bit atomic (lo in the high word). Owners pop from lo, thieves
/// pop from hi, both by CAS, so every chunk is claimed exactly once.
struct ThreadPool::Job {
  static std::uint64_t pack(std::uint32_t lo, std::uint32_t hi) {
    return (static_cast<std::uint64_t>(lo) << 32) | hi;
  }
  static std::uint32_t lo_of(std::uint64_t v) {
    return static_cast<std::uint32_t>(v >> 32);
  }
  static std::uint32_t hi_of(std::uint64_t v) {
    return static_cast<std::uint32_t>(v);
  }

  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk_count = 0;
  const std::function<void(std::size_t, std::size_t)>* body = nullptr;
  std::vector<std::atomic<std::uint64_t>> owned;  // per participant
  std::vector<std::exception_ptr> errors;         // per chunk
  std::atomic<std::size_t> chunks_remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;

  /// Chunk c covers [begin + offset(c), begin + offset(c+1)): the first
  /// (items % chunk_count) chunks are one index larger. Pure arithmetic in
  /// (begin, end, chunk_count) — independent of scheduling.
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_range(
      std::size_t c) const {
    const std::size_t items = end - begin;
    const std::size_t base = items / chunk_count;
    const std::size_t extra = items % chunk_count;
    const std::size_t lo =
        begin + c * base + std::min<std::size_t>(c, extra);
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    return {lo, hi};
  }

  /// Claims one chunk from participant `victim`'s range: the owner takes
  /// from the front, thieves from the back. Returns false when empty.
  bool claim(std::size_t victim, bool is_owner, std::uint32_t& chunk) {
    std::atomic<std::uint64_t>& range = owned[victim];
    std::uint64_t cur = range.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t lo = lo_of(cur);
      const std::uint32_t hi = hi_of(cur);
      if (lo >= hi) return false;
      const std::uint64_t next =
          is_owner ? pack(lo + 1, hi) : pack(lo, hi - 1);
      if (range.compare_exchange_weak(cur, next, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
        chunk = is_owner ? lo : hi - 1;
        return true;
      }
    }
  }

  void run_chunk(std::uint32_t chunk) {
    tls_in_chunk = true;
    try {
      const auto [lo, hi] = chunk_range(chunk);
      (*body)(lo, hi);
    } catch (...) {
      errors[chunk] = std::current_exception();
    }
    tls_in_chunk = false;
    if (chunks_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk: wake the submitter. The lock orders the notify against
      // the submitter's predicate check.
      std::lock_guard<std::mutex> lock(done_mutex);
      done_cv.notify_all();
    }
  }
};

std::size_t ThreadPool::default_thread_count() {
  if (const char* env = std::getenv("RMS_THREADS")) {
    const long n = std::strtol(env, nullptr, 10);
    if (n >= 0) return static_cast<std::size_t>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads, bool cap_to_hardware) {
  if (cap_to_hardware) {
    // Oversubscription guard: the calling thread participates in every
    // parallel_for, so more than hw-1 workers cannot add parallelism — they
    // only add context switches and cache churn. Results never depend on the
    // worker count (static chunking), so the cap is invisible to callers.
    const unsigned hw = std::thread::hardware_concurrency();
    if (hw != 0) threads = std::min<std::size_t>(threads, hw - 1);
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  job_ready_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main(std::size_t self) {
  // Workers are participants 0..N-1; the submitter is participant N.
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      job_ready_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && job_epoch_ != seen_epoch);
      });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    run_job(*job, self);
  }
}

void ThreadPool::run_job(Job& job, std::size_t participant) {
  // Drain own range, then steal from victims in a deterministic scan order
  // (which only affects *who* runs a chunk, not what it computes).
  std::uint32_t chunk = 0;
  while (job.claim(participant, /*is_owner=*/true, chunk)) {
    job.run_chunk(chunk);
  }
  const std::size_t n = job.owned.size();
  for (std::size_t hops = 1; hops < n; ++hops) {
    const std::size_t victim = (participant + hops) % n;
    while (job.claim(victim, /*is_owner=*/false, chunk)) {
      job.run_chunk(chunk);
    }
  }
}

void ThreadPool::run_chunked(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& chunk_body) const {
  if (begin >= end) return;
  const std::size_t items = end - begin;
  if (grain == 0) grain = 1;

  // Serial paths: no workers, a trivially small range, or a nested call
  // from inside a chunk body.
  const std::size_t participants = workers_.size() + 1;
  std::size_t chunks = std::min(items / grain, participants * 4);
  if (workers_.empty() || chunks <= 1 || tls_in_chunk) {
    chunk_body(begin, end);
    return;
  }

  std::lock_guard<std::mutex> submit_lock(submit_mutex_);
  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->chunk_count = chunks;
  job->body = &chunk_body;
  job->errors.assign(chunks, nullptr);
  job->chunks_remaining.store(chunks, std::memory_order_relaxed);
  // Static split of chunks over participants; participant p owns
  // [p*chunks/participants, (p+1)*chunks/participants).
  job->owned = std::vector<std::atomic<std::uint64_t>>(participants);
  for (std::size_t p = 0; p < participants; ++p) {
    const std::uint32_t lo =
        static_cast<std::uint32_t>(p * chunks / participants);
    const std::uint32_t hi =
        static_cast<std::uint32_t>((p + 1) * chunks / participants);
    job->owned[p].store(Job::pack(lo, hi), std::memory_order_relaxed);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++job_epoch_;
  }
  job_ready_.notify_all();

  // The submitter participates as the last participant, then waits for
  // stragglers (chunks claimed by workers that are still running).
  run_job(*job, participants - 1);
  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&] {
      return job->chunks_remaining.load(std::memory_order_acquire) == 0;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_.reset();
  }

  // Deterministic exception propagation: lowest-numbered failing chunk.
  for (std::exception_ptr& e : job->errors) {
    if (e != nullptr) std::rethrow_exception(e);
  }
}

}  // namespace rms::support
