#include "support/rng.hpp"

#include <cmath>

namespace rms::support {

double Xoshiro256::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller transform; reject u1 == 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

}  // namespace rms::support
