// Rate Constant Information Processor (RCIP).
//
// The RCIP associates kinetic rate constants with reactions and — key for
// the downstream CSE — renames constants *by value*: two constants defined
// to the same value share one canonical slot, so the optimizer can treat the
// variable name as a proxy for the value (paper §3.3: "those variables with
// different names most likely to have the same value, i.e. the rate
// constants, have been renamed based on common values by the rate constant
// information processor").
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "network/generator.hpp"
#include "support/status.hpp"

namespace rms::rcip {

/// Optional temperature dependence of a canonical rate-constant slot:
/// k(T) = prefactor * exp(-activation_energy / (R*T)).
struct ArrheniusParams {
  double prefactor = 0.0;
  double activation_energy = 0.0;  ///< [J/mol]

  [[nodiscard]] double value_at(double temperature) const;
};

class RateTable {
 public:
  /// Number of canonical (value-distinct) rate constants.
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  /// Value of canonical constant slot i.
  [[nodiscard]] double value(std::uint32_t index) const {
    return values_[index];
  }
  [[nodiscard]] const std::vector<double>& values() const { return values_; }

  /// Representative name of canonical slot i (first declared name).
  [[nodiscard]] const std::string& canonical_name(std::uint32_t index) const {
    return canonical_names_[index];
  }

  /// Canonical slot for a declared constant name; false if unknown.
  bool index_of(const std::string& name, std::uint32_t& out) const;

  /// Registers a declared constant; constants with equal values share a slot.
  std::uint32_t add(const std::string& name, double value);

  /// Registers an Arrhenius-form constant (value reported at
  /// `reference_temperature`); constants with identical (A, Ea) share a slot.
  std::uint32_t add_arrhenius(const std::string& name,
                              const ArrheniusParams& params,
                              double reference_temperature);

  /// Arrhenius parameters of a slot, or nullptr for plain constants.
  [[nodiscard]] const ArrheniusParams* arrhenius(std::uint32_t index) const;

  /// The full value vector evaluated at a cure temperature: Arrhenius slots
  /// are recomputed, plain slots keep their stored value. This is what the
  /// objective function feeds the ODE program for an experiment "cured at"
  /// a given temperature.
  [[nodiscard]] std::vector<double> values_at(double temperature) const;

  /// Value of one slot at a temperature, with the (pre)factor replaced —
  /// the parameter-estimation hook: estimating an Arrhenius constant means
  /// estimating its temperature-independent prefactor.
  [[nodiscard]] double value_with_prefactor(std::uint32_t index,
                                            double prefactor,
                                            double temperature) const;

  /// Overwrites the value of a canonical slot (used by the parameter
  /// estimator, which varies the kinetic constants).
  void set_value(std::uint32_t index, double value) { values_[index] = value; }

  /// All declared names mapping to slot `index`.
  [[nodiscard]] std::vector<std::string> aliases(std::uint32_t index) const;

 private:
  std::vector<double> values_;
  std::vector<std::string> canonical_names_;
  /// Parallel to values_: prefactor == 0 means "plain constant".
  std::vector<ArrheniusParams> arrhenius_;
  std::unordered_map<std::string, std::uint32_t> index_by_name_;
  std::unordered_map<double, std::uint32_t> index_by_value_;
};

/// Builds the rate table for a model + network: every constant the network
/// references must be defined; unreferenced constants are still registered
/// (the estimator may bound them).
support::Expected<RateTable> process_rate_constants(
    const rdl::CompiledModel& model, const network::ReactionNetwork& network);

}  // namespace rms::rcip
