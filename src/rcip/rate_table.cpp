#include "rcip/rate_table.hpp"

#include <cmath>

#include "rdl/sema.hpp"
#include "support/assert.hpp"

namespace rms::rcip {

double ArrheniusParams::value_at(double temperature) const {
  RMS_CHECK_MSG(temperature > 0.0, "absolute temperature must be positive");
  return prefactor *
         std::exp(-activation_energy / (rdl::kGasConstant * temperature));
}

bool RateTable::index_of(const std::string& name, std::uint32_t& out) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) return false;
  out = it->second;
  return true;
}

std::uint32_t RateTable::add(const std::string& name, double value) {
  auto named = index_by_name_.find(name);
  if (named != index_by_name_.end()) return named->second;
  auto valued = index_by_value_.find(value);
  std::uint32_t index;
  if (valued != index_by_value_.end() &&
      arrhenius_[valued->second].prefactor == 0.0) {
    index = valued->second;  // value-based canonical renaming
  } else {
    index = static_cast<std::uint32_t>(values_.size());
    values_.push_back(value);
    canonical_names_.push_back(name);
    arrhenius_.push_back(ArrheniusParams{});
    index_by_value_.emplace(value, index);
  }
  index_by_name_.emplace(name, index);
  return index;
}

std::uint32_t RateTable::add_arrhenius(const std::string& name,
                                       const ArrheniusParams& params,
                                       double reference_temperature) {
  auto named = index_by_name_.find(name);
  if (named != index_by_name_.end()) return named->second;
  // Canonical merging for Arrhenius constants requires identical (A, Ea):
  // equal values at one temperature are not equal laws.
  for (std::uint32_t i = 0; i < arrhenius_.size(); ++i) {
    if (arrhenius_[i].prefactor == params.prefactor &&
        arrhenius_[i].activation_energy == params.activation_energy &&
        arrhenius_[i].prefactor != 0.0) {
      index_by_name_.emplace(name, i);
      return i;
    }
  }
  const std::uint32_t index = static_cast<std::uint32_t>(values_.size());
  values_.push_back(params.value_at(reference_temperature));
  canonical_names_.push_back(name);
  arrhenius_.push_back(params);
  index_by_name_.emplace(name, index);
  return index;
}

const ArrheniusParams* RateTable::arrhenius(std::uint32_t index) const {
  RMS_CHECK(index < arrhenius_.size());
  return arrhenius_[index].prefactor != 0.0 ? &arrhenius_[index] : nullptr;
}

std::vector<double> RateTable::values_at(double temperature) const {
  std::vector<double> out = values_;
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (arrhenius_[i].prefactor != 0.0) {
      out[i] = arrhenius_[i].value_at(temperature);
    }
  }
  return out;
}

double RateTable::value_with_prefactor(std::uint32_t index, double prefactor,
                                       double temperature) const {
  RMS_CHECK(index < values_.size());
  if (arrhenius_[index].prefactor == 0.0) return prefactor;
  ArrheniusParams adjusted = arrhenius_[index];
  adjusted.prefactor = prefactor;
  return adjusted.value_at(temperature);
}

std::vector<std::string> RateTable::aliases(std::uint32_t index) const {
  std::vector<std::string> out;
  for (const auto& [name, idx] : index_by_name_) {
    if (idx == index) out.push_back(name);
  }
  return out;
}

support::Expected<RateTable> process_rate_constants(
    const rdl::CompiledModel& model, const network::ReactionNetwork& network) {
  RateTable table;
  if (!model.constant_defs.empty()) {
    for (const rdl::ConstantDef& def : model.constant_defs) {
      if (def.is_arrhenius) {
        table.add_arrhenius(
            def.name,
            ArrheniusParams{def.prefactor, def.activation_energy},
            rdl::kReferenceTemperature);
      } else {
        table.add(def.name, def.value);
      }
    }
  } else {
    // Models assembled programmatically may fill only `constants`.
    for (const auto& [name, value] : model.constants) {
      table.add(name, value);
    }
  }
  for (const network::Reaction& r : network.reactions) {
    std::uint32_t index = 0;
    if (!table.index_of(r.rate_name, index)) {
      return support::semantic_error("reaction from rule '" + r.rule_name +
                                     "' references undefined rate constant '" +
                                     r.rate_name + "'");
    }
  }
  return table;
}

}  // namespace rms::rcip
