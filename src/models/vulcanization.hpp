// The vulcanization kinetic model (graph-chemistry path).
//
// An abstracted benzothiazolesulfenamide-accelerated sulfur vulcanization
// scheme, expressed in RDL and run through the full chemical compiler:
// accelerator polysulfides Ac-S_n-Ac attack rubber sites to form crosslink
// precursors Ac-S_n-R, which crosslink to R-S_n-R; polysulfide chains
// undergo radical scission (context-restricted to interior S-S bonds), and
// sulfur/rubber radicals abstract hydrogens and recombine. The accelerator
// residue is abstracted to an amine cap (N) and the rubber backbone site to
// the pseudo-element R, keeping molecules small while preserving the
// variant-family structure the paper's compiler exploits.
//
// build_vulcanization_model() runs the whole pipeline (RDL -> network ->
// RCIP -> ODEs -> optimizer -> bytecode) and returns every intermediate.
#pragma once

#include <string>

#include "codegen/bytecode_emitter.hpp"
#include "network/generator.hpp"
#include "odegen/equation_table.hpp"
#include "opt/pipeline.hpp"
#include "rcip/rate_table.hpp"
#include "rdl/sema.hpp"
#include "support/status.hpp"
#include "vm/program.hpp"

namespace rms::models {

struct VulcanizationConfig {
  /// Maximum polysulfide chain length (the variant range of every family).
  int max_chain_length = 4;
  /// Initial concentrations.
  double accelerator_init = 0.05;
  double sulfur_init = 0.3;
  double rubber_init = 1.0;
  /// Base kinetic constants (scaled presets for a realistic cure curve).
  double k_attack = 2.0;     ///< accelerator attacks a rubber site
  double k_scission = 0.5;   ///< interior S-S homolysis
  double k_abstract = 4.0;   ///< thiyl radical abstracts rubber H
  double k_combine = 8.0;    ///< S radical + R radical recombination
};

/// Emits the RDL source for the configuration.
std::string vulcanization_rdl_source(const VulcanizationConfig& config);

/// Cross-cutting pipeline configuration: one worker pool threaded through
/// every parallel stage (network generation, DistOpt, emission) and the
/// optimizer's own knobs. Defaults reproduce the serial full pipeline.
struct PipelineOptions {
  /// Worker pool; null runs every stage serially. Results are identical
  /// either way — parallel stages commit in deterministic order.
  const support::ThreadPool* pool = nullptr;
  /// Optimizer configuration. Its `pool` and `timings` fields are
  /// overwritten from this struct / the BuiltModel being filled.
  opt::OptimizerOptions optimizer = opt::OptimizerOptions::full();
  /// Also build the Table 1 reference artifacts: the raw (uncombined)
  /// equation table, the unoptimized bytecode program, and the "before"
  /// operation counts. Executing a model needs none of them, so callers
  /// that only want the optimized program (rmsc --run, the estimator,
  /// bench_compile's optimized mode) can skip roughly a third of the
  /// compile by turning this off. BuiltModel::odes_raw and
  /// program_unoptimized are left empty, and report.before holds the
  /// simplified-table counts instead of the raw-table ones.
  bool build_reference_baseline = true;
  /// Fill BuiltModel::report (operation counts before/after optimization,
  /// temp count, distinct-equation count). The counts walk every equation
  /// and every interned entry, so timing-sensitive callers (bench_compile's
  /// measured repeats) turn this off; the report is then left default.
  bool collect_report = true;
};

/// Everything the pipeline produces for one model.
struct BuiltModel {
  rdl::CompiledModel model;
  network::ReactionNetwork network;
  rcip::RateTable rates;
  odegen::GeneratedOdes odes;            ///< with §3.1 simplification
  odegen::GeneratedOdes odes_raw;        ///< without (baseline)
  opt::OptimizedSystem optimized;
  opt::OptimizationReport report;
  opt::PhaseTimings timings;             ///< wall time per compile phase
  vm::Program program_unoptimized;
  vm::Program program_optimized;

  [[nodiscard]] std::size_t equation_count() const { return odes.table.size(); }
};

/// Runs RDL -> network -> RCIP -> equations -> optimizer -> bytecode.
support::Expected<BuiltModel> build_vulcanization_model(
    const VulcanizationConfig& config,
    const network::GeneratorOptions& generator_options = {},
    const PipelineOptions& pipeline = {});

/// Pipeline helper shared with the synthetic test cases: equations through
/// optimizer and both code paths.
support::Status finish_pipeline(BuiltModel& built,
                                const PipelineOptions& pipeline = {});

}  // namespace rms::models
