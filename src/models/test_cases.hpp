// The five benchmark test cases (paper §5.1, Table 1).
//
// The paper's test cases are five vulcanization kinetic models of growing
// size — 450 / 10,000 / 24,500 / 125,000 / 250,000 equations — that share
// the same 10 distinct kinetic parameters and differ in how many molecule
// variants the compact RDL families expand into. We reproduce that scaling
// with a combinatorial network builder: the species are the accelerator
// polysulfides A(n), crosslink precursors B(n,v) and crosslinks C(n,v) for
// chain lengths n = 1..N and formulation/site variants v = 1..V, plus the
// hub species S8, AcH and RH(v). The reaction families (initiation, sulfur
// insertion, rubber attack, crosslinking, desulfuration, exchange,
// degradation) use exactly 10 rate constants and mirror the structure the
// graph-chemistry path produces, so the optimizer sees the same kind of
// redundancy — shared mass-action products and long cross-equation sums —
// at any requested scale. (Building 250,000 molecular graphs would add
// nothing; the ODE pipeline consumes species identities. The chemistry
// itself is validated on the graph path in models/vulcanization.)
#pragma once

#include <cstddef>
#include <string>

#include "models/vulcanization.hpp"
#include "network/generator.hpp"
#include "support/status.hpp"

namespace rms::models {

struct SyntheticNetworkConfig {
  int chain_lengths = 8;  ///< N
  int variants = 18;      ///< V
};

/// Builds the synthetic vulcanization reaction network (species and
/// reactions only; 10 rate constants named k1..k10).
network::ReactionNetwork synthetic_vulcanization_network(
    const SyntheticNetworkConfig& config);

/// The 10 kinetic parameters shared by all test cases.
rcip::RateTable test_case_rate_table();

/// Expected species count for a configuration: 3*N*V + V + 2.
std::size_t synthetic_species_count(const SyntheticNetworkConfig& config);

struct TestCaseSpec {
  const char* name;
  SyntheticNetworkConfig paper_scale;   ///< matches the paper's equation count
  std::size_t paper_equations;          ///< Table 1 row 1
  std::size_t paper_multiplies;         ///< Table 1: unoptimized "*"
  std::size_t paper_add_subs;           ///< Table 1: unoptimized "+ and -"
  double paper_time_unoptimized;        ///< seconds (Table 1), 0 = failed
  double paper_time_optimized;          ///< seconds (Table 1)
};

inline constexpr int kTestCaseCount = 5;

/// Table 1 metadata for test case 1..5.
const TestCaseSpec& test_case_spec(int index);

/// Configuration scaled to roughly `scale` times the paper's equation count
/// (variants shrink first; chain lengths only for very small scales).
SyntheticNetworkConfig scaled_config(int index, double scale);

/// Builds the full pipeline artifacts for a synthetic test case. Pass a
/// PipelineOptions with a pool to run the parallel compile pipeline; the
/// produced programs are bit-identical to a serial build.
support::Expected<BuiltModel> build_test_case(
    const SyntheticNetworkConfig& config, const PipelineOptions& pipeline = {});

}  // namespace rms::models
