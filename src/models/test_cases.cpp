#include "models/test_cases.hpp"

#include <algorithm>
#include <cmath>

#include "support/assert.hpp"
#include "support/strings.hpp"

namespace rms::models {

namespace {

using network::Reaction;
using network::ReactionNetwork;
using network::SpeciesId;

/// The 10 kinetic parameters (paper §5.1: "the same 10 distinct kinetic
/// parameters" across all five test cases).
constexpr double kRateValues[10] = {
    2.0,    // k1  initiation: S8 + AcH -> A(1)
    1.5,    // k2  sulfur insertion: S8 + A(n) -> A(n+1)
    3.0,    // k3  rubber attack: A(n) + RH -> B(n) + AcH
    4.0,    // k4  crosslinking route 0: Zn + B(n) + RH -> C(n,v) + AcH
    0.25,   // k5  accelerator desulfuration: A(n) -> A(n-1) + S8
    0.20,   // k6  precursor desulfuration: B(n) -> B(n-1) + S8
    3.5,    // k7  crosslinking route 1: Zn + B(n+1) + RH -> C(n,v) + AcH + S8
    2.5,    // k8  crosslinking route 2: A(n) + B(n) -> C(n,v) + 2 AcH
    0.05,   // k9  positional ring walk: C(n,v) -> C(n,v+1)
    0.40,   // k10 precursor reversion: B(n) -> A(n) + RH
};

Reaction make_reaction(std::initializer_list<SpeciesId> reactants,
                       std::initializer_list<SpeciesId> products,
                       const char* rate) {
  Reaction r;
  for (SpeciesId id : reactants) r.reactants.push_back(id);
  for (SpeciesId id : products) r.products.push_back(id);
  r.rate_name = rate;
  r.rule_name = rate;
  return r;
}

}  // namespace

std::size_t synthetic_species_count(const SyntheticNetworkConfig& config) {
  // S8 + AcH + RH + Zn + A(n) + B(n) + C(n,v).
  const std::size_t n = config.chain_lengths;
  const std::size_t v = config.variants;
  return n * v + 2u * n + 4u;
}

rcip::RateTable test_case_rate_table() {
  rcip::RateTable table;
  for (int i = 0; i < 10; ++i) {
    table.add(support::str_format("k%d", i + 1), kRateValues[i]);
  }
  return table;
}

// The network mirrors the structure the paper's compiler sees on the real
// vulcanization models:
//   - a small variant-free reactive core (sulfur donor S8, amine AcH,
//     rubber sites RH, zinc activator Zn, accelerator polysulfides A(n)
//     and crosslink precursors B(n)) with reversible ladder chemistry;
//   - a large block of positional crosslink isomers C(n,v): every (n,v)
//     isomer is produced by a v-dependent SUBSET of three catalytic routes
//     whose rate terms depend only on n — so the expensive products
//     (k*Zn*B*RH, ...) are shared by whole columns of equations, which is
//     exactly the redundancy the §3 optimizations remove;
//   - a per-isomer positional ring walk C(n,v) -> C(n,v+1) that keeps each
//     isomer's equation distinct (irreducible additions), bounding how far
//     the add/sub count can drop — the paper's adds also fall far less than
//     its multiplies (20.6% vs 1.35% remaining).
ReactionNetwork synthetic_vulcanization_network(
    const SyntheticNetworkConfig& config) {
  const int n_max = config.chain_lengths;
  const int v_max = config.variants;
  RMS_CHECK(n_max >= 1 && v_max >= 1);

  ReactionNetwork net;
  const SpeciesId s8 = net.species.add_symbolic("S8");
  const SpeciesId ach = net.species.add_symbolic("AcH");
  const SpeciesId rh = net.species.add_symbolic("RH");
  const SpeciesId zn = net.species.add_symbolic("Zn");
  net.species.entry(s8).init_concentration = 0.3;
  net.species.entry(ach).init_concentration = 0.05;
  net.species.entry(rh).init_concentration = 1.0;
  net.species.entry(zn).init_concentration = 0.02;
  for (SpeciesId id : {s8, ach, rh, zn}) net.species.entry(id).seed = true;

  std::vector<SpeciesId> a(n_max);
  std::vector<SpeciesId> b(n_max);
  for (int n = 0; n < n_max; ++n) {
    a[n] = net.species.add_symbolic(support::str_format("A_%d", n + 1));
    b[n] = net.species.add_symbolic(support::str_format("B_%d", n + 1));
  }
  std::vector<std::vector<SpeciesId>> c(n_max, std::vector<SpeciesId>(v_max));
  for (int n = 0; n < n_max; ++n) {
    for (int v = 0; v < v_max; ++v) {
      c[n][v] = net.species.add_symbolic(
          support::str_format("C_%d_%d", n + 1, v + 1));
    }
  }

  auto& reactions = net.reactions;
  // ---- Core chemistry. ----
  reactions.push_back(make_reaction({s8, ach}, {a[0]}, "k1"));
  for (int n = 0; n < n_max; ++n) {
    if (n + 1 < n_max) {
      reactions.push_back(make_reaction({s8, a[n]}, {a[n + 1]}, "k2"));
    }
    reactions.push_back(make_reaction({a[n], rh}, {b[n], ach}, "k3"));
    if (n > 0) {
      reactions.push_back(make_reaction({a[n]}, {a[n - 1], s8}, "k5"));
      reactions.push_back(make_reaction({b[n]}, {b[n - 1], s8}, "k6"));
    }
    reactions.push_back(make_reaction({b[n]}, {a[n], rh}, "k10"));
  }

  // ---- Crosslink isomer block. ----
  for (int n = 0; n < n_max; ++n) {
    const SpeciesId b_next = b[std::min(n + 1, n_max - 1)];
    for (int v = 0; v < v_max; ++v) {
      // Route subset: the low three bits of (v mod 7) + 1 are always
      // non-empty; positional sites differ in which attack routes reach
      // them.
      const int mask = (v % 7) + 1;
      const SpeciesId c_nv = c[n][v];
      if ((mask & 1) != 0) {
        reactions.push_back(
            make_reaction({zn, b[n], rh}, {c_nv, ach, zn}, "k4"));
      }
      if ((mask & 2) != 0) {
        reactions.push_back(
            make_reaction({zn, b_next, rh}, {c_nv, ach, s8, zn}, "k7"));
      }
      if ((mask & 4) != 0) {
        reactions.push_back(
            make_reaction({a[n], b[n]}, {c_nv, ach, ach}, "k8"));
      }
      // Positional ring walk (unique per isomer).
      reactions.push_back(
          make_reaction({c_nv}, {c[n][(v + 1) % v_max]}, "k9"));
    }
  }
  return net;
}

const TestCaseSpec& test_case_spec(int index) {
  // Paper Table 1 values (sizes, unoptimized op counts, execution times;
  // 0 marks the "compiler error" cells). The paper-scale configurations
  // land within a fraction of a percent of the paper's equation counts.
  static const TestCaseSpec specs[kTestCaseCount] = {
      {"TC1", {8, 54}, 450, 2670, 1770, 924.0, 824.0},
      {"TC2", {16, 623}, 10000, 85500, 36600, 4290.0, 2500.0},
      {"TC3", {25, 978}, 24500, 229000, 94800, 7480.0, 4240.0},
      {"TC4", {40, 3123}, 125000, 1320000, 520000, 42800.0, 8130.0},
      {"TC5", {50, 4998}, 250000, 2400000, 974000, 0.0, 15459.0},
  };
  RMS_CHECK(index >= 1 && index <= kTestCaseCount);
  return specs[index - 1];
}

SyntheticNetworkConfig scaled_config(int index, double scale) {
  const TestCaseSpec& spec = test_case_spec(index);
  SyntheticNetworkConfig config = spec.paper_scale;
  if (scale >= 1.0) return config;
  const double target_species =
      std::max(16.0, scale * static_cast<double>(spec.paper_equations));
  auto variants_for = [&](int n) {
    return std::max(
        7, static_cast<int>(std::lround((target_species - 2 * n - 4) / n)));
  };
  config.variants = variants_for(config.chain_lengths);
  while (static_cast<double>(synthetic_species_count(config)) >
             target_species * 1.5 &&
         config.chain_lengths > 2) {
    config.chain_lengths /= 2;
    config.variants = variants_for(config.chain_lengths);
  }
  return config;
}

support::Expected<BuiltModel> build_test_case(
    const SyntheticNetworkConfig& config, const PipelineOptions& pipeline) {
  BuiltModel built;
  {
    opt::PhaseTimer timer(&built.timings, "network");
    built.network = synthetic_vulcanization_network(config);
    built.rates = test_case_rate_table();
  }

  {
    opt::PhaseTimer timer(&built.timings, "odegen");
    auto odes = odegen::generate_odes(built.network, built.rates,
                                      odegen::OdeGenOptions{true});
    if (!odes.is_ok()) return odes.status();
    built.odes = std::move(odes).value();
  }

  if (pipeline.build_reference_baseline) {
    opt::PhaseTimer timer(&built.timings, "odegen_raw");
    auto raw = odegen::generate_odes(built.network, built.rates,
                                     odegen::OdeGenOptions{false});
    if (!raw.is_ok()) return raw.status();
    built.odes_raw = std::move(raw).value();
  }

  RMS_RETURN_IF_ERROR(finish_pipeline(built, pipeline));
  return built;
}

}  // namespace rms::models
