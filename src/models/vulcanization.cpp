#include "models/vulcanization.hpp"

#include "support/strings.hpp"
#include "vm/fuse.hpp"

namespace rms::models {

std::string vulcanization_rdl_source(const VulcanizationConfig& config) {
  const int n = config.max_chain_length;
  std::string src = support::str_format(
      "# Benzothiazolesulfenamide-accelerated sulfur vulcanization\n"
      "# (abstracted): Ac caps are amine stubs (N), rubber sites are the\n"
      "# pseudo-element R. Chain-length variant families 1..%d.\n"
      "\n"
      "species AcSAc(n = 1..%d) = \"NS{n}N\";      # accelerator polysulfide\n"
      "species AcSR(n = 1..%d)  = \"NS{n}[RH3]\";  # crosslink precursor\n"
      "species RSR(n = 1..%d)   = \"[RH3]S{n}[RH3]\"; # crosslink\n"
      "species AcH = \"N\";                        # released amine\n"
      "species RH  = \"[RH4]\";                    # rubber site\n"
      "\n"
      "init AcSAc_%d = %.9g;\n"
      "init RH = %.9g;\n",
      n, n, n, n, n, config.accelerator_init, config.rubber_init);

  src += support::str_format(
      "\n"
      "const k_attack   = %.9g;\n"
      "const k_scission = %.9g;\n"
      "const k_abstract = %.9g;\n"
      "const k_combine  = %.9g;\n",
      config.k_attack, config.k_scission, config.k_abstract, config.k_combine);

  src +=
      "\n"
      "# Accelerator chemistry: an amine cap leaves the chain and the freed\n"
      "# sulfur end bonds to a rubber site (works on AcSAc -> AcSR and on\n"
      "# AcSR -> RSR: the pattern is local to the N-S end). The h >= 4\n"
      "# context condition restricts the attack to pristine rubber sites —\n"
      "# already-crosslinked sites (<= 3 hydrogens) are spared, which is\n"
      "# both the dominant chemistry and what keeps the reaction network\n"
      "# finite (no unbounded branching).\n"
      "rule attach_rubber {\n"
      "  site nc: N;\n"
      "  site s: S;\n"
      "  bond nc s 1;\n"
      "  site r: R where h >= 4;\n"
      "  disconnect nc s;\n"
      "  remove_h r;\n"
      "  connect s r;\n"
      "  add_h nc;\n"
      "  rate k_attack;\n"
      "}\n"
      "\n"
      "# Interior S-S homolysis (context-sensitive: one endpoint must sit at\n"
      "# least one sulfur away from the chain end — the paper's chain-depth\n"
      "# condition — so monosulfidic and disulfidic links are spared).\n"
      "rule chain_scission {\n"
      "  site a: S where depth >= 1;\n"
      "  site b: S;\n"
      "  bond a b 1;\n"
      "  disconnect a b;\n"
      "  rate k_scission;\n"
      "}\n"
      "\n"
      "# Thiyl radical abstracts a hydrogen from a pristine rubber site.\n"
      "rule h_abstraction {\n"
      "  site s: S where radical;\n"
      "  site r: R where h >= 4;\n"
      "  remove_h r;\n"
      "  add_h s;\n"
      "  rate k_abstract;\n"
      "}\n"
      "\n"
      "# Sulfur radical + rubber radical recombination (crosslinking step;\n"
      "# sulfur-sulfur recombination is excluded to keep chain lengths\n"
      "# bounded by the declared variants, matching the declared families).\n"
      "rule recombination {\n"
      "  site s: S where radical;\n"
      "  site r: R where radical;\n"
      "  connect s r;\n"
      "  rate k_combine;\n"
      "}\n";
  return src;
}

support::Status finish_pipeline(BuiltModel& built,
                                const PipelineOptions& pipeline) {
  opt::OptimizerOptions optimizer = pipeline.optimizer;
  optimizer.pool = pipeline.pool;
  optimizer.timings = &built.timings;
  built.optimized =
      opt::optimize(built.odes.table, built.odes.table.size(),
                    built.rates.size(), optimizer,
                    pipeline.collect_report ? &built.report : nullptr);
  // The unoptimized baseline comes from the raw (uncombined) equations —
  // matching the paper's "without algebraic/CSE optimizations" rows.
  if (pipeline.build_reference_baseline) {
    opt::PhaseTimer timer(&built.timings, "emit_unopt");
    built.program_unoptimized = codegen::emit_unoptimized(
        built.odes_raw.table, built.odes_raw.table.size(), built.rates.size());
    timer.stop();
    if (pipeline.collect_report) {
      built.report.before.multiplies = built.odes_raw.table.multiply_count();
      built.report.before.add_subs = built.odes_raw.table.add_sub_count();
    }
  }
  // The optimized program additionally goes through the VM execution
  // pipeline (fuse superinstructions, compact registers): same arithmetic
  // and outputs, far fewer dispatches and a cache-resident register file.
  // The unoptimized baseline is left in raw SSA form on purpose — it is the
  // input the reference "commercial compiler" backend model consumes.
  opt::PhaseTimer emit_timer(&built.timings, "emit");
  vm::Program raw_program =
      codegen::emit_optimized(built.optimized, pipeline.pool);
  emit_timer.stop();
  opt::PhaseTimer fuse_timer(&built.timings, "fuse");
  built.program_optimized = vm::fuse_and_compact(raw_program);
  fuse_timer.stop();
  return support::Status::ok();
}

support::Expected<BuiltModel> build_vulcanization_model(
    const VulcanizationConfig& config,
    const network::GeneratorOptions& generator_options,
    const PipelineOptions& pipeline) {
  BuiltModel built;
  opt::PhaseTimer parse_timer(&built.timings, "parse");
  auto model = rdl::compile_rdl(vulcanization_rdl_source(config));
  if (!model.is_ok()) return model.status();
  built.model = std::move(model).value();
  parse_timer.stop();

  // The generator honours its own pool field; default it to the pipeline's.
  network::GeneratorOptions gen_options = generator_options;
  if (gen_options.pool == nullptr) gen_options.pool = pipeline.pool;
  opt::PhaseTimer network_timer(&built.timings, "network");
  auto network = network::generate_network(built.model, gen_options);
  if (!network.is_ok()) return network.status();
  built.network = std::move(network).value();
  network_timer.stop();

  opt::PhaseTimer rates_timer(&built.timings, "rates");
  auto rates = rcip::process_rate_constants(built.model, built.network);
  if (!rates.is_ok()) return rates.status();
  built.rates = std::move(rates).value();
  rates_timer.stop();

  opt::PhaseTimer odegen_timer(&built.timings, "odegen");
  auto odes = odegen::generate_odes(built.network, built.rates,
                                    odegen::OdeGenOptions{true});
  if (!odes.is_ok()) return odes.status();
  built.odes = std::move(odes).value();
  odegen_timer.stop();

  if (pipeline.build_reference_baseline) {
    opt::PhaseTimer raw_timer(&built.timings, "odegen_raw");
    auto raw = odegen::generate_odes(built.network, built.rates,
                                     odegen::OdeGenOptions{false});
    if (!raw.is_ok()) return raw.status();
    built.odes_raw = std::move(raw).value();
  }

  RMS_RETURN_IF_ERROR(finish_pipeline(built, pipeline));
  return built;
}

}  // namespace rms::models
