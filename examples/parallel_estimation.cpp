// Parallel objective evaluation (paper §4.4, Fig. 9) demonstrated on the
// MiniMpi runtime: 16 experimental data files distributed over ranks, the
// per-file solve times recorded, and the dynamic load balancer rebuilding
// the schedule for the next call. Ends with the virtual-cluster speedup
// table for the measured times.
//
// Run: ./build/examples/parallel_estimation
#include <cstdio>

#include "data/synthetic.hpp"
#include "support/strings.hpp"
#include "estimator/objective.hpp"
#include "models/test_cases.hpp"
#include "parallel/sim_cluster.hpp"
#include "support/rng.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace rms;

  auto built = models::build_test_case(models::scaled_config(1, 0.5));
  if (!built.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  const std::size_t n = built->equation_count();
  std::printf("Model: %zu equations.\n", n);

  data::Observable observable;
  for (std::size_t i = 0; i < n; ++i) {
    if (built->odes.species_names[i].rfind("C_", 0) == 0) {
      observable.weighted_species.emplace_back(i, 1.0);
    }
  }

  // 16 files with deliberately unequal sizes -> unequal solve times.
  const std::vector<double> rates = built->rates.values();
  vm::Interpreter rhs(built->program_optimized);
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             rhs.run(t, y, rates.data(), ydot);
                           }};
  support::Xoshiro256 rng(5);
  std::vector<estimator::Experiment> experiments;
  for (int f = 0; f < 16; ++f) {
    estimator::Experiment e;
    e.initial_state = built->odes.init_concentrations;
    e.initial_state[0] *= rng.uniform(0.7, 1.4);
    data::SyntheticOptions options;
    options.t_end = rng.uniform(2.0, 8.0);
    options.record_count = 400 + 400 * static_cast<std::size_t>(rng.below(8));
    auto data = data::synthesize_experiment(
        system, e.initial_state, observable, options,
        support::str_format("file-%02d", f));
    if (!data.is_ok()) {
      std::fprintf(stderr, "synthesis failed: %s\n",
                   data.status().to_string().c_str());
      return 1;
    }
    e.data = std::move(data).value();
    experiments.push_back(std::move(e));
  }

  std::vector<std::uint32_t> slots;
  for (std::uint32_t s = 0; s < built->rates.size(); ++s) slots.push_back(s);
  linalg::Vector x(rates.begin(), rates.end());

  // Two objective calls on 4 MiniMpi ranks with dynamic load balancing:
  // call 1 uses the block schedule, call 2 the LPT schedule built from the
  // times call 1 recorded.
  estimator::ObjectiveOptions options;
  options.ranks = 4;
  options.dynamic_load_balancing = true;
  estimator::ObjectiveFunction objective(built->program_optimized, observable,
                                         experiments, slots, rates, options);
  linalg::Vector residuals;
  for (int call = 1; call <= 2; ++call) {
    auto status = objective.evaluate(x, residuals);
    if (!status.is_ok()) {
      std::fprintf(stderr, "objective failed: %s\n",
                   status.to_string().c_str());
      return 1;
    }
    std::printf("\nObjective call %d (%s schedule):\n  assignment:", call,
                call == 1 ? "block" : "dynamic LPT");
    for (int r : objective.last_assignment()) std::printf(" %d", r);
    std::printf("\n  file times (s):");
    for (double t : objective.last_file_times()) std::printf(" %.3f", t);
    std::printf("\n");
  }

  // Virtual-cluster speedups from the measured times.
  const std::vector<double>& times = objective.last_file_times();
  parallel::SimCluster cluster;
  std::printf("\n%6s | %10s | %10s\n", "nodes", "speedup", "w/ dyn. LB");
  for (int nodes : {1, 2, 4, 8, 16}) {
    std::printf("%6d | %10.2f | %10.2f\n", nodes,
                cluster.run_block(times, nodes).speedup,
                cluster.run_lpt(times, nodes).speedup);
  }

  // The same files through the throughput path: a persistent 4-worker pool
  // with warm-started solves. The second call reuses the first call's
  // per-file step/order profiles, and the aggregated Adams-Gear statistics
  // make the savings visible (see docs/estimator.md).
  estimator::ObjectiveOptions pooled_options = options;
  pooled_options.ranks = 1;
  pooled_options.pool_workers = 4;
  pooled_options.warm_start = true;
  estimator::ObjectiveFunction pooled(built->program_optimized, observable,
                                      experiments, slots, rates,
                                      pooled_options);
  for (int call = 1; call <= 2; ++call) {
    auto status = pooled.evaluate(x, residuals);
    if (!status.is_ok()) {
      std::fprintf(stderr, "pooled objective failed: %s\n",
                   status.to_string().c_str());
      return 1;
    }
  }
  const estimator::SolverStats& sstats = pooled.solver_stats();
  std::printf(
      "\nPersistent pool (4 workers, warm start), 2 calls:\n"
      "  %zu solves, %zu steps, %zu Newton iterations, %zu factorizations "
      "(%zu reused), %zu warm starts\n",
      sstats.solves, sstats.integration.steps,
      sstats.integration.newton_iterations, sstats.integration.factorizations,
      sstats.integration.factor_cache_hits,
      sstats.integration.warm_starts);
  return 0;
}
