// The paper's Fig. 1 workflow end to end: propose a vulcanization reaction
// model, compile it to optimized ODE code, "measure" cure curves for a set
// of rubber formulations (synthetic experiments with known ground-truth
// kinetics + noise), then run the Parameter Estimator to recover the
// kinetic rate constants from the data and report the fit quality.
//
// Run: ./build/examples/vulcanization_study
#include <cmath>
#include <cstdio>

#include "data/synthetic.hpp"
#include "support/strings.hpp"
#include "estimator/estimator.hpp"
#include "models/vulcanization.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace rms;

  // ---- 1. Propose the reaction model and compile it. ----
  models::VulcanizationConfig config;
  config.max_chain_length = 3;
  std::printf("Compiling the vulcanization model (polysulfide chains up to "
              "S%d)...\n",
              config.max_chain_length);
  auto built = models::build_vulcanization_model(config);
  if (!built.is_ok()) {
    std::fprintf(stderr, "model build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  const std::size_t n = built->equation_count();
  std::printf("  %zu species, %zu reactions, %zu -> %zu arithmetic ops "
              "after optimization\n\n",
              n, built->network.reactions.size(),
              built->report.before.total(), built->report.after.total());

  // Observable: total crosslink concentration (what the rheometer sees).
  data::Observable observable;
  for (std::size_t i = 0; i < n; ++i) {
    if (built->odes.species_names[i].rfind("RSR_", 0) == 0) {
      observable.weighted_species.emplace_back(i, 1.0);
    }
  }

  // ---- 2. "Collect" experimental data for four formulations. ----
  // Ground truth: the compiled constants; each formulation varies the
  // accelerator loading.
  const std::vector<double> true_rates = built->rates.values();
  std::vector<estimator::Experiment> experiments;
  std::printf("Synthesizing cure curves (ground truth hidden from the "
              "estimator):\n");
  for (int f = 0; f < 4; ++f) {
    estimator::Experiment e;
    e.initial_state = built->odes.init_concentrations;
    // Vary accelerator level per formulation.
    for (std::size_t i = 0; i < n; ++i) {
      if (built->odes.species_names[i].rfind("AcSAc_", 0) == 0) {
        e.initial_state[i] *= 0.5 + 0.5 * f;
      }
    }
    vm::Interpreter rhs(built->program_optimized);
    solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                               rhs.run(t, y, true_rates.data(), ydot);
                             }};
    data::SyntheticOptions options;
    options.t_end = 6.0;
    options.record_count = 3200;  // paper: >3000 records per file
    options.noise_level = 0.004;
    options.noise_seed = 11 + static_cast<std::uint64_t>(f);
    auto data = data::synthesize_experiment(
        system, e.initial_state, observable, options,
        support::str_format("formulation-%d", f + 1));
    if (!data.is_ok()) {
      std::fprintf(stderr, "synthesis failed: %s\n",
                   data.status().to_string().c_str());
      return 1;
    }
    e.data = std::move(data).value();
    std::printf("  %s: %zu records, final crosslink level %.4f\n",
                e.data.name.c_str(), e.data.record_count(),
                e.data.values.back());
    experiments.push_back(std::move(e));
  }

  // ---- 3. Estimate the kinetic constants from the data. ----
  // The chemist bounds each constant within a factor of 10 of a rough
  // guess; the optimizer starts well away from the truth.
  const std::size_t n_params = built->rates.size();
  std::vector<std::uint32_t> slots;
  for (std::uint32_t s = 0; s < n_params; ++s) slots.push_back(s);
  std::vector<double> x0(n_params);
  std::vector<double> lower(n_params);
  std::vector<double> upper(n_params);
  for (std::size_t i = 0; i < n_params; ++i) {
    x0[i] = true_rates[i] * 2.2;  // deliberately wrong starting guess
    lower[i] = true_rates[i] * 0.1;
    upper[i] = true_rates[i] * 10.0;
  }

  estimator::ObjectiveFunction objective(built->program_optimized, observable,
                                         std::move(experiments), slots,
                                         true_rates);
  std::printf("\nRunning the parameter estimator (%zu parameters, %zu "
              "residuals)...\n",
              n_params, objective.residual_size());
  auto result = estimator::estimate_parameters(objective, x0, lower, upper);
  if (!result.is_ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }

  std::printf("  converged: %s (%s), %zu iterations, %zu objective "
              "evaluations, final cost %.3e\n\n",
              result->converged ? "yes" : "no", result->message.c_str(),
              result->iterations, result->objective_evaluations,
              result->final_cost);

  std::printf("%-12s %12s %12s %10s\n", "constant", "true", "estimated",
              "error");
  double worst = 0.0;
  for (std::size_t i = 0; i < n_params; ++i) {
    const double error =
        std::fabs(result->rate_constants[i] - true_rates[i]) /
        std::fabs(true_rates[i]);
    worst = std::max(worst, error);
    std::printf("%-12s %12.5f %12.5f %9.2f%%\n",
                built->rates.canonical_name(static_cast<std::uint32_t>(i))
                    .c_str(),
                true_rates[i], result->rate_constants[i], 100.0 * error);
  }
  std::printf("\nWorst relative error: %.2f%% — the model + estimator "
              "recover the kinetics the data was generated with.\n",
              100.0 * worst);
  return worst < 0.25 ? 0 : 2;
}
