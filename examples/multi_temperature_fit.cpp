// Multi-temperature parameter estimation with Arrhenius kinetics.
//
// The paper's experimental files record crosslink evolution "for different
// formulations cured at different temperatures". This example compiles the
// Arrhenius vulcanization model (models_rdl/vulcanization_arrhenius.rdl
// inline), synthesizes cure curves at three temperatures from hidden
// ground-truth prefactors, and lets the Parameter Estimator recover the
// temperature-independent prefactors from the combined data — something a
// single-temperature fit could not disentangle from the activation
// energies.
//
// Run: ./build/examples/multi_temperature_fit
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "codegen/jacobian.hpp"
#include "data/synthetic.hpp"
#include "estimator/estimator.hpp"
#include "rms/suite.hpp"
#include "support/strings.hpp"
#include "vm/interpreter.hpp"

namespace {

const char* kModelSource = R"rdl(
species AcSAc(n = 1..3) = "NS{n}N";
species AcSR(n = 1..3)  = "NS{n}[RH3]";
species RSR(n = 1..3)   = "[RH3]S{n}[RH3]";
species AcH = "N";
species RH  = "[RH4]";

init AcSAc_3 = 0.05;
init RH = 1.0;

const k_attack   = arrhenius(1.4e7, 39000);
const k_scission = arrhenius(6.6e7, 46500);
const k_abstract = arrhenius(2.8e7, 39000);
const k_combine  = arrhenius(1.1e6, 29000);

rule attach_rubber {
  site nc: N;  site s: S;  bond nc s 1;
  site r: R where h >= 4;
  disconnect nc s;  remove_h r;  connect s r;  add_h nc;
  rate k_attack;
}
rule chain_scission {
  site a: S where depth >= 1;  site b: S;  bond a b 1;
  disconnect a b;
  rate k_scission;
}
rule h_abstraction {
  site s: S where radical;  site r: R where h >= 4;
  remove_h r;  add_h s;
  rate k_abstract;
}
rule recombination {
  site s: S where radical;  site r: R where radical;
  connect s r;
  rate k_combine;
}
)rdl";

}  // namespace

int main() {
  using namespace rms;

  auto built = Suite::compile(kModelSource);
  if (!built.is_ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  const std::size_t n = built->equation_count();
  const std::size_t n_params = built->rates.size();
  std::printf("Model: %zu species, %zu Arrhenius rate constants.\n\n", n,
              n_params);

  data::Observable observable;
  for (std::size_t i = 0; i < n; ++i) {
    if (built->odes.species_names[i].rfind("RSR_", 0) == 0) {
      observable.weighted_species.emplace_back(i, 1.0);
    }
  }

  // Ground truth: the compiled prefactors.
  std::vector<double> true_prefactors(n_params);
  for (std::uint32_t s = 0; s < n_params; ++s) {
    const rcip::ArrheniusParams* params = built->rates.arrhenius(s);
    if (params == nullptr) {
      std::fprintf(stderr, "slot %u is not Arrhenius-form\n", s);
      return 1;
    }
    true_prefactors[s] = params->prefactor;
  }

  // Cure curves at three temperatures (the hot cure finishes much faster).
  std::vector<estimator::Experiment> experiments;
  std::printf("Synthesizing cure curves:\n");
  for (double temperature : {300.0, 320.0, 340.0}) {
    const std::vector<double> rates_at_t = built->rates.values_at(temperature);
    vm::Interpreter rhs(built->program_optimized);
    solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                               rhs.run(t, y, rates_at_t.data(), ydot);
                             }};
    data::SyntheticOptions options;
    options.t_end = 12.0;
    options.record_count = 3200;
    options.noise_level = 0.003;
    options.noise_seed = static_cast<std::uint64_t>(temperature);
    estimator::Experiment e;
    e.initial_state = built->odes.init_concentrations;
    e.temperature = temperature;
    auto data = data::synthesize_experiment(
        system, e.initial_state, observable, options,
        support::str_format("cure-%.0fK", temperature));
    if (!data.is_ok()) {
      std::fprintf(stderr, "synthesis failed: %s\n",
                   data.status().to_string().c_str());
      return 1;
    }
    e.data = std::move(data).value();
    std::printf("  %s: final crosslink level %.4f\n", e.data.name.c_str(),
                e.data.values.back());
    experiments.push_back(std::move(e));
  }

  // Estimate the prefactors (activation energies held at the quantum-
  // chemistry values, as the paper's workflow prescribes).
  std::vector<std::uint32_t> slots;
  std::vector<double> x0(n_params);
  std::vector<double> lower(n_params);
  std::vector<double> upper(n_params);
  for (std::uint32_t s = 0; s < n_params; ++s) {
    slots.push_back(s);
    x0[s] = true_prefactors[s] * 0.4;
    lower[s] = true_prefactors[s] * 0.05;
    upper[s] = true_prefactors[s] * 20.0;
  }
  estimator::ObjectiveOptions options;
  options.rate_table = &built->rates;
  // Throughput layer: persistent 2-worker pool, LPT-ordered (column, file)
  // Jacobian tasks, warm-started per-file solves with sparse-LU reuse
  // (results are bit-identical for any worker count; see
  // docs/estimator.md).
  const codegen::CompiledJacobian compiled_jacobian =
      codegen::compile_jacobian(built->odes.table, n, n_params);
  options.compiled_jacobian = &compiled_jacobian;
  options.pool_workers = 2;
  options.warm_start = true;
  options.dynamic_load_balancing = true;
  estimator::ObjectiveFunction objective(built->program_optimized, observable,
                                         std::move(experiments), slots,
                                         true_prefactors, options);
  std::printf("\nFitting %zu prefactors against %zu residuals...\n", n_params,
              objective.residual_size());
  auto result = estimator::estimate_parameters(objective, x0, lower, upper);
  if (!result.is_ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("  %s after %zu iterations, cost %.3e\n",
              result->message.c_str(), result->iterations,
              result->final_cost);
  const estimator::SolverStats& sstats = result->solver_stats;
  std::printf(
      "  solver: %zu solves, %zu steps, %zu Newton iterations, "
      "%zu Jacobians, %zu factorizations (%zu reused), %zu warm starts\n\n",
      sstats.solves, sstats.integration.steps,
      sstats.integration.newton_iterations,
      sstats.integration.jacobian_evaluations,
      sstats.integration.factorizations,
      sstats.integration.factor_cache_hits,
      sstats.integration.warm_starts);

  std::printf("%-12s %14s %14s %10s\n", "constant", "true A", "estimated A",
              "error");
  double worst = 0.0;
  for (std::uint32_t s = 0; s < n_params; ++s) {
    const double error = std::fabs(result->rate_constants[s] -
                                   true_prefactors[s]) /
                         true_prefactors[s];
    worst = std::max(worst, error);
    std::printf("%-12s %14.4e %14.4e %9.2f%%\n",
                built->rates.canonical_name(s).c_str(), true_prefactors[s],
                result->rate_constants[s], 100.0 * error);
  }
  std::printf("\nWorst relative error: %.2f%%\n", 100.0 * worst);
  return worst < 0.3 ? 0 : 2;
}
