// Codegen explorer: shows what the chemical compiler actually emits.
//
// Builds a scaled vulcanization test case, writes the unoptimized and
// optimized generated C functions to /tmp, prints a side-by-side excerpt
// and the operation accounting, and (when a system C compiler is
// available) compiles both for real — the unoptimized file is the kind of
// machine-generated code the paper says "stresses commercial compilers to
// the point of failure".
//
// Run: ./build/examples/codegen_explorer [--scale=0.01] [--tc=2]
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/c_emitter.hpp"
#include "models/test_cases.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"

namespace {

std::size_t line_count(const std::string& s) {
  std::size_t lines = 0;
  for (char c : s) lines += c == '\n' ? 1 : 0;
  return lines;
}

void write_file(const char* path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

std::string first_lines(const std::string& s, int n) {
  std::size_t pos = 0;
  for (int i = 0; i < n && pos != std::string::npos; ++i) {
    pos = s.find('\n', pos + 1);
  }
  return pos == std::string::npos ? s : s.substr(0, pos + 1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rms;
  double scale = 0.01;
  int tc = 2;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      support::parse_double(arg.substr(8), scale);
    }
    if (arg.rfind("--tc=", 0) == 0) {
      double v = 2;
      support::parse_double(arg.substr(5), v);
      tc = static_cast<int>(v);
    }
  }

  auto built = models::build_test_case(models::scaled_config(tc, scale));
  if (!built.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }

  const std::string unopt = codegen::emit_c_unoptimized(
      built->odes_raw.table, {"rms_ode_rhs_unoptimized"});
  const std::string optimized =
      codegen::emit_c_optimized(built->optimized, {"rms_ode_rhs_optimized"});

  std::printf("Generated C for TC%d at scale %.3g (%zu equations)\n\n", tc,
              scale, built->equation_count());
  std::printf("--- unoptimized (first 12 lines of %zu; %zu bytes) ---\n%s\n",
              line_count(unopt), unopt.size(),
              first_lines(unopt, 12).c_str());
  std::printf("--- optimized (first 18 lines of %zu; %zu bytes) ---\n%s\n",
              line_count(optimized), optimized.size(),
              first_lines(optimized, 18).c_str());

  std::printf("Operation accounting:\n");
  std::printf("  multiplies: %8zu -> %8zu (%.2f%%)\n",
              built->report.before.multiplies, built->report.after.multiplies,
              100.0 * built->report.multiply_fraction());
  std::printf("  adds/subs:  %8zu -> %8zu (%.2f%%)\n",
              built->report.before.add_subs, built->report.after.add_subs,
              100.0 * built->report.add_sub_fraction());
  std::printf("  temporaries: %zu\n\n", built->optimized.temp_count());

  write_file("/tmp/rms_unoptimized.c", unopt);
  write_file("/tmp/rms_optimized.c", optimized);
  std::printf("Wrote /tmp/rms_unoptimized.c and /tmp/rms_optimized.c\n");

  if (std::system("cc --version > /dev/null 2>&1") == 0) {
    for (const char* which : {"unoptimized", "optimized"}) {
      const std::string cmd = support::str_format(
          "cc -O2 -c /tmp/rms_%s.c -o /tmp/rms_%s.o", which, which);
      support::WallTimer timer;
      const int rc = std::system(cmd.c_str());
      std::printf("  cc -O2 on the %s file: %s (%.2f s)\n", which,
                  rc == 0 ? "ok" : "FAILED", timer.seconds());
    }
  }
  return 0;
}
