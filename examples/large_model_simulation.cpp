// Large-model simulation: integrating a 10,000-equation vulcanization
// system on one core.
//
// The paper's motivation is that realistic reaction systems have "hundreds
// of equations and thousands to millions of floating point operations" —
// its largest test case has 250,000 ODEs. This example shows the pieces
// that make such systems tractable here:
//   1. the algebraic optimizer shrinks the RHS to a few percent of its
//      naive size,
//   2. the Jacobian-free Newton-Krylov path of the Adams-Gear solver
//      avoids any O(n^2) Jacobian storage or O(n^3) factorization.
//
// Run: ./build/examples/large_model_simulation [--scale=0.04]
#include <cstdio>
#include <string>

#include "models/test_cases.hpp"
#include "solver/adams_gear.hpp"
#include "support/strings.hpp"
#include "support/timer.hpp"
#include "vm/interpreter.hpp"

int main(int argc, char** argv) {
  using namespace rms;
  double scale = 0.04;  // TC5 x 0.04 ~ 10,000 equations
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--scale=", 0) == 0) {
      support::parse_double(arg.substr(8), scale);
    }
  }

  support::WallTimer build_timer;
  auto built = models::build_test_case(models::scaled_config(5, scale));
  if (!built.is_ok()) {
    std::fprintf(stderr, "build failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }
  const std::size_t n = built->equation_count();
  std::printf("Compiled %zu equations in %.2f s: %zu -> %zu arithmetic ops "
              "(%.1f%% remain, %zu temporaries).\n",
              n, build_timer.seconds(), built->report.before.total(),
              built->report.after.total(),
              100.0 * built->report.total_fraction(),
              built->optimized.temp_count());

  vm::Interpreter rhs(built->program_optimized);
  const std::vector<double> rates = built->rates.values();
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             rhs.run(t, y, rates.data(), ydot);
                           }};
  solver::IntegrationOptions options;
  options.newton_linear_solver = solver::NewtonLinearSolver::kMatrixFreeGmres;
  options.relative_tolerance = 1e-6;
  options.absolute_tolerance = 1e-10;
  solver::AdamsGear integrator(system, options);
  auto status = integrator.initialize(0.0, built->odes.init_concentrations);
  if (!status.is_ok()) {
    std::fprintf(stderr, "init failed: %s\n", status.to_string().c_str());
    return 1;
  }

  std::printf("\nIntegrating the cure with matrix-free Adams-Gear "
              "(no Jacobian storage at all):\n");
  std::printf("%8s %16s %16s %12s %10s\n", "t", "crosslinks", "sulfur (S8)",
              "steps", "wall (s)");
  support::WallTimer solve_timer;
  std::vector<double> y;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    if (auto s = integrator.advance_to(t, y); !s.is_ok()) {
      std::fprintf(stderr, "integration failed at t=%g: %s\n", t,
                   s.to_string().c_str());
      return 1;
    }
    double crosslinks = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (built->odes.species_names[i].rfind("C_", 0) == 0) {
        crosslinks += y[i];
      }
    }
    std::printf("%8.1f %16.6f %16.6f %12zu %10.2f\n", t, crosslinks, y[0],
                integrator.stats().steps, solve_timer.seconds());
  }
  std::printf("\nSolver totals: %zu steps, %zu RHS evaluations, "
              "%zu Newton iterations, 0 Jacobians, 0 factorizations.\n",
              integrator.stats().steps, integrator.stats().rhs_evaluations,
              integrator.stats().newton_iterations);
  return 0;
}
