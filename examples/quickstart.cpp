// Quickstart: the whole Reaction Modeling Suite in one file.
//
// Compiles a small RDL reaction description through the chemical compiler,
// prints the reaction network (paper Fig. 3 style), the generated ODEs
// (Fig. 5 style), the optimized code, and integrates the system with the
// stiff Adams-Gear solver to print a concentration curve.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "rms/suite.hpp"
#include "solver/adams_gear.hpp"
#include "vm/interpreter.hpp"

int main() {
  using namespace rms;

  // Methanethiol photolysis + recombination: a 3-line reaction model.
  const char* source = R"rdl(
    # species (SMILES), with initial concentrations
    species MeSH = "CS";          # methanethiol
    init MeSH = 1.0;

    const k_split = 0.8;
    const k_join  = 5 * k_split;

    # C-S bond homolysis: MeSH -> CH3. + .SH
    rule split {
      site c: C;
      site s: S;
      bond c s 1;
      disconnect c s;
      rate k_split;
    }

    # radical recombination: CH3. + .SH -> MeSH
    rule join {
      site c: C where radical;
      site s: S where radical;
      connect c s;
      rate k_join;
    }
  )rdl";

  auto built = Suite::compile(source);
  if (!built.is_ok()) {
    std::fprintf(stderr, "compile failed: %s\n",
                 built.status().to_string().c_str());
    return 1;
  }

  std::printf("=== Reaction network (Fig. 3 form) ===\n%s\n",
              built->network.to_string().c_str());
  std::printf("=== Generated ODEs (Fig. 5 form, after §3.1) ===\n%s\n",
              built->odes.to_string().c_str());
  std::printf("=== Optimized code (after DistOpt + CSE) ===\n%s\n",
              built->optimized.to_string(&built->odes.species_names).c_str());
  std::printf("Operations: %zu -> %zu (%.1f%% remain), %zu temporaries\n\n",
              built->report.before.total(), built->report.after.total(),
              100.0 * built->report.total_fraction(),
              built->optimized.temp_count());

  // Integrate to equilibrium with the stiff solver.
  const std::size_t n = built->equation_count();
  vm::Interpreter rhs(built->program_optimized);
  const std::vector<double> k = built->rates.values();
  solver::OdeSystem system{n, [&](double t, const double* y, double* ydot) {
                             rhs.run(t, y, k.data(), ydot);
                           }};
  solver::AdamsGear integrator(system);
  auto status = integrator.initialize(0.0, built->odes.init_concentrations);
  if (!status.is_ok()) {
    std::fprintf(stderr, "solver init failed: %s\n",
                 status.to_string().c_str());
    return 1;
  }

  std::printf("=== Time evolution ===\n%8s", "t");
  for (const std::string& name : built->odes.species_names) {
    std::printf(" %10s", name.c_str());
  }
  std::printf("\n");
  std::vector<double> y;
  for (double t : {0.0, 0.1, 0.3, 1.0, 3.0, 10.0}) {
    if (t == 0.0) {
      y = built->odes.init_concentrations;
    } else if (auto s = integrator.advance_to(t, y); !s.is_ok()) {
      std::fprintf(stderr, "integration failed: %s\n", s.to_string().c_str());
      return 1;
    }
    std::printf("%8.2f", t);
    for (double v : y) std::printf(" %10.6f", v);
    std::printf("\n");
  }
  std::printf("\nSolver: %zu steps, %zu RHS evaluations, %zu Jacobians.\n",
              integrator.stats().steps, integrator.stats().rhs_evaluations,
              integrator.stats().jacobian_evaluations);
  return 0;
}
