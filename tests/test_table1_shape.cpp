// Shape regression for the Table 1 reproduction: the qualitative claims the
// paper's evaluation makes must hold for the scaled test cases, so a change
// that silently degrades the optimizer (or the models) fails here rather
// than in a bench someone has to eyeball.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "codegen/reference_backend.hpp"
#include "models/test_cases.hpp"

namespace rms::models {
namespace {

struct CaseResult {
  std::size_t equations;
  double mul_fraction;
  double add_fraction;
  double total_fraction;
  std::size_t unopt_instructions;
  std::size_t opt_instructions;
};

CaseResult run_case(int tc, double scale) {
  auto built = build_test_case(scaled_config(tc, scale));
  EXPECT_TRUE(built.is_ok()) << built.status().to_string();
  CaseResult r;
  r.equations = built->equation_count();
  r.mul_fraction = built->report.multiply_fraction();
  r.add_fraction = built->report.add_sub_fraction();
  r.total_fraction = built->report.total_fraction();
  r.unopt_instructions = built->program_unoptimized.code.size();
  r.opt_instructions = built->program_optimized.code.size();
  return r;
}

TEST(Table1Shape, ReductionsMatchPaperOrdering) {
  // At a representative mid scale:
  //  - multiplies are reduced far harder than adds (paper: 1.35% vs 20.6%),
  //  - the total lands in the single-digit-to-low-teens percent band
  //    (paper: 6.9%),
  //  - the larger the case, the stronger the reduction (paper's monotone
  //    TC1 -> TC5 trend).
  const double scale = 0.02;
  CaseResult previous{};
  for (int tc = 1; tc <= kTestCaseCount; ++tc) {
    const CaseResult result = run_case(tc, scale);
    EXPECT_LT(result.mul_fraction, result.add_fraction) << "TC" << tc;
    EXPECT_LT(result.total_fraction, 0.30) << "TC" << tc;
    EXPECT_GT(result.total_fraction, 0.01) << "TC" << tc;
    if (tc >= 3) {
      // From TC3 on the asymptotic band holds.
      EXPECT_LT(result.mul_fraction, 0.10) << "TC" << tc;
      EXPECT_LT(result.add_fraction, 0.35) << "TC" << tc;
      EXPECT_GT(result.add_fraction, 0.10) << "TC" << tc;
      EXPECT_LE(result.total_fraction, previous.total_fraction * 1.05)
          << "TC" << tc << " regressed vs TC" << tc - 1;
    }
    previous = result;
  }
}

TEST(Table1Shape, CompileFailurePatternUnderCalibratedBudget) {
  // Budget between TC4's and TC5's base IR sizes (the bench calibration):
  // unoptimized TC5 must fail at every level, TC3-TC5 must fail at the
  // optimizing level, and every optimized program must fit easily.
  const double scale = 0.02;
  std::vector<std::size_t> unopt_base(kTestCaseCount);
  std::vector<std::size_t> unopt_o4(kTestCaseCount);
  std::vector<std::size_t> opt_base(kTestCaseCount);
  std::vector<std::size_t> opt_o4(kTestCaseCount);
  const codegen::BackendOptions base =
      codegen::BackendOptions::no_optimization();
  const codegen::BackendOptions optimizing;
  for (int tc = 1; tc <= kTestCaseCount; ++tc) {
    auto built = build_test_case(scaled_config(tc, scale));
    ASSERT_TRUE(built.is_ok());
    unopt_base[tc - 1] =
        codegen::required_ir_bytes(built->program_unoptimized, base);
    unopt_o4[tc - 1] =
        codegen::required_ir_bytes(built->program_unoptimized, optimizing);
    opt_base[tc - 1] =
        codegen::required_ir_bytes(built->program_optimized, base);
    opt_o4[tc - 1] =
        codegen::required_ir_bytes(built->program_optimized, optimizing);
  }
  const auto budget = static_cast<std::size_t>(
      std::sqrt(static_cast<double>(unopt_base[3]) *
                static_cast<double>(unopt_base[4])));

  EXPECT_LE(unopt_base[0], budget);  // TC1 compiles everywhere
  EXPECT_LE(unopt_base[3], budget);  // TC4 compiles at the default level
  EXPECT_GT(unopt_base[4], budget);  // TC5 fails at every level
  EXPECT_LE(unopt_o4[1], budget);    // TC2 compiles at -O4
  for (int tc = 3; tc <= 5; ++tc) {  // TC3..TC5 fail at -O4
    EXPECT_GT(unopt_o4[tc - 1], budget) << "TC" << tc;
  }
  // The optimized programs compile (and therefore run) for every case —
  // the point of the domain optimizations. TC1-TC4 even fit the rich -O4
  // IR; TC5's optimized code compiles at the default level with lots of
  // headroom (the paper reports a runtime for optimized TC5, so it
  // compiled at *some* level).
  for (int tc = 1; tc <= 4; ++tc) {
    EXPECT_LE(opt_o4[tc - 1], budget) << "TC" << tc;
  }
  EXPECT_LE(opt_base[4] * 2, budget);
}

TEST(Table1Shape, OptimizedProgramsAreMuchSmaller) {
  const CaseResult result = run_case(4, 0.02);
  EXPECT_LT(result.opt_instructions, result.unopt_instructions / 5);
}

}  // namespace
}  // namespace rms::models
