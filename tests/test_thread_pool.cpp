// Unit tests for the work-stealing thread pool (support/thread_pool.hpp).
//
// The pool's contract is strict because the compile pipeline leans on it for
// determinism: every index runs exactly once, results commit by index,
// nested parallel_for degrades to inline execution, and exceptions
// propagate deterministically (lowest failing chunk). Tests that need real
// cross-thread schedules construct the pool with cap_to_hardware=false so
// they exercise worker threads even on single-core CI machines.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "support/thread_pool.hpp"

namespace rms::support {
namespace {

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0u);
  std::vector<int> hits(16, 0);
  pool.parallel_for(0, hits.size(), 1,
                    [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, CapToHardwareLeavesRoomForCaller) {
  const unsigned hw = std::thread::hardware_concurrency();
  ThreadPool pool(64);  // default cap_to_hardware = true
  if (hw != 0) {
    EXPECT_LE(pool.thread_count(), static_cast<std::size_t>(hw - 1));
  }
  // Capped or not, the loop contract holds.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, EveryIndexExactlyOnce) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  ASSERT_EQ(pool.thread_count(), 4u);
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(0, n, 1, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, EmptyAndSingleItemRanges) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  std::atomic<int> count{0};
  pool.parallel_for(5, 5, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(7, 8, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 7u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, ParallelMapCommitsByIndex) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  const std::size_t n = 4096;
  std::vector<std::size_t> out =
      pool.parallel_map<std::size_t>(n, 1, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  const std::size_t outer = 64;
  const std::size_t inner = 32;
  std::vector<std::size_t> sums(outer, 0);
  pool.parallel_for(0, outer, 1, [&](std::size_t i) {
    // The nested call must degrade to inline execution (no deadlock, no
    // cross-chunk interleaving); writing to the same slot from the inner
    // body would race if it did not.
    pool.parallel_for(0, inner, 1, [&](std::size_t j) { sums[i] += j; });
  });
  const std::size_t expected = inner * (inner - 1) / 2;
  for (std::size_t i = 0; i < outer; ++i) EXPECT_EQ(sums[i], expected);
}

TEST(ThreadPool, ExceptionPropagatesLowestChunk) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  const std::size_t n = 1000;
  // Every index from 100 on throws; the pool must rethrow the error of the
  // lowest-numbered failing chunk, making the observed message a pure
  // function of the range split — identical on every run.
  std::string first_message;
  for (int round = 0; round < 3; ++round) {
    std::string caught;
    try {
      pool.parallel_for(0, n, 1, [&](std::size_t i) {
        if (i >= 100) {
          throw std::runtime_error("fail@" + std::to_string(i));
        }
      });
      FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_FALSE(caught.empty());
    if (round == 0) {
      first_message = caught;
    } else {
      EXPECT_EQ(caught, first_message);
    }
  }
}

TEST(ThreadPool, ExceptionDoesNotPoisonPool) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  EXPECT_THROW(pool.parallel_for(0, 100, 1,
                                 [](std::size_t) {
                                   throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool keeps working after a failed job.
  std::atomic<int> count{0};
  pool.parallel_for(0, 100, 1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, RangesFlavourCoversRangeOnce) {
  ThreadPool pool(4, /*cap_to_hardware=*/false);
  const std::size_t n = 1023;
  std::vector<std::atomic<int>> hits(n);
  for (auto& h : hits) h.store(0);
  pool.parallel_for_ranges(0, n, 8, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, FreeHelpersAcceptNullPool) {
  std::vector<int> hits(10, 0);
  parallel_for(nullptr, 0, hits.size(), 1,
               [&](std::size_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
  std::vector<int> mapped = parallel_map<int>(
      nullptr, 5, 1, [](std::size_t i) { return static_cast<int>(i) + 1; });
  EXPECT_EQ(mapped, (std::vector<int>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace rms::support
