// End-to-end validation of the paper's actual output path: the emitted C
// functions are compiled with the system C compiler, loaded with dlopen,
// and compared numerically against the bytecode VM on the same inputs.
#include <gtest/gtest.h>

#include <dlfcn.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include "codegen/c_emitter.hpp"
#include "models/test_cases.hpp"
#include "models/vulcanization.hpp"
#include "support/rng.hpp"
#include "vm/interpreter.hpp"

namespace rms::codegen {
namespace {

using RhsFn = void (*)(double, const double*, const double*, double*);

struct LoadedLibrary {
  void* handle = nullptr;
  RhsFn optimized = nullptr;
  RhsFn unoptimized = nullptr;

  ~LoadedLibrary() {
    if (handle != nullptr) dlclose(handle);
  }
};

/// Writes both C functions, compiles a shared object, and loads it.
bool build_and_load(const models::BuiltModel& built, const std::string& tag,
                    LoadedLibrary& out) {
  const std::string c_path = "/tmp/rms_cback_" + tag + ".c";
  const std::string so_path = "/tmp/rms_cback_" + tag + ".so";
  {
    std::ofstream file(c_path);
    file << emit_c_optimized(built.optimized, {"rms_rhs_optimized"});
    file << emit_c_unoptimized(built.odes_raw.table, {"rms_rhs_unoptimized"});
  }
  const std::string cmd =
      "cc -O1 -shared -fPIC " + c_path + " -o " + so_path + " 2>/dev/null";
  if (std::system(cmd.c_str()) != 0) return false;
  out.handle = dlopen(so_path.c_str(), RTLD_NOW);
  if (out.handle == nullptr) return false;
  out.optimized =
      reinterpret_cast<RhsFn>(dlsym(out.handle, "rms_rhs_optimized"));
  out.unoptimized =
      reinterpret_cast<RhsFn>(dlsym(out.handle, "rms_rhs_unoptimized"));
  return out.optimized != nullptr && out.unoptimized != nullptr;
}

bool have_cc() { return std::system("cc --version > /dev/null 2>&1") == 0; }

TEST(CBackend, NativeMatchesVmOnSyntheticTestCase) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto built = models::build_test_case({4, 9});
  ASSERT_TRUE(built.is_ok());
  LoadedLibrary lib;
  ASSERT_TRUE(build_and_load(*built, "tc", lib));

  const std::size_t n = built->equation_count();
  const std::vector<double> k = built->rates.values();
  vm::Interpreter vm_opt(built->program_optimized);

  support::Xoshiro256 rng(12);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> y(n);
    for (double& v : y) v = rng.uniform(0.0, 2.0);
    std::vector<double> native_opt(n);
    std::vector<double> native_raw(n);
    std::vector<double> vm_result(n);
    lib.optimized(0.5, y.data(), k.data(), native_opt.data());
    lib.unoptimized(0.5, y.data(), k.data(), native_raw.data());
    vm_opt.run(0.5, y.data(), k.data(), vm_result.data());
    for (std::size_t i = 0; i < n; ++i) {
      const double scale = std::max(1.0, std::fabs(native_raw[i]));
      // VM vs native optimized: identical computation graph.
      EXPECT_NEAR(native_opt[i], vm_result[i], 1e-12 * scale) << i;
      // Optimized vs raw native: same math, reassociated.
      EXPECT_NEAR(native_opt[i], native_raw[i], 1e-9 * scale) << i;
    }
  }
}

TEST(CBackend, NativeMatchesVmOnGraphChemistryModel) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  models::VulcanizationConfig config;
  config.max_chain_length = 3;
  auto built = models::build_vulcanization_model(config);
  ASSERT_TRUE(built.is_ok());
  LoadedLibrary lib;
  ASSERT_TRUE(build_and_load(*built, "vulc", lib));

  const std::size_t n = built->equation_count();
  const std::vector<double> k = built->rates.values();
  vm::Interpreter vm_opt(built->program_optimized);
  support::Xoshiro256 rng(13);
  std::vector<double> y(n);
  for (double& v : y) v = rng.uniform(0.0, 0.5);
  std::vector<double> native(n);
  std::vector<double> vm_result(n);
  lib.optimized(0.0, y.data(), k.data(), native.data());
  vm_opt.run(0.0, y.data(), k.data(), vm_result.data());
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(native[i], vm_result[i],
                1e-12 * std::max(1.0, std::fabs(native[i])));
  }
}

}  // namespace
}  // namespace rms::codegen
