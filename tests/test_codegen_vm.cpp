// Tests for bytecode emission, the interpreter, the C emitter, and the
// reference "commercial compiler" backend model.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "codegen/bytecode_emitter.hpp"
#include "codegen/c_emitter.hpp"
#include "codegen/reference_backend.hpp"
#include "expr/product.hpp"
#include "odegen/equation_table.hpp"
#include "opt/pipeline.hpp"
#include "support/rng.hpp"
#include "vm/interpreter.hpp"

namespace rms::codegen {
namespace {

using expr::Product;
using expr::SumOfProducts;
using expr::VarId;

const VarId A = VarId::species(0);
const VarId B = VarId::species(1);
const VarId C = VarId::species(2);
const VarId K1 = VarId::rate_const(0);
const VarId K2 = VarId::rate_const(1);

odegen::EquationTable small_table() {
  SumOfProducts eq0;
  eq0.add_combining(Product(-1.0, {K1, A, B}));
  eq0.add_combining(Product(2.0, {K2, C}));
  SumOfProducts eq1;
  eq1.add_combining(Product(1.0, {K1, A, B}));
  SumOfProducts eq2;
  eq2.add_combining(Product(1.0, {K1, A, B}));
  eq2.add_combining(Product(-2.0, {K2, C}));
  odegen::EquationTable table(3);
  table.equation(0) = eq0;
  table.equation(1) = eq1;
  table.equation(2) = eq2;
  return table;
}

odegen::EquationTable random_table(std::uint64_t seed, std::size_t n_eq,
                                   std::size_t n_species, std::size_t n_rates) {
  support::Xoshiro256 rng(seed);
  odegen::EquationTable table(n_eq);
  for (std::size_t e = 0; e < n_eq; ++e) {
    const int terms = 1 + static_cast<int>(rng.below(12));
    for (int i = 0; i < terms; ++i) {
      Product p;
      p.coeff = std::floor(rng.uniform(-3.0, 4.0));
      if (p.coeff == 0.0) p.coeff = 1.0;
      p.factors.push_back(
          VarId::rate_const(static_cast<std::uint32_t>(rng.below(n_rates))));
      const int nf = 1 + static_cast<int>(rng.below(2));
      for (int f = 0; f < nf; ++f) {
        p.factors.push_back(
            VarId::species(static_cast<std::uint32_t>(rng.below(n_species))));
      }
      p.normalize();
      table.equation(e).add_combining(std::move(p));
    }
    table.equation(e).sort_canonical();
  }
  return table;
}

TEST(BytecodeUnoptimized, MatchesTreeEvaluation) {
  odegen::EquationTable table = small_table();
  vm::Program program = emit_unoptimized(table, 3, 2);
  vm::Interpreter interp(program);
  std::vector<double> y = {1.5, 2.0, 0.5};
  std::vector<double> k = {0.25, 3.0};
  std::vector<double> expected;
  table.evaluate(y, k, 0.0, expected);
  std::vector<double> actual;
  interp.run(0.0, y, k, actual);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-14) << i;
  }
}

TEST(BytecodeUnoptimized, ArithCountMatchesSymbolicCounts) {
  odegen::EquationTable table = small_table();
  vm::Program program = emit_unoptimized(table, 3, 2);
  vm::ArithCount count = program.count_arith();
  EXPECT_EQ(count.multiplies, table.multiply_count());
  EXPECT_EQ(count.add_subs, table.add_sub_count());
}

TEST(BytecodeOptimized, MatchesTreeEvaluationAndCounts) {
  odegen::EquationTable table = small_table();
  opt::OptimizationReport report;
  opt::OptimizedSystem system =
      opt::optimize(table, 3, 2, opt::OptimizerOptions::full(), &report);
  vm::Program program = emit_optimized(system);
  EXPECT_EQ(program.count_arith().multiplies, report.after.multiplies);
  EXPECT_EQ(program.count_arith().add_subs, report.after.add_subs);

  vm::Interpreter interp(program);
  std::vector<double> y = {1.5, 2.0, 0.5};
  std::vector<double> k = {0.25, 3.0};
  std::vector<double> expected;
  table.evaluate(y, k, 0.0, expected);
  std::vector<double> actual;
  interp.run(0.0, y, k, actual);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(actual[i], expected[i], 1e-14) << i;
  }
}

TEST(BytecodeOptimized, ZeroEquationStoresZero) {
  odegen::EquationTable table(2);  // both zero
  opt::OptimizedSystem system = opt::optimize(table, 2, 0);
  vm::Program program = emit_optimized(system);
  vm::Interpreter interp(program);
  std::vector<double> y = {1.0, 2.0};
  std::vector<double> k;
  std::vector<double> dydt = {99.0, 99.0};
  interp.run(0.0, y, k, dydt);
  EXPECT_DOUBLE_EQ(dydt[0], 0.0);
  EXPECT_DOUBLE_EQ(dydt[1], 0.0);
}

// Property: for random systems, unoptimized VM == optimized VM == symbolic,
// and instruction counts equal symbolic counts exactly.
class EmissionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EmissionProperty, AllPathsAgree) {
  const std::size_t n_species = 6;
  const std::size_t n_rates = 3;
  odegen::EquationTable table =
      random_table(GetParam(), n_species, n_species, n_rates);
  opt::OptimizationReport report;
  opt::OptimizedSystem system = opt::optimize(
      table, n_species, n_rates, opt::OptimizerOptions::full(), &report);
  vm::Program unopt = emit_unoptimized(table, n_species, n_rates);
  vm::Program opt_prog = emit_optimized(system);

  EXPECT_EQ(unopt.count_arith().multiplies, report.before.multiplies);
  EXPECT_EQ(unopt.count_arith().add_subs, report.before.add_subs);
  EXPECT_EQ(opt_prog.count_arith().multiplies, report.after.multiplies);
  EXPECT_EQ(opt_prog.count_arith().add_subs, report.after.add_subs);

  support::Xoshiro256 rng(GetParam() + 1);
  std::vector<double> y(n_species);
  for (double& v : y) v = rng.uniform(0.1, 2.0);
  std::vector<double> k = {0.5, 2.0, 1.25};
  std::vector<double> expected;
  table.evaluate(y, k, 0.25, expected);

  vm::Interpreter i1(unopt);
  vm::Interpreter i2(opt_prog);
  std::vector<double> r1;
  std::vector<double> r2;
  i1.run(0.25, y, k, r1);
  i2.run(0.25, y, k, r2);
  for (std::size_t i = 0; i < n_species; ++i) {
    const double tolerance = 1e-10 * std::max(1.0, std::fabs(expected[i]));
    EXPECT_NEAR(r1[i], expected[i], tolerance);
    EXPECT_NEAR(r2[i], expected[i], tolerance);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmissionProperty,
                         ::testing::Values(3, 14, 15, 92, 65, 35, 89, 79));

TEST(CEmitter, UnoptimizedContainsExpressions) {
  odegen::EquationTable table = small_table();
  const std::string source = emit_c_unoptimized(table);
  EXPECT_NE(source.find("void rms_ode_rhs"), std::string::npos);
  EXPECT_NE(source.find("ydot[0] = "), std::string::npos);
  EXPECT_NE(source.find("k[0]"), std::string::npos);
  EXPECT_NE(source.find("y[1]"), std::string::npos);
}

TEST(CEmitter, OptimizedDeclaresTemps) {
  odegen::EquationTable table = small_table();
  opt::OptimizedSystem system = opt::optimize(table, 3, 2);
  const std::string source = emit_c_optimized(system);
  EXPECT_NE(source.find("const double temp0 = "), std::string::npos);
  EXPECT_NE(source.find("ydot[2] = "), std::string::npos);
}

TEST(CEmitter, GeneratedCodeCompilesWithRealCompiler) {
  // The emitted C must be accepted by the system C compiler — this is the
  // paper's actual output path.
  odegen::EquationTable table = small_table();
  opt::OptimizedSystem system = opt::optimize(table, 3, 2);
  const std::string source = emit_c_optimized(system) +
                             emit_c_unoptimized(table, {"rms_ode_rhs_raw"});
  const char* path = "/tmp/rms_codegen_test.c";
  FILE* f = fopen(path, "w");
  ASSERT_NE(f, nullptr);
  fputs(source.c_str(), f);
  fclose(f);
  const int rc = std::system(
      "cc -std=c11 -c /tmp/rms_codegen_test.c -o /tmp/rms_codegen_test.o "
      "-Wall -Werror");
  EXPECT_EQ(rc, 0);
}

TEST(ReferenceBackend, PreservesSemantics) {
  odegen::EquationTable table = random_table(7, 8, 6, 3);
  vm::Program unopt = emit_unoptimized(table, 6, 3);
  auto result = reference_compile(unopt);
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  vm::Interpreter i1(unopt);
  vm::Interpreter i2(result->program);
  std::vector<double> y = {1.0, 0.5, 2.0, 0.1, 0.7, 1.3};
  std::vector<double> k = {0.5, 2.0, 1.25};
  std::vector<double> r1;
  std::vector<double> r2;
  i1.run(0.0, y, k, r1);
  i2.run(0.0, y, k, r2);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(r1[i], r2[i], 1e-13);
}

TEST(ReferenceBackend, ValueNumberingRemovesSomeRedundancy) {
  odegen::EquationTable table = random_table(11, 20, 6, 2);
  vm::Program unopt = emit_unoptimized(table, 6, 2);
  auto result = reference_compile(unopt);
  ASSERT_TRUE(result.is_ok());
  EXPECT_LT(result->output_ops.total(), result->input_ops.total());
}

TEST(ReferenceBackend, WindowLimitsRedundancyScope) {
  odegen::EquationTable table = random_table(13, 40, 6, 2);
  vm::Program unopt = emit_unoptimized(table, 6, 2);
  BackendOptions wide;
  wide.window = 1u << 20;
  BackendOptions narrow;
  narrow.window = 8;
  auto wide_result = reference_compile(unopt, wide);
  auto narrow_result = reference_compile(unopt, narrow);
  ASSERT_TRUE(wide_result.is_ok());
  ASSERT_TRUE(narrow_result.is_ok());
  EXPECT_LE(wide_result->output_ops.total(), narrow_result->output_ops.total());
}

TEST(ReferenceBackend, OutOfMemoryOnHugePrograms) {
  odegen::EquationTable table = random_table(17, 50, 6, 2);
  vm::Program unopt = emit_unoptimized(table, 6, 2);
  BackendOptions tiny;
  tiny.memory_budget_bytes = 1024;  // guaranteed too small
  auto result = reference_compile(unopt, tiny);
  ASSERT_FALSE(result.is_ok());
  EXPECT_EQ(result.status().code(), support::StatusCode::kResourceExhausted);
  EXPECT_NE(result.status().message().find("lack of space"),
            std::string::npos);
}

TEST(ReferenceBackend, OptimizingModeNeedsMoreMemory) {
  odegen::EquationTable table = random_table(19, 10, 6, 2);
  vm::Program unopt = emit_unoptimized(table, 6, 2);
  BackendOptions optimizing;
  const std::size_t opt_bytes = required_ir_bytes(unopt, optimizing);
  const std::size_t plain_bytes =
      required_ir_bytes(unopt, BackendOptions::no_optimization());
  EXPECT_GT(opt_bytes, plain_bytes);
}

TEST(ReferenceBackend, NoOptimizationPreservesOpCount) {
  odegen::EquationTable table = random_table(23, 10, 6, 2);
  vm::Program unopt = emit_unoptimized(table, 6, 2);
  auto result = reference_compile(unopt, BackendOptions::no_optimization());
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(result->output_ops.total(), result->input_ops.total());
}

TEST(Disassembler, ProducesReadableText) {
  odegen::EquationTable table = small_table();
  vm::Program program = emit_unoptimized(table, 3, 2);
  const std::string text = program.disassemble();
  EXPECT_NE(text.find("y[0]"), std::string::npos);
  EXPECT_NE(text.find("ydot[0]"), std::string::npos);
}

}  // namespace
}  // namespace rms::codegen
