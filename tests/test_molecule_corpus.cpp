// Canonicalization corpus: real molecules (Kekulé-form SMILES) covering
// fused rings, heteroatoms, branching, charges and symmetry. Every entry
// must parse, round-trip through canonical SMILES, and canonicalize
// identically under random atom permutations.
#include <gtest/gtest.h>

#include <numeric>

#include "chem/canonical.hpp"
#include "chem/molecule.hpp"
#include "chem/smiles.hpp"
#include "support/rng.hpp"

namespace rms::chem {
namespace {

struct CorpusEntry {
  const char* name;
  const char* smiles;
  const char* formula;
};

// Kekulé forms (the SMILES subset rejects aromatic lowercase by design).
const CorpusEntry kCorpus[] = {
    {"methane", "C", "CH4"},
    {"ethanol", "CCO", "C2H6O"},
    {"acetic acid", "CC(=O)O", "C2H4O2"},
    {"acetone", "CC(=O)C", "C3H6O"},
    {"isobutane", "CC(C)C", "C4H10"},
    {"neopentane", "CC(C)(C)C", "C5H12"},
    {"cyclohexane", "C1CCCCC1", "C6H12"},
    {"benzene (Kekulé)", "C1=CC=CC=C1", "C6H6"},
    {"toluene", "CC1=CC=CC=C1", "C7H8"},
    {"phenol", "OC1=CC=CC=C1", "C6H6O"},
    {"naphthalene", "C1=CC=C2C=CC=CC2=C1", "C10H8"},
    {"pyridine", "C1=CC=NC=C1", "C5H5N"},
    {"pyrrole (NH)", "N1C=CC=C1", "C4H5N"},
    {"furan", "O1C=CC=C1", "C4H4O"},
    {"thiophene", "S1C=CC=C1", "C4H4S"},
    {"benzothiazole", "C1=CC=C2C(=C1)N=CS2", "C7H5NS"},
    {"2-mercaptobenzothiazole", "C1=CC=C2C(=C1)N=C(S2)S", "C7H5NS2"},
    {"octasulfur ring", "S1SSSSSSS1", "S8"},
    {"dimethyl disulfide", "CSSC", "C2H6S2"},
    {"cysteamine", "NCCS", "C2H7NS"},
    {"taurine-like sulfide", "NCCSCC", "C4H11NS"},
    {"isoprene", "CC(=C)C=C", "C5H8"},
    {"2-butyne", "CC#CC", "C4H6"},
    {"acrylonitrile", "C=CC#N", "C3H3N"},
    {"urea", "NC(=O)N", "CH4N2O"},
    {"glycine", "NCC(=O)O", "C2H5NO2"},
    {"ammonium", "[NH4+]", "H4N"},
    {"thiolate", "CC[S-]", "C2H5S"},
    {"bicyclobutane", "C1C2CC12", "C4H6"},
    {"spiropentane", "C1CC12CC2", "C5H8"},
    {"adamantane", "C1C2CC3CC1CC(C2)C3", "C10H16"},
    {"chloroform", "ClC(Cl)Cl", "CHCl3"},
    {"bromobenzene", "BrC1=CC=CC=C1", "C6H5Br"},
    {"zinc dimethyl", "C[Zn]C", "C2H6Zn"},
};

Molecule permute(const Molecule& mol, const std::vector<AtomIndex>& perm) {
  Molecule out;
  std::vector<AtomIndex> inverse(perm.size());
  for (AtomIndex i = 0; i < perm.size(); ++i) inverse[perm[i]] = i;
  for (AtomIndex idx = 0; idx < perm.size(); ++idx) {
    const Atom& a = mol.atom(perm[idx]);
    out.add_atom(a.element, a.hydrogens, a.charge);
  }
  for (BondIndex b = 0; b < mol.bond_count(); ++b) {
    const Bond& bond = mol.bond(b);
    out.add_bond(inverse[bond.a], inverse[bond.b], bond.order);
  }
  return out;
}

class Corpus : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(Corpus, ParsesWithExpectedFormula) {
  const CorpusEntry& entry = GetParam();
  auto mol = parse_smiles(entry.smiles);
  ASSERT_TRUE(mol.is_ok()) << entry.name << ": "
                           << mol.status().to_string();
  EXPECT_EQ(mol->formula(), entry.formula) << entry.name;
}

TEST_P(Corpus, CanonicalRoundTrip) {
  const CorpusEntry& entry = GetParam();
  auto mol = parse_smiles(entry.smiles);
  ASSERT_TRUE(mol.is_ok());
  const std::string canon = canonical_smiles(*mol);
  auto back = parse_smiles(canon);
  ASSERT_TRUE(back.is_ok()) << entry.name << " canon=" << canon;
  EXPECT_EQ(canonical_smiles(*back), canon) << entry.name;
  EXPECT_EQ(back->formula(), entry.formula) << entry.name;
}

TEST_P(Corpus, PermutationInvariance) {
  const CorpusEntry& entry = GetParam();
  auto mol = parse_smiles(entry.smiles);
  ASSERT_TRUE(mol.is_ok());
  const std::string canon = canonical_smiles(*mol);
  support::Xoshiro256 rng(
      std::hash<std::string>{}(entry.name));
  std::vector<AtomIndex> perm(mol->atom_count());
  std::iota(perm.begin(), perm.end(), 0);
  for (int trial = 0; trial < 5; ++trial) {
    for (std::size_t i = perm.size(); i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
    EXPECT_EQ(canonical_smiles(permute(*mol, perm)), canon)
        << entry.name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(RealMolecules, Corpus, ::testing::ValuesIn(kCorpus),
                         [](const auto& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(CorpusCross, AllCanonicalFormsDistinct) {
  // No two (non-identical) corpus molecules may collide.
  std::vector<std::string> canons;
  for (const CorpusEntry& entry : kCorpus) {
    auto mol = parse_smiles(entry.smiles);
    ASSERT_TRUE(mol.is_ok()) << entry.name;
    canons.push_back(canonical_smiles(*mol));
  }
  for (std::size_t i = 0; i < canons.size(); ++i) {
    for (std::size_t j = i + 1; j < canons.size(); ++j) {
      EXPECT_NE(canons[i], canons[j])
          << kCorpus[i].name << " vs " << kCorpus[j].name;
    }
  }
}

}  // namespace
}  // namespace rms::chem
