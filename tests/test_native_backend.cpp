// Tests for the AOT native execution backend: differential agreement with
// the bytecode VM (scalar RHS, batched RHS, analytic Jacobian), the
// content-addressed shared-object cache (hit/miss accounting, corruption
// recovery, temp-file hygiene) and the VM fallback when no compiler exists.
//
// Every test passes an explicit compiler ("cc") and a private mkdtemp cache
// directory: the CI cache-warm job counts invocations of the $RMS_CC
// wrapper across a full ctest rerun, and these intentional cold compiles
// must not show up in that count.
#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/bytecode_emitter.hpp"
#include "codegen/jacobian.hpp"
#include "codegen/native_backend.hpp"
#include "data/synthetic.hpp"
#include "estimator/objective.hpp"
#include "models/test_cases.hpp"
#include "models/vulcanization.hpp"
#include "rms/execution.hpp"
#include "support/rng.hpp"
#include "verify/oracle.hpp"
#include "vm/interpreter.hpp"

namespace rms::codegen {
namespace {

bool have_cc() {
  static const bool available =
      std::system("cc --version > /dev/null 2>&1") == 0;
  return available;
}

/// Private cache directory per test, removed (with contents) on scope exit.
struct TempCacheDir {
  std::string path;

  TempCacheDir() {
    char name[] = "/tmp/rms-native-test-XXXXXX";
    char* made = mkdtemp(name);
    EXPECT_NE(made, nullptr);
    if (made != nullptr) path = made;
  }

  ~TempCacheDir() {
    for (const std::string& f : entries()) std::remove(f.c_str());
    rmdir(path.c_str());
  }

  [[nodiscard]] std::vector<std::string> entries() const {
    std::vector<std::string> out;
    DIR* dir = opendir(path.c_str());
    if (dir == nullptr) return out;
    while (dirent* entry = readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") out.push_back(path + "/" + name);
    }
    closedir(dir);
    return out;
  }
};

NativeBackendOptions test_options(const TempCacheDir& cache) {
  NativeBackendOptions options;
  options.compiler = "cc";  // explicit: invisible to the CI $RMS_CC counter
  options.cache_dir = cache.path;
  return options;
}

/// kTight agreement (verify::values_match): <= 64 ULP or 1e-12 * scale.
void expect_tight(const std::vector<double>& a, const std::vector<double>& b,
                  const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  double scale = 0.0;
  for (double v : a) scale = std::max(scale, std::fabs(v));
  for (double v : b) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(
        verify::values_match(a[i], b[i], verify::Tolerance::kTight, scale))
        << what << " slot " << i << ": " << a[i] << " vs " << b[i];
  }
}

/// Cross-checks every native entry point against the VM on random draws.
void check_against_vm(const models::BuiltModel& built,
                      const NativeBackend& native, std::uint64_t seed,
                      int trials) {
  const std::size_t n = built.equation_count();
  const std::size_t rate_count = built.rates.size();
  ASSERT_EQ(native.dimension(), n);

  const vm::Interpreter interpreter(built.program_optimized);
  const CompiledJacobian jac_vm =
      compile_jacobian(built.odes.table, n, rate_count);
  if (native.has_jacobian()) {
    ASSERT_EQ(native.jacobian_row_offsets(), jac_vm.row_offsets);
    ASSERT_EQ(native.jacobian_col_indices(), jac_vm.col_indices);
  }

  support::Xoshiro256 rng(seed);
  constexpr std::size_t kLanes = 5;
  for (int trial = 0; trial < trials; ++trial) {
    const double t = rng.uniform(0.0, 1.0);
    std::vector<double> y(n);
    for (double& v : y) v = rng.uniform(0.0, 2.0);
    std::vector<double> k(rate_count);
    for (double& v : k) v = rng.uniform(0.05, 10.0);

    std::vector<double> vm_out(n);
    interpreter.run(t, y.data(), k.data(), vm_out.data());
    std::vector<double> native_out(n, 0.0);
    native.rhs(t, y.data(), k.data(), native_out.data());
    expect_tight(vm_out, native_out, "rhs");

    if (native.has_batch()) {
      // Distinct state per lane, every lane checked against the scalar
      // entry point — a broken lane stride cannot hide.
      std::vector<double> ys(n * kLanes);
      for (double& v : ys) v = rng.uniform(0.0, 2.0);
      std::vector<double> ydots(n * kLanes, 0.0);
      native.rhs_batch(t, ys.data(), k.data(), ydots.data(), kLanes);
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        std::vector<double> lane_ref(n, 0.0);
        native.rhs(t, ys.data() + lane * n, k.data(), lane_ref.data());
        const std::vector<double> lane_out(
            ydots.begin() + lane * n, ydots.begin() + (lane + 1) * n);
        expect_tight(lane_ref, lane_out, "rhs_batch lane");
      }
    }

    if (native.has_jacobian() && !jac_vm.program.code.empty()) {
      vm::Scratch scratch;
      scratch.prepare(jac_vm.program);
      std::vector<double> jac_ref(jac_vm.col_indices.size());
      vm::Interpreter(jac_vm.program)
          .run(t, y.data(), k.data(), jac_ref.data(), scratch);
      std::vector<double> jac_native(jac_vm.col_indices.size(), 0.0);
      native.jacobian_values(t, y.data(), k.data(), jac_native.data());
      expect_tight(jac_ref, jac_native, "jacobian");
    }
  }
}

TEST(NativeBackend, MatchesVmOnSyntheticTestCases) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  const models::SyntheticNetworkConfig kConfigs[] = {{2, 3}, {3, 5}, {4, 7}};
  for (const auto& config : kConfigs) {
    auto built = models::build_test_case(config);
    ASSERT_TRUE(built.is_ok()) << built.status().to_string();
    TempCacheDir cache;
    auto native = NativeBackend::create(built->optimized, &built->odes.table,
                                        built->equation_count(),
                                        built->rates.size(),
                                        test_options(cache));
    ASSERT_TRUE(native.is_ok()) << native.status().to_string();
    EXPECT_TRUE((*native)->has_batch());
    EXPECT_TRUE((*native)->has_jacobian());
    check_against_vm(*built, **native, 17 + config.chain_lengths, 6);
  }
}

TEST(NativeBackend, MatchesVmOnAllRdlModels) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  std::vector<std::string> models;
  DIR* dir = opendir(RMS_MODELS_DIR);
  ASSERT_NE(dir, nullptr);
  while (dirent* entry = readdir(dir)) {
    const std::string name = entry->d_name;
    if (name.size() > 4 && name.substr(name.size() - 4) == ".rdl") {
      models.push_back(std::string(RMS_MODELS_DIR) + "/" + name);
    }
  }
  closedir(dir);
  ASSERT_FALSE(models.empty());

  for (const std::string& path : models) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::ostringstream source;
    source << in.rdbuf();
    auto built = verify::build_model_from_rdl(source.str());
    ASSERT_TRUE(built.is_ok()) << path << ": " << built.status().to_string();
    TempCacheDir cache;
    auto native = NativeBackend::create(built->optimized, &built->odes.table,
                                        built->equation_count(),
                                        built->rates.size(),
                                        test_options(cache));
    ASSERT_TRUE(native.is_ok()) << path << ": " << native.status().to_string();
    check_against_vm(*built, **native, 99, 4);
  }
}

TEST(NativeBackend, SecondConstructionHitsCache) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto built = models::build_test_case({2, 3});
  ASSERT_TRUE(built.is_ok());
  TempCacheDir cache;

  const std::uint64_t before = NativeBackend::compiler_invocations();
  auto cold = NativeBackend::create(built->optimized, &built->odes.table,
                                    built->equation_count(),
                                    built->rates.size(), test_options(cache));
  ASSERT_TRUE(cold.is_ok()) << cold.status().to_string();
  EXPECT_FALSE((*cold)->info().cache_hit);
  EXPECT_EQ(NativeBackend::compiler_invocations(), before + 1);

  auto warm = NativeBackend::create(built->optimized, &built->odes.table,
                                    built->equation_count(),
                                    built->rates.size(), test_options(cache));
  ASSERT_TRUE(warm.is_ok()) << warm.status().to_string();
  EXPECT_TRUE((*warm)->info().cache_hit);
  EXPECT_EQ(NativeBackend::compiler_invocations(), before + 1);
  EXPECT_EQ((*warm)->info().key, (*cold)->info().key);
  EXPECT_EQ((*warm)->info().object_path, (*cold)->info().object_path);
  check_against_vm(*built, **warm, 23, 3);
}

TEST(NativeBackend, DifferentFlagsMissTheCache) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto built = models::build_test_case({2, 3});
  ASSERT_TRUE(built.is_ok());
  TempCacheDir cache;

  auto o2 = NativeBackend::create(built->optimized, nullptr,
                                  built->equation_count(),
                                  built->rates.size(), test_options(cache));
  ASSERT_TRUE(o2.is_ok());
  NativeBackendOptions options = test_options(cache);
  options.flags = "-O1 -ffp-contract=off";
  const std::uint64_t before = NativeBackend::compiler_invocations();
  auto o1 = NativeBackend::create(built->optimized, nullptr,
                                  built->equation_count(),
                                  built->rates.size(), options);
  ASSERT_TRUE(o1.is_ok());
  EXPECT_FALSE((*o1)->info().cache_hit);
  EXPECT_EQ(NativeBackend::compiler_invocations(), before + 1);
  EXPECT_NE((*o1)->info().key, (*o2)->info().key);
}

TEST(NativeBackend, CorruptedCacheEntryIsEvictedAndRecompiled) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto built = models::build_test_case({3, 5});
  ASSERT_TRUE(built.is_ok());
  TempCacheDir cache;

  auto first = NativeBackend::create(built->optimized, &built->odes.table,
                                     built->equation_count(),
                                     built->rates.size(), test_options(cache));
  ASSERT_TRUE(first.is_ok());
  const std::string object_path = (*first)->info().object_path;
  (*first).reset();  // release the dlopen handle before corrupting the file
  {
    std::ofstream garbage(object_path, std::ios::trunc);
    garbage << "this is not a shared object\n";
  }

  const std::uint64_t before = NativeBackend::compiler_invocations();
  auto second = NativeBackend::create(built->optimized, &built->odes.table,
                                      built->equation_count(),
                                      built->rates.size(),
                                      test_options(cache));
  ASSERT_TRUE(second.is_ok()) << second.status().to_string();
  EXPECT_FALSE((*second)->info().cache_hit);
  EXPECT_EQ(NativeBackend::compiler_invocations(), before + 1);
  check_against_vm(*built, **second, 31, 3);
}

TEST(NativeBackend, MissingCompilerFailsCleanlyWithoutOrphans) {
  auto built = models::build_test_case({2, 3});
  ASSERT_TRUE(built.is_ok());
  TempCacheDir cache;
  NativeBackendOptions options = test_options(cache);
  options.compiler = "/nonexistent/rms-no-such-cc";
  auto native = NativeBackend::create(built->optimized, &built->odes.table,
                                      built->equation_count(),
                                      built->rates.size(), options);
  EXPECT_FALSE(native.is_ok());
  // The failed attempt must not leave temp .c/.so files behind.
  EXPECT_TRUE(cache.entries().empty());
}

TEST(NativeBackend, ExecutionFallsBackToVmWhenCompilerMissing) {
  auto built = models::build_test_case({2, 3});
  ASSERT_TRUE(built.is_ok());
  TempCacheDir cache;
  ExecutionOptions options;
  options.backend = Backend::kNative;
  options.native = test_options(cache);
  options.native.compiler = "/nonexistent/rms-no-such-cc";
  const Execution exec = Execution::create(*built, options);
  EXPECT_EQ(exec.backend(), Backend::kVm);
  EXPECT_FALSE(exec.fallback_reason().empty());
  ASSERT_NE(exec.compiled_jacobian(), nullptr);

  const std::vector<double> rates = built->rates.values();
  solver::OdeSystem system = exec.make_system(&rates);
  ASSERT_TRUE(static_cast<bool>(system.rhs));
  std::vector<double> y(built->equation_count(), 0.5);
  std::vector<double> vm_out(y.size());
  vm::Interpreter(built->program_optimized)
      .run(0.0, y.data(), rates.data(), vm_out.data());
  std::vector<double> exec_out(y.size(), 0.0);
  system.rhs(0.0, y.data(), exec_out.data());
  expect_tight(vm_out, exec_out, "fallback rhs");
}

TEST(NativeBackend, ExecutionSelectsNativeWhenAvailable) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  auto built = models::build_test_case({3, 5});
  ASSERT_TRUE(built.is_ok());
  TempCacheDir cache;
  ExecutionOptions options;
  options.backend = Backend::kNative;
  options.native = test_options(cache);
  const Execution exec = Execution::create(*built, options);
  ASSERT_EQ(exec.backend(), Backend::kNative) << exec.fallback_reason();
  ASSERT_NE(exec.native(), nullptr);

  const std::vector<double> rates = built->rates.values();
  solver::OdeSystem system = exec.make_system(&rates);
  ASSERT_TRUE(static_cast<bool>(system.sparse_jacobian));
  std::vector<double> y(built->equation_count(), 0.7);
  std::vector<double> vm_out(y.size());
  vm::Interpreter(built->program_optimized)
      .run(0.3, y.data(), rates.data(), vm_out.data());
  std::vector<double> exec_out(y.size(), 0.0);
  system.rhs(0.3, y.data(), exec_out.data());
  expect_tight(vm_out, exec_out, "native rhs via Execution");
}

// A - k0 -> B - k1 -> C, observable [C] — the estimator test model, here
// used to prove the batched-residual objective path gives the same answer
// on both backends.
TEST(NativeBackend, EstimatorObjectiveParity) {
  if (!have_cc()) GTEST_SKIP() << "no system C compiler";
  using expr::Product;
  using expr::VarId;
  odegen::EquationTable table(3);
  table.equation(0).add_combining(
      Product(-1.0, {VarId::rate_const(0), VarId::species(0)}));
  table.equation(1).add_combining(
      Product(1.0, {VarId::rate_const(0), VarId::species(0)}));
  table.equation(1).add_combining(
      Product(-1.0, {VarId::rate_const(1), VarId::species(1)}));
  table.equation(2).add_combining(
      Product(1.0, {VarId::rate_const(1), VarId::species(1)}));
  const opt::OptimizedSystem system = opt::optimize(table, 3, 2);
  const vm::Program program = emit_optimized(system);
  const std::vector<double> true_rates = {1.2, 0.6};

  TempCacheDir cache;
  auto native = NativeBackend::create(system, &table, 3, 2,
                                      test_options(cache));
  ASSERT_TRUE(native.is_ok()) << native.status().to_string();
  const CompiledJacobian jac_vm = compile_jacobian(table, 3, 2);

  data::Observable observable;
  observable.weighted_species = {{2, 1.0}};
  const vm::Interpreter interp(program);
  solver::OdeSystem truth{3, [&](double t, const double* y, double* ydot) {
                            interp.run(t, y, true_rates.data(), ydot);
                          }};
  data::SyntheticOptions synth;
  synth.t_end = 5.0;
  synth.record_count = 40;
  std::vector<estimator::Experiment> experiments;
  for (double a0 : {1.0, 0.5}) {
    estimator::Experiment e;
    e.initial_state = {a0, 0.0, 0.0};
    auto data = data::synthesize_experiment(truth, e.initial_state,
                                            observable, synth);
    ASSERT_TRUE(data.is_ok());
    e.data = std::move(data).value();
    experiments.push_back(std::move(e));
  }

  estimator::ObjectiveOptions vm_options;
  vm_options.compiled_jacobian = &jac_vm;
  estimator::ObjectiveFunction vm_objective(program, observable, experiments,
                                            {0, 1}, true_rates, vm_options);
  estimator::ObjectiveOptions native_options;
  native_options.native_backend = native->get();
  estimator::ObjectiveFunction native_objective(program, observable,
                                                experiments, {0, 1},
                                                true_rates, native_options);

  const linalg::Vector x = {2.0, 0.3};  // off-truth: nonzero residuals
  linalg::Vector r_vm;
  linalg::Vector r_native;
  ASSERT_TRUE(vm_objective.evaluate(x, r_vm).is_ok());
  ASSERT_TRUE(native_objective.evaluate(x, r_native).is_ok());
  ASSERT_EQ(r_vm.size(), r_native.size());
  double scale = 0.0;
  for (double v : r_vm) scale = std::max(scale, std::fabs(v));
  for (std::size_t i = 0; i < r_vm.size(); ++i) {
    // Both backends feed the same sparse-Newton integrator with
    // bit-comparable RHS/Jacobian values; trajectories agree far inside
    // the solver tolerance.
    EXPECT_NEAR(r_vm[i], r_native[i], 1e-7 * std::max(1.0, scale)) << i;
  }
}

}  // namespace
}  // namespace rms::codegen
