// Direct tests for the bytecode VM: instruction semantics, register reuse
// across calls, output conventions, and the disassembler.
#include <gtest/gtest.h>

#include <cmath>

#include "vm/interpreter.hpp"
#include "vm/program.hpp"

namespace rms::vm {
namespace {

Program make_program(std::vector<Instr> code, std::vector<double> consts,
                     std::size_t regs, std::size_t species, std::size_t rates,
                     std::size_t outputs) {
  Program p;
  p.code = std::move(code);
  p.consts = std::move(consts);
  p.register_count = regs;
  p.species_count = species;
  p.rate_count = rates;
  p.output_count = outputs;
  return p;
}

TEST(Interpreter, ArithmeticSemantics) {
  // out[0] = (y0 + k0) * 2 - t; out[1] = -y0.
  Program p = make_program(
      {
          {Op::kLoadY, 0, 0, 0},
          {Op::kLoadK, 1, 0, 0},
          {Op::kAdd, 2, 0, 1},
          {Op::kLoadConst, 3, 0, 0},
          {Op::kMul, 4, 2, 3},
          {Op::kLoadT, 5, 0, 0},
          {Op::kSub, 6, 4, 5},
          {Op::kStoreOut, 0, 0, 6},
          {Op::kNeg, 7, 0, 0},
          {Op::kStoreOut, 0, 1, 7},
      },
      {2.0}, 8, 1, 1, 2);
  Interpreter interp(p);
  std::vector<double> y = {3.0};
  std::vector<double> k = {4.0};
  std::vector<double> out;
  interp.run(0.5, y, k, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], (3.0 + 4.0) * 2.0 - 0.5);
  EXPECT_DOUBLE_EQ(out[1], -3.0);
}

TEST(Interpreter, StoreNoRegWritesZero) {
  Program p = make_program({{Op::kStoreOut, 0, 0, kNoReg}}, {}, 0, 1, 0, 1);
  Interpreter interp(p);
  double y = 9.0;
  double out = 123.0;
  interp.run(0.0, &y, nullptr, &out);
  EXPECT_DOUBLE_EQ(out, 0.0);
}

TEST(Interpreter, RepeatedCallsAreIndependent) {
  // out[0] = y0 * y0; the register file is reused but results must not
  // leak between calls.
  Program p = make_program(
      {
          {Op::kLoadY, 0, 0, 0},
          {Op::kMul, 1, 0, 0},
          {Op::kStoreOut, 0, 0, 1},
      },
      {}, 2, 1, 0, 1);
  Interpreter interp(p);
  for (double v : {2.0, -3.0, 0.0, 1e100}) {
    double out = 0.0;
    interp.run(0.0, &v, nullptr, &out);
    EXPECT_DOUBLE_EQ(out, v * v);
  }
}

TEST(Interpreter, NanPropagatesNotCrashes) {
  Program p = make_program(
      {
          {Op::kLoadY, 0, 0, 0},
          {Op::kLoadY, 1, 1, 0},
          {Op::kMul, 2, 0, 1},
          {Op::kStoreOut, 0, 0, 2},
      },
      {}, 3, 2, 0, 1);
  Interpreter interp(p);
  std::vector<double> y = {std::nan(""), 2.0};
  double out = 0.0;
  interp.run(0.0, y.data(), nullptr, &out);
  EXPECT_TRUE(std::isnan(out));
}

TEST(Program, CountArithIgnoresLoadsStoresNeg) {
  Program p = make_program(
      {
          {Op::kLoadY, 0, 0, 0},
          {Op::kLoadConst, 1, 0, 0},
          {Op::kAdd, 2, 0, 1},
          {Op::kMul, 3, 2, 2},
          {Op::kSub, 4, 3, 0},
          {Op::kNeg, 5, 4, 0},
          {Op::kStoreOut, 0, 0, 5},
      },
      {1.0}, 6, 1, 0, 1);
  const ArithCount count = p.count_arith();
  EXPECT_EQ(count.multiplies, 1u);
  EXPECT_EQ(count.add_subs, 2u);
  EXPECT_EQ(count.total(), 3u);
}

TEST(Program, DisassembleGolden) {
  Program p = make_program(
      {
          {Op::kLoadY, 0, 2, 0},
          {Op::kLoadK, 1, 1, 0},
          {Op::kMul, 2, 0, 1},
          {Op::kStoreOut, 0, 3, 2},
          {Op::kStoreOut, 0, 4, kNoReg},
      },
      {}, 3, 3, 2, 5);
  EXPECT_EQ(p.disassemble(),
            "r0 = y[2]\n"
            "r1 = k[1]\n"
            "r2 = r0 * r1\n"
            "ydot[3] = r2\n"
            "ydot[4] = 0\n");
}

TEST(Interpreter, OutputCountDefaultsToSpeciesCount) {
  // Legacy programs without output_count keep the RHS convention.
  Program p = make_program({{Op::kStoreOut, 0, 0, kNoReg}}, {}, 0, 1, 0, 0);
  Interpreter interp(p);
  std::vector<double> y = {1.0};
  std::vector<double> k;
  std::vector<double> out;
  interp.run(0.0, y, k, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(Interpreter, EmptyProgramLeavesOutputsUntouched) {
  Program p = make_program({}, {}, 0, 1, 0, 1);
  Interpreter interp(p);
  double y = 1.0;
  double out = 42.0;
  interp.run(0.0, &y, nullptr, &out);
  EXPECT_DOUBLE_EQ(out, 42.0);  // no stores: nothing written
}

}  // namespace
}  // namespace rms::vm
