// Golden snapshot tests: the generated network and the optimized equation
// table for fixed-size test cases and for every checked-in RDL model are
// compared against checked-in snapshots in tests/golden/.
//
// The snapshots pin the OBSERVABLE compiler output — species set, reaction
// list, factored equation structure, emitted program size — so an
// unintended change anywhere in the front half of the pipeline (canonical
// SMILES, rule matching, like-term combining, DistOpt, CSE, emission,
// fusion) shows up as a readable text diff, not as a downstream numeric
// wobble.
//
// To regenerate after an INTENDED change:
//   RMS_UPDATE_GOLDEN=1 ctest -R Golden
// then review the diff like any other code change.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "models/test_cases.hpp"
#include "network/io.hpp"
#include "support/status.hpp"
#include "verify/oracle.hpp"

namespace rms {
namespace {

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  ok = in.good();
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// First line where the two texts disagree, for a readable failure message.
std::string first_difference(const std::string& expected,
                             const std::string& actual) {
  std::istringstream e(expected);
  std::istringstream a(actual);
  std::string el;
  std::string al;
  int line = 1;
  while (true) {
    const bool have_e = static_cast<bool>(std::getline(e, el));
    const bool have_a = static_cast<bool>(std::getline(a, al));
    if (!have_e && !have_a) return "(texts are equal)";
    if (el != al || have_e != have_a) {
      std::ostringstream out;
      out << "line " << line << ":\n  golden: "
          << (have_e ? el : "<end of file>")
          << "\n  actual: " << (have_a ? al : "<end of file>");
      return out.str();
    }
    ++line;
  }
}

/// The snapshot text: everything downstream consumers can observe about the
/// compile, in a stable, diff-friendly order.
std::string render_model(const models::BuiltModel& built) {
  std::vector<std::string> names;
  names.reserve(built.network.species.size());
  for (const network::SpeciesEntry& entry : built.network.species.entries()) {
    names.push_back(entry.name);
  }
  std::ostringstream out;
  out << "== network ==\n" << network::serialize_network(built.network);
  out << "== optimized ==\n" << built.optimized.to_string(&names);
  out << "== program ==\n"
      << "instructions=" << built.program_optimized.code.size()
      << " registers=" << built.program_optimized.register_count
      << " consts=" << built.program_optimized.consts.size()
      << " outputs=" << built.program_optimized.output_count << "\n";
  return out.str();
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(RMS_GOLDEN_DIR) + "/" + name +
                           ".golden";
  if (std::getenv("RMS_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  bool ok = false;
  const std::string expected = read_file(path, ok);
  ASSERT_TRUE(ok) << "missing golden file " << path
                  << " — run RMS_UPDATE_GOLDEN=1 ctest -R Golden to create "
                     "it, then commit the result";
  EXPECT_EQ(expected, actual)
      << "snapshot mismatch for " << name << " — if the change is intended, "
      << "regenerate with RMS_UPDATE_GOLDEN=1 and review the diff.\nFirst "
      << "difference at " << first_difference(expected, actual);
}

void check_synthetic(const std::string& name,
                     const models::SyntheticNetworkConfig& config) {
  auto built = models::build_test_case(config);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();
  check_golden(name, render_model(*built));
}

void check_rdl_file(const std::string& name, const std::string& file) {
  bool ok = false;
  const std::string source =
      read_file(std::string(RMS_MODELS_DIR) + "/" + file, ok);
  ASSERT_TRUE(ok) << "missing model source " << file;
  auto built = verify::build_model_from_rdl(source);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();
  check_golden(name, render_model(*built));
}

// Fixed literal configurations (NOT scaled_config output): the snapshots
// must not churn if the benchmark scaling heuristics are retuned.
TEST(Golden, Tc1Shape) { check_synthetic("tc1_n2_v3", {2, 3}); }
TEST(Golden, Tc2Shape) { check_synthetic("tc2_n3_v5", {3, 5}); }
TEST(Golden, Tc3Shape) { check_synthetic("tc3_n4_v7", {4, 7}); }

TEST(Golden, Methanethiol) {
  check_rdl_file("methanethiol", "methanethiol.rdl");
}
TEST(Golden, VulcanizationS4) {
  check_rdl_file("vulcanization_s4", "vulcanization_s4.rdl");
}
TEST(Golden, VulcanizationArrhenius) {
  check_rdl_file("vulcanization_arrhenius", "vulcanization_arrhenius.rdl");
}

}  // namespace
}  // namespace rms
