// Determinism of the parallel compile pipeline.
//
// The pipeline's contract is that worker count NEVER changes the output:
// network generation, DistOpt, CSE, emission and the Jacobian compile all
// commit results by index, so a serial run and runs with 1, 2 and 8 workers
// must produce bit-identical bytecode. The pools are built with
// cap_to_hardware=false so the schedules really cross threads even on a
// single-core CI machine. The same must hold across the optimizer's seed
// switches (memoization, incremental frequency counts, CSE equation dedup):
// they change compile *time*, never compiled *code*.
#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "codegen/jacobian.hpp"
#include "models/test_cases.hpp"
#include "support/thread_pool.hpp"
#include "vm/program.hpp"

namespace rms::models {
namespace {

struct Compiled {
  vm::Program rhs;
  vm::Program jacobian;
};

::testing::AssertionResult same_program(const vm::Program& a,
                                        const vm::Program& b) {
  if (a.code.size() != b.code.size()) {
    return ::testing::AssertionFailure()
           << "code size " << a.code.size() << " vs " << b.code.size();
  }
  for (std::size_t i = 0; i < a.code.size(); ++i) {
    const vm::Instr& x = a.code[i];
    const vm::Instr& y = b.code[i];
    if (x.op != y.op || x.dst != y.dst || x.a != y.a || x.b != y.b ||
        x.c != y.c) {
      return ::testing::AssertionFailure() << "instr " << i << " differs";
    }
  }
  if (a.consts != b.consts) {
    return ::testing::AssertionFailure() << "constant pools differ";
  }
  if (a.register_count != b.register_count ||
      a.output_count != b.output_count) {
    return ::testing::AssertionFailure() << "register/output counts differ";
  }
  return ::testing::AssertionSuccess();
}

Compiled compile(const SyntheticNetworkConfig& config,
                 const PipelineOptions& pipeline) {
  auto built = build_test_case(config, pipeline);
  EXPECT_TRUE(built.is_ok()) << built.status().to_string();
  Compiled out;
  out.rhs = std::move(built->program_optimized);
  opt::OptimizerOptions jac_options = pipeline.optimizer;
  jac_options.pool = pipeline.pool;
  codegen::CompiledJacobian jacobian =
      codegen::compile_jacobian(built->odes.table, built->network.species.size(),
                                built->rates.size(), jac_options);
  out.jacobian = std::move(jacobian.program);
  return out;
}

TEST(ParallelPipeline, ThreadCountNeverChangesOutput) {
  for (int tc = 1; tc <= 3; ++tc) {
    const SyntheticNetworkConfig config = scaled_config(tc, 0.25);
    PipelineOptions serial;
    serial.build_reference_baseline = false;
    const Compiled reference = compile(config, serial);
    EXPECT_FALSE(reference.rhs.code.empty());
    EXPECT_FALSE(reference.jacobian.code.empty());

    for (std::size_t threads : {1u, 2u, 8u}) {
      support::ThreadPool pool(threads, /*cap_to_hardware=*/false);
      ASSERT_EQ(pool.thread_count(), threads);
      PipelineOptions parallel;
      parallel.pool = &pool;
      parallel.build_reference_baseline = false;
      const Compiled run = compile(config, parallel);
      EXPECT_TRUE(same_program(reference.rhs, run.rhs))
          << "TC" << tc << " rhs, " << threads << " threads";
      EXPECT_TRUE(same_program(reference.jacobian, run.jacobian))
          << "TC" << tc << " jacobian, " << threads << " threads";
    }
  }
}

TEST(ParallelPipeline, SeedSwitchesNeverChangeOutput) {
  // bench_compile's serial baseline replays the seed pipeline through these
  // switches; its ">= 2x, bit-identical" claim rests on this equivalence.
  const SyntheticNetworkConfig config = scaled_config(2, 0.5);
  PipelineOptions seed_profile;
  seed_profile.optimizer.memoize_equations = false;
  seed_profile.optimizer.incremental_frequency = false;
  seed_profile.optimizer.cse.dedup_equations = false;
  const Compiled baseline = compile(config, seed_profile);

  support::ThreadPool pool(4, /*cap_to_hardware=*/false);
  PipelineOptions optimized;
  optimized.pool = &pool;
  optimized.build_reference_baseline = false;
  optimized.collect_report = false;
  const Compiled fast = compile(config, optimized);

  EXPECT_TRUE(same_program(baseline.rhs, fast.rhs));
  EXPECT_TRUE(same_program(baseline.jacobian, fast.jacobian));
}

TEST(ParallelPipeline, PhaseTimingsArePopulated) {
  support::ThreadPool pool(2, /*cap_to_hardware=*/false);
  PipelineOptions pipeline;
  pipeline.pool = &pool;
  auto built = build_test_case(scaled_config(1, 0.25), pipeline);
  ASSERT_TRUE(built.is_ok()) << built.status().to_string();
  for (const char* phase : {"network", "odegen", "distopt", "cse", "emit",
                            "fuse"}) {
    EXPECT_GT(built->timings.seconds(phase), 0.0) << phase;
  }
  EXPECT_GT(built->timings.total_seconds(), 0.0);
}

}  // namespace
}  // namespace rms::models
