// Tests for the algebraic optimizer: the §3.2 distributive optimization, the
// §3.3 CSE, and the full pipeline. Property tests check semantic
// preservation (optimized programs compute the same right-hand sides) and
// that optimization never increases operation counts.
#include <gtest/gtest.h>

#include <cmath>

#include "expr/factored.hpp"
#include "expr/product.hpp"
#include "odegen/equation_table.hpp"
#include "opt/cse.hpp"
#include "opt/distopt.hpp"
#include "opt/pipeline.hpp"
#include "support/rng.hpp"

namespace rms::opt {
namespace {

using expr::EvalEnv;
using expr::FactoredSum;
using expr::Product;
using expr::SumOfProducts;
using expr::VarId;

const VarId A = VarId::species(0);
const VarId B = VarId::species(1);
const VarId C = VarId::species(2);
const VarId D = VarId::species(3);
const VarId E = VarId::species(4);
const VarId F = VarId::species(5);
const VarId G = VarId::species(6);
const VarId K1 = VarId::rate_const(0);
const VarId K2 = VarId::rate_const(1);
const VarId K3 = VarId::rate_const(2);

// Paper §3.2: k1*B*C + k1*B*D + k1*E*F -> k1*(B*(C+D) + E*F).
// Before: 6 multiplies, 2 adds. After: 3 multiplies, 2 adds.
TEST(DistOpt, PaperExampleEquation1To3) {
  SumOfProducts equation;
  equation.add_combining(Product(1.0, {K1, B, C}));
  equation.add_combining(Product(1.0, {K1, B, D}));
  equation.add_combining(Product(1.0, {K1, E, F}));
  EXPECT_EQ(equation.multiply_count(), 6u);
  EXPECT_EQ(equation.add_sub_count(), 2u);

  FactoredSum factored = distributive_optimize(equation);
  EXPECT_EQ(factored.multiply_count(), 3u);
  EXPECT_EQ(factored.add_sub_count(), 2u);
  EXPECT_EQ(factored.to_string(), "k0*(y1*(y2 + y3) + y4*y5)");

  // Value is preserved.
  std::vector<double> species = {0.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  std::vector<double> ks = {0.5};
  EvalEnv env{&species, &ks, nullptr, 0.0};
  EXPECT_DOUBLE_EQ(factored.evaluate(env),
                   equation.evaluate(species, ks, 0.0));
}

TEST(DistOpt, NoSharingLeavesFlat) {
  SumOfProducts equation;
  equation.add_combining(Product(1.0, {K1, A}));
  equation.add_combining(Product(1.0, {K2, B}));
  FactoredSum factored = distributive_optimize(equation);
  EXPECT_EQ(factored.size(), 2u);
  EXPECT_EQ(factored.multiply_count(), 2u);
}

TEST(DistOpt, EmptyEquation) {
  SumOfProducts empty;
  FactoredSum factored = distributive_optimize(empty);
  EXPECT_TRUE(factored.empty());
}

TEST(DistOpt, SingleTerm) {
  SumOfProducts equation;
  equation.add_combining(Product(-2.0, {K1, A, B}));
  FactoredSum factored = distributive_optimize(equation);
  ASSERT_EQ(factored.size(), 1u);
  EXPECT_DOUBLE_EQ(factored.terms()[0].coeff, -2.0);
}

TEST(DistOpt, RepeatedFactorHandled) {
  // k*A*A + k*A*B -> k*A*(A+B): the squared variable counts once per
  // product for frequency, and dividing removes one occurrence.
  SumOfProducts equation;
  equation.add_combining(Product(1.0, {K1, A, A}));
  equation.add_combining(Product(1.0, {K1, A, B}));
  FactoredSum factored = distributive_optimize(equation);
  std::vector<double> species = {3.0, 5.0};
  std::vector<double> ks = {2.0};
  EvalEnv env{&species, &ks, nullptr, 0.0};
  // 2*(9) + 2*(15) = 48
  EXPECT_DOUBLE_EQ(factored.evaluate(env), 48.0);
  EXPECT_LE(factored.multiply_count(), equation.multiply_count());
}

TEST(DistOpt, ConstantCoefficientsSurvive) {
  SumOfProducts equation;
  equation.add_combining(Product(2.0, {K1, A}));
  equation.add_combining(Product(-3.0, {K1, B}));
  FactoredSum factored = distributive_optimize(equation);
  std::vector<double> species = {1.0, 1.0};
  std::vector<double> ks = {1.0};
  EvalEnv env{&species, &ks, nullptr, 0.0};
  EXPECT_DOUBLE_EQ(factored.evaluate(env), -1.0);
}

TEST(DistOpt, DeterministicOutput) {
  SumOfProducts equation;
  equation.add_combining(Product(1.0, {K1, B, C}));
  equation.add_combining(Product(1.0, {K1, B, D}));
  equation.add_combining(Product(1.0, {K2, B, C}));
  const std::string first = distributive_optimize(equation).to_string();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(distributive_optimize(equation).to_string(), first);
  }
}

// Property: DistOpt preserves values and never increases op counts.
class DistOptProperty : public ::testing::TestWithParam<std::uint64_t> {};

SumOfProducts random_equation(support::Xoshiro256& rng, int max_terms = 30) {
  SumOfProducts equation;
  const int terms = 1 + static_cast<int>(rng.below(max_terms));
  for (int i = 0; i < terms; ++i) {
    Product p;
    p.coeff = std::floor(rng.uniform(-3.0, 4.0));
    if (p.coeff == 0.0) p.coeff = 1.0;
    p.factors.push_back(VarId::rate_const(static_cast<std::uint32_t>(rng.below(3))));
    const int nf = 1 + static_cast<int>(rng.below(3));
    for (int f = 0; f < nf; ++f) {
      p.factors.push_back(VarId::species(static_cast<std::uint32_t>(rng.below(7))));
    }
    p.normalize();
    equation.add_combining(std::move(p));
  }
  equation.sort_canonical();
  return equation;
}

TEST_P(DistOptProperty, PreservesValueAndReducesOps) {
  support::Xoshiro256 rng(GetParam());
  std::vector<double> species = {1.1, 0.3, 2.7, 0.9, 1.7, 0.2, 3.1};
  std::vector<double> ks = {0.5, 2.0, 1.25};
  for (int trial = 0; trial < 20; ++trial) {
    SumOfProducts equation = random_equation(rng);
    FactoredSum factored = distributive_optimize(equation);
    EvalEnv env{&species, &ks, nullptr, 0.0};
    const double expected = equation.evaluate(species, ks, 0.0);
    EXPECT_NEAR(factored.evaluate(env), expected,
                1e-10 * std::max(1.0, std::fabs(expected)));
    EXPECT_LE(factored.multiply_count(), equation.multiply_count());
    EXPECT_LE(factored.add_sub_count(), equation.add_sub_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistOptProperty,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---- CSE --------------------------------------------------------------------

odegen::EquationTable table_from(std::vector<SumOfProducts> eqs) {
  odegen::EquationTable table(eqs.size());
  for (std::size_t i = 0; i < eqs.size(); ++i) table.equation(i) = eqs[i];
  return table;
}

// Paper §3.3 example: sums (A+B+C+D) shared across equations, with (A+B+C)
// as a shared prefix. The optimizer must produce two temporaries, the
// shorter assigned first and reused inside the longer.
TEST(Cse, PaperExamplePrefixSharing) {
  SumOfProducts eq_a;
  eq_a.add_combining(Product(1.0, {A, K1, E}));  // placeholder head term
  SumOfProducts eq1;  // uses (A+B+C+D)*k1*E
  SumOfProducts eq2;  // uses (A+B+C+D)*k2*F
  SumOfProducts eq3;  // uses (A+B+C)*k3*G
  // Build directly in factored form to isolate the CSE behaviour.
  FactoredSum sum_abcd;
  for (VarId v : {A, B, C, D}) {
    expr::FactoredTerm t;
    t.factors.push_back(v);
    sum_abcd.terms().push_back(std::move(t));
  }
  FactoredSum sum_abc;
  for (VarId v : {A, B, C}) {
    expr::FactoredTerm t;
    t.factors.push_back(v);
    sum_abc.terms().push_back(std::move(t));
  }
  auto wrap = [](const FactoredSum& sum, VarId k, VarId x) {
    FactoredSum out;
    expr::FactoredTerm t;
    t.factors.push_back(k);
    t.factors.push_back(x);
    t.sub = std::make_unique<FactoredSum>(sum);
    out.terms().push_back(std::move(t));
    return out;
  };
  std::vector<FactoredSum> equations;
  equations.push_back(wrap(sum_abcd, K1, E));
  equations.push_back(wrap(sum_abcd, K2, F));
  equations.push_back(wrap(sum_abc, K3, G));

  OptimizedSystem system =
      build_optimized_system(equations, /*species=*/7, /*rates=*/3);

  // (A+B+C) gets a temp (prefix donor), (A+B+C+D) gets a temp (used twice),
  // and the longer is defined via the shorter.
  ASSERT_GE(system.temp_count(), 2u);
  const std::string text = system.to_string();
  EXPECT_NE(text.find("temp0 = y0 + y1 + y2;"), std::string::npos) << text;
  EXPECT_NE(text.find("temp1 = temp0 + y3;"), std::string::npos) << text;

  // Semantics preserved.
  std::vector<double> species = {1, 2, 3, 4, 5, 6, 7};
  std::vector<double> ks = {0.5, 2.0, 3.0};
  std::vector<double> dydt;
  system.evaluate(species, ks, 0.0, dydt);
  EXPECT_DOUBLE_EQ(dydt[0], 0.5 * 5 * 10);  // k1*E*(A+B+C+D)
  EXPECT_DOUBLE_EQ(dydt[1], 2.0 * 6 * 10);
  EXPECT_DOUBLE_EQ(dydt[2], 3.0 * 7 * 6);   // k3*G*(A+B+C)
}

TEST(Cse, IdenticalEquationsShareOneSum) {
  // dC/dt = dD/dt = -k*C*D (paper Fig. 5): one shared RHS temp.
  SumOfProducts eq;
  eq.add_combining(Product(-1.0, {K1, C, D}));
  odegen::EquationTable table = table_from({eq, eq});
  OptimizationReport report;
  OptimizedSystem system = optimize(table, 7, 3, OptimizerOptions::full(),
                                    &report);
  EXPECT_EQ(system.equations[0], system.equations[1]);
  // The shared product k*C*D is computed once.
  EXPECT_LE(report.after.multiplies, 2u);
  std::vector<double> species = {0, 0, 2.0, 3.0, 0, 0, 0};
  std::vector<double> ks = {0.5, 0, 0};
  std::vector<double> dydt;
  system.evaluate(species, ks, 0.0, dydt);
  EXPECT_DOUBLE_EQ(dydt[0], -3.0);
  EXPECT_DOUBLE_EQ(dydt[1], -3.0);
}

TEST(Cse, SharedRateProductAcrossEquations) {
  // Reaction r = k*A*B feeding three equations: the product is hash-consed
  // and computed once (Fig. 7 equal-length match at the product level).
  SumOfProducts eq1;
  eq1.add_combining(Product(-1.0, {K1, A, B}));
  SumOfProducts eq2;
  eq2.add_combining(Product(-1.0, {K1, A, B}));
  SumOfProducts eq3;
  eq3.add_combining(Product(2.0, {K1, A, B}));
  odegen::EquationTable table = table_from({eq1, eq2, eq3});
  OptimizationReport report;
  OptimizedSystem system =
      optimize(table, 7, 3, OptimizerOptions::full(), &report);
  // Unoptimized: 3 eqs x 2 muls + coeff mul = 7. Optimized: k*A*B once (2
  // muls) + 2*temp (1 mul) = 3.
  EXPECT_EQ(report.before.multiplies, 7u);
  EXPECT_EQ(report.after.multiplies, 3u);
  std::vector<double> species = {2.0, 3.0, 0, 0, 0, 0, 0};
  std::vector<double> ks = {0.5, 0, 0};
  std::vector<double> dydt;
  system.evaluate(species, ks, 0.0, dydt);
  EXPECT_DOUBLE_EQ(dydt[0], -3.0);
  EXPECT_DOUBLE_EQ(dydt[2], 6.0);
}

TEST(Cse, TempsDisabledRecomputesEverything) {
  SumOfProducts eq;
  eq.add_combining(Product(-1.0, {K1, A, B}));
  odegen::EquationTable table = table_from({eq, eq, eq});
  OptimizerOptions no_cse;
  no_cse.distributive = true;
  no_cse.cse.enable_temporaries = false;
  no_cse.cse.enable_prefix_sharing = false;
  OptimizationReport report;
  OptimizedSystem system = optimize(table, 7, 3, no_cse, &report);
  EXPECT_EQ(system.temp_count(), 0u);
  EXPECT_EQ(report.after.multiplies, report.before.multiplies);
  std::vector<double> species = {2.0, 3.0, 0, 0, 0, 0, 0};
  std::vector<double> ks = {0.5, 0, 0};
  std::vector<double> dydt;
  system.evaluate(species, ks, 0.0, dydt);
  EXPECT_DOUBLE_EQ(dydt[0], -3.0);
}

TEST(Cse, ZeroEquationsHandled) {
  odegen::EquationTable table(3);  // all RHS identically zero
  OptimizedSystem system = optimize(table, 3, 0);
  EXPECT_EQ(system.equations[0], kNoExpr);
  std::vector<double> dydt;
  system.evaluate({1, 2, 3}, {}, 0.0, dydt);
  EXPECT_DOUBLE_EQ(dydt[0], 0.0);
  EXPECT_DOUBLE_EQ(dydt[2], 0.0);
}

TEST(Cse, DefBeforeUseInTempOrder) {
  // Build a system with nested shared sums and verify every temp's
  // dependencies appear earlier in temp_order.
  support::Xoshiro256 rng(7);
  std::vector<SumOfProducts> eqs;
  for (int i = 0; i < 20; ++i) eqs.push_back(random_equation(rng, 20));
  std::vector<FactoredSum> factored;
  for (const auto& eq : eqs) factored.push_back(distributive_optimize(eq));
  OptimizedSystem system = build_optimized_system(factored, 7, 3);

  std::vector<int> product_pos(system.products.size(), -1);
  std::vector<int> sum_pos(system.sums.size(), -1);
  for (std::size_t i = 0; i < system.temp_order.size(); ++i) {
    const TempDef& def = system.temp_order[i];
    if (def.kind == TempDef::Kind::kProduct) {
      product_pos[def.entry] = static_cast<int>(i);
    } else {
      sum_pos[def.entry] = static_cast<int>(i);
    }
  }
  for (std::size_t i = 0; i < system.temp_order.size(); ++i) {
    const TempDef& def = system.temp_order[i];
    if (def.kind == TempDef::Kind::kProduct) {
      const ProductEntry& p = system.products[def.entry];
      if (p.prefix_len > 0) {
        EXPECT_LT(product_pos[p.prefix_product], static_cast<int>(i));
      }
      for (std::size_t a = p.prefix_len; a < p.atoms.size(); ++a) {
        if (p.atoms[a].kind == ProductAtom::Kind::kSum) {
          const SumEntry& s = system.sums[p.atoms[a].sum];
          if (s.temp_index >= 0) {
            EXPECT_LT(sum_pos[p.atoms[a].sum], static_cast<int>(i));
          }
        }
      }
    } else {
      const SumEntry& s = system.sums[def.entry];
      if (s.prefix_len > 0) {
        EXPECT_LT(sum_pos[s.prefix_sum], static_cast<int>(i));
      }
      for (std::size_t o = s.prefix_len; o < s.operands.size(); ++o) {
        const ProductEntry& p = system.products[s.operands[o].product];
        if (p.temp_index >= 0) {
          EXPECT_LT(product_pos[s.operands[o].product], static_cast<int>(i));
        }
      }
    }
  }
}

// Property: the full pipeline preserves semantics on random systems and
// never increases total op count.
class PipelineProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineProperty, SemanticPreservationAndReduction) {
  support::Xoshiro256 rng(GetParam());
  std::vector<SumOfProducts> eqs;
  const int n = 7;
  for (int i = 0; i < n; ++i) eqs.push_back(random_equation(rng, 25));
  odegen::EquationTable table = table_from(eqs);

  for (const OptimizerOptions& options :
       {OptimizerOptions::full(), OptimizerOptions::none(), [] {
          OptimizerOptions o;
          o.distributive = false;  // CSE only
          return o;
        }()}) {
    OptimizationReport report;
    OptimizedSystem system = optimize(table, n, 3, options, &report);
    std::vector<double> species(n);
    for (double& v : species) v = rng.uniform(0.1, 2.0);
    std::vector<double> ks = {0.5, 2.0, 1.25};
    std::vector<double> dydt;
    system.evaluate(species, ks, 0.0, dydt);
    for (int i = 0; i < n; ++i) {
      const double expected = table.equation(i).evaluate(species, ks, 0.0);
      EXPECT_NEAR(dydt[i], expected, 1e-9 * std::max(1.0, std::fabs(expected)))
          << "equation " << i;
    }
    EXPECT_LE(report.after.total(), report.before.total());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

TEST(Pipeline, ReportFractions) {
  SumOfProducts eq1;
  eq1.add_combining(Product(-1.0, {K1, A, B}));
  SumOfProducts eq2;
  eq2.add_combining(Product(1.0, {K1, A, B}));
  odegen::EquationTable table = table_from({eq1, eq2});
  OptimizationReport report;
  optimize(table, 7, 3, OptimizerOptions::full(), &report);
  EXPECT_GT(report.before.multiplies, 0u);
  EXPECT_LE(report.multiply_fraction(), 1.0);
  EXPECT_LE(report.total_fraction(), 1.0);
}

}  // namespace
}  // namespace rms::opt
