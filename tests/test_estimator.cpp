// Tests for the parallel objective function (Fig. 9) and the parameter
// estimator: residual layouts, parallel == sequential, load-balanced
// schedules, and ground-truth parameter recovery on synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/bytecode_emitter.hpp"
#include "codegen/jacobian.hpp"
#include "data/synthetic.hpp"
#include "estimator/estimator.hpp"
#include "estimator/objective.hpp"
#include "expr/product.hpp"
#include "odegen/equation_table.hpp"
#include "opt/pipeline.hpp"
#include "vm/interpreter.hpp"

namespace rms::estimator {
namespace {

using expr::Product;
using expr::VarId;

/// Tiny kinetic model: A -k0-> B -k1-> C. Observable: [C].
struct TinyModel {
  vm::Program program;
  codegen::CompiledJacobian jacobian;
  data::Observable observable;
  std::vector<double> true_rates = {1.2, 0.6};

  TinyModel() {
    odegen::EquationTable table(3);
    table.equation(0).add_combining(
        Product(-1.0, {VarId::rate_const(0), VarId::species(0)}));
    table.equation(1).add_combining(
        Product(1.0, {VarId::rate_const(0), VarId::species(0)}));
    table.equation(1).add_combining(
        Product(-1.0, {VarId::rate_const(1), VarId::species(1)}));
    table.equation(2).add_combining(
        Product(1.0, {VarId::rate_const(1), VarId::species(1)}));
    opt::OptimizedSystem system = opt::optimize(table, 3, 2);
    program = codegen::emit_optimized(system);
    jacobian = codegen::compile_jacobian(table, 3, 2);
    observable.weighted_species = {{2, 1.0}};
  }

  /// Synthesizes an experiment for a formulation with initial [A] = a0.
  Experiment make_experiment(double a0, std::size_t records,
                             double noise = 0.0, std::uint64_t seed = 1) {
    vm::Interpreter interp(program);
    const std::vector<double> rates = true_rates;
    solver::OdeSystem system{3, [&](double t, const double* y, double* ydot) {
                               interp.run(t, y, rates.data(), ydot);
                             }};
    data::SyntheticOptions options;
    options.t_end = 5.0;
    options.record_count = records;
    options.noise_level = noise;
    options.noise_seed = seed;
    Experiment e;
    e.initial_state = {a0, 0.0, 0.0};
    auto result = data::synthesize_experiment(system, e.initial_state,
                                              observable, options);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    e.data = std::move(result).value();
    return e;
  }
};

TEST(Objective, ZeroResidualAtTrueParameters) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 60));
  experiments.push_back(model.make_experiment(0.5, 60));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  ASSERT_TRUE(
      objective.evaluate({model.true_rates[0], model.true_rates[1]}, r)
          .is_ok());
  EXPECT_EQ(r.size(), objective.residual_size());
  for (double v : r) EXPECT_NEAR(v, 0.0, 1e-4);
}

TEST(Objective, WrongParametersGiveNonzeroResiduals) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 60));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({2.5, 0.1}, r).is_ok());
  double norm = 0.0;
  for (double v : r) norm += v * v;
  EXPECT_GT(norm, 1e-4);
}

TEST(Objective, GlobalPerTimestepLayoutSumsAcrossFiles) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(1.0, 40));  // identical file
  ObjectiveOptions options;
  options.layout = ResidualLayout::kGlobalPerTimestep;
  ObjectiveFunction objective(model.program, model.observable, experiments,
                              {0, 1}, model.true_rates, options);
  EXPECT_EQ(objective.residual_size(), 40u);
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({2.0, 0.3}, r).is_ok());

  // One identical file alone gives exactly half the summed error.
  ObjectiveFunction single(model.program, model.observable,
                           {experiments[0]}, {0, 1}, model.true_rates,
                           options);
  linalg::Vector r1;
  ASSERT_TRUE(single.evaluate({2.0, 0.3}, r1).is_ok());
  for (std::size_t j = 0; j < 40; ++j) {
    EXPECT_NEAR(r[j], 2.0 * r1[j], 1e-9);
  }
}

TEST(Objective, RecordsPerFileSolveTimes) {
  TinyModel model;
  std::vector<Experiment> experiments;
  for (int i = 0; i < 4; ++i) {
    experiments.push_back(model.make_experiment(0.5 + 0.25 * i, 50));
  }
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({1.0, 0.5}, r).is_ok());
  ASSERT_EQ(objective.last_file_times().size(), 4u);
  for (double t : objective.last_file_times()) EXPECT_GT(t, 0.0);
}

TEST(Objective, ParallelRanksMatchSequential) {
  TinyModel model;
  std::vector<Experiment> experiments;
  for (int i = 0; i < 6; ++i) {
    experiments.push_back(model.make_experiment(0.4 + 0.2 * i, 40));
  }
  ObjectiveFunction sequential(model.program, model.observable, experiments,
                               {0, 1}, model.true_rates);
  ObjectiveOptions parallel_options;
  parallel_options.ranks = 3;
  ObjectiveFunction parallel(model.program, model.observable, experiments,
                             {0, 1}, model.true_rates, parallel_options);
  linalg::Vector r_seq;
  linalg::Vector r_par;
  ASSERT_TRUE(sequential.evaluate({1.5, 0.4}, r_seq).is_ok());
  ASSERT_TRUE(parallel.evaluate({1.5, 0.4}, r_par).is_ok());
  ASSERT_EQ(r_seq.size(), r_par.size());
  for (std::size_t i = 0; i < r_seq.size(); ++i) {
    EXPECT_NEAR(r_seq[i], r_par[i], 1e-9);
  }
}

TEST(Objective, DynamicLoadBalancingUsesRecordedTimes) {
  TinyModel model;
  std::vector<Experiment> experiments;
  // Files with very different sizes -> very different solve times.
  experiments.push_back(model.make_experiment(1.0, 400));
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(1.0, 400));
  ObjectiveOptions options;
  options.ranks = 2;
  options.dynamic_load_balancing = true;
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates, options);
  linalg::Vector r;
  // First call: block schedule (no times yet) puts both heavy files on
  // opposite... block puts {0,1} on rank0 and {2,3} on rank1.
  ASSERT_TRUE(objective.evaluate({1.0, 0.5}, r).is_ok());
  const auto first = objective.last_assignment();
  EXPECT_EQ(first[0], 0);
  EXPECT_EQ(first[3], 1);
  // Second call: LPT on the recorded times must separate the two heavy
  // files onto different ranks.
  ASSERT_TRUE(objective.evaluate({1.0, 0.5}, r).is_ok());
  const auto second = objective.last_assignment();
  EXPECT_NE(second[0], second[3]);
}

TEST(Objective, ParameterCountValidated) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 30));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  EXPECT_FALSE(objective.evaluate({1.0}, r).is_ok());
}

TEST(Estimator, RecoversGroundTruthParameters) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 80));
  experiments.push_back(model.make_experiment(0.5, 80));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {0.5, 0.2}, {0.01, 0.01},
                                    {10.0, 10.0});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_NEAR(result->rate_constants[0], model.true_rates[0], 5e-3);
  EXPECT_NEAR(result->rate_constants[1], model.true_rates[1], 5e-3);
  EXPECT_LT(result->final_cost, 1e-6);
}

TEST(Estimator, RecoveryWithNoisyData) {
  TinyModel model;
  std::vector<Experiment> experiments;
  for (int i = 0; i < 4; ++i) {
    experiments.push_back(
        model.make_experiment(0.5 + 0.3 * i, 120, 0.005, 100 + i));
  }
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {2.0, 0.2}, {0.01, 0.01},
                                    {10.0, 10.0});
  ASSERT_TRUE(result.is_ok());
  EXPECT_NEAR(result->rate_constants[0], model.true_rates[0], 0.05);
  EXPECT_NEAR(result->rate_constants[1], model.true_rates[1], 0.05);
}

TEST(Estimator, BoundsConstrainTheFit) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 60));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  // [C](t) in the A->B->C cascade is symmetric under k0<->k1, so capping
  // only k0 would just select the swapped exact solution. Cap BOTH below
  // the true fast constant (1.2): no exact fit exists inside the box, so
  // the optimizer must end on the boundary with a nonzero cost.
  auto result =
      estimate_parameters(objective, {0.5, 0.5}, {0.01, 0.01}, {0.8, 0.8});
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->rate_constants[0], 0.8 + 1e-12);
  EXPECT_LE(result->rate_constants[1], 0.8 + 1e-12);
  const double max_k =
      std::max(result->rate_constants[0], result->rate_constants[1]);
  EXPECT_NEAR(max_k, 0.8, 0.05);
  EXPECT_GT(result->final_cost, 1e-8);
}

TEST(Estimator, SubsetOfParametersEstimated) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 80));
  // Only k1 estimated; k0 fixed at the true value via base rates.
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {0.1}, {0.01}, {10.0});
  ASSERT_TRUE(result.is_ok());
  EXPECT_NEAR(result->rate_constants[0], model.true_rates[1], 5e-3);
}

TEST(Objective, JacobianHookMatchesSerialPerturbedEvaluations) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(0.5, 30));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  const linalg::Vector x = {1.1, 0.45};
  const linalg::Vector steps = {1e-4, -2e-5};
  const std::size_t m = objective.residual_size();
  linalg::Vector r0;
  ASSERT_TRUE(objective.evaluate(x, r0).is_ok());
  linalg::Matrix jacobian(m, 2);
  ASSERT_TRUE(objective.evaluate_jacobian(x, r0, steps, jacobian).is_ok());
  // Reference: the serial per-column loop the optimizer would otherwise
  // run. Both paths do cold solves of identical systems, so the columns
  // must match bit for bit.
  for (std::size_t c = 0; c < 2; ++c) {
    linalg::Vector x_pert = x;
    x_pert[c] += steps[c];
    linalg::Vector r_pert;
    ASSERT_TRUE(objective.evaluate(x_pert, r_pert).is_ok());
    for (std::size_t i = 0; i < m; ++i) {
      EXPECT_DOUBLE_EQ(jacobian(i, c), (r_pert[i] - r0[i]) / steps[c]);
    }
  }
}

TEST(Objective, PoolBitIdenticalAcrossWorkerCounts) {
  TinyModel model;
  // Worker counts 0 (inline), 1, 2, 8 with warm starting on: residuals,
  // Jacobians and warm-start counts must agree to the bit.
  struct Run {
    linalg::Vector r;
    linalg::Matrix jacobian{0, 0};
    std::size_t warm_starts = 0;
  };
  auto run = [&](int workers) {
    std::vector<Experiment> experiments;
    experiments.push_back(model.make_experiment(1.0, 50));
    experiments.push_back(model.make_experiment(0.5, 30));
    experiments.push_back(model.make_experiment(0.25, 20));
    ObjectiveOptions options;
    options.pool_workers = workers;
    options.warm_start = true;
    options.dynamic_load_balancing = true;
    ObjectiveFunction objective(model.program, model.observable,
                                std::move(experiments), {0, 1},
                                model.true_rates, options);
    Run out;
    out.jacobian = linalg::Matrix(objective.residual_size(), 2);
    // Two evaluations (the second one warm) plus a warm Jacobian.
    EXPECT_TRUE(objective.evaluate({1.0, 0.5}, out.r).is_ok());
    EXPECT_TRUE(objective.evaluate({1.1, 0.45}, out.r).is_ok());
    const linalg::Vector steps = {1.1e-4, 4.5e-5};
    EXPECT_TRUE(
        objective.evaluate_jacobian({1.1, 0.45}, out.r, steps, out.jacobian)
            .is_ok());
    out.warm_starts = objective.solver_stats().integration.warm_starts;
    return out;
  };
  const Run baseline = run(0);
  EXPECT_GT(baseline.warm_starts, 0u);
  for (int workers : {1, 2, 8}) {
    const Run other = run(workers);
    ASSERT_EQ(other.r.size(), baseline.r.size());
    for (std::size_t i = 0; i < baseline.r.size(); ++i) {
      EXPECT_EQ(other.r[i], baseline.r[i]) << "worker count " << workers;
    }
    for (std::size_t i = 0; i < baseline.jacobian.rows(); ++i) {
      for (std::size_t j = 0; j < baseline.jacobian.cols(); ++j) {
        EXPECT_EQ(other.jacobian(i, j), baseline.jacobian(i, j))
            << "worker count " << workers;
      }
    }
    EXPECT_EQ(other.warm_starts, baseline.warm_starts);
  }
}

TEST(Estimator, PoolAndWarmStartDeterministicEndToEnd) {
  TinyModel model;
  auto run = [&](int workers) {
    std::vector<Experiment> experiments;
    experiments.push_back(model.make_experiment(1.0, 60));
    experiments.push_back(model.make_experiment(0.5, 60));
    experiments.push_back(model.make_experiment(0.75, 40));
    ObjectiveOptions options;
    options.pool_workers = workers;
    options.warm_start = true;
    options.dynamic_load_balancing = true;
    // Sparse-direct Newton path: warm solves also reuse the base solve's
    // recorded LU factorizations (the factor cache).
    options.compiled_jacobian = &model.jacobian;
    ObjectiveFunction objective(model.program, model.observable,
                                std::move(experiments), {0, 1},
                                model.true_rates, options);
    auto result = estimate_parameters(objective, {0.5, 0.2}, {0.01, 0.01},
                                      {10.0, 10.0});
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    return std::move(result).value();
  };
  const EstimationResult baseline = run(0);
  EXPECT_NEAR(baseline.rate_constants[0], model.true_rates[0], 5e-3);
  EXPECT_NEAR(baseline.rate_constants[1], model.true_rates[1], 5e-3);
  EXPECT_GT(baseline.solver_stats.solves, 0u);
  EXPECT_GT(baseline.solver_stats.integration.warm_starts, 0u);
  EXPECT_GT(baseline.solver_stats.integration.factor_cache_hits, 0u);
  for (int workers : {1, 2, 8}) {
    const EstimationResult other = run(workers);
    // Bit-identical optimization trajectory for any worker count.
    ASSERT_EQ(other.rate_constants.size(), baseline.rate_constants.size());
    for (std::size_t i = 0; i < baseline.rate_constants.size(); ++i) {
      EXPECT_EQ(other.rate_constants[i], baseline.rate_constants[i])
          << "worker count " << workers;
    }
    EXPECT_EQ(other.final_cost, baseline.final_cost);
    EXPECT_EQ(other.iterations, baseline.iterations);
    EXPECT_EQ(other.objective_evaluations, baseline.objective_evaluations);
    EXPECT_EQ(other.solver_stats.solves, baseline.solver_stats.solves);
    EXPECT_EQ(other.solver_stats.integration.steps,
              baseline.solver_stats.integration.steps);
    EXPECT_EQ(other.solver_stats.integration.warm_starts,
              baseline.solver_stats.integration.warm_starts);
    EXPECT_EQ(other.solver_stats.integration.factor_cache_hits,
              baseline.solver_stats.integration.factor_cache_hits);
    EXPECT_EQ(other.solver_stats.integration.factorizations,
              baseline.solver_stats.integration.factorizations);
  }
}

TEST(Estimator, SurfacesSolverStats) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 80));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {0.5, 0.2}, {0.01, 0.01},
                                    {10.0, 10.0});
  ASSERT_TRUE(result.is_ok());
  const SolverStats& stats = result->solver_stats;
  EXPECT_GT(stats.solves, 0u);
  EXPECT_GT(stats.integration.steps, 0u);
  EXPECT_GT(stats.integration.rhs_evaluations, 0u);
  EXPECT_GT(stats.integration.newton_iterations, 0u);
  EXPECT_GT(stats.integration.jacobian_evaluations, 0u);
  EXPECT_GT(stats.integration.factorizations, 0u);
  // No warm starting requested: the counter must stay zero.
  EXPECT_EQ(stats.integration.warm_starts, 0u);
}

}  // namespace
}  // namespace rms::estimator
