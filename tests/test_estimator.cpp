// Tests for the parallel objective function (Fig. 9) and the parameter
// estimator: residual layouts, parallel == sequential, load-balanced
// schedules, and ground-truth parameter recovery on synthetic data.
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/bytecode_emitter.hpp"
#include "data/synthetic.hpp"
#include "estimator/estimator.hpp"
#include "estimator/objective.hpp"
#include "expr/product.hpp"
#include "odegen/equation_table.hpp"
#include "opt/pipeline.hpp"
#include "vm/interpreter.hpp"

namespace rms::estimator {
namespace {

using expr::Product;
using expr::VarId;

/// Tiny kinetic model: A -k0-> B -k1-> C. Observable: [C].
struct TinyModel {
  vm::Program program;
  data::Observable observable;
  std::vector<double> true_rates = {1.2, 0.6};

  TinyModel() {
    odegen::EquationTable table(3);
    table.equation(0).add_combining(
        Product(-1.0, {VarId::rate_const(0), VarId::species(0)}));
    table.equation(1).add_combining(
        Product(1.0, {VarId::rate_const(0), VarId::species(0)}));
    table.equation(1).add_combining(
        Product(-1.0, {VarId::rate_const(1), VarId::species(1)}));
    table.equation(2).add_combining(
        Product(1.0, {VarId::rate_const(1), VarId::species(1)}));
    opt::OptimizedSystem system = opt::optimize(table, 3, 2);
    program = codegen::emit_optimized(system);
    observable.weighted_species = {{2, 1.0}};
  }

  /// Synthesizes an experiment for a formulation with initial [A] = a0.
  Experiment make_experiment(double a0, std::size_t records,
                             double noise = 0.0, std::uint64_t seed = 1) {
    vm::Interpreter interp(program);
    const std::vector<double> rates = true_rates;
    solver::OdeSystem system{3, [&](double t, const double* y, double* ydot) {
                               interp.run(t, y, rates.data(), ydot);
                             }};
    data::SyntheticOptions options;
    options.t_end = 5.0;
    options.record_count = records;
    options.noise_level = noise;
    options.noise_seed = seed;
    Experiment e;
    e.initial_state = {a0, 0.0, 0.0};
    auto result = data::synthesize_experiment(system, e.initial_state,
                                              observable, options);
    EXPECT_TRUE(result.is_ok()) << result.status().to_string();
    e.data = std::move(result).value();
    return e;
  }
};

TEST(Objective, ZeroResidualAtTrueParameters) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 60));
  experiments.push_back(model.make_experiment(0.5, 60));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  ASSERT_TRUE(
      objective.evaluate({model.true_rates[0], model.true_rates[1]}, r)
          .is_ok());
  EXPECT_EQ(r.size(), objective.residual_size());
  for (double v : r) EXPECT_NEAR(v, 0.0, 1e-4);
}

TEST(Objective, WrongParametersGiveNonzeroResiduals) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 60));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({2.5, 0.1}, r).is_ok());
  double norm = 0.0;
  for (double v : r) norm += v * v;
  EXPECT_GT(norm, 1e-4);
}

TEST(Objective, GlobalPerTimestepLayoutSumsAcrossFiles) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(1.0, 40));  // identical file
  ObjectiveOptions options;
  options.layout = ResidualLayout::kGlobalPerTimestep;
  ObjectiveFunction objective(model.program, model.observable, experiments,
                              {0, 1}, model.true_rates, options);
  EXPECT_EQ(objective.residual_size(), 40u);
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({2.0, 0.3}, r).is_ok());

  // One identical file alone gives exactly half the summed error.
  ObjectiveFunction single(model.program, model.observable,
                           {experiments[0]}, {0, 1}, model.true_rates,
                           options);
  linalg::Vector r1;
  ASSERT_TRUE(single.evaluate({2.0, 0.3}, r1).is_ok());
  for (std::size_t j = 0; j < 40; ++j) {
    EXPECT_NEAR(r[j], 2.0 * r1[j], 1e-9);
  }
}

TEST(Objective, RecordsPerFileSolveTimes) {
  TinyModel model;
  std::vector<Experiment> experiments;
  for (int i = 0; i < 4; ++i) {
    experiments.push_back(model.make_experiment(0.5 + 0.25 * i, 50));
  }
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({1.0, 0.5}, r).is_ok());
  ASSERT_EQ(objective.last_file_times().size(), 4u);
  for (double t : objective.last_file_times()) EXPECT_GT(t, 0.0);
}

TEST(Objective, ParallelRanksMatchSequential) {
  TinyModel model;
  std::vector<Experiment> experiments;
  for (int i = 0; i < 6; ++i) {
    experiments.push_back(model.make_experiment(0.4 + 0.2 * i, 40));
  }
  ObjectiveFunction sequential(model.program, model.observable, experiments,
                               {0, 1}, model.true_rates);
  ObjectiveOptions parallel_options;
  parallel_options.ranks = 3;
  ObjectiveFunction parallel(model.program, model.observable, experiments,
                             {0, 1}, model.true_rates, parallel_options);
  linalg::Vector r_seq;
  linalg::Vector r_par;
  ASSERT_TRUE(sequential.evaluate({1.5, 0.4}, r_seq).is_ok());
  ASSERT_TRUE(parallel.evaluate({1.5, 0.4}, r_par).is_ok());
  ASSERT_EQ(r_seq.size(), r_par.size());
  for (std::size_t i = 0; i < r_seq.size(); ++i) {
    EXPECT_NEAR(r_seq[i], r_par[i], 1e-9);
  }
}

TEST(Objective, DynamicLoadBalancingUsesRecordedTimes) {
  TinyModel model;
  std::vector<Experiment> experiments;
  // Files with very different sizes -> very different solve times.
  experiments.push_back(model.make_experiment(1.0, 400));
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(1.0, 40));
  experiments.push_back(model.make_experiment(1.0, 400));
  ObjectiveOptions options;
  options.ranks = 2;
  options.dynamic_load_balancing = true;
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates, options);
  linalg::Vector r;
  // First call: block schedule (no times yet) puts both heavy files on
  // opposite... block puts {0,1} on rank0 and {2,3} on rank1.
  ASSERT_TRUE(objective.evaluate({1.0, 0.5}, r).is_ok());
  const auto first = objective.last_assignment();
  EXPECT_EQ(first[0], 0);
  EXPECT_EQ(first[3], 1);
  // Second call: LPT on the recorded times must separate the two heavy
  // files onto different ranks.
  ASSERT_TRUE(objective.evaluate({1.0, 0.5}, r).is_ok());
  const auto second = objective.last_assignment();
  EXPECT_NE(second[0], second[3]);
}

TEST(Objective, ParameterCountValidated) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 30));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  linalg::Vector r;
  EXPECT_FALSE(objective.evaluate({1.0}, r).is_ok());
}

TEST(Estimator, RecoversGroundTruthParameters) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 80));
  experiments.push_back(model.make_experiment(0.5, 80));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {0.5, 0.2}, {0.01, 0.01},
                                    {10.0, 10.0});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_NEAR(result->rate_constants[0], model.true_rates[0], 5e-3);
  EXPECT_NEAR(result->rate_constants[1], model.true_rates[1], 5e-3);
  EXPECT_LT(result->final_cost, 1e-6);
}

TEST(Estimator, RecoveryWithNoisyData) {
  TinyModel model;
  std::vector<Experiment> experiments;
  for (int i = 0; i < 4; ++i) {
    experiments.push_back(
        model.make_experiment(0.5 + 0.3 * i, 120, 0.005, 100 + i));
  }
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {2.0, 0.2}, {0.01, 0.01},
                                    {10.0, 10.0});
  ASSERT_TRUE(result.is_ok());
  EXPECT_NEAR(result->rate_constants[0], model.true_rates[0], 0.05);
  EXPECT_NEAR(result->rate_constants[1], model.true_rates[1], 0.05);
}

TEST(Estimator, BoundsConstrainTheFit) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 60));
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {0, 1},
                              model.true_rates);
  // [C](t) in the A->B->C cascade is symmetric under k0<->k1, so capping
  // only k0 would just select the swapped exact solution. Cap BOTH below
  // the true fast constant (1.2): no exact fit exists inside the box, so
  // the optimizer must end on the boundary with a nonzero cost.
  auto result =
      estimate_parameters(objective, {0.5, 0.5}, {0.01, 0.01}, {0.8, 0.8});
  ASSERT_TRUE(result.is_ok());
  EXPECT_LE(result->rate_constants[0], 0.8 + 1e-12);
  EXPECT_LE(result->rate_constants[1], 0.8 + 1e-12);
  const double max_k =
      std::max(result->rate_constants[0], result->rate_constants[1]);
  EXPECT_NEAR(max_k, 0.8, 0.05);
  EXPECT_GT(result->final_cost, 1e-8);
}

TEST(Estimator, SubsetOfParametersEstimated) {
  TinyModel model;
  std::vector<Experiment> experiments;
  experiments.push_back(model.make_experiment(1.0, 80));
  // Only k1 estimated; k0 fixed at the true value via base rates.
  ObjectiveFunction objective(model.program, model.observable,
                              std::move(experiments), {1},
                              model.true_rates);
  auto result = estimate_parameters(objective, {0.1}, {0.01}, {10.0});
  ASSERT_TRUE(result.is_ok());
  EXPECT_NEAR(result->rate_constants[0], model.true_rates[1], 5e-3);
}

}  // namespace
}  // namespace rms::estimator
