// Tests for temperature-dependent kinetics (Arrhenius-form rate constants)
// and substructure-based forbidden forms — the "different formulations
// cured at different temperatures" dimension of the paper's data and the
// general reading of "certain actions and forms can be forbidden".
#include <gtest/gtest.h>

#include <cmath>

#include "codegen/bytecode_emitter.hpp"
#include "data/synthetic.hpp"
#include "estimator/estimator.hpp"
#include "expr/product.hpp"
#include "network/generator.hpp"
#include "odegen/equation_table.hpp"
#include "opt/pipeline.hpp"
#include "rcip/rate_table.hpp"
#include "rdl/sema.hpp"
#include "vm/interpreter.hpp"

namespace rms {
namespace {

TEST(ArrheniusRdl, ParsesAndEvaluatesAtReferenceTemperature) {
  auto model = rdl::compile_rdl(
      "const Ea = 50000;\n"
      "const k_fast = arrhenius(1.0e8, Ea);\n"
      "const k_plain = 2.5;\n");
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  ASSERT_EQ(model->constant_defs.size(), 3u);
  const rdl::ConstantDef& def = model->constant_defs[1];
  EXPECT_TRUE(def.is_arrhenius);
  EXPECT_DOUBLE_EQ(def.prefactor, 1.0e8);
  EXPECT_DOUBLE_EQ(def.activation_energy, 50000.0);
  const double expected =
      1.0e8 * std::exp(-50000.0 /
                       (rdl::kGasConstant * rdl::kReferenceTemperature));
  EXPECT_DOUBLE_EQ(def.value, expected);
  EXPECT_FALSE(model->constant_defs[2].is_arrhenius);
}

TEST(ArrheniusRdl, IdentifierNamedArrheniusStillWorks) {
  // "arrhenius" is contextual: as a plain reference it is an ordinary name.
  auto model = rdl::compile_rdl(
      "const arrhenius = 3.0;\n"
      "const k = arrhenius * 2;\n");
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  EXPECT_DOUBLE_EQ(model->constant_value("k"), 6.0);
}

TEST(ArrheniusRdl, RejectsNonPositivePrefactor) {
  EXPECT_FALSE(rdl::compile_rdl("const k = arrhenius(-1, 100);").is_ok());
  EXPECT_FALSE(rdl::compile_rdl("const k = arrhenius(0, 100);").is_ok());
}

TEST(ArrheniusRdl, MalformedSyntaxRejected) {
  EXPECT_FALSE(rdl::compile_rdl("const k = arrhenius(1.0);").is_ok());
  EXPECT_FALSE(rdl::compile_rdl("const k = arrhenius(1.0, 2.0;").is_ok());
}

TEST(RateTableArrhenius, ValuesAtTemperature) {
  rcip::RateTable table;
  table.add("k_plain", 2.0);
  table.add_arrhenius("k_arr", {1e6, 40000.0}, rdl::kReferenceTemperature);
  const auto at_350 = table.values_at(350.0);
  EXPECT_DOUBLE_EQ(at_350[0], 2.0);  // plain slot unchanged
  EXPECT_DOUBLE_EQ(at_350[1],
                   1e6 * std::exp(-40000.0 / (rdl::kGasConstant * 350.0)));
  // Hotter cure -> faster constant.
  const auto at_400 = table.values_at(400.0);
  EXPECT_GT(at_400[1], at_350[1]);
}

TEST(RateTableArrhenius, ArrheniusSlotsMergeByLaw) {
  rcip::RateTable table;
  const auto a = table.add_arrhenius("kA", {1e6, 40000.0}, 298.15);
  const auto b = table.add_arrhenius("kB", {1e6, 40000.0}, 298.15);
  const auto c = table.add_arrhenius("kC", {1e6, 50000.0}, 298.15);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(table.arrhenius(a), nullptr);
}

TEST(RateTableArrhenius, PlainValueDoesNotMergeWithArrhenius) {
  rcip::RateTable table;
  const auto arr =
      table.add_arrhenius("kA", {1e6, 40000.0}, rdl::kReferenceTemperature);
  // A plain constant that happens to equal kA's reference value must stay a
  // separate slot: equal value at one temperature is not an equal law.
  const auto plain = table.add("kP", table.value(arr));
  EXPECT_NE(arr, plain);
  EXPECT_EQ(table.arrhenius(plain), nullptr);
}

TEST(RateTableArrhenius, ValueWithPrefactor) {
  rcip::RateTable table;
  table.add("k_plain", 2.0);
  table.add_arrhenius("k_arr", {1e6, 40000.0}, rdl::kReferenceTemperature);
  // Plain slot: the "prefactor" IS the value.
  EXPECT_DOUBLE_EQ(table.value_with_prefactor(0, 7.5, 350.0), 7.5);
  // Arrhenius slot: prefactor recombines with the stored Ea.
  EXPECT_DOUBLE_EQ(table.value_with_prefactor(1, 2e6, 350.0),
                   2e6 * std::exp(-40000.0 / (rdl::kGasConstant * 350.0)));
}

TEST(MultiTemperatureEstimation, RecoversArrheniusPrefactor) {
  // One first-order decay A -> B with an Arrhenius constant; experiments at
  // three cure temperatures; the estimator recovers the prefactor.
  using expr::Product;
  using expr::VarId;
  odegen::EquationTable table(2);
  table.equation(0).add_combining(
      Product(-1.0, {VarId::rate_const(0), VarId::species(0)}));
  table.equation(1).add_combining(
      Product(1.0, {VarId::rate_const(0), VarId::species(0)}));
  opt::OptimizedSystem system = opt::optimize(table, 2, 1);
  vm::Program program = codegen::emit_optimized(system);

  rcip::RateTable rates;
  const double true_prefactor = 5.0e5;
  const double ea = 35000.0;
  rates.add_arrhenius("k", {true_prefactor, ea}, rdl::kReferenceTemperature);

  data::Observable observable;
  observable.weighted_species = {{1, 1.0}};

  std::vector<estimator::Experiment> experiments;
  for (double temperature : {300.0, 330.0, 360.0}) {
    const double k_at_t =
        true_prefactor * std::exp(-ea / (rdl::kGasConstant * temperature));
    std::vector<double> k_vec = {k_at_t};
    solver::OdeSystem ode{2, [&](double, const double* y, double* ydot) {
                            ydot[0] = -k_vec[0] * y[0];
                            ydot[1] = k_vec[0] * y[0];
                          }};
    data::SyntheticOptions options;
    options.t_end = 2.0 / k_at_t;  // comparable curve coverage per file
    options.record_count = 80;
    estimator::Experiment e;
    e.initial_state = {1.0, 0.0};
    e.temperature = temperature;
    auto data =
        data::synthesize_experiment(ode, e.initial_state, observable, options);
    ASSERT_TRUE(data.is_ok());
    e.data = std::move(data).value();
    experiments.push_back(std::move(e));
  }

  estimator::ObjectiveOptions options;
  options.rate_table = &rates;
  // The estimated parameter is the prefactor; base vector = prefactors.
  estimator::ObjectiveFunction objective(program, observable,
                                         std::move(experiments), {0},
                                         {true_prefactor}, options);
  // Residuals vanish at the true prefactor...
  linalg::Vector r;
  ASSERT_TRUE(objective.evaluate({true_prefactor}, r).is_ok());
  for (double v : r) EXPECT_NEAR(v, 0.0, 1e-3);
  // ...and the estimator recovers it from a 3x-off start.
  auto result = estimator::estimate_parameters(
      objective, {true_prefactor * 3.0}, {true_prefactor * 0.01},
      {true_prefactor * 100.0});
  ASSERT_TRUE(result.is_ok()) << result.status().to_string();
  EXPECT_NEAR(result->rate_constants[0] / true_prefactor, 1.0, 0.02);
}

TEST(SubstructureForbid, ParsesBothForms) {
  auto model = rdl::compile_rdl(
      "forbid \"CCO\";\n"
      "forbid substructure \"SSS\";\n");
  ASSERT_TRUE(model.is_ok()) << model.status().to_string();
  EXPECT_EQ(model->forbidden_canonical.size(), 1u);
  EXPECT_EQ(model->forbidden_substructures.size(), 1u);
}

TEST(SubstructureForbid, BlocksContainingProducts) {
  // Radical recombination would build ever longer sulfur chains; forbidding
  // the SSSS substructure caps chain growth at 3.
  auto source =
      "species S1 = \"[S]\";\n"
      "const k = 1;\n"
      "rule grow { site a: S where radical; site b: S where radical;\n"
      "            connect a b; rate k; }\n";
  auto unbounded_model = rdl::compile_rdl(source);
  ASSERT_TRUE(unbounded_model.is_ok());
  network::GeneratorOptions small;
  small.max_species = 10;
  EXPECT_FALSE(network::generate_network(*unbounded_model, small).is_ok());

  auto capped_model = rdl::compile_rdl(
      std::string(source) + "forbid substructure \"SSSS\";\n");
  ASSERT_TRUE(capped_model.is_ok());
  auto net = network::generate_network(*capped_model, small);
  ASSERT_TRUE(net.is_ok()) << net.status().to_string();
  // Chains: S, SS, SSS (all diradical) — nothing longer.
  EXPECT_EQ(net->species.size(), 3u);
  for (const auto& entry : net->species.entries()) {
    EXPECT_LE(entry.molecule.atom_count(), 3u);
  }
}

TEST(SubstructureForbid, ExactForbidIsWeakerThanSubstructure) {
  // Exact-molecule forbid of the 4-chain blocks only that species; longer
  // chains still form via 2+3 recombination, so the network explodes into
  // the species cap — the contrast that motivates substructure forbids.
  auto model = rdl::compile_rdl(
      "species S1 = \"[S]\";\n"
      "const k = 1;\n"
      "rule grow { site a: S where radical; site b: S where radical;\n"
      "            connect a b; rate k; }\n"
      "forbid \"[S]SS[S]\";\n");  // exact 4-chain diradical only
  ASSERT_TRUE(model.is_ok());
  network::GeneratorOptions small;
  small.max_species = 8;
  auto net = network::generate_network(*model, small);
  ASSERT_FALSE(net.is_ok());
  EXPECT_EQ(net.status().code(), support::StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace rms
